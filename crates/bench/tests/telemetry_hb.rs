//! End-to-end check that a real harmonic-balance solve on the bench
//! modulator leaves a usable telemetry record: a nonempty Newton
//! residual trace, solver counters, and the span tree path
//! `hb.solve -> hb.newton -> krylov.gmres`.

use rfsim::steady::{solve_hb, HbOptions, SpectralGrid, ToneAxis};
use rfsim::telemetry;
use rfsim_bench::{quadrature_modulator, ModulatorSpec};

#[test]
fn solve_hb_records_newton_trace() {
    telemetry::set_mode(telemetry::Mode::Report);
    telemetry::reset();

    // Scaled-down tone ratio for test speed, same structure as e02.
    let spec = ModulatorSpec { f_bb: 1e6, f_lo: 100e6, ..Default::default() };
    let (dae, _out) = quadrature_modulator(&spec);
    let grid =
        SpectralGrid::two_tone(ToneAxis::new(spec.f_bb, 2), ToneAxis::new(spec.f_lo, 2)).unwrap();
    solve_hb(&dae, &grid, &HbOptions::default()).expect("HB converges on the modulator");

    let snap = telemetry::snapshot();
    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();

    let newton = snap
        .traces
        .iter()
        .find(|t| t.solver == "hb.newton")
        .expect("solve_hb records an hb.newton convergence trace");
    assert!(!newton.residuals.is_empty(), "Newton trace has residuals");
    assert!(newton.converged);
    // The trajectory must actually descend to the HB tolerance.
    let first = newton.residuals.first().copied().unwrap();
    let last = newton.residuals.last().copied().unwrap();
    assert!(last < first, "residuals decrease: {first} -> {last}");
    assert!(last < 1e-6, "final residual meets tolerance: {last}");
    assert!(newton.label.contains("unknowns"), "label carries the problem size: {}", newton.label);

    assert!(snap.counters["hb.newton.iterations"] > 0);
    assert!(snap.counters["krylov.gmres.iterations"] > 0);
    assert!(snap.counters["krylov.gmres.matvecs"] > 0);

    let gmres = snap
        .spans
        .descend(&["hb.solve", "hb.newton", "krylov.gmres"])
        .expect("span path hb.solve -> hb.newton -> krylov.gmres");
    assert!(gmres.count > 0);
}
