#![warn(missing_docs)]
//! Transistor-level circuit simulation substrate for `rfsim`.
//!
//! This crate provides the "SPICE-type" foundation the paper's Section 2
//! builds on: a netlist of devices stamped through modified nodal analysis
//! (MNA) into the differential-algebraic equation
//!
//! ```text
//!     q̇(x) + f(x) = b(t)          (paper, Eq. 3)
//! ```
//!
//! where `x` collects node voltages and branch currents, `q` the
//! charge/flux terms, `f` the resistive terms, and `b` the excitations.
//! Every analysis engine in the workspace — DC, transient, AC, noise here;
//! harmonic balance and shooting in `rfsim-steady`; the MPDE family in
//! `rfsim-mpde`; phase noise in `rfsim-phasenoise` — consumes the [`Dae`]
//! trait exported from this crate.
//!
//! # Quickstart
//!
//! ```
//! use rfsim_circuit::prelude::*;
//!
//! # fn main() -> Result<(), rfsim_circuit::Error> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add(VSource::dc("V1", vin, Circuit::GROUND, 5.0));
//! ckt.add(Resistor::new("R1", vin, vout, 1e3));
//! ckt.add(Resistor::new("R2", vout, Circuit::GROUND, 1e3));
//! let dae = ckt.into_dae()?;
//! let op = dc_operating_point(&dae, &DcOptions::default())?;
//! let v = op.voltage(vout);
//! assert!((v - 2.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod dae;
pub mod dc;
pub mod devices;
pub mod netlist;
pub mod noise;
pub mod parser;
pub mod transient;
pub mod waveform;

pub use dae::{CircuitDae, Dae, LoadCtx, SrcCtx};
pub use dc::{dc_operating_point, newton_solve, DcOptions, OperatingPoint};
pub use netlist::{Circuit, NodeId};
pub use transient::{transient, Integrator, TranOptions, TranResult};

/// Convenient glob import for building and simulating circuits.
pub mod prelude {
    pub use crate::ac::{ac_sweep, AcResult};
    pub use crate::dae::{CircuitDae, Dae};
    pub use crate::dc::{dc_operating_point, DcOptions, OperatingPoint};
    pub use crate::devices::{
        Bjt, Capacitor, Cccs, Ccvs, CoupledInductors, CurrentProbe, Diode, ISource, Inductor,
        Mosfet, Multiplier, NonlinearConductance, Resistor, VSource, Varactor, Vccs, Vcvs,
    };
    pub use crate::netlist::{Circuit, NodeId};
    pub use crate::transient::{transient, Integrator, TranOptions, TranResult};
    pub use crate::waveform::{Stimulus, TimeScale, Tone};
}

/// Errors raised while building or simulating circuits.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The Newton iteration did not converge.
    NewtonNoConvergence {
        /// Newton iterations performed.
        iterations: usize,
        /// Final residual infinity-norm.
        residual: f64,
    },
    /// An underlying linear-algebra failure (singular Jacobian etc.).
    Numerics(rfsim_numerics::Error),
    /// Netlist construction problem (duplicate names, bad node, …).
    Netlist(String),
    /// Netlist text parsing problem, with line number.
    Parse {
        /// 1-based line number of the offending card.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An analysis was asked of a circuit that does not support it.
    Unsupported(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NewtonNoConvergence { iterations, residual } => write!(
                f,
                "newton iteration failed to converge after {iterations} steps (residual {residual:.3e})"
            ),
            Error::Numerics(e) => write!(f, "numerical failure: {e}"),
            Error::Netlist(msg) => write!(f, "netlist error: {msg}"),
            Error::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Error::Unsupported(what) => write!(f, "unsupported analysis: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfsim_numerics::Error> for Error {
    fn from(e: rfsim_numerics::Error) -> Self {
        Error::Numerics(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Boltzmann constant (J/K).
pub const BOLTZMANN: f64 = 1.380649e-23;
/// Elementary charge (C).
pub const Q_ELECTRON: f64 = 1.602176634e-19;
/// Thermal voltage kT/q at 300 K (V).
pub const VT_300K: f64 = BOLTZMANN * 300.0 / Q_ELECTRON;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_sane() {
        assert!((VT_300K - 0.02585).abs() < 1e-4);
    }

    #[test]
    fn error_display() {
        let e = Error::Netlist("node not found".into());
        assert!(e.to_string().contains("node not found"));
        let e: Error = rfsim_numerics::Error::Singular(2).into();
        assert!(e.to_string().contains("singular"));
    }
}
