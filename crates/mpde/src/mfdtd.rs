//! Multivariate Finite-Difference Time Domain (MFDTD): the MPDE discretized
//! with backward differences on both axes of a biperiodic `t₁ × t₂` grid.
//!
//! "Appropriate for circuits with no sinusoidal waveform components, such
//! as power converters" — the backward-difference operators put no
//! smoothness assumption on either axis, at the price of first-order
//! accuracy. Optional slow-axis refinement doubles `n1` until the solution
//! stops changing (the paper's adaptive-grid remark).

use crate::bivariate::BivariateWaveform;
use crate::grid::{GridProblem, GridStats, SlowOp};
use crate::Result;
use rfsim_circuit::dae::Dae;
use rfsim_circuit::dc::DcOptions;

/// Options for [`solve_mfdtd`].
#[derive(Debug, Clone)]
pub struct MfdtdOptions {
    /// Grid points along the slow axis.
    pub n1: usize,
    /// Grid points along the fast axis.
    pub n2: usize,
    /// Newton residual tolerance.
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_newton: usize,
    /// Adaptive slow-axis refinement: double `n1` until the waveform
    /// change is below `refine_tol` (0 disables).
    pub refine_tol: f64,
    /// Maximum refinement rounds.
    pub max_refine: usize,
    /// DC options for the initial guess.
    pub dc: DcOptions,
}

impl Default for MfdtdOptions {
    fn default() -> Self {
        MfdtdOptions {
            n1: 16,
            n2: 32,
            tol: 1e-8,
            max_newton: 40,
            refine_tol: 0.0,
            max_refine: 3,
            dc: DcOptions::default(),
        }
    }
}

/// Solves the biperiodic MPDE with backward differences on both axes.
///
/// `t1_period` and `t2_period` are the slow/fast periods the excitation's
/// bivariate form uses.
///
/// # Errors
/// [`crate::Error::NoConvergence`] if the grid Newton iteration stalls.
pub fn solve_mfdtd(
    dae: &dyn Dae,
    t1_period: f64,
    t2_period: f64,
    opts: &MfdtdOptions,
) -> Result<(BivariateWaveform, GridStats)> {
    let _span = rfsim_telemetry::span("mpde.mfdtd");
    let mut n1 = opts.n1;
    let problem =
        GridProblem { dae, t1_period, t2_period, n1, n2: opts.n2, slow: SlowOp::BackwardDiff };
    let (mut wave, mut stats) = problem.solve(opts.tol, opts.max_newton, &opts.dc)?;
    if opts.refine_tol > 0.0 {
        for _round in 0..opts.max_refine {
            n1 *= 2;
            let problem = GridProblem {
                dae,
                t1_period,
                t2_period,
                n1,
                n2: opts.n2,
                slow: SlowOp::BackwardDiff,
            };
            let (w2, s2) = problem.solve(opts.tol, opts.max_newton, &opts.dc)?;
            // Compare on the coarse grid's points.
            let mut diff = 0.0f64;
            for i1 in 0..wave.n1 {
                for i2 in 0..wave.n2 {
                    for k in 0..wave.n {
                        diff = diff.max((wave.at(i1, i2, k) - w2.at(2 * i1, i2, k)).abs());
                    }
                }
            }
            stats = GridStats {
                newton_iterations: stats.newton_iterations + s2.newton_iterations,
                unknowns: s2.unknowns,
                jacobian_nnz: s2.jacobian_nnz,
            };
            let done = diff < opts.refine_tol;
            wave = w2;
            if done {
                break;
            }
        }
    }
    Ok((wave, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::prelude::*;
    use rfsim_circuit::Circuit;

    /// Linear RC driven by slow+fast tones: the bivariate solution's
    /// diagonal must match a brute-force transient.
    #[test]
    fn two_tone_rc_matches_transient() {
        let (f1, f2) = (1e4, 1e6);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::multi_tone(
            "V1",
            a,
            Circuit::GROUND,
            0.0,
            vec![(Tone::new(0.5, f1), TimeScale::Slow), (Tone::new(0.5, f2), TimeScale::Fast)],
        ));
        ckt.add(Resistor::new("R1", a, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 2e-10));
        let dae = ckt.into_dae().unwrap();
        let opts = MfdtdOptions { n1: 32, n2: 64, ..Default::default() };
        let (wave, stats) = solve_mfdtd(&dae, 1.0 / f1, 1.0 / f2, &opts).unwrap();
        assert!(stats.unknowns > 0);
        // Brute-force transient over one slow period, after settling.
        let tran = transient(
            &dae,
            0.0,
            2.0 / f1,
            &TranOptions { dt: 1.0 / f2 / 64.0, ..Default::default() },
        )
        .unwrap();
        let oi = dae.node_index(out).unwrap();
        // Compare at a handful of times in the second slow period.
        let mut worst = 0.0f64;
        for j in 0..40 {
            let t = 1.0 / f1 + j as f64 * (1.0 / f1) / 40.0;
            let tr = rfsim_numerics::interp::lerp(&tran.times, &tran.unknown(oi), t);
            let bi = wave.eval(t, t, oi);
            worst = worst.max((tr - bi).abs());
        }
        // First-order method on a 64-point fast grid: expect few-percent.
        assert!(worst < 0.05, "worst mismatch {worst}");
    }

    /// Switching (square LO) drive: MFDTD must capture the discontinuous
    /// fast-axis waveform and the slow modulation.
    #[test]
    fn switched_rc_bivariate_structure() {
        let (f1, f2) = (1e3, 1e6);
        let mut ckt = Circuit::new();
        let sw = ckt.node("sw");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        // Slow sine input, fast square "LO", multiplier as chopper.
        ckt.add(VSource::sine("VIN", inp, Circuit::GROUND, 0.0, 1.0, f1));
        ckt.add(VSource::square_lo("VLO", sw, Circuit::GROUND, 1.0, f2));
        // Negative gain compensates the current-into-load inversion so
        // v(out) = +v(in)·v(sw).
        ckt.add(Multiplier::new(
            "CHOP",
            out,
            Circuit::GROUND,
            inp,
            Circuit::GROUND,
            sw,
            Circuit::GROUND,
            -1e-3,
        ));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3).noiseless());
        let dae = ckt.into_dae().unwrap();
        let opts = MfdtdOptions { n1: 16, n2: 32, ..Default::default() };
        let (wave, _) = solve_mfdtd(&dae, 1.0 / f1, 1.0 / f2, &opts).unwrap();
        let oi = dae.node_index(out).unwrap();
        // Chopped output: at slow peak (t1 = T1/4), fast waveform is a
        // square of amplitude gain·1V·1V·R = 1.0.
        let i_peak = 4; // n1/4
        let early = wave.at(i_peak, 3, oi);
        let late = wave.at(i_peak, 20, oi);
        assert!(early > 0.5, "first half-period should be positive, got {early}");
        assert!(late < -0.5, "second half-period should be negative, got {late}");
        // At the slow zero crossing the output vanishes.
        let zero = wave.at(0, 3, oi);
        assert!(zero.abs() < 0.1, "zero crossing: {zero}");
    }

    /// The paper's named MFDTD/MMFT application beyond mixers: a
    /// switched-capacitor integrator. A MOSFET switch chopped by a fast
    /// clock transfers charge packets; the slow input is tracked with an
    /// effective resistance `1/(f_clk·C_s)`.
    #[test]
    fn switched_capacitor_filter() {
        let (f1, f2) = (1e3, 1e6); // signal, clock
        let (c_s, c_h) = (1e-12, 20e-12);
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let clk = ckt.node("clk");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        ckt.add(VSource::sine("VIN", inp, Circuit::GROUND, 0.5, 0.2, f1));
        // Clock swings 0..3 V on the fast axis.
        ckt.add(VSource::new(
            "VCLK",
            clk,
            Circuit::GROUND,
            Stimulus::Square {
                offset: 1.5,
                amplitude: 1.5,
                period: 1.0 / f2,
                scale: TimeScale::Fast,
            },
        ));
        // Switch: NMOS pass transistor clocked hard on/off.
        ckt.add(Mosfet::nmos("MSW", inp, clk, mid, 0.7, 5e-3));
        ckt.add(Capacitor::new("CS", mid, Circuit::GROUND, c_s));
        // Second switch on the complementary phase would complete a true
        // SC resistor; a leak resistor models the transfer to the holding
        // cap without doubling the fast grid.
        ckt.add(Resistor::new("RT", mid, out, 50e3).noiseless());
        ckt.add(Capacitor::new("CH", out, Circuit::GROUND, c_h));
        let dae = ckt.into_dae().unwrap();
        let opts = MfdtdOptions { n1: 16, n2: 40, max_newton: 60, ..Default::default() };
        let (wave, _) = solve_mfdtd(&dae, 1.0 / f1, 1.0 / f2, &opts).unwrap();
        let oi = dae.node_index(out).unwrap();
        let mi = dae.node_index(mid).unwrap();
        // The sampling node tracks the input while the clock is high: at a
        // slow sample where vin ≈ 0.7, mid's clock-high average ≈ 0.7.
        let i1 = 4; // slow quarter-period: vin = 0.5 + 0.2 = 0.7
        let clock_high: f64 = (0..10).map(|j| wave.at(i1, j + 2, mi)).sum::<f64>() / 10.0;
        assert!((clock_high - 0.7).abs() < 0.08, "tracked {clock_high}");
        // The held output follows the slow input mean with ripple ≪ swing.
        let out_avg: f64 = (0..40).map(|j| wave.at(i1, j, oi)).sum::<f64>() / 40.0;
        assert!((out_avg - 0.5).abs() < 0.25, "out avg {out_avg}");
        let out_ripple =
            (0..40).map(|j| (wave.at(i1, j, oi) - out_avg).abs()).fold(0.0f64, f64::max);
        assert!(out_ripple < 0.02, "ripple {out_ripple}");
    }

    /// Refinement reduces the change between successive grids.
    #[test]
    fn refinement_converges() {
        let (f1, f2) = (1e4, 1e6);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::multi_tone(
            "V1",
            a,
            Circuit::GROUND,
            0.0,
            vec![(Tone::new(1.0, f1), TimeScale::Slow), (Tone::new(0.2, f2), TimeScale::Fast)],
        ));
        ckt.add(Resistor::new("R1", a, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-10));
        let dae = ckt.into_dae().unwrap();
        let opts =
            MfdtdOptions { n1: 8, n2: 16, refine_tol: 5e-2, max_refine: 3, ..Default::default() };
        let (wave, _) = solve_mfdtd(&dae, 1.0 / f1, 1.0 / f2, &opts).unwrap();
        // Refinement ran: n1 grew beyond the initial 8.
        assert!(wave.n1 > 8);
    }
}
