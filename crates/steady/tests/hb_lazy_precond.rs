//! Lazy preconditioner refresh: the adaptive policy must converge to the
//! same answer as per-iteration re-factoring, with bounded Newton work
//! and strictly fewer block factorizations, and the forced-degradation
//! path must trigger a re-factor plus a `precond_degraded` health event.

use rfsim_circuit::dae::CircuitDae;
use rfsim_circuit::prelude::*;
use rfsim_circuit::Circuit;
use rfsim_steady::fourier::ToneAxis;
use rfsim_steady::hb::HbSolver;
use rfsim_steady::{solve_hb, HbOptions, HbSolution, PrecondRefresh, SpectralGrid};

/// Symmetric diode clipper: strongly nonlinear, so the linearization at
/// the solution differs sharply from the DC one — the case lazy refresh
/// must survive.
fn symmetric_clipper() -> (CircuitDae, SpectralGrid, usize) {
    let f0 = 1e6;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 2.0, f0));
    ckt.add(Resistor::new("R1", a, out, 1e3));
    ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
    ckt.add(Diode::new("D2", Circuit::GROUND, out, 1e-14));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-10));
    let dae = ckt.into_dae().unwrap();
    let out_idx = dae.node_index(out).unwrap();
    let grid = SpectralGrid::single_tone(f0, 15).unwrap();
    (dae, grid, out_idx)
}

/// Two-tone multiplier mixer from the paper's mix-product study.
fn mixer() -> (CircuitDae, SpectralGrid, usize) {
    let (f1, f2) = (1e5, 9e8);
    let mut ckt = Circuit::new();
    let rf = ckt.node("rf");
    let lo = ckt.node("lo");
    let out = ckt.node("out");
    ckt.add(VSource::sine("VRF", rf, Circuit::GROUND, 0.0, 0.1, f1));
    ckt.add(VSource::sine_fast("VLO", lo, Circuit::GROUND, 0.0, 1.0, f2));
    ckt.add(Multiplier::new(
        "MIX",
        out,
        Circuit::GROUND,
        rf,
        Circuit::GROUND,
        lo,
        Circuit::GROUND,
        1e-3,
    ));
    ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3).noiseless());
    let dae = ckt.into_dae().unwrap();
    let out_idx = dae.node_index(out).unwrap();
    let grid = SpectralGrid::two_tone(ToneAxis::new(f1, 2), ToneAxis::new(f2, 2)).unwrap();
    (dae, grid, out_idx)
}

fn solve_with(dae: &CircuitDae, grid: &SpectralGrid, refresh: PrecondRefresh) -> HbSolution {
    let opts = HbOptions {
        solver: HbSolver::Gmres { precondition: true },
        precond_refresh: refresh,
        source_steps: 2,
        ..Default::default()
    };
    solve_hb(dae, grid, &opts).unwrap()
}

fn assert_same_waveform(a: &HbSolution, b: &HbSolution, i: usize) {
    let (wa, wb) = (a.waveform(i), b.waveform(i));
    for (x, y) in wa.iter().zip(&wb) {
        assert!((x - y).abs() < 1e-6, "waveforms diverge: {x} vs {y}");
    }
}

#[test]
fn clipper_adaptive_matches_eager_with_fewer_factorizations() {
    let (dae, grid, out_idx) = symmetric_clipper();
    let eager = solve_with(&dae, &grid, PrecondRefresh::EveryIteration);
    let lazy = solve_with(&dae, &grid, PrecondRefresh::Adaptive { growth: 3.0 });
    assert_same_waveform(&eager, &lazy, out_idx);

    // Eager re-factors on every Newton iteration.
    assert_eq!(eager.stats.precond_factorizations, eager.stats.newton_iterations);
    // Lazy keeps factors across iterations; the clipper converges with
    // strictly fewer factorizations and no Newton-iteration blow-up.
    assert!(
        lazy.stats.precond_factorizations < eager.stats.precond_factorizations,
        "lazy {} vs eager {}",
        lazy.stats.precond_factorizations,
        eager.stats.precond_factorizations
    );
    assert!(
        lazy.stats.newton_iterations <= eager.stats.newton_iterations + 3,
        "lazy Newton count {} blew past eager {}",
        lazy.stats.newton_iterations,
        eager.stats.newton_iterations
    );
}

#[test]
fn mixer_adaptive_matches_eager_with_fewer_factorizations() {
    let (dae, grid, out_idx) = mixer();
    let eager = solve_with(&dae, &grid, PrecondRefresh::EveryIteration);
    let lazy = solve_with(&dae, &grid, PrecondRefresh::Adaptive { growth: 3.0 });
    assert_same_waveform(&eager, &lazy, out_idx);
    assert!(
        lazy.stats.precond_factorizations < eager.stats.precond_factorizations,
        "lazy {} vs eager {}",
        lazy.stats.precond_factorizations,
        eager.stats.precond_factorizations
    );
    assert!(lazy.stats.newton_iterations <= eager.stats.newton_iterations + 3);
}

/// `growth: 0.0` makes every inner-iteration count exceed the threshold,
/// forcing `precond_degraded` to fire after each correction: the policy
/// must re-factor on every Newton iteration, exactly like the eager one.
#[test]
fn forced_degradation_refactors_every_iteration() {
    let (dae, grid, out_idx) = symmetric_clipper();
    let eager = solve_with(&dae, &grid, PrecondRefresh::EveryIteration);
    let forced = solve_with(&dae, &grid, PrecondRefresh::Adaptive { growth: 0.0 });
    assert_same_waveform(&eager, &forced, out_idx);
    assert_eq!(forced.stats.precond_factorizations, forced.stats.newton_iterations);
    assert_eq!(forced.stats.precond_factorizations, eager.stats.precond_factorizations);
}

/// With telemetry recording, the forced-degradation run must surface a
/// `precond_degraded` health event from the HB Newton loop.
#[test]
fn forced_degradation_emits_health_event() {
    let (dae, grid, _) = symmetric_clipper();
    rfsim_telemetry::set_mode(rfsim_telemetry::Mode::Report);
    solve_with(&dae, &grid, PrecondRefresh::Adaptive { growth: 0.0 });
    let snap = rfsim_telemetry::snapshot();
    rfsim_telemetry::set_mode(rfsim_telemetry::Mode::Off);
    assert!(
        snap.health.iter().any(|e| e.monitor == "precond_degraded" && e.solver == "hb.newton"),
        "no precond_degraded health event recorded: {:?}",
        snap.health
    );
}
