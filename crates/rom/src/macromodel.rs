//! Reduced-order models as circuit elements.
//!
//! The paper's §5 closes the loop: the reduced matrices "can be used …
//! to formulate a small system of linear differential equations which
//! model its time-domain behavior, and which can be solved **in
//! conjunction with the entire RF circuit**." [`RomImpedance`] does
//! exactly that — a two-terminal element whose branch relation is
//! `v = Z(s)·i` with `Z` given by a reduced descriptor model, stamped into
//! MNA like any other device and therefore usable by DC, AC, transient,
//! harmonic balance and the MPDE engines alike.

use crate::prima::PrimaModel;
use crate::statespace::ReducedModel;
use rfsim_circuit::dae::{LoadCtx, Var};
use rfsim_circuit::netlist::{Device, NodeId};
use rfsim_numerics::dense::Mat;

/// A two-terminal impedance macromodel `v(a) − v(b) = Z(s)·i`, realized as
/// the reduced descriptor system
/// `G_r·z + C_r·ż = b_r·i`, `v = l_rᵀ·z`.
///
/// Branch unknowns: branch 0 carries the port current `i` (flowing
/// `a → b`); branches `1..=q` carry the internal reduced states `z`.
#[derive(Debug, Clone)]
pub struct RomImpedance {
    name: String,
    a: NodeId,
    b: NodeId,
    g_r: Mat<f64>,
    c_r: Mat<f64>,
    b_r: Vec<f64>,
    l_r: Vec<f64>,
}

impl RomImpedance {
    /// Wraps a PRIMA (congruence) model — the passive-by-construction
    /// choice for macromodels that must not destabilize the host circuit.
    pub fn from_prima(name: &str, a: NodeId, b: NodeId, model: &PrimaModel) -> Self {
        RomImpedance {
            name: name.into(),
            a,
            b,
            g_r: model.g_r.clone(),
            c_r: model.c_r.clone(),
            b_r: model.b_r.clone(),
            l_r: model.l_r.clone(),
        }
    }

    /// Wraps a projection-form model (`H(σ) = l_rᵀ(I − σA_r)⁻¹r_r`, s0 = 0)
    /// by the equivalent descriptor `(I, −A_r)`.
    ///
    /// # Panics
    /// Panics if the model's expansion point is not 0 (shifted-expansion
    /// models do not map to a real time-domain descriptor directly).
    pub fn from_reduced(name: &str, a: NodeId, b: NodeId, model: &ReducedModel) -> Self {
        assert!(model.s0 == 0.0, "RomImpedance requires an s0 = 0 expansion (got {})", model.s0);
        let q = model.order();
        let mut c_r = model.a_r.clone();
        c_r.scale_mut(-1.0);
        RomImpedance {
            name: name.into(),
            a,
            b,
            g_r: Mat::identity(q),
            c_r,
            b_r: model.r_r.clone(),
            l_r: model.l_r.clone(),
        }
    }

    /// Reduced order `q`.
    pub fn order(&self) -> usize {
        self.g_r.rows()
    }
}

impl Device for RomImpedance {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1 + self.order()
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let q = self.order();
        let i_port = ctx.branch_current(0);
        // KCL: the port current flows a → b.
        ctx.add_f(Var::Node(self.a), i_port);
        ctx.add_f(Var::Node(self.b), -i_port);
        ctx.add_g(Var::Node(self.a), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.b), Var::Branch(0), -1.0);
        // Port equation: v_a − v_b − l_rᵀ·z = 0.
        let mut v_model = 0.0;
        for k in 0..q {
            v_model += self.l_r[k] * ctx.branch_current(1 + k);
        }
        ctx.add_f(Var::Branch(0), ctx.v(self.a) - ctx.v(self.b) - v_model);
        ctx.add_g(Var::Branch(0), Var::Node(self.a), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.b), -1.0);
        for k in 0..q {
            ctx.add_g(Var::Branch(0), Var::Branch(1 + k), -self.l_r[k]);
        }
        // State equations: (G_r·z)_k − b_r[k]·i + d/dt (C_r·z)_k = 0.
        for k in 0..q {
            let mut f_acc = -self.b_r[k] * i_port;
            let mut q_acc = 0.0;
            for j in 0..q {
                let zj = ctx.branch_current(1 + j);
                f_acc += self.g_r[(k, j)] * zj;
                q_acc += self.c_r[(k, j)] * zj;
                ctx.add_g(Var::Branch(1 + k), Var::Branch(1 + j), self.g_r[(k, j)]);
                ctx.add_c(Var::Branch(1 + k), Var::Branch(1 + j), self.c_r[(k, j)]);
            }
            ctx.add_f(Var::Branch(1 + k), f_acc);
            ctx.add_q(Var::Branch(1 + k), q_acc);
            ctx.add_g(Var::Branch(1 + k), Var::Branch(0), -self.b_r[k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prima::prima_rom;
    use crate::pvl::pvl_rom;
    use crate::statespace::{rc_line, TransferFunction};
    use rfsim_circuit::ac::ac_sweep;
    use rfsim_circuit::dae::Dae as _;
    use rfsim_circuit::prelude::*;
    use rfsim_circuit::Circuit;
    use rfsim_numerics::Complex;

    /// Driving-point impedance system of an RC line.
    fn dp_line(n: usize) -> crate::statespace::DescriptorSystem {
        let mut sys = rc_line(n, 100.0, 1e-12);
        sys.l = sys.b.clone();
        sys
    }

    #[test]
    fn prima_macromodel_matches_transfer_in_ac() {
        let sys = dp_line(40);
        let model = prima_rom(&sys, 0.0, 8).unwrap();
        // Circuit: unit AC current into the macromodel.
        let mut ckt = Circuit::new();
        let p = ckt.node("p");
        ckt.add(RomImpedance::from_prima("Z1", p, Circuit::GROUND, &model));
        ckt.add(ISource::dc("I1", Circuit::GROUND, p, 0.0));
        let dae = ckt.into_dae().unwrap();
        let mut b_ac = vec![0.0; dae.dim()];
        b_ac[dae.node_index(p).unwrap()] = 1.0;
        let freqs = [1e5, 1e7, 1e9];
        let res = ac_sweep(&dae, &vec![0.0; dae.dim()], &b_ac, &freqs).unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let z_circuit = res.voltage(k, p);
            let z_model = model.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
            assert!(
                (z_circuit - z_model).abs() < 1e-9 * z_model.abs(),
                "f = {f:.1e}: circuit {z_circuit} vs model {z_model}"
            );
        }
    }

    #[test]
    fn pvl_macromodel_matches_in_ac() {
        let sys = dp_line(30);
        let model = pvl_rom(&sys, 0.0, 6).unwrap();
        let mut ckt = Circuit::new();
        let p = ckt.node("p");
        ckt.add(RomImpedance::from_reduced("Z1", p, Circuit::GROUND, &model));
        ckt.add(ISource::dc("I1", Circuit::GROUND, p, 0.0));
        let dae = ckt.into_dae().unwrap();
        let mut b_ac = vec![0.0; dae.dim()];
        b_ac[dae.node_index(p).unwrap()] = 1.0;
        let f = 3e6;
        let res = ac_sweep(&dae, &vec![0.0; dae.dim()], &b_ac, &[f]).unwrap();
        let z_circuit = res.voltage(0, p);
        let z_model = model.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
        assert!((z_circuit - z_model).abs() < 1e-9 * z_model.abs());
    }

    #[test]
    fn macromodel_transient_step_response() {
        // DC step through a resistor into the macromodel: settles to the
        // model's DC impedance voltage divider; no instability (PRIMA is
        // passive).
        let sys = dp_line(30);
        let model = prima_rom(&sys, 0.0, 6).unwrap();
        let z0 = model.eval(Complex::ZERO).re;
        let rs = 200.0;
        let mut ckt = Circuit::new();
        let s = ckt.node("s");
        let p = ckt.node("p");
        ckt.add(VSource::dc("V1", s, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("RS", s, p, rs));
        ckt.add(RomImpedance::from_prima("Z1", p, Circuit::GROUND, &model));
        let dae = ckt.into_dae().unwrap();
        let res =
            transient(&dae, 0.0, 5e-6, &TranOptions { dt: 5e-9, ..Default::default() }).unwrap();
        let pi = dae.node_index(p).unwrap();
        let v_end = res.states.last().unwrap()[pi];
        let expect = z0 / (z0 + rs);
        assert!((v_end - expect).abs() < 1e-3, "v_end {v_end} vs divider {expect}");
        // Bounded throughout (passivity in action).
        for st in &res.states {
            assert!(st[pi].abs() < 1.5);
        }
    }

    #[test]
    fn macromodel_usable_by_harmonic_balance() {
        // The same element inside an HB run: drive with a sine through a
        // resistor, fundamental amplitude matches the AC divider.
        let sys = dp_line(25);
        let model = prima_rom(&sys, 0.0, 6).unwrap();
        let f0 = 1e6;
        let rs = 150.0;
        let mut ckt = Circuit::new();
        let s = ckt.node("s");
        let p = ckt.node("p");
        ckt.add(VSource::sine("V1", s, Circuit::GROUND, 0.0, 1.0, f0));
        ckt.add(Resistor::new("RS", s, p, rs));
        ckt.add(RomImpedance::from_prima("Z1", p, Circuit::GROUND, &model));
        let dae = ckt.into_dae().unwrap();
        let grid = rfsim_steady_grid(f0);
        let sol = rfsim_steady::solve_hb(&dae, &grid, &rfsim_steady::HbOptions::default()).unwrap();
        let pi = dae.node_index(p).unwrap();
        let z = model.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f0));
        let expect = (z / (z + Complex::from_re(rs))).abs();
        let got = sol.amplitude(pi, &[1]);
        assert!((got - expect).abs() < 1e-6, "hb {got} vs divider {expect}");
    }

    fn rfsim_steady_grid(f0: f64) -> rfsim_steady::SpectralGrid {
        rfsim_steady::SpectralGrid::single_tone(f0, 4).unwrap()
    }
}
