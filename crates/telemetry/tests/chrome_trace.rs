//! Chrome trace-event exporter integration tests: the flushed file must
//! be a valid Trace Event Format JSON array with complete ("X") events,
//! non-decreasing timestamps, and a stable per-thread `tid` so worker
//! threads render as distinct tracks.

use rfsim_telemetry as telemetry;
use std::sync::Mutex;
use std::time::Duration;

static SERIAL: Mutex<()> = Mutex::new(());

fn with_chrome_mode<T>(path: &std::path::Path, f: impl FnOnce() -> T) -> T {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Chrome {
        path: Some(path.to_string_lossy().into_owned()),
    });
    telemetry::reset();
    let out = f();
    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();
    out
}

/// Splits a flushed trace into metadata ("M") and complete ("X") events.
fn load_events(path: &std::path::Path) -> (Vec<telemetry::Json>, Vec<telemetry::Json>) {
    let text = std::fs::read_to_string(path).expect("trace file written");
    let parsed = telemetry::Json::parse(&text).expect("valid JSON");
    let arr = parsed.as_arr().expect("top-level JSON array").to_vec();
    let ph = |e: &telemetry::Json| e.get("ph").and_then(|p| p.as_str()).unwrap_or("").to_string();
    let meta = arr.iter().filter(|e| ph(e) == "M").cloned().collect();
    let spans = arr.iter().filter(|e| ph(e) == "X").cloned().collect();
    (meta, spans)
}

#[test]
fn trace_file_is_valid_and_monotonic() {
    let path = std::env::temp_dir().join("rfsim-chrome-trace-basic.json");
    let _ = std::fs::remove_file(&path);
    with_chrome_mode(&path, || {
        {
            let _outer = telemetry::span("chrome.outer");
            std::thread::sleep(Duration::from_millis(2));
            let _inner = telemetry::span("chrome.inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            let _again = telemetry::span("chrome.outer");
            std::thread::sleep(Duration::from_millis(1));
        }
        let written = telemetry::flush(None).expect("flush");
        assert_eq!(written.as_deref(), Some(path.as_path()));

        let (_meta, spans) = load_events(&path);
        assert_eq!(spans.len(), 3, "one X event per completed span");
        let mut last_ts = f64::NEG_INFINITY;
        for ev in &spans {
            // Every complete event carries the full field set.
            for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "missing {key} in {ev:?}");
            }
            let ts = ev.get("ts").unwrap().as_f64().expect("numeric ts");
            let dur = ev.get("dur").unwrap().as_f64().expect("numeric dur");
            assert!(ts >= 0.0 && ts.is_finite());
            assert!(dur > 0.0, "slept spans must have positive duration");
            assert!(ts >= last_ts, "events must be sorted by ts");
            last_ts = ts;
        }
        let names: Vec<_> =
            spans.iter().map(|e| e.get("name").unwrap().as_str().unwrap().to_string()).collect();
        assert_eq!(names.iter().filter(|n| *n == "chrome.outer").count(), 2);
        assert_eq!(names.iter().filter(|n| *n == "chrome.inner").count(), 1);
        // Nesting: the inner span starts after its enclosing outer span.
        let outer_ts = spans[0].get("ts").unwrap().as_f64().unwrap();
        let inner =
            spans.iter().find(|e| e.get("name").unwrap().as_str() == Some("chrome.inner")).unwrap();
        assert!(inner.get("ts").unwrap().as_f64().unwrap() >= outer_ts);
    });
    let _ = std::fs::remove_file(&path);
}

#[test]
fn per_thread_tid_is_stable_and_distinct() {
    const WORKERS: usize = 4;
    const SPANS_PER_WORKER: usize = 5;
    let path = std::env::temp_dir().join("rfsim-chrome-trace-threads.json");
    let _ = std::fs::remove_file(&path);
    with_chrome_mode(&path, || {
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                std::thread::Builder::new()
                    .name(format!("rfsim-test-worker-{w}"))
                    .spawn_scoped(scope, move || {
                        for _ in 0..SPANS_PER_WORKER {
                            let _s = telemetry::span_dyn(format!("worker.{w}"));
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    })
                    .expect("spawn worker");
            }
        });
        telemetry::flush(None).expect("flush");

        let (meta, spans) = load_events(&path);
        assert_eq!(spans.len(), WORKERS * SPANS_PER_WORKER);
        // Each worker's spans all share one tid; tids differ across workers.
        let mut tid_of_worker = std::collections::BTreeMap::new();
        for ev in &spans {
            let name = ev.get("name").unwrap().as_str().unwrap().to_string();
            let tid = ev.get("tid").unwrap().as_f64().unwrap() as u64;
            assert_eq!(
                *tid_of_worker.entry(name.clone()).or_insert(tid),
                tid,
                "tid flapped for {name}"
            );
        }
        let distinct: std::collections::BTreeSet<_> = tid_of_worker.values().collect();
        assert_eq!(distinct.len(), WORKERS, "each thread gets its own track: {tid_of_worker:?}");
        // Thread-name metadata events cover every tid used by a span.
        let meta_tids: std::collections::BTreeSet<u64> =
            meta.iter().map(|e| e.get("tid").unwrap().as_f64().unwrap() as u64).collect();
        for tid in tid_of_worker.values() {
            assert!(meta_tids.contains(tid), "no thread_name metadata for tid {tid}");
        }
        for e in &meta {
            assert_eq!(e.get("name").unwrap().as_str(), Some("thread_name"));
            assert!(e.get("args").and_then(|a| a.get("name")).is_some());
        }
    });
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reset_clears_buffered_events() {
    let path = std::env::temp_dir().join("rfsim-chrome-trace-reset.json");
    let _ = std::fs::remove_file(&path);
    with_chrome_mode(&path, || {
        {
            let _s = telemetry::span("chrome.before-reset");
        }
        telemetry::reset();
        {
            let _s = telemetry::span("chrome.after-reset");
        }
        telemetry::flush(None).expect("flush");
        let (_meta, spans) = load_events(&path);
        let names: Vec<_> =
            spans.iter().map(|e| e.get("name").unwrap().as_str().unwrap().to_string()).collect();
        assert_eq!(names, vec!["chrome.after-reset"]);
    });
    let _ = std::fs::remove_file(&path);
}
