//! Resident warm-state cache with LRU eviction under a byte budget
//! (DESIGN.md §13.3).
//!
//! Entries are *checked out* (removed) by the worker running a job and
//! *checked in* again afterwards — ownership moves to exactly one job
//! at a time, so the solver state inside needs no locking of its own.
//! Two concurrent jobs on the same key simply mean the second runs
//! cold and its check-in supersedes the first; correctness never
//! depends on a hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Implemented by cached values so eviction can enforce the budget.
pub trait CacheWeight {
    /// Approximate resident bytes this entry pins.
    fn weight_bytes(&self) -> usize;
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Checkouts that found a resident entry.
    pub hits: u64,
    /// Checkouts that found nothing (job runs cold).
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Bytes currently resident (checked-out entries excluded).
    pub resident_bytes: usize,
}

struct Slot<V> {
    value: V,
    bytes: usize,
    /// Monotone recency stamp; smallest = least recently used.
    seq: u64,
}

/// A keyed warm-state cache. `counters` are the telemetry counter
/// names bumped on hit / miss / eviction, in that order; `gauges` are
/// the resident-bytes / resident-entries gauge names kept live on
/// every checkout, check-in, and eviction (the telemetry sinks want
/// `'static` names).
pub struct WarmCache<V> {
    counters: [&'static str; 3],
    gauges: [&'static str; 2],
    budget_bytes: usize,
    map: Mutex<HashMap<String, Slot<V>>>,
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V: CacheWeight> WarmCache<V> {
    /// An empty cache evicting past `budget_bytes`.
    pub fn new(
        counters: [&'static str; 3],
        gauges: [&'static str; 2],
        budget_bytes: usize,
    ) -> Self {
        WarmCache {
            counters,
            gauges,
            budget_bytes,
            map: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Publishes the resident bytes/entries gauges from the map state.
    fn publish_gauges(&self, map: &HashMap<String, Slot<V>>) {
        let bytes: usize = map.values().map(|s| s.bytes).sum();
        rfsim_telemetry::gauge_set(self.gauges[0], bytes as f64);
        rfsim_telemetry::gauge_set(self.gauges[1], map.len() as f64);
    }

    /// Removes and returns the entry for `key`, counting a hit or miss.
    pub fn checkout(&self, key: &str) -> Option<V> {
        let taken = {
            let mut map = lock(&self.map);
            let taken = map.remove(key).map(|s| s.value);
            if taken.is_some() {
                self.publish_gauges(&map);
            }
            taken
        };
        if taken.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            rfsim_telemetry::counter_add(self.counters[0], 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            rfsim_telemetry::counter_add(self.counters[1], 1);
        }
        taken
    }

    /// Returns an entry after a job, making it the most recently used,
    /// then evicts least-recently-used entries until the budget holds.
    /// The entry just checked in is never evicted — a single oversized
    /// value still serves its own repeats.
    pub fn checkin(&self, key: String, value: V) {
        let bytes = value.weight_bytes();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut map = lock(&self.map);
        map.insert(key.clone(), Slot { value, bytes, seq });
        let mut total: usize = map.values().map(|s| s.bytes).sum();
        while total > self.budget_bytes {
            let Some(victim) = map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, s)| s.seq)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(s) = map.remove(&victim) {
                total -= s.bytes;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
            rfsim_telemetry::counter_add(self.counters[2], 1);
        }
        self.publish_gauges(&map);
    }

    /// Folds a per-entry measure over the resident entries (an entry
    /// checked out by a running job is not visible): `(contributing
    /// entries, summed value)`, where `None` means "does not
    /// contribute". Lets the engine report residency of state nested
    /// inside entries — e.g. fitted surrogates — without the cache
    /// knowing their shape.
    pub fn aggregate(&self, f: impl Fn(&V) -> Option<usize>) -> (usize, usize) {
        let map = lock(&self.map);
        map.values().filter_map(|s| f(&s.value)).fold((0, 0), |(n, total), v| (n + 1, total + v))
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let map = lock(&self.map);
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: map.len(),
            resident_bytes: map.values().map(|s| s.bytes).sum(),
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Blob(usize);
    impl CacheWeight for Blob {
        fn weight_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn checkout_counts_hits_and_misses() {
        let c = WarmCache::new(
            ["serve.cache.t0.hits", "serve.cache.t0.misses", "serve.cache.t0.evictions"],
            ["serve.cache.t0.bytes", "serve.cache.t0.entries"],
            1 << 20,
        );
        assert!(c.checkout("a").is_none());
        c.checkin("a".into(), Blob(100));
        assert!(c.checkout("a").is_some());
        // Checkout removed it: the next one misses again.
        assert!(c.checkout("a").is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 0));
    }

    #[test]
    fn evicts_least_recently_used_under_budget() {
        let c = WarmCache::new(
            ["serve.cache.t1.hits", "serve.cache.t1.misses", "serve.cache.t1.evictions"],
            ["serve.cache.t1.bytes", "serve.cache.t1.entries"],
            250,
        );
        c.checkin("a".into(), Blob(100));
        c.checkin("b".into(), Blob(100));
        // Touch `a` so `b` becomes the LRU entry.
        let a = c.checkout("a").unwrap();
        c.checkin("a".into(), a);
        c.checkin("c".into(), Blob(100));
        let map_has = |k: &str| c.checkout(k).is_some();
        assert!(!map_has("b"), "LRU entry should have been evicted");
        assert!(map_has("a"));
        assert!(map_has("c"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn publishes_resident_gauges() {
        rfsim_telemetry::set_mode(rfsim_telemetry::Mode::Report);
        let c = WarmCache::new(
            ["serve.cache.t3.hits", "serve.cache.t3.misses", "serve.cache.t3.evictions"],
            ["serve.cache.t3.bytes", "serve.cache.t3.entries"],
            1 << 20,
        );
        c.checkin("a".into(), Blob(100));
        c.checkin("b".into(), Blob(50));
        let g = rfsim_telemetry::snapshot().gauges;
        assert_eq!(g["serve.cache.t3.bytes"], 150.0);
        assert_eq!(g["serve.cache.t3.entries"], 2.0);
        let _ = c.checkout("a");
        let g = rfsim_telemetry::snapshot().gauges;
        assert_eq!(g["serve.cache.t3.bytes"], 50.0);
        assert_eq!(g["serve.cache.t3.entries"], 1.0);
    }

    #[test]
    fn oversized_checkin_survives_alone() {
        let c = WarmCache::new(
            ["serve.cache.t2.hits", "serve.cache.t2.misses", "serve.cache.t2.evictions"],
            ["serve.cache.t2.bytes", "serve.cache.t2.entries"],
            10,
        );
        c.checkin("big".into(), Blob(1000));
        assert!(c.checkout("big").is_some());
    }
}
