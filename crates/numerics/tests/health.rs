//! Health-monitor integration: a deliberately stagnating GMRES solve
//! (identity preconditioner on a system whose Krylov spaces carry no
//! information until the full dimension) must emit a structured
//! `stagnation` event alongside its `NoConvergence` error.

use rfsim_numerics::dense::Mat;
use rfsim_numerics::krylov::{gmres, IdentityPrecond, KrylovOptions};
use rfsim_numerics::Error;
use rfsim_telemetry as telemetry;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// The classic GMRES worst case: the cyclic shift permutation. With
/// `b = e₁`, the residual stays exactly 1 until the Krylov space
/// reaches the full dimension — and a restart below `n` keeps it there
/// forever, the canonical "identity preconditioner on a hostile
/// system" stall.
fn shift_system(n: usize) -> (Mat<f64>, Vec<f64>) {
    let a = Mat::from_fn(n, n, |i, j| if (j + 1) % n == i { 1.0 } else { 0.0 });
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    (a, b)
}

#[test]
fn stagnating_gmres_emits_stagnation_event() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Report);
    telemetry::reset();

    let (a, b) = shift_system(64);
    let opts = KrylovOptions { tol: 1e-10, restart: 8, max_iters: 60 };
    let err = gmres(&a, &b, None, &IdentityPrecond, &opts).unwrap_err();
    assert!(
        matches!(err, Error::NoConvergence { .. }),
        "stalled solve must fail cleanly, got {err:?}"
    );

    let snap = telemetry::snapshot();
    let stagnation: Vec<_> = snap
        .health
        .iter()
        .filter(|h| h.monitor == "stagnation" && h.solver == "krylov.gmres")
        .collect();
    assert_eq!(stagnation.len(), 1, "expected one stagnation event, got {:?}", snap.health);
    // The first iteration establishes the running best (the residual is
    // pinned at 1), so the default 25-iteration window elapses at
    // iteration 26 — well before the solver gives up at max_iters.
    assert_eq!(stagnation[0].iteration, 26);
    assert!(stagnation[0].value.is_finite());

    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();
}

#[test]
fn converging_gmres_emits_no_health_events() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Report);
    telemetry::reset();

    let n = 40;
    let a = Mat::from_fn(n, n, |i, j| {
        if i == j {
            4.0
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    });
    let xref: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
    let b = a.matvec(&xref);
    gmres(&a, &b, None, &IdentityPrecond, &KrylovOptions::default()).expect("well-posed solve");

    let snap = telemetry::snapshot();
    assert!(snap.health.is_empty(), "healthy solve flagged: {:?}", snap.health);

    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();
}
