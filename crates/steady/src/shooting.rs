//! Univariate shooting: Newton iteration on the period map
//! `φ_T(x₀) − x₀ = 0` with monodromy (sensitivity) propagation.
//!
//! This is the classic time-domain steady-state method the paper uses as
//! the baseline against MMFT in Fig. 5 ("univariate shooting … took almost
//! 300 times as long"), and the monodromy matrix it produces is the input
//! to Floquet/phase-noise analysis in `rfsim-phasenoise`.

use crate::{Error, Result};
use rfsim_circuit::dae::{Dae, TwoTime};
use rfsim_circuit::dc::{dc_operating_point, DcOptions};
use rfsim_numerics::dense::Mat;
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::{norm_inf, Complex, ResidualTail};
use rfsim_telemetry as telemetry;

/// Options for [`shooting`].
#[derive(Debug, Clone)]
pub struct ShootingOptions {
    /// Time steps per period (the paper's Fig. 5 run used 50).
    pub steps_per_period: usize,
    /// Use trapezoidal (2nd-order) stepping instead of backward Euler.
    pub trapezoidal: bool,
    /// Newton tolerance on `‖φ(x₀) − x₀‖∞`.
    pub tol: f64,
    /// Maximum outer Newton iterations.
    pub max_newton: usize,
    /// Inner per-step Newton options.
    pub inner: DcOptions,
}

impl Default for ShootingOptions {
    fn default() -> Self {
        ShootingOptions {
            steps_per_period: 50,
            trapezoidal: true,
            tol: 1e-9,
            max_newton: 30,
            inner: DcOptions::default(),
        }
    }
}

/// A converged periodic steady state from shooting.
#[derive(Debug, Clone)]
pub struct ShootingResult {
    /// Period (s).
    pub period: f64,
    /// Time points across one period (length `steps + 1`, endpoints both
    /// present; `states.last() ≈ states[0]`).
    pub times: Vec<f64>,
    /// State at each time point.
    pub states: Vec<Vec<f64>>,
    /// Monodromy matrix `∂φ_T/∂x₀` at the solution.
    pub monodromy: Mat<f64>,
    /// Outer Newton iterations used.
    pub newton_iterations: usize,
    /// Total linear solves performed (cost proxy).
    pub linear_solves: usize,
}

impl ShootingResult {
    /// Waveform of unknown `i` over the period (without the repeated
    /// endpoint).
    pub fn waveform(&self, i: usize) -> Vec<f64> {
        self.states[..self.states.len() - 1].iter().map(|s| s[i]).collect()
    }

    /// Complex Fourier coefficient of unknown `i` at harmonic `k` of the
    /// period.
    pub fn coefficient(&self, i: usize, k: i32) -> Complex {
        let w = self.waveform(i);
        let ns = w.len();
        let spec = rfsim_numerics::fft::dft_real(&w);
        let bin = if k >= 0 { k as usize } else { (ns as i32 + k) as usize };
        spec[bin].scale(1.0 / ns as f64)
    }

    /// Peak amplitude at harmonic `k` (`2|c_k|`, or `|c₀|` for DC).
    pub fn amplitude(&self, i: usize, k: i32) -> f64 {
        let c = self.coefficient(i, k).abs();
        if k == 0 {
            c
        } else {
            2.0 * c
        }
    }
}

/// One implicit step with sensitivity propagation. Returns the new state
/// and updates `m` (the accumulated monodromy) in place.
#[allow(clippy::too_many_arguments)]
fn step_with_sensitivity(
    dae: &dyn Dae,
    x_prev: &[f64],
    m: &mut Mat<f64>,
    t_new: f64,
    h: f64,
    trapezoidal: bool,
    inner: &DcOptions,
    solves: &mut usize,
) -> Result<Vec<f64>> {
    let n = dae.dim();
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut gt = Triplets::new(n, n);
    let mut ct = Triplets::new(n, n);
    // Previous-state quantities.
    dae.eval(x_prev, &mut f, &mut q, &mut gt, &mut ct);
    let q_prev = q.clone();
    let f_prev = f.clone();
    let g_prev = gt.to_csr();
    let c_prev = ct.to_csr();
    let mut b_prev = vec![0.0; n];
    dae.eval_b(TwoTime::uni(t_new - h), &mut b_prev);

    let mut b = vec![0.0; n];
    dae.eval_b(TwoTime::uni(t_new), &mut b);

    // Inner Newton for the implicit step.
    let a0 = if trapezoidal { 2.0 / h } else { 1.0 / h };
    let mut x = x_prev.to_vec();
    let mut converged = false;
    let mut jac = None;
    for _ in 0..inner.max_iters {
        dae.eval(&x, &mut f, &mut q, &mut gt, &mut ct);
        let r: Vec<f64> = (0..n)
            .map(|i| {
                if trapezoidal {
                    // 2(q − q_prev)/h − q̇_prev + f − b, with q̇_prev from
                    // the DAE: q̇_prev = b_prev − f_prev.
                    a0 * (q[i] - q_prev[i]) - (b_prev[i] - f_prev[i]) + f[i] - b[i]
                } else {
                    a0 * (q[i] - q_prev[i]) + f[i] - b[i]
                }
            })
            .collect();
        if norm_inf(&r) < inner.abstol.max(1e-13) {
            converged = true;
            // Refresh Jacobian at solution for the sensitivity update.
            let j = ct.to_csr().add_scaled(a0, &gt.to_csr(), 1.0);
            jac = Some(j);
            break;
        }
        let j = ct.to_csr().add_scaled(a0, &gt.to_csr(), 1.0);
        let dx = j.solve(&r).map_err(Error::Numerics)?;
        *solves += 1;
        for i in 0..n {
            x[i] -= dx[i];
        }
        jac = Some(j);
    }
    if !converged {
        // Accept if residual is merely small rather than tiny.
        dae.eval(&x, &mut f, &mut q, &mut gt, &mut ct);
        let r: Vec<f64> = (0..n).map(|i| a0 * (q[i] - q_prev[i]) + f[i] - b[i]).collect();
        if !norm_inf(&r).is_finite() || norm_inf(&r) > 1e-4 {
            return Err(Error::NoConvergence {
                iterations: inner.max_iters,
                residual: norm_inf(&r),
                residual_tail: Vec::new(),
            });
        }
    }
    // Sensitivity: (a0·C₊ + G₊)·M₊ = RHS·M, with
    //   BE:   RHS = a0·C_prev
    //   Trap: RHS = a0·C_prev − G_prev  (∂q̇_prev/∂x_prev = −G_prev … via
    //          q̇_prev = b_prev − f_prev).
    let j = jac.expect("jacobian available");
    let lu = j.lu().map_err(Error::Numerics)?;
    *solves += 1;
    let mut m_new = Mat::zeros(n, n);
    for col in 0..n {
        let mcol = m.col(col);
        let mut rhs = c_prev.matvec(&mcol);
        for v in &mut rhs {
            *v *= a0;
        }
        if trapezoidal {
            let gm = g_prev.matvec(&mcol);
            for i in 0..n {
                rhs[i] -= gm[i];
            }
        }
        let sol = lu.solve(&rhs).map_err(Error::Numerics)?;
        m_new.set_col(col, &sol);
    }
    *m = m_new;
    Ok(x)
}

/// Trajectory states, times, and monodromy from one period of integration.
type Flight = (Vec<Vec<f64>>, Vec<f64>, Mat<f64>);

/// Integrates one period from `x0`, returning the trajectory and the
/// monodromy matrix.
fn fly(
    dae: &dyn Dae,
    x0: &[f64],
    period: f64,
    opts: &ShootingOptions,
    solves: &mut usize,
) -> Result<Flight> {
    let n = dae.dim();
    let m_steps = opts.steps_per_period;
    let h = period / m_steps as f64;
    let mut monodromy: Mat<f64> = Mat::identity(n);
    let mut states = Vec::with_capacity(m_steps + 1);
    let mut times = Vec::with_capacity(m_steps + 1);
    states.push(x0.to_vec());
    times.push(0.0);
    let mut x = x0.to_vec();
    for k in 0..m_steps {
        let t_new = (k + 1) as f64 * h;
        // The first step always uses backward Euler: trapezoidal stepping
        // preserves any algebraic-constraint violation of x₀ exactly, which
        // would give the monodromy a unit eigenvalue along algebraic
        // directions and make the shooting Jacobian (M − I) singular. One
        // BE step projects onto the constraint manifold.
        let trap = opts.trapezoidal && k > 0;
        x = step_with_sensitivity(dae, &x, &mut monodromy, t_new, h, trap, &opts.inner, solves)?;
        states.push(x.clone());
        times.push(t_new);
    }
    Ok((states, times, monodromy))
}

/// Finds the forced periodic steady state with the given period.
///
/// # Errors
/// [`Error::NoConvergence`] if the outer Newton iteration stalls.
pub fn shooting(dae: &dyn Dae, period: f64, opts: &ShootingOptions) -> Result<ShootingResult> {
    let _span = telemetry::span("shooting.solve");
    let mut trace = telemetry::TraceBuf::new("shooting.newton");
    if trace.is_active() {
        trace.set_label(format!("period {period:.3e}s, {} steps", opts.steps_per_period));
    }
    let mut tail = ResidualTail::new();
    let mut monitor = telemetry::ResidualMonitor::newton("shooting.newton");
    let n = dae.dim();
    let op = dc_operating_point(dae, &opts.inner)?;
    let mut x0 = op.x;
    let mut solves = 0usize;
    let mut last_res = f64::INFINITY;
    for it in 0..opts.max_newton {
        let (states, times, monodromy) = fly(dae, &x0, period, opts, &mut solves)?;
        let x_end = states.last().expect("nonempty trajectory");
        let r: Vec<f64> = (0..n).map(|i| x_end[i] - x0[i]).collect();
        let res = norm_inf(&r);
        last_res = res;
        trace.push(res);
        monitor.observe(res);
        tail.push(res);
        if !res.is_finite() {
            // Same tripwire as HB: a poisoned trajectory cannot recover.
            trace.commit(false);
            telemetry::counter_add("shooting.newton.iterations", it as u64);
            telemetry::counter_add("shooting.linear_solves", solves as u64);
            return Err(Error::NoConvergence {
                iterations: it,
                residual: res,
                residual_tail: tail.to_vec(),
            });
        }
        if res < opts.tol {
            trace.commit(true);
            telemetry::counter_add("shooting.newton.iterations", it as u64);
            telemetry::counter_add("shooting.linear_solves", solves as u64);
            return Ok(ShootingResult {
                period,
                times,
                states,
                monodromy,
                newton_iterations: it,
                linear_solves: solves,
            });
        }
        // Newton: (M − I)·dx₀ = −r  ⇒  x₀ ← x₀ − (M − I)⁻¹ r.
        let id: Mat<f64> = Mat::identity(n);
        let j = &monodromy - &id;
        let dx = j.solve(&r).map_err(Error::Numerics)?;
        solves += 1;
        for i in 0..n {
            x0[i] -= dx[i];
        }
    }
    trace.commit(false);
    telemetry::counter_add("shooting.newton.iterations", opts.max_newton as u64);
    telemetry::counter_add("shooting.linear_solves", solves as u64);
    Err(Error::NoConvergence {
        iterations: opts.max_newton,
        residual: last_res,
        residual_tail: tail.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::prelude::*;
    use rfsim_circuit::Circuit;

    #[test]
    fn rc_sine_pss_matches_theory() {
        let f0 = 1e6;
        let (r, c) = (1e3, 1e-9);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
        ckt.add(Resistor::new("R1", a, out, r));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, c));
        let dae = ckt.into_dae().unwrap();
        let opts = ShootingOptions { steps_per_period: 200, ..Default::default() };
        let res = shooting(&dae, 1.0 / f0, &opts).unwrap();
        let oi = dae.node_index(out).unwrap();
        let gain = 1.0 / (1.0 + (2.0 * std::f64::consts::PI * f0 * r * c).powi(2)).sqrt();
        let amp = res.amplitude(oi, 1);
        assert!((amp - gain).abs() < 2e-3, "amp {amp} vs {gain}");
        // Converged in few outer iterations (linear circuit → 1 step).
        assert!(res.newton_iterations <= 2);
    }

    #[test]
    fn periodicity_of_solution() {
        let f0 = 2e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.2, 0.8, f0));
        ckt.add(Resistor::new("R1", a, out, 500.0));
        ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-13));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 2e-10));
        let dae = ckt.into_dae().unwrap();
        let res = shooting(&dae, 1.0 / f0, &ShootingOptions::default()).unwrap();
        let first = &res.states[0];
        let last = res.states.last().unwrap();
        for (a, b) in first.iter().zip(last) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn monodromy_of_stable_rc_contracts() {
        // RC relaxation: monodromy eigenvalue e^{−T/RC} < 1.
        let f0 = 1e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
        ckt.add(Resistor::new("R1", a, out, 1e3));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-9));
        let dae = ckt.into_dae().unwrap();
        let opts = ShootingOptions { steps_per_period: 400, ..Default::default() };
        let res = shooting(&dae, 1.0 / f0, &opts).unwrap();
        let eigs = rfsim_numerics::eig::eigenvalues(&res.monodromy).unwrap();
        // Largest nonzero multiplier ≈ exp(−T/RC) = exp(−1).
        let expect = (-1.0f64).exp();
        let found = eigs.iter().map(|z| z.abs()).filter(|&m| m > 1e-6).fold(0.0f64, f64::max);
        assert!((found - expect).abs() < 0.02, "found {found}, expect {expect}");
    }

    #[test]
    fn shooting_agrees_with_hb() {
        let f0 = 1e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 0.9, f0));
        ckt.add(Resistor::new("R1", a, out, 800.0));
        ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-12));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-10));
        let dae = ckt.into_dae().unwrap();
        let sh = shooting(
            &dae,
            1.0 / f0,
            &ShootingOptions { steps_per_period: 600, ..Default::default() },
        )
        .unwrap();
        let grid = crate::fourier::SpectralGrid::single_tone(f0, 12).unwrap();
        let hb = crate::hb::solve_hb(&dae, &grid, &crate::hb::HbOptions::default()).unwrap();
        let oi = dae.node_index(out).unwrap();
        for k in 0..4 {
            let a_sh = sh.amplitude(oi, k);
            let a_hb = hb.amplitude(oi, &[k]);
            assert!((a_sh - a_hb).abs() < 3e-3, "harmonic {k}: shooting {a_sh} vs hb {a_hb}");
        }
    }
}
