//! E5 — Fig 4: MMFT analysis of the double-balanced switching mixer.
//!
//! Paper parameters: RF 100 kHz / 100 mV sine ("mildly nonlinear
//! regime"), LO 900 MHz / 1 V square wave, 3 harmonics in the RF tone,
//! shooting/stepping along the LO axis. Output: the time-varying
//! harmonics X₁(t₂) (Fig 4a) and X₃(t₂) (Fig 4b); the 900.1 MHz mix is
//! ~60 mV and the 900.3 MHz mix ~1.1 mV — "the distortion introduced by
//! the mixer is about 35 dB below the desired signal".
//!
//! Pass `--ablate` for the slow-harmonic-count (K) ablation.

use rfsim::mpde::{solve_mmft, MmftOptions};
use rfsim_bench::{ablate, heading, switching_mixer, timed, MixerSpec};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e05");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(h: &mut Harness) -> Result<(), String> {
    let spec = MixerSpec::default(); // paper values: 100 kHz / 900 MHz
    println!("E5: MMFT switching mixer (Fig 4)");
    println!(
        "RF {:.0} kHz @ {:.0} mV sine, LO {:.0} MHz square @ 1 V",
        spec.f_rf / 1e3,
        spec.rf_amplitude * 1e3,
        spec.f_lo / 1e6
    );
    let (dae, out) = switching_mixer(&spec);
    let oi = dae.node_index(out).ok_or("mixer output node missing")?;
    let sol = h.sweep_point("mmft", &[("f_rf", spec.f_rf), ("f_lo", spec.f_lo)], |pm| {
        let opts = MmftOptions { slow_harmonics: 3, n2: 50, ..Default::default() };
        let (sol, t) = timed(|| solve_mmft(&dae, spec.f_rf, spec.f_lo, &opts));
        let sol = sol.map_err(|e| format!("mmft: {e}"))?;
        pm.metric("unknowns", sol.stats.unknowns as f64);
        pm.metric("newton_iterations", sol.stats.newton_iterations as f64);
        println!(
            "MMFT: {} unknowns (3 RF harmonics × 50 LO steps), {:.2} s, {} Newton iters",
            sol.stats.unknowns, t, sol.stats.newton_iterations
        );
        Ok::<_, String>(sol)
    })?;

    heading("Fig 4(a): first time-varying harmonic X1(t2) (|X1| samples)");
    let x1 = sol.harmonic_waveform(oi, 1);
    print_envelope(&x1)?;

    heading("Fig 4(b): third time-varying harmonic X3(t2)");
    let x3 = sol.harmonic_waveform(oi, 3);
    print_envelope(&x3)?;

    heading("mix components (paper: 60 mV @ 900.1 MHz, ~1.1 mV @ 900.3 MHz)");
    println!("{:>12} {:>14} {:>12}", "mix", "freq (MHz)", "amp (mV)");
    for (k, m) in [(1i32, 1i32), (3, 1), (1, 2), (3, 2)] {
        println!(
            "{:>12} {:>14.1} {:>12.3}",
            format!("{k}·f1+{m}·f2"),
            sol.mix_freq(k, m) / 1e6,
            sol.mix_amplitude(oi, k, m) * 1e3
        );
    }
    let main_mix = sol.mix_amplitude(oi, 1, 1);
    let hd3 = sol.mix_amplitude(oi, 3, 1);
    println!(
        "\ndesired 900.1 MHz: {:.1} mV; distortion ratio: {:.1} dB (paper: ~35 dB)",
        main_mix * 1e3,
        20.0 * (main_mix / hd3).log10()
    );

    if ablate() {
        heading("ablation: slow-harmonic count K vs HD3 accuracy");
        println!("{:>4} {:>12} {:>14} {:>10}", "K", "unknowns", "hd3 (mV)", "time (s)");
        for k in [1usize, 3, 5, 7] {
            let label = format!("K={k}");
            h.sweep_point(&label, &[("slow_harmonics", k as f64)], |pm| {
                let opts = MmftOptions { slow_harmonics: k, n2: 50, ..Default::default() };
                let (sol, t) = timed(|| solve_mmft(&dae, spec.f_rf, spec.f_lo, &opts));
                let sol = sol.map_err(|e| format!("mmft ablation K={k}: {e}"))?;
                let hd3 = if k >= 3 { sol.mix_amplitude(oi, 3, 1) * 1e3 } else { f64::NAN };
                pm.metric("unknowns", sol.stats.unknowns as f64);
                if hd3.is_finite() {
                    pm.metric("hd3_mv", hd3);
                }
                println!("{:>4} {:>12} {:>14.4} {:>10.2}", k, sol.stats.unknowns, hd3, t);
                Ok::<_, String>(())
            })?;
        }
        println!("K = 1 cannot represent the third RF harmonic at all; K = 3 (the");
        println!("paper's choice) already captures HD3; larger K only adds cost.");
    } else {
        println!("\n(pass --ablate for the slow-harmonic-count ablation)");
    }
    Ok(())
}

/// Prints a coarse amplitude profile of a complex envelope over `t₂`.
fn print_envelope(x: &[rfsim::numerics::Complex]) -> Result<(), String> {
    let n = x.len();
    let peak = x.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
    if !peak.is_finite() {
        return Err("non-finite envelope amplitude".into());
    }
    print!("|X|/peak over one LO period: ");
    for i in (0..n).step_by(n / 25) {
        let level = (x[i].abs() / peak.max(1e-300) * 9.0).round() as u32;
        print!("{}", char::from_digit(level.min(9), 10).expect("digit"));
    }
    println!("  (peak {:.3e} V)", peak);
    Ok(())
}
