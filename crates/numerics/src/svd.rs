//! Singular value decomposition by one-sided Jacobi rotations.
//!
//! The SVD is the workhorse of the IES³ extraction kernel (Section 4 of the
//! paper): interaction blocks between well-separated element groups are
//! recursively compressed into low-rank outer products whose rank is chosen
//! by singular-value truncation. One-sided Jacobi is simple, accurate for
//! small singular values, and entirely adequate for the block sizes involved.

use crate::dense::Mat;
use crate::{Error, Result};

/// Thin SVD `A = U·diag(σ)·Vᵀ` of a real matrix with `rows ≥ cols`
/// (the factorization routine transposes internally when needed).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m×r`).
    pub u: Mat<f64>,
    /// Singular values, non-increasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n×r`), stored as V (not Vᵀ).
    pub v: Mat<f64>,
}

impl Svd {
    /// Computes the thin SVD of `a` by the one-sided Jacobi method.
    ///
    /// # Errors
    /// Returns [`Error::InvalidArgument`] for an empty matrix and
    /// [`Error::NoConvergence`] if the sweep limit is exhausted (does not
    /// happen for well-scaled finite inputs).
    pub fn new(a: &Mat<f64>) -> Result<Self> {
        if a.rows() == 0 || a.cols() == 0 {
            return Err(Error::InvalidArgument("svd: empty matrix"));
        }
        if a.rows() >= a.cols() {
            Self::one_sided(a)
        } else {
            // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ.
            let t = Self::one_sided(&a.transpose())?;
            Ok(Svd { u: t.v, sigma: t.sigma, v: t.u })
        }
    }

    fn one_sided(a: &Mat<f64>) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        // Work on columns of W = A; rotate pairs of columns until mutually
        // orthogonal. Accumulate rotations in V.
        let mut w = a.clone();
        let mut v: Mat<f64> = Mat::identity(n);
        let tol = 1e-14;
        let max_sweeps = 60;
        let mut converged = false;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0f64;
            for p in 0..n {
                for q in p + 1..n {
                    // Gram entries for columns p, q.
                    let mut app = 0.0;
                    let mut aqq = 0.0;
                    let mut apq = 0.0;
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        app += wp * wp;
                        aqq += wq * wq;
                        apq += wp * wq;
                    }
                    let denom = (app * aqq).sqrt();
                    if denom <= 0.0 || apq.abs() <= tol * denom {
                        continue;
                    }
                    off = off.max(apq.abs() / denom);
                    // Jacobi rotation zeroing the (p,q) Gram entry.
                    let zeta = (aqq - app) / (2.0 * apq);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        w[(i, p)] = c * wp - s * wq;
                        w[(i, q)] = s * wp + c * wq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if off < tol {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(Error::NoConvergence {
                iterations: max_sweeps,
                residual: f64::NAN,
                residual_tail: Vec::new(),
            });
        }
        // Column norms of W are the singular values; normalize to get U.
        let mut sigma: Vec<f64> =
            (0..n).map(|j| (0..m).map(|i| w[(i, j)] * w[(i, j)]).sum::<f64>().sqrt()).collect();
        let mut u = Mat::zeros(m, n);
        for j in 0..n {
            if sigma[j] > 0.0 {
                for i in 0..m {
                    u[(i, j)] = w[(i, j)] / sigma[j];
                }
            }
        }
        // Sort by descending singular value.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).expect("finite sigma"));
        let us = Mat::from_fn(m, n, |i, j| u[(i, order[j])]);
        let vs = Mat::from_fn(n, n, |i, j| v[(i, order[j])]);
        sigma = order.iter().map(|&k| sigma[k]).collect();
        Ok(Svd { u: us, sigma, v: vs })
    }

    /// Numerical rank at relative tolerance `rtol` (relative to σ₁).
    pub fn rank(&self, rtol: f64) -> usize {
        let s0 = self.sigma.first().copied().unwrap_or(0.0);
        self.sigma.iter().filter(|&&s| s > rtol * s0).count()
    }

    /// Reconstructs the rank-`r` truncation `U_r·Σ_r·V_rᵀ`.
    pub fn truncate(&self, r: usize) -> (Mat<f64>, Mat<f64>) {
        // Return (U_r·Σ_r, V_rᵀ) as the two factors of the outer product,
        // which is the representation IES³ stores.
        let r = r.min(self.sigma.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let us = Mat::from_fn(m, r, |i, j| self.u[(i, j)] * self.sigma[j]);
        let vt = Mat::from_fn(r, n, |i, j| self.v[(j, i)]);
        (us, vt)
    }

    /// 2-norm condition number σ₁/σₙ (∞ if σₙ = 0).
    pub fn cond2(&self) -> f64 {
        let first = self.sigma.first().copied().unwrap_or(0.0);
        let last = self.sigma.last().copied().unwrap_or(0.0);
        if last == 0.0 {
            f64::INFINITY
        } else {
            first / last
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(svd: &Svd) -> Mat<f64> {
        let r = svd.sigma.len();
        let (us, vt) = svd.truncate(r);
        us.matmul(&vt)
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Mat::from_diag(&[3.0, 1.0, 2.0]);
        let svd = Svd::new(&a).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-12);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-12);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-12);
        assert!((&reconstruct(&svd) - &a).norm_fro() < 1e-12);
    }

    #[test]
    fn reconstruction_tall_and_wide() {
        let tall = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let svd = Svd::new(&tall).unwrap();
        assert!((&reconstruct(&svd) - &tall).norm_fro() < 1e-10);
        let wide = tall.transpose();
        let svdw = Svd::new(&wide).unwrap();
        assert!((&reconstruct(&svdw) - &wide).norm_fro() < 1e-10);
        // Singular values agree between A and Aᵀ.
        for (a, b) in svd.sigma.iter().zip(&svdw.sigma) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn orthogonality_of_factors() {
        let a = Mat::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let svd = Svd::new(&a).unwrap();
        let utu = svd.u.transpose().matmul(&svd.u);
        let vtv = svd.v.transpose().matmul(&svd.v);
        let id: Mat<f64> = Mat::identity(4);
        assert!((&utu - &id).norm_fro() < 1e-10);
        assert!((&vtv - &id).norm_fro() < 1e-10);
    }

    #[test]
    fn low_rank_detection() {
        // Rank-1 outer product.
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [1.0, -1.0, 0.5];
        let a = Mat::from_fn(4, 3, |i, j| u[i] * v[j]);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        let (us, vt) = svd.truncate(1);
        let approx = us.matmul(&vt);
        assert!((&approx - &a).norm_fro() < 1e-10);
    }

    #[test]
    fn cond2_identity() {
        let id: Mat<f64> = Mat::identity(4);
        let svd = Svd::new(&id).unwrap();
        assert!((svd.cond2() - 1.0).abs() < 1e-12);
    }
}
