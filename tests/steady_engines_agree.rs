//! Cross-engine steady-state agreement on a diode rectifier: harmonic
//! balance (both linear-solver backends), shooting, and a long transient
//! settle to the same periodic solution. Any systematic disagreement here
//! means one of the discretizations — or the parallel kernels underneath
//! them — is wrong.

#![allow(clippy::needless_range_loop)]

use rfsim::circuit::prelude::*;
use rfsim::circuit::Circuit;
use rfsim::steady::{shooting, solve_hb, HbOptions, HbSolver, ShootingOptions, SpectralGrid};

/// Half-wave diode rectifier with an RC output filter.
fn rectifier(f0: f64, drive: f64) -> (rfsim::circuit::CircuitDae, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, drive, f0));
    ckt.add(Resistor::new("R1", a, out, 300.0));
    ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
    ckt.add(Resistor::new("RL", out, Circuit::GROUND, 20e3));
    ckt.add(Capacitor::new("CL", out, Circuit::GROUND, 5e-10));
    let dae = ckt.into_dae().expect("netlist");
    (dae, out)
}

#[test]
fn hb_shooting_transient_agree_on_diode_rectifier() {
    let f0 = 1e6;
    let (dae, out) = rectifier(f0, 1.0);
    let oi = dae.node_index(out).expect("node");

    let grid = SpectralGrid::single_tone(f0, 12).expect("grid");
    let opts = HbOptions { source_steps: 4, ..Default::default() };
    let hb = solve_hb(&dae, &grid, &opts).expect("hb gmres");

    let sh =
        shooting(&dae, 1.0 / f0, &ShootingOptions { steps_per_period: 600, ..Default::default() })
            .expect("shooting");

    let tr = transient(
        &dae,
        0.0,
        25.0 / f0,
        &TranOptions { dt: 1.0 / (f0 * 400.0), ..Default::default() },
    )
    .expect("transient");
    let samples = tr.resample(oi, 24.0 / f0, 25.0 / f0, 256);
    let spec = rfsim::numerics::fft::amplitude_spectrum(&samples);

    for k in 0..4usize {
        let a_hb = hb.amplitude(oi, &[k as i32]);
        let a_sh = sh.amplitude(oi, k as i32);
        let a_tr = spec[k];
        assert!((a_hb - a_sh).abs() < 6e-3, "harmonic {k}: hb {a_hb:.5} vs shooting {a_sh:.5}");
        assert!((a_hb - a_tr).abs() < 1.5e-2, "harmonic {k}: hb {a_hb:.5} vs transient {a_tr:.5}");
    }
}

/// The two HB backends (dense direct vs preconditioned matrix-free GMRES)
/// are different linear algebra over the same Newton iteration; they must
/// agree far more tightly than different time discretizations do.
#[test]
fn hb_backends_agree_on_diode_rectifier() {
    let f0 = 1e6;
    let (dae, out) = rectifier(f0, 0.8);
    let oi = dae.node_index(out).expect("node");
    let grid = SpectralGrid::single_tone(f0, 9).expect("grid");
    let gm = solve_hb(&dae, &grid, &HbOptions { source_steps: 3, ..Default::default() })
        .expect("hb gmres");
    let di = solve_hb(
        &dae,
        &grid,
        &HbOptions { solver: HbSolver::Direct, source_steps: 3, ..Default::default() },
    )
    .expect("hb direct");
    for k in 0..6usize {
        let a = gm.amplitude(oi, &[k as i32]);
        let b = di.amplitude(oi, &[k as i32]);
        assert!((a - b).abs() < 1e-7, "harmonic {k}: gmres {a} vs direct {b}");
    }
}

/// HB and shooting track each other across drive levels, from the
/// near-linear regime into hard rectification.
#[test]
fn engines_agree_across_drive_levels() {
    let f0 = 1e6;
    for &drive in &[0.3, 0.6, 1.2] {
        let (dae, out) = rectifier(f0, drive);
        let oi = dae.node_index(out).expect("node");
        let grid = SpectralGrid::single_tone(f0, 12).expect("grid");
        let hb = solve_hb(&dae, &grid, &HbOptions { source_steps: 4, ..Default::default() })
            .expect("hb");
        let sh = shooting(
            &dae,
            1.0 / f0,
            &ShootingOptions { steps_per_period: 600, ..Default::default() },
        )
        .expect("shooting");
        for k in 0..3usize {
            let a_hb = hb.amplitude(oi, &[k as i32]);
            let a_sh = sh.amplitude(oi, k as i32);
            assert!(
                (a_hb - a_sh).abs() < 6e-3,
                "drive {drive}, harmonic {k}: hb {a_hb:.5} vs shooting {a_sh:.5}"
            );
        }
    }
}
