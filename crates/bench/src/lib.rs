//! Shared workloads for the experiment harnesses and benches: the
//! synthetic circuits standing in for the paper's proprietary test
//! vehicles (see DESIGN.md's substitution table), plus small reporting
//! helpers.

use rfsim::circuit::prelude::*;
use rfsim::circuit::waveform::{Stimulus, TimeScale, Tone};
use rfsim::circuit::{Circuit, CircuitDae, NodeId};

/// Parameters of the synthetic quadrature modulator (the Fig 1 stand-in).
#[derive(Debug, Clone, Copy)]
pub struct ModulatorSpec {
    /// Baseband frequency (paper: 80 kHz).
    pub f_bb: f64,
    /// Carrier / LO frequency (paper: 1.62 GHz).
    pub f_lo: f64,
    /// I/Q gain imbalance (fraction). 0.036 puts the image sideband near
    /// −35 dBc, the out-of-spec component the paper traced to a layout
    /// imbalance.
    pub gain_imbalance: f64,
    /// LO feedthrough (fraction of carrier). 1.26e-4 ≈ −78 dBc, the weak
    /// spurious response transient analysis missed.
    pub lo_leak: f64,
}

impl Default for ModulatorSpec {
    fn default() -> Self {
        ModulatorSpec { f_bb: 80e3, f_lo: 1.62e9, gain_imbalance: 0.036, lo_leak: 1.26e-4 }
    }
}

/// Builds the dual-multiplier quadrature modulator:
/// `out = I·LO_i + (1+ε)·Q·LO_q + leak·LO_i` driven by a single-sideband
/// (I = sin, Q = cos) baseband pair: `sin·sin + cos·cos = cos(ω₂−ω₁)`, so
/// the wanted output is the **lower** sideband at `f_lo − f_bb`, the
/// imbalance image lands at `f_lo + f_bb` with relative amplitude `ε/2`,
/// and the leak sits on the carrier itself.
pub fn quadrature_modulator(spec: &ModulatorSpec) -> (CircuitDae, NodeId) {
    let mut ckt = Circuit::new();
    let bb_i = ckt.node("bb_i");
    let bb_q = ckt.node("bb_q");
    let lo_i = ckt.node("lo_i");
    let lo_q = ckt.node("lo_q");
    let out = ckt.node("out");
    let half_pi = std::f64::consts::FRAC_PI_2;
    ckt.add(VSource::sine("VBI", bb_i, Circuit::GROUND, 0.0, 1.0, spec.f_bb));
    ckt.add(VSource::new(
        "VBQ",
        bb_q,
        Circuit::GROUND,
        Stimulus::Sine {
            offset: 0.0,
            tone: Tone { amplitude: 1.0, freq: spec.f_bb, phase: half_pi },
            scale: TimeScale::Slow,
        },
    ));
    ckt.add(VSource::sine_fast("VLI", lo_i, Circuit::GROUND, 0.0, 1.0, spec.f_lo));
    ckt.add(VSource::new(
        "VLQ",
        lo_q,
        Circuit::GROUND,
        Stimulus::Sine {
            offset: 0.0,
            tone: Tone { amplitude: 1.0, freq: spec.f_lo, phase: half_pi },
            scale: TimeScale::Fast,
        },
    ));
    let g = 1e-3; // multiplier gain into the 1 kΩ load → unity scaling
    ckt.add(Multiplier::new(
        "MIXI",
        out,
        Circuit::GROUND,
        bb_i,
        Circuit::GROUND,
        lo_i,
        Circuit::GROUND,
        -g,
    ));
    ckt.add(Multiplier::new(
        "MIXQ",
        out,
        Circuit::GROUND,
        bb_q,
        Circuit::GROUND,
        lo_q,
        Circuit::GROUND,
        -g * (1.0 + spec.gain_imbalance),
    ));
    // LO feedthrough: a VCCS tap from the I LO straight to the output.
    ckt.add(Vccs::new("LEAK", out, Circuit::GROUND, lo_i, Circuit::GROUND, -g * spec.lo_leak));
    ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3).noiseless());
    let dae = ckt.into_dae().expect("valid modulator netlist");
    (dae, out)
}

/// Parameters of the double-balanced switching mixer (Figs 4–5 stand-in).
#[derive(Debug, Clone, Copy)]
pub struct MixerSpec {
    /// RF frequency (paper: 100 kHz).
    pub f_rf: f64,
    /// LO frequency (paper: 900 MHz).
    pub f_lo: f64,
    /// RF amplitude (paper: 100 mV — "mildly nonlinear regime").
    pub rf_amplitude: f64,
    /// Cubic coefficient of the RF path (sets the ~35 dB HD3).
    pub cubic: f64,
}

impl Default for MixerSpec {
    fn default() -> Self {
        MixerSpec { f_rf: 100e3, f_lo: 900e6, rf_amplitude: 0.1, cubic: 7.2 }
    }
}

/// Builds the switching mixer + filter: an RF path with a small cubic
/// nonlinearity feeding a four-quadrant multiplier chopped by a ±1 V
/// square LO, into an RC output filter. Mix products land at `m·f_lo ±
/// k·f_rf` exactly as in the paper's Fig 4 discussion.
pub fn switching_mixer(spec: &MixerSpec) -> (CircuitDae, NodeId) {
    let mut ckt = Circuit::new();
    let rf = ckt.node("rf");
    let lo = ckt.node("lo");
    ckt.add(VSource::sine("VRF", rf, Circuit::GROUND, 0.0, spec.rf_amplitude, spec.f_rf));
    ckt.add(VSource::square_lo("VLO", lo, Circuit::GROUND, 1.0, spec.f_lo));
    // v(rfsq) = v_rf², v(rf3) = v_rf³ via multiplier cascade.
    let rfsq = ckt.node("rfsq");
    ckt.add(Multiplier::new(
        "SQ",
        rfsq,
        Circuit::GROUND,
        rf,
        Circuit::GROUND,
        rf,
        Circuit::GROUND,
        -1e-3,
    ));
    ckt.add(Resistor::new("RSQ", rfsq, Circuit::GROUND, 1e3).noiseless());
    let rf3 = ckt.node("rf3");
    ckt.add(Multiplier::new(
        "CUBE",
        rf3,
        Circuit::GROUND,
        rfsq,
        Circuit::GROUND,
        rf,
        Circuit::GROUND,
        -1e-3,
    ));
    ckt.add(Resistor::new("RC3", rf3, Circuit::GROUND, 1e3).noiseless());
    // drive = rf + cubic·rf³.
    let drive = ckt.node("drive");
    ckt.add(Resistor::new("RDRV", drive, Circuit::GROUND, 1e3).noiseless());
    ckt.add(Vccs::new("V2I", drive, Circuit::GROUND, rf, Circuit::GROUND, -1e-3));
    ckt.add(Vccs::new("ADD3", drive, Circuit::GROUND, rf3, Circuit::GROUND, -1e-3 * spec.cubic));
    // Chopper and output filter.
    let mixed = ckt.node("mixed");
    ckt.add(Multiplier::new(
        "MIX",
        mixed,
        Circuit::GROUND,
        drive,
        Circuit::GROUND,
        lo,
        Circuit::GROUND,
        -1.08e-3, // tuned so the 900.1 MHz product is ≈ 60 mV (paper)
    ));
    ckt.add(Resistor::new("RMIX", mixed, Circuit::GROUND, 1e3).noiseless());
    let out = ckt.node("out");
    ckt.add(Resistor::new("RF1", mixed, out, 100.0).noiseless());
    ckt.add(Capacitor::new("CF1", out, Circuit::GROUND, 1e-13));
    let dae = ckt.into_dae().expect("valid mixer netlist");
    (dae, out)
}

/// Builds the modulator followed by a ladder of `stages` buffered RF
/// sections: a unity-gain transconductance buffer into a 1 kΩ load with a
/// mild cubic compression and a wideband RC pole per stage. Every stage
/// adds one node, so the harmonic-balance Jacobian's per-frequency blocks
/// grow with `stages` — this is the kernel-dominated HB workload (blocked
/// complex LU + triangular solves + GMRES orthogonalization) used by the
/// e02 `hb:` speedup rows.
pub fn modulator_chain(spec: &ModulatorSpec, stages: usize) -> (CircuitDae, NodeId) {
    let mut ckt = Circuit::new();
    let bb_i = ckt.node("bb_i");
    let lo_i = ckt.node("lo_i");
    let mix = ckt.node("mix");
    ckt.add(VSource::sine("VBI", bb_i, Circuit::GROUND, 0.0, 1.0, spec.f_bb));
    ckt.add(VSource::sine_fast("VLI", lo_i, Circuit::GROUND, 0.0, 1.0, spec.f_lo));
    ckt.add(Multiplier::new(
        "MIX",
        mix,
        Circuit::GROUND,
        bb_i,
        Circuit::GROUND,
        lo_i,
        Circuit::GROUND,
        -1e-3,
    ));
    ckt.add(Resistor::new("RMIX", mix, Circuit::GROUND, 1e3).noiseless());
    let mut prev = mix;
    for k in 0..stages {
        let nk = ckt.node(&format!("st{k}"));
        // Unity voltage gain: gm · RL = 1e-3 · 1e3.
        ckt.add(Vccs::new(&format!("GM{k}"), nk, Circuit::GROUND, prev, Circuit::GROUND, -1e-3));
        ckt.add(Resistor::new(&format!("RL{k}"), nk, Circuit::GROUND, 1e3).noiseless());
        // Mild compression keeps every stage nonlinear without spraying
        // energy past the truncated spectrum.
        ckt.add(NonlinearConductance::new(&format!("NL{k}"), nk, Circuit::GROUND, 0.0, 2e-5));
        // Pole a decade above the carrier: shapes the spectrum without
        // killing the signal down the ladder.
        let c = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 10.0 * spec.f_lo);
        ckt.add(Capacitor::new(&format!("CP{k}"), nk, Circuit::GROUND, c));
        prev = nk;
    }
    let dae = ckt.into_dae().expect("valid modulator chain netlist");
    (dae, prev)
}

/// Wall-clock of a closure in seconds, with its result.
///
/// Thin wrapper over a telemetry span: the duration also lands in the
/// `bench.timed` node of the span tree when telemetry is on.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    timed_span("bench.timed", f)
}

/// Like [`timed`], under an explicit span name (shows up as its own node
/// in the telemetry span tree).
pub fn timed_span<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let span = rfsim::telemetry::span(name);
    let t0 = std::time::Instant::now();
    let out = f();
    let secs = t0.elapsed().as_secs_f64();
    drop(span);
    (out, secs)
}

/// Prints a header row for one of the experiment tables.
pub fn heading(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Formats dBc values including −∞.
pub fn fmt_dbc(v: f64) -> String {
    if v.is_finite() {
        format!("{v:8.1}")
    } else {
        "    -inf".to_string()
    }
}

/// Returns `true` if `--paper-scale` was passed to the harness.
pub fn paper_scale() -> bool {
    std::env::args().any(|a| a == "--paper-scale")
}

/// Returns `true` if `--ablate` was passed to the harness.
pub fn ablate() -> bool {
    std::env::args().any(|a| a == "--ablate")
}

/// Whether `RFSIM_SWEEP_MODE=cold` is in force: sweep phases then solve
/// every point from scratch (no warm starts, no subspace recycling, no
/// reused factorizations) so CI can record the baseline the warm path is
/// gated against. Anything else — including unset — selects the warm
/// continuation path.
pub fn sweep_cold() -> bool {
    std::env::var("RFSIM_SWEEP_MODE").map(|v| v.eq_ignore_ascii_case("cold")).unwrap_or(false)
}

/// Whether `RFSIM_SWEEP_MODE=adaptive` is in force: drive sweeps
/// through the rational-surrogate layer (`AdaptiveSweep`), issuing true
/// solves only where the cross-validated model is uncertain and
/// answering the remaining grid points from the fit. CI gates this mode
/// against the warm fixed-grid leg on both wall clock and the
/// `em.true_solves` counter ratio.
pub fn sweep_adaptive() -> bool {
    std::env::var("RFSIM_SWEEP_MODE").map(|v| v.eq_ignore_ascii_case("adaptive")).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim::steady::{solve_hb, HbOptions, SpectralGrid, ToneAxis};

    #[test]
    fn modulator_produces_expected_spectrum() {
        // Scaled-down ratio for test speed; spectrum structure is
        // ratio-independent.
        let spec = ModulatorSpec { f_bb: 1e6, f_lo: 100e6, ..Default::default() };
        let (dae, out) = quadrature_modulator(&spec);
        let grid = SpectralGrid::two_tone(ToneAxis::new(spec.f_bb, 2), ToneAxis::new(spec.f_lo, 2))
            .unwrap();
        let sol = solve_hb(&dae, &grid, &HbOptions::default()).unwrap();
        let oi = dae.node_index(out).unwrap();
        let wanted = sol.amplitude(oi, &[-1, 1]); // lower sideband
        let image = sol.amplitude(oi, &[1, 1]);
        let carrier = sol.amplitude(oi, &[0, 1]);
        // Wanted sideband ≈ 1 V (SSB sum of both multipliers).
        assert!((wanted - 1.0).abs() < 0.05, "wanted = {wanted}");
        // Image at ≈ ε/2 relative → ≈ −35 dBc.
        let image_dbc = 20.0 * (image / wanted).log10();
        assert!((image_dbc + 35.0).abs() < 1.5, "image at {image_dbc} dBc");
        // Carrier leak ≈ −78 dBc.
        let leak_dbc = 20.0 * (carrier / wanted).log10();
        assert!((leak_dbc + 78.0).abs() < 2.0, "leak at {leak_dbc} dBc");
    }

    #[test]
    fn mixer_matches_fig4_numbers() {
        // Scaled LO for test speed (ratio preserved via MMFT anyway).
        let spec = MixerSpec { f_rf: 1e5, f_lo: 9e8, ..Default::default() };
        let (dae, out) = switching_mixer(&spec);
        let opts = rfsim::mpde::MmftOptions { slow_harmonics: 3, n2: 50, ..Default::default() };
        let sol = rfsim::mpde::solve_mmft(&dae, spec.f_rf, spec.f_lo, &opts).unwrap();
        let oi = dae.node_index(out).unwrap();
        let main = sol.mix_amplitude(oi, 1, 1);
        let hd3 = sol.mix_amplitude(oi, 3, 1);
        // Paper: "amplitude of 60 mV" at 900.1 MHz and "about 1.1 mV" at
        // 900.3 MHz, "distortion … about 35 dB below".
        assert!((main - 0.060).abs() < 0.008, "main = {main}");
        let ratio_db = 20.0 * (main / hd3).log10();
        assert!((ratio_db - 35.0).abs() < 4.0, "HD3 ratio = {ratio_db} dB");
    }
}
