//! Warm-vs-cold agreement for the sweep engines: warm-started
//! continuation (HB drive-level sweeps, the e03 shape) and build-once
//! subspace-recycled extraction (EM frequency sweeps, the e09 shape)
//! must reproduce cold point-by-point solves to solver tolerance — the
//! sweep paths share *work*, never accuracy.

use rfsim::circuit::dae::Dae;
use rfsim::circuit::prelude::*;
use rfsim::circuit::Circuit;
use rfsim::steady::{solve_hb, solve_hb_sweep, HbOptions, SpectralGrid};

/// Diode clipper driven at `amp` volts — nonlinearity grows with drive,
/// like the e03 mixer's drive-level sweep.
fn clipper(amp: f64) -> rfsim::circuit::CircuitDae {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", inp, Circuit::GROUND, 0.0, amp, 1e6));
    ckt.add(Resistor::new("R1", inp, out, 1e3));
    ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-13));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 2e-10));
    ckt.into_dae().expect("valid clipper netlist")
}

#[test]
fn hb_amplitude_sweep_matches_cold_points() {
    let grid = SpectralGrid::single_tone(1e6, 7).unwrap();
    let opts = HbOptions::default();
    let daes: Vec<_> = [0.4, 0.7, 1.0, 1.3].iter().map(|&a| clipper(a)).collect();
    let refs: Vec<&dyn Dae> = daes.iter().map(|d| d as &dyn Dae).collect();
    let warm = solve_hb_sweep(&refs, &grid, &opts).unwrap();
    for (i, (dae, w)) in daes.iter().zip(&warm).enumerate() {
        let cold = solve_hb(dae, &grid, &opts).unwrap();
        let err = w.x.iter().zip(&cold.x).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        // Both converged to |residual|∞ < tol on the same equations; the
        // iterates themselves agree to a small multiple of it.
        assert!(err < 1e-6, "sweep point {i}: warm vs cold diverge by {err}");
    }
}

#[test]
fn em_frequency_sweep_matches_cold_points() {
    use rfsim::em::geom::spiral_panels;
    use rfsim::em::ies3::{CompressedMatrix, Ies3Options};
    use rfsim::em::inductor::SpiralInductor;
    use rfsim::em::mom::MomProblem;
    use rfsim::em::GreenFn;
    use rfsim::numerics::krylov::KrylovOptions;

    let sp = SpiralInductor::default();
    let freqs = [1e9, 4e9, 16e9];
    let swept = sp.extract_swept(2, 6, &freqs).unwrap();
    let segs = sp.segments();
    let panels = spiral_panels(&segs, 2, 0);
    for (&f, m) in freqs.iter().zip(&swept) {
        // Cold reference: rebuild the half-space matrix at this point's
        // image coefficient and solve from scratch.
        let k = sp.substrate_image_coefficient(f);
        let green = GreenFn::HalfSpace { eps_r: sp.eps_ox, z0: 0.0, k };
        let p = MomProblem::new(panels.clone(), green).unwrap();
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let (q, _) = p
            .solve_iterative(&cm, &[1.0], &KrylovOptions { tol: 1e-9, ..Default::default() })
            .unwrap();
        let cold = q.iter().sum::<f64>() / 2.0;
        assert!(
            (m.c_ox - cold).abs() <= 1e-4 * cold.abs(),
            "f = {f}: swept C_ox {} vs cold {cold}",
            m.c_ox
        );
    }
}
