//! Network-parameter conversions: Z/Y/S for 1- and 2-port networks.
//!
//! "Output from the simulator is typically an S parameter matrix, which
//! can be used directly in a frequency-domain simulation" (paper, §4).

use rfsim_numerics::dense::Mat;
use rfsim_numerics::Complex;

/// Converts a 1-port impedance to the reflection coefficient `S₁₁`.
pub fn z_to_s11(z: Complex, z0: f64) -> Complex {
    (z - Complex::from_re(z0)) / (z + Complex::from_re(z0))
}

/// Converts `S₁₁` back to an input impedance.
pub fn s11_to_z(s: Complex, z0: f64) -> Complex {
    Complex::from_re(z0) * (Complex::ONE + s) / (Complex::ONE - s)
}

/// Converts an `n×n` impedance matrix to S-parameters in a real `z0`
/// system: `S = (Z − z0·I)(Z + z0·I)⁻¹`.
///
/// # Errors
/// Propagates singularity of `Z + z0·I`.
pub fn z_to_s(z: &Mat<Complex>, z0: f64) -> rfsim_numerics::Result<Mat<Complex>> {
    let n = z.rows();
    let z0c = Complex::from_re(z0);
    let mut zp = z.clone();
    let mut zm = z.clone();
    for i in 0..n {
        zp[(i, i)] += z0c;
        zm[(i, i)] -= z0c;
    }
    let zp_inv = zp.inverse()?;
    Ok(zm.matmul(&zp_inv))
}

/// Converts an admittance matrix to S-parameters:
/// `S = (I − z0·Y)(I + z0·Y)⁻¹`.
///
/// # Errors
/// Propagates singularity of `I + z0·Y`.
pub fn y_to_s(y: &Mat<Complex>, z0: f64) -> rfsim_numerics::Result<Mat<Complex>> {
    let n = y.rows();
    let mut p: Mat<Complex> = Mat::identity(n);
    let mut m: Mat<Complex> = Mat::identity(n);
    for i in 0..n {
        for j in 0..n {
            let s = y[(i, j)].scale(z0);
            p[(i, j)] += s;
            m[(i, j)] -= s;
        }
    }
    let p_inv = p.inverse()?;
    Ok(m.matmul(&p_inv))
}

/// Magnitude in dB.
pub fn db(x: Complex) -> f64 {
    20.0 * x.abs().max(1e-300).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_load_has_zero_reflection() {
        let s = z_to_s11(Complex::from_re(50.0), 50.0);
        assert!(s.abs() < 1e-15);
    }

    #[test]
    fn open_and_short() {
        let open = z_to_s11(Complex::from_re(1e12), 50.0);
        assert!((open - Complex::ONE).abs() < 1e-9);
        let short = z_to_s11(Complex::ZERO, 50.0);
        assert!((short + Complex::ONE).abs() < 1e-15);
    }

    #[test]
    fn s11_z_roundtrip() {
        let z = Complex::new(30.0, 70.0);
        let s = z_to_s11(z, 50.0);
        let back = s11_to_z(s, 50.0);
        assert!((back - z).abs() < 1e-9);
    }

    #[test]
    fn two_port_series_impedance() {
        // A series impedance Zs between ports: Z-matrix = [[Zs, Zs],[Zs, Zs]]
        // is singular; use the Y form: Y = (1/Zs)·[[1, −1],[−1, 1]].
        let zs = Complex::new(10.0, 50.0);
        let ys = zs.recip();
        let y = Mat::from_rows(&[&[ys, -ys], &[-ys, ys]]);
        let s = y_to_s(&y, 50.0).unwrap();
        // Known result: S21 = 2·z0/(2·z0 + Zs).
        let expect = Complex::from_re(100.0) / (Complex::from_re(100.0) + zs);
        assert!((s[(1, 0)] - expect).abs() < 1e-12, "{} vs {}", s[(1, 0)], expect);
        // Reciprocity and symmetry.
        assert!((s[(0, 1)] - s[(1, 0)]).abs() < 1e-12);
        assert!((s[(0, 0)] - s[(1, 1)]).abs() < 1e-12);
    }

    #[test]
    fn z_to_s_matches_y_to_s() {
        // Shunt impedance to ground at each port + coupling.
        let z = Mat::from_rows(&[
            &[Complex::new(60.0, 10.0), Complex::new(20.0, 5.0)],
            &[Complex::new(20.0, 5.0), Complex::new(80.0, -15.0)],
        ]);
        let s1 = z_to_s(&z, 50.0).unwrap();
        let y = z.inverse().unwrap();
        let s2 = y_to_s(&y, 50.0).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((s1[(i, j)] - s2[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn db_scale() {
        assert!((db(Complex::from_re(0.1)) + 20.0).abs() < 1e-12);
    }
}
