//! Wire-protocol robustness battery (ISSUE 7 satellite): the frame
//! codec and the server's frame handling must never panic on
//! malformed, truncated, oversized, or arbitrarily interleaved input —
//! every failure is a structured error response, and the connection
//! either survives or closes cleanly.

use proptest::prelude::*;
use rfsim_serve::wire::{depth_within, FrameDecoder, MAX_FRAME_BYTES, MAX_JSON_DEPTH};
use rfsim_serve::{Client, Server, ServerConfig};
use rfsim_telemetry::Json;
use std::sync::OnceLock;

/// One server shared by every connection-level case in this binary —
/// robustness cases must not poison it for each other, which is itself
/// part of what is under test.
fn server_addr() -> std::net::SocketAddr {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            Server::spawn(ServerConfig { queue_capacity: 8, workers: 1, ..Default::default() })
                .expect("spawn shared test server")
        })
        .addr()
}

/// Arbitrary bytes, `range` long (the vendored proptest has no
/// inclusive u8 range strategy, hence the u16 detour).
fn bytes(range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u16..256, range)
        .prop_map(|v| v.into_iter().map(|x| x as u8).collect())
}

fn frame_bytes(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for p in payloads {
        rfsim_serve::write_frame(&mut wire, p).unwrap();
    }
    wire
}

/// Splits `data` at the given fractions, yielding 1..=4 chunks.
fn chunked(data: &[u8], cuts: &[f64]) -> Vec<Vec<u8>> {
    let mut at: Vec<usize> = cuts.iter().map(|f| ((data.len() as f64) * f) as usize).collect();
    at.sort_unstable();
    let mut out = Vec::new();
    let mut prev = 0;
    for cut in at {
        out.push(data[prev..cut].to_vec());
        prev = cut;
    }
    out.push(data[prev..].to_vec());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pushing arbitrary garbage in arbitrary chunkings never panics;
    /// the decoder either yields frames, waits for more, or reports a
    /// typed oversize error.
    #[test]
    fn decoder_never_panics_on_garbage(
        data in bytes(0..512),
        cuts in proptest::collection::vec(0.0f64..1.0, 0..3),
    ) {
        let mut dec = FrameDecoder::new();
        for chunk in chunked(&data, &cuts) {
            dec.push(&chunk);
            // Drain until the decoder wants more bytes or errors out.
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => prop_assert!(frame.len() <= MAX_FRAME_BYTES),
                    Ok(None) => break,
                    Err(_) => return Ok(()), // typed failure is fine; panic is not
                }
            }
        }
    }

    /// Well-formed frames survive any interleaving/chunking exactly.
    #[test]
    fn decoder_recovers_frames_across_any_chunking(
        payloads in proptest::collection::vec(bytes(0..64), 1..5),
        cuts in proptest::collection::vec(0.0f64..1.0, 0..3),
    ) {
        let wire = frame_bytes(&payloads);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in chunked(&wire, &cuts) {
            dec.push(&chunk);
            while let Some(frame) = dec.next_frame().unwrap() {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A truncated tail never produces a frame and never panics.
    #[test]
    fn decoder_waits_on_truncation(
        payload in bytes(1..64),
        keep in 0.0f64..1.0,
    ) {
        let wire = frame_bytes(std::slice::from_ref(&payload));
        let cut = 1 + ((wire.len() - 1) as f64 * keep) as usize;
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..cut.min(wire.len() - 1)]);
        prop_assert!(dec.next_frame().unwrap().is_none());
    }

    /// The depth guard never panics and never under-counts: anything it
    /// passes is safe for the recursive parser.
    #[test]
    fn depth_guard_never_panics(data in bytes(0..256)) {
        let _ = depth_within(&data, MAX_JSON_DEPTH);
    }

    #[test]
    fn depth_guard_rejects_deep_nesting(depth in 65usize..600) {
        let mut s = "[".repeat(depth);
        s.push_str(&"]".repeat(depth));
        prop_assert!(!depth_within(s.as_bytes(), MAX_JSON_DEPTH));
        prop_assert!(depth_within(&s.as_bytes()[..MAX_JSON_DEPTH], MAX_JSON_DEPTH));
    }

    /// Live-server fuzz: a frame of arbitrary bytes gets a structured
    /// reply (almost always `bad_request`) and the connection keeps
    /// working — a ping afterwards still answers.
    #[test]
    fn server_answers_garbage_with_structured_errors(
        data in bytes(0..128),
    ) {
        let mut client = Client::connect(server_addr()).unwrap();
        client.send_raw(&data).unwrap();
        let reply = client.recv().unwrap();
        prop_assert!(matches!(reply.get("ok"), Some(Json::Bool(_))));
        if reply.get("ok") == Some(&Json::Bool(false)) {
            let kind = reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str);
            prop_assert!(kind.is_some(), "error reply must carry a kind");
        }
        // The connection survived: a ping still round-trips.
        let pong = client.call(&Json::parse(r#"{"op":"ping"}"#).unwrap()).unwrap();
        prop_assert_eq!(pong.get("ok"), Some(&Json::Bool(true)));
    }
}

#[test]
fn deeply_nested_json_is_rejected_not_overflowed() {
    let mut client = Client::connect(server_addr()).unwrap();
    let depth = 100_000; // would overflow the stack if it reached Json::parse
    let mut req = "[".repeat(depth);
    req.push_str(&"]".repeat(depth));
    client.send_raw(req.as_bytes()).unwrap();
    let reply = client.recv().unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    let kind = reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str);
    assert_eq!(kind, Some("bad_request"));
}

#[test]
fn oversized_frame_gets_error_then_clean_close() {
    let addr = server_addr();
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    use std::io::Write;
    // Announce an impossible frame; never send the body.
    stream.write_all(&(MAX_FRAME_BYTES as u32 + 1).to_be_bytes()).unwrap();
    stream.flush().unwrap();
    let reply = rfsim_serve::read_frame(&mut stream).unwrap().expect("error reply");
    let v = Json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
    // The server closes the connection afterwards: clean EOF.
    assert!(rfsim_serve::read_frame(&mut stream).unwrap().is_none());
}

#[test]
fn malformed_requests_all_get_bad_request_and_survive() {
    let mut client = Client::connect(server_addr()).unwrap();
    for bad in [
        &b"\xff\xfe not utf8"[..],
        b"",
        b"{\"op\":",
        b"42",
        b"[1,2,3]",
        b"{\"op\":\"warp\"}",
        b"{\"op\":\"hb\"}",
        b"{\"op\":\"hb\",\"circuit\":\"rectifier\",\"f0\":\"fast\"}",
        b"{\"op\":\"sleep\",\"ms\":-3}",
        b"{\"op\":\"extract\"}",
    ] {
        client.send_raw(bad).unwrap();
        let reply = client.recv().unwrap();
        assert_eq!(
            reply.get("ok"),
            Some(&Json::Bool(false)),
            "payload {:?} must be refused",
            String::from_utf8_lossy(bad)
        );
        let kind = reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str);
        assert_eq!(kind, Some("bad_request"));
    }
    // After the whole gauntlet the connection still does real work.
    let reply = client
        .call(
            &Json::parse(r#"{"op":"hb","id":9,"circuit":"lowpass","f0":1e6,"harmonics":3}"#)
                .unwrap(),
        )
        .unwrap();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("id").and_then(Json::as_f64), Some(9.0));
}
