//! Characterize the phase noise of a 5 MHz LC oscillator end to end:
//! find the orbit and period, compute the PPV and the diffusion constant,
//! print the phase-noise profile L(Δf), and validate the jitter growth
//! against a Monte Carlo ensemble of the true noisy oscillator.
//!
//! Run with `cargo run --release --example oscillator_phase_noise`.

use rfsim::phasenoise::montecarlo::{monte_carlo_ensemble, McOptions};
use rfsim::phasenoise::oscillator::LcOscillator;
use rfsim::phasenoise::ppv::compute_ppv;
use rfsim::phasenoise::pss::{oscillator_pss, PssOptions};
use rfsim::phasenoise::spectrum::{jitter_variance, PhaseNoiseAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5 MHz LC tank with cubic-limited negative resistance and tank
    // current noise.
    let osc = LcOscillator::new(1e-6, 1e-9, 1e-3, 1e-4, 1e-18);
    println!(
        "LC oscillator: natural f ≈ {:.4e} Hz, predicted amplitude ≈ {:.2} V",
        osc.natural_freq(),
        osc.amplitude_estimate()
    );

    // 1. Periodic steady state — the period is an unknown.
    let pss = oscillator_pss(&osc, osc.initial_guess(), &PssOptions::default())?;
    println!(
        "PSS: f0 = {:.6e} Hz (vs natural {:.6e}), amplitude = {:.3} V, {} Newton iters",
        pss.freq(),
        osc.natural_freq(),
        pss.amplitude(0, 1),
        pss.newton_iterations
    );

    // 2. PPV and the scalar diffusion constant.
    let ppv = compute_ppv(&osc, &pss)?;
    let pn = PhaseNoiseAnalysis::new(&osc, &pss, &ppv, 0)?;
    println!(
        "PPV check max|v1·dx/dt − 1| = {:.1e};  c = {:.4e} s",
        ppv.normalization_error(&osc, &pss.states),
        pn.c
    );

    // 3. The single-sideband phase-noise profile.
    println!("\nL(Δf), dBc/Hz:");
    for df in [1e1, 1e2, 1e3, 1e4, 1e5] {
        println!("  {df:>9.0e} Hz offset: {:8.1}", pn.l_dbc_hz(df));
    }
    println!("(−20 dB/decade — white-noise-driven phase diffusion)");

    // 4. Jitter: σ²(t) = c·t, checked by brute-force stochastic runs.
    let opts = McOptions { ensemble: 64, periods: 50, ..Default::default() };
    let mc = monte_carlo_ensemble(&osc, &pss.x0, pss.period, &opts)?;
    println!("\nMonte Carlo vs theory (timing variance after N cycles):");
    let step = (mc.jitter.len() / 5).max(1);
    for (t, var) in mc.jitter.iter().step_by(step) {
        println!(
            "  t = {:>10.3e} s: MC {:>10.3e} s², c·t {:>10.3e} s²",
            t,
            var,
            jitter_variance(pn.c, *t)
        );
    }
    println!(
        "MC slope {:.3e} vs PPV c {:.3e} (ratio {:.2})",
        mc.c_estimate,
        pn.c,
        mc.c_estimate / pn.c
    );
    Ok(())
}
