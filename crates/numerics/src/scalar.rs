//! The [`Scalar`] abstraction that lets dense/sparse factorizations and
//! Krylov solvers be written once for both `f64` and [`Complex`].

use crate::{kernels, Complex};
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Field element usable by the generic linear-algebra kernels.
///
/// Implemented for `f64` and [`Complex`]. The trait is sealed: downstream
/// crates consume it but cannot implement it, which keeps us free to extend
/// it without breaking changes.
pub trait Scalar:
    Copy
    + Debug
    + PartialEq
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
    + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Magnitude (absolute value / modulus) as a non-negative real.
    fn modulus(self) -> f64;
    /// Complex conjugate (identity for reals).
    fn conj(self) -> Self;
    /// Embeds a real number.
    fn from_f64(x: f64) -> Self;
    /// Real part.
    fn real(self) -> f64;
    /// Scales by a real factor.
    fn scale_by(self, s: f64) -> Self;
    /// Returns `true` if the value contains a NaN component.
    fn is_nan(self) -> bool;

    // Slice-level hooks routed through the runtime-dispatched SIMD
    // kernels in [`crate::kernels`]. The generic solvers (GMRES MGS,
    // dense LU, triangular solves) call these instead of open-coded
    // loops; each hook's scalar fallback is bitwise-identical to the
    // loop it replaced.

    /// Conjugated dot product `Σ conj(aᵢ)·bᵢ` over slices.
    fn slice_dot(a: &[Self], b: &[Self]) -> Self;
    /// Unconjugated dot product `Σ aᵢ·bᵢ` over slices.
    fn slice_dotu(a: &[Self], b: &[Self]) -> Self;
    /// Euclidean norm of a slice.
    fn slice_norm2(v: &[Self]) -> f64;
    /// `y ← y + α·x` over slices.
    fn slice_axpy(alpha: Self, x: &[Self], y: &mut [Self]);
    /// `v ← s·v` for a real factor `s`.
    fn slice_scale(v: &mut [Self], s: f64);
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for crate::Complex {}
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    fn modulus(self) -> f64 {
        self.abs()
    }
    fn conj(self) -> Self {
        self
    }
    fn from_f64(x: f64) -> Self {
        x
    }
    fn real(self) -> f64 {
        self
    }
    fn scale_by(self, s: f64) -> Self {
        self * s
    }
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }

    fn slice_dot(a: &[Self], b: &[Self]) -> Self {
        kernels::dot_f64(a, b)
    }
    fn slice_dotu(a: &[Self], b: &[Self]) -> Self {
        kernels::dot_f64(a, b)
    }
    fn slice_norm2(v: &[Self]) -> f64 {
        kernels::norm2_sq_f64(v).sqrt()
    }
    fn slice_axpy(alpha: Self, x: &[Self], y: &mut [Self]) {
        kernels::axpy_f64(alpha, x, y);
    }
    fn slice_scale(v: &mut [Self], s: f64) {
        kernels::scale_f64(v, s);
    }
}

impl Scalar for Complex {
    const ZERO: Self = Complex::ZERO;
    const ONE: Self = Complex::ONE;

    fn modulus(self) -> f64 {
        self.abs()
    }
    fn conj(self) -> Self {
        Complex::conj(self)
    }
    fn from_f64(x: f64) -> Self {
        Complex::from_re(x)
    }
    fn real(self) -> f64 {
        self.re
    }
    fn scale_by(self, s: f64) -> Self {
        self.scale(s)
    }
    fn is_nan(self) -> bool {
        Complex::is_nan(self)
    }

    fn slice_dot(a: &[Self], b: &[Self]) -> Self {
        kernels::cdot(a, b)
    }
    fn slice_dotu(a: &[Self], b: &[Self]) -> Self {
        kernels::cdotu(a, b)
    }
    fn slice_norm2(v: &[Self]) -> f64 {
        if kernels::simd_active() {
            kernels::cnorm2_sq(v).sqrt()
        } else {
            // Historical gnorm2 accumulation: Σ hypot(re, im)², which is
            // NOT bit-identical to Σ (re² + im²). Preserved verbatim so
            // RFSIM_SIMD=off reproduces today's MGS normalizations.
            v.iter().map(|x| x.modulus() * x.modulus()).sum::<f64>().sqrt()
        }
    }
    fn slice_axpy(alpha: Self, x: &[Self], y: &mut [Self]) {
        kernels::caxpy(alpha, x, y);
    }
    fn slice_scale(v: &mut [Self], s: f64) {
        kernels::cscale(v, s);
    }
}

/// Euclidean norm of a generic scalar vector (SIMD-dispatched; the
/// scalar path keeps the historical accumulation bitwise).
pub fn gnorm2<T: Scalar>(v: &[T]) -> f64 {
    T::slice_norm2(v)
}

/// Conjugated dot product `Σ conj(aᵢ)·bᵢ` (SIMD-dispatched; the scalar
/// path keeps the historical accumulation bitwise).
///
/// # Panics
/// Panics if lengths differ.
pub fn gdot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "gdot: length mismatch");
    T::slice_dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_scalar_semantics() {
        assert_eq!(<f64 as Scalar>::conj(-2.0), -2.0);
        assert_eq!((-2.0f64).modulus(), 2.0);
        assert_eq!(f64::from_f64(3.0), 3.0);
        assert_eq!(3.0f64.scale_by(2.0), 6.0);
    }

    #[test]
    fn complex_scalar_semantics() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(Scalar::conj(z), Complex::new(1.0, 2.0));
        assert_eq!(z.real(), 1.0);
        assert_eq!(Complex::from_f64(2.0), Complex::new(2.0, 0.0));
    }

    #[test]
    fn generic_helpers_match_specialized() {
        let v = [3.0f64, 4.0];
        assert_eq!(gnorm2(&v), 5.0);
        assert_eq!(gdot(&v, &v), 25.0);
        let c = [Complex::I, Complex::ONE];
        assert!((gnorm2(&c) - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(gdot(&c, &c), Complex::new(2.0, 0.0));
    }
}
