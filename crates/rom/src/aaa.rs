//! AAA rational approximation (Nakatsukasa–Sète–Trefethen) for adaptive
//! frequency sweeps.
//!
//! The sweep engines (`SweptExtractor`, `HbSweep`) march a fixed grid
//! even though neighboring solves are nearly redundant; the adaptive
//! driver instead fits the response with a barycentric rational
//! interpolant and only issues true solves where the model is uncertain.
//! AAA is the right fitter for that job: greedy support-point selection
//! puts interpolation nodes where the residual is largest (exactly the
//! SRF-style regions that need dense sampling), the least-squares weight
//! solve is a single small SVD, and the barycentric form is numerically
//! stable where the explicit-coefficient Padé of [`crate::awe`] is not —
//! the same instability argument the paper makes for moment matching,
//! resolved the same way (work with a stable basis, never monomial
//! coefficients).
//!
//! The fit is real-to-real over a real frequency interval:
//!
//! ```text
//! r(z) = Σⱼ wⱼ fⱼ/(z − zⱼ)  /  Σⱼ wⱼ/(z − zⱼ)
//! ```
//!
//! which interpolates `fⱼ` at every support point `zⱼ` for any nonzero
//! weights, so accuracy only ever depends on the *weight* least-squares
//! problem — the smallest right singular vector of the Loewner matrix
//! over the non-support samples, optionally polished by a few Lawson
//! (iteratively reweighted) passes toward the minimax weights. Poles of
//! the fitted model come from the roots of the barycentric denominator,
//! computed on an affinely normalized domain for conditioning.

use crate::{Error, Result};
use rfsim_numerics::dense::Mat;
use rfsim_numerics::eig::eigenvalues;
use rfsim_numerics::svd::Svd;
use rfsim_numerics::Complex;

/// Knobs for [`AaaFit::fit`].
#[derive(Debug, Clone, Copy)]
pub struct AaaOptions {
    /// Relative residual target: greedy support selection stops once the
    /// worst sample residual falls below `tol · max|f|`.
    pub tol: f64,
    /// Cap on support points (the barycentric order). The fit also never
    /// uses more than `n − 1` support points so at least one sample is
    /// left to determine the weights.
    pub max_support: usize,
    /// Lawson reweighting passes after the greedy stage (0 disables).
    /// Each pass re-solves the weight SVD with rows scaled by the
    /// running residual, walking the least-squares weights toward the
    /// minimax ones; the best weights seen are kept.
    pub lawson_iters: usize,
}

impl Default for AaaOptions {
    fn default() -> Self {
        AaaOptions { tol: 1e-12, max_support: 24, lawson_iters: 6 }
    }
}

/// A fitted barycentric rational interpolant.
#[derive(Debug, Clone)]
pub struct AaaFit {
    support: Vec<f64>,
    values: Vec<f64>,
    weights: Vec<f64>,
    /// `max|f|` over the fitting samples (the residual normalizer).
    scale: f64,
    /// Worst relative residual over the non-support samples at the end
    /// of the fit.
    max_rel_residual: f64,
}

impl AaaFit {
    /// Fits `values[i] ≈ r(points[i])` by greedy AAA.
    ///
    /// # Errors
    /// [`Error::InvalidSetup`] on length mismatch, fewer than two
    /// samples, non-finite data, or duplicate sample points.
    pub fn fit(points: &[f64], values: &[f64], opts: &AaaOptions) -> Result<AaaFit> {
        let n = points.len();
        if n != values.len() {
            return Err(Error::InvalidSetup(format!(
                "aaa: {n} points but {} values",
                values.len()
            )));
        }
        if n < 2 {
            return Err(Error::InvalidSetup("aaa: need at least two samples".to_string()));
        }
        if points.iter().chain(values).any(|v| !v.is_finite()) {
            return Err(Error::InvalidSetup("aaa: non-finite sample data".to_string()));
        }
        let mut sorted: Vec<f64> = points.to_vec();
        sorted.sort_by(f64::total_cmp);
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::InvalidSetup("aaa: duplicate sample points".to_string()));
        }

        let scale = values.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let mut fit = AaaFit {
            support: Vec::new(),
            values: Vec::new(),
            weights: Vec::new(),
            scale,
            max_rel_residual: 0.0,
        };
        if scale == 0.0 {
            // Identically zero data: a single zero-valued support point
            // reproduces it everywhere.
            fit.support.push(points[0]);
            fit.values.push(0.0);
            fit.weights.push(1.0);
            return Ok(fit);
        }

        let mean = values.iter().sum::<f64>() / n as f64;
        let mut is_support = vec![false; n];
        let mut residual: Vec<f64> = values.iter().map(|f| f - mean).collect();
        let max_support = opts.max_support.min(n - 1).max(1);
        // Greedy growth is not pointwise monotone — an added support
        // point can transiently worsen the max residual (a spurious pole
        // wandering between samples). Keep the best configuration seen,
        // so a larger support budget never returns a worse model.
        let mut best: Option<(AaaFit, f64)> = None;
        loop {
            // Next support point: the worst-approximated free sample.
            let (pick, pick_err) = residual
                .iter()
                .enumerate()
                .filter(|(i, _)| !is_support[*i])
                .map(|(i, r)| (i, r.abs()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one free sample by construction");
            if !fit.support.is_empty() && pick_err <= opts.tol * scale {
                break;
            }
            if fit.support.len() >= max_support {
                break;
            }
            is_support[pick] = true;
            fit.support.push(points[pick]);
            fit.values.push(values[pick]);
            let free: Vec<usize> = (0..n).filter(|&i| !is_support[i]).collect();
            fit.weights = loewner_weights(points, values, &fit, &free, None)?;
            let mut worst = 0.0f64;
            for &i in &free {
                residual[i] = values[i] - fit.eval(points[i]);
                worst = worst.max(residual[i].abs());
            }
            if best.as_ref().is_none_or(|(_, b)| worst < *b) {
                best = Some((fit.clone(), worst));
            }
        }
        if let Some((b, _)) = best {
            fit = b;
        }

        let free: Vec<usize> = (0..n).filter(|&i| !fit.support.contains(&points[i])).collect();
        let max_res = |w: &AaaFit| {
            free.iter().map(|&i| (values[i] - w.eval(points[i])).abs()).fold(0.0f64, f64::max)
        };
        fit.max_rel_residual = max_res(&fit) / scale;

        // Lawson polish: reweight rows by their running residual and
        // re-solve; keep the best weights seen (the iteration is not
        // monotone, so never accept a regression).
        if opts.lawson_iters > 0 && !free.is_empty() {
            let mut gamma = vec![1.0; free.len()];
            for _ in 0..opts.lawson_iters {
                for (g, &i) in gamma.iter_mut().zip(&free) {
                    *g *= (values[i] - fit.eval(points[i])).abs() + 1e-3 * opts.tol * scale;
                }
                let gmax = gamma.iter().fold(0.0f64, |m, g| m.max(*g));
                if gmax <= 0.0 {
                    break;
                }
                gamma.iter_mut().for_each(|g| *g /= gmax);
                let mut trial = fit.clone();
                trial.weights = loewner_weights(points, values, &fit, &free, Some(&gamma))?;
                let rel = max_res(&trial) / scale;
                if rel < fit.max_rel_residual {
                    fit.weights = trial.weights;
                    fit.max_rel_residual = rel;
                }
            }
        }
        Ok(fit)
    }

    /// Evaluates the interpolant at `z` (exact at support points).
    pub fn eval(&self, z: f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for ((&zj, &fj), &wj) in self.support.iter().zip(&self.values).zip(&self.weights) {
            let d = z - zj;
            if d == 0.0 {
                return fj;
            }
            num += wj * fj / d;
            den += wj / d;
        }
        let r = num / den;
        if r.is_finite() {
            r
        } else {
            // A denominator zero between support points (a real pole of
            // the fit): answer the nearest support value rather than ±∞.
            let j = self
                .support
                .iter()
                .enumerate()
                .min_by(|a, b| (a.1 - z).abs().total_cmp(&(b.1 - z).abs()))
                .map_or(0, |(j, _)| j);
            self.values[j]
        }
    }

    /// Number of support points (the barycentric order).
    pub fn order(&self) -> usize {
        self.support.len()
    }

    /// Support points of the fit, in greedy selection order.
    pub fn support(&self) -> &[f64] {
        &self.support
    }

    /// Worst relative residual over the non-support fitting samples.
    pub fn max_rel_residual(&self) -> f64 {
        self.max_rel_residual
    }

    /// Magnitude normalization of the fitted data (`max |fᵢ|`);
    /// multiply by [`AaaFit::max_rel_residual`] for the absolute
    /// worst-case misfit.
    pub fn value_scale(&self) -> f64 {
        self.scale
    }

    /// Poles of the fitted rational: roots of the barycentric
    /// denominator `d(z) = Σⱼ wⱼ Πₖ≠ⱼ (z − zₖ)`, expanded on the
    /// affinely normalized support domain and solved as the eigenvalues
    /// of the companion matrix. Complex poles come in conjugate pairs
    /// (the data is real).
    ///
    /// # Errors
    /// Propagates eigenvalue failures (does not happen for finite
    /// weights).
    pub fn poles(&self) -> Result<Vec<Complex>> {
        let m = self.support.len();
        if m < 2 {
            return Ok(Vec::new());
        }
        let lo = self.support.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let hi = self.support.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let c = 0.5 * (lo + hi);
        let s = 0.5 * (hi - lo);
        if s == 0.0 {
            return Ok(Vec::new());
        }
        let t: Vec<f64> = self.support.iter().map(|z| (z - c) / s).collect();
        // d(t) = Σⱼ wⱼ Πₖ≠ⱼ (t − tₖ), degree ≤ m−1, by convolution.
        let mut coeffs = vec![0.0; m]; // coeffs[p] multiplies t^p
        for j in 0..m {
            let mut poly = vec![0.0; m];
            poly[0] = 1.0;
            let mut deg = 0;
            for (k, &tk) in t.iter().enumerate() {
                if k == j {
                    continue;
                }
                // poly ← poly·(t − tₖ)
                for p in (0..=deg).rev() {
                    poly[p + 1] += poly[p];
                    poly[p] *= -tk;
                }
                deg += 1;
            }
            for (cp, pp) in coeffs.iter_mut().zip(&poly) {
                *cp += self.weights[j] * pp;
            }
        }
        let cmax = coeffs.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        if cmax == 0.0 {
            return Ok(Vec::new());
        }
        let mut deg = m - 1;
        while deg > 0 && coeffs[deg].abs() <= 1e-13 * cmax {
            deg -= 1;
        }
        if deg == 0 {
            return Ok(Vec::new());
        }
        let lead = coeffs[deg];
        let companion = Mat::from_fn(deg, deg, |i, j| {
            if j == deg - 1 {
                -coeffs[i] / lead
            } else if i == j + 1 {
                1.0
            } else {
                0.0
            }
        });
        let roots = eigenvalues(&companion)?;
        Ok(roots.into_iter().map(|r| Complex::new(c + s * r.re, s * r.im)).collect())
    }

    /// Approximate heap bytes of the fit (three `f64` vectors).
    pub fn memory_bytes(&self) -> usize {
        3 * self.support.len() * 8
    }
}

/// Solves the AAA weight problem: the unit vector `w` minimizing
/// `‖diag(γ)·A·w‖₂` over the free (non-support) rows of the Loewner
/// matrix `A[i][j] = (f_i − f_j)/(z_i − z_j)`. Tall or square systems
/// take the smallest right singular vector directly; wide ones (more
/// support points than free samples, the near-interpolating regime) go
/// through the Gram matrix, whose smallest eigenvector is the same
/// minimizer and which the thin SVD can actually reach.
fn loewner_weights(
    points: &[f64],
    values: &[f64],
    fit: &AaaFit,
    free: &[usize],
    row_scale: Option<&[f64]>,
) -> Result<Vec<f64>> {
    let m = fit.support.len();
    if free.is_empty() {
        return Ok(vec![1.0; m]);
    }
    let a = Mat::from_fn(free.len(), m, |r, j| {
        let i = free[r];
        let g = row_scale.map_or(1.0, |s| s[r]);
        g * (values[i] - fit.values[j]) / (points[i] - fit.support[j])
    });
    let v = if a.rows() >= a.cols() {
        let svd = Svd::new(&a)?;
        svd.v.col(svd.sigma.len() - 1)
    } else {
        let gram = a.transpose().matmul(&a);
        let svd = Svd::new(&gram)?;
        svd.v.col(svd.sigma.len() - 1)
    };
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm == 0.0 || !norm.is_finite() {
        return Err(Error::Breakdown("aaa: degenerate weight vector"));
    }
    Ok(v.iter().map(|x| x / norm).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn interpolates_support_and_fits_rational_exactly() {
        // f(x) = (x + 2)/(x² + 1): degree-(1,2) rational, needs 4 points.
        let xs = grid(-3.0, 3.0, 40);
        let f = |x: f64| (x + 2.0) / (x * x + 1.0);
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let fit = AaaFit::fit(&xs, &ys, &AaaOptions::default()).unwrap();
        assert!(fit.order() <= 6, "low-order data must stay low order: {}", fit.order());
        assert!(fit.max_rel_residual() < 1e-10, "residual {}", fit.max_rel_residual());
        for &x in &[-2.77, -0.1, 0.33, 2.9] {
            assert!((fit.eval(x) - f(x)).abs() < 1e-9, "off-sample at {x}");
        }
        // Support points reproduce exactly.
        let z0 = fit.support()[0];
        assert_eq!(fit.eval(z0), f(z0));
    }

    #[test]
    fn recovers_known_poles() {
        // f(x) = 1/(x − 5) sampled on [0, 4]: one real pole at 5.
        let xs = grid(0.0, 4.0, 30);
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 / (x - 5.0)).collect();
        let fit = AaaFit::fit(&xs, &ys, &AaaOptions::default()).unwrap();
        let poles = fit.poles().unwrap();
        let hit = poles.iter().any(|p| (p.re - 5.0).abs() < 1e-6 && p.im.abs() < 1e-6);
        assert!(hit, "pole at 5 not found in {poles:?}");
    }

    #[test]
    fn complex_pole_pair_from_resonance() {
        // 1/(1 + x²) has poles at ±i.
        let xs = grid(-2.0, 2.0, 41);
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 / (1.0 + x * x)).collect();
        let fit = AaaFit::fit(&xs, &ys, &AaaOptions::default()).unwrap();
        let poles = fit.poles().unwrap();
        let hit = poles.iter().any(|p| p.re.abs() < 1e-6 && (p.im.abs() - 1.0).abs() < 1e-6);
        assert!(hit, "poles at ±i not found in {poles:?}");
    }

    #[test]
    fn residual_drops_as_support_grows() {
        // Non-rational data: the greedy residual (best configuration
        // over the explored orders, Lawson off — the polish optimizes
        // each cap independently and is therefore not comparable across
        // caps) must decrease monotonically as the support budget grows.
        let xs = grid(0.1, 3.0, 60);
        let ys: Vec<f64> = xs.iter().map(|&x| x.ln() * (3.0 * x).sin()).collect();
        let mut prev = f64::INFINITY;
        for cap in 2..=10 {
            let opts = AaaOptions { tol: 0.0, max_support: cap, lawson_iters: 0 };
            let fit = AaaFit::fit(&xs, &ys, &opts).unwrap();
            let res = fit.max_rel_residual();
            assert!(res <= prev * (1.0 + 1e-9), "cap {cap}: {res} > {prev}");
            prev = res;
        }
        assert!(prev < 1e-2, "10 support points should fit this well: {prev}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(AaaFit::fit(&[1.0], &[1.0], &AaaOptions::default()).is_err());
        assert!(AaaFit::fit(&[1.0, 1.0], &[1.0, 2.0], &AaaOptions::default()).is_err());
        assert!(AaaFit::fit(&[1.0, 2.0], &[1.0, f64::NAN], &AaaOptions::default()).is_err());
        assert!(AaaFit::fit(&[1.0, 2.0], &[1.0], &AaaOptions::default()).is_err());
    }

    #[test]
    fn zero_data_fits_zero() {
        let xs = grid(0.0, 1.0, 5);
        let fit = AaaFit::fit(&xs, &[0.0; 5], &AaaOptions::default()).unwrap();
        assert_eq!(fit.eval(0.37), 0.0);
    }
}
