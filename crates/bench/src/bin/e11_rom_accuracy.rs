//! E11 — Section 5: reduced-order modeling — AWE instability, PVL vs
//! Arnoldi moment efficiency, PRIMA passivity.
//!
//! Quantifies each §5 claim:
//! - "the direct computation of Padé approximations is numerically
//!   unstable" — AWE's error stagnates while PVL converges;
//! - Lanczos matches "twice as many moments as the Arnoldi algorithm" —
//!   measured directly on the moment sequences;
//! - "Lanczos-based methods may produce non-passive reduced-order models
//!   … post-processing is required" — detected and enforced;
//! - PRIMA-style congruence is passive by construction.

use rfsim::numerics::Complex;
use rfsim::rom::arnoldi::arnoldi_rom;
use rfsim::rom::awe::awe_breakdown_study;
use rfsim::rom::passivity::{enforce_passivity, is_passive, to_pole_residue};
use rfsim::rom::prima::prima_rom;
use rfsim::rom::pvl::pvl_rom;
use rfsim::rom::statespace::{log_freqs, rc_line, relative_error, rlc_ladder};
use rfsim_bench::{heading, timed};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e11");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(h: &mut Harness) -> Result<(), String> {
    println!("E11: reduced-order modeling accuracy (Section 5)");
    let sys = rc_line(200, 50.0, 1e-12);
    let freqs = log_freqs(1e3, 1e10, 60);

    heading("error vs order: AWE / PVL / Arnoldi / PRIMA on a 200-node RC line");
    println!("{:>6} {:>12} {:>12} {:>12} {:>12}", "q", "AWE", "PVL", "Arnoldi", "PRIMA");
    let (_, awe_errors) = awe_breakdown_study(&sys, 0.0, 14, &freqs);
    for q in [2usize, 4, 6, 8, 10, 12, 14] {
        let label = format!("q={q}");
        h.sweep_point(&label, &[("order", q as f64)], |pm| {
            // Individual ROM failures at a given order are data (AWE *is*
            // expected to degrade), not a run failure — print "fail" and
            // keep going; a failed order simply records no metric.
            let e_awe = awe_errors[q - 1];
            let e_pvl = pvl_rom(&sys, 0.0, q).map(|m| relative_error(&sys, &m, &freqs));
            let e_arn = arnoldi_rom(&sys, 0.0, q).map(|m| relative_error(&sys, &m, &freqs));
            let e_pri = prima_rom(&sys, 0.0, q).map(|m| relative_error(&sys, &m, &freqs));
            pm.metric("err_awe", e_awe);
            if let Ok(v) = e_pvl {
                pm.metric("err_pvl", v);
            }
            if let Ok(v) = e_arn {
                pm.metric("err_arnoldi", v);
            }
            if let Ok(v) = e_pri {
                pm.metric("err_prima", v);
            }
            let f = |r: Result<f64, _>| match r {
                Ok(v) => format!("{v:12.3e}"),
                Err(_) => format!("{:>12}", "fail"),
            };
            println!("{q:>6} {e_awe:>12.3e} {} {} {}", f(e_pvl), f(e_arn), f(e_pri));
        });
    }
    println!("shape: AWE stagnates near 1e-4 (instability); the Krylov methods converge.");

    heading("moment matching: PVL 2q vs Arnoldi q (order q = 4)");
    let q = 4;
    let exact = sys.moments(0.0, 2 * q).map_err(|e| format!("exact moments: {e}"))?;
    let m_pvl = pvl_rom(&sys, 0.0, q).map_err(|e| format!("PVL (q {q}): {e}"))?.moments(2 * q);
    let m_arn =
        arnoldi_rom(&sys, 0.0, q).map_err(|e| format!("Arnoldi (q {q}): {e}"))?.moments(2 * q);
    println!("{:>4} {:>13} {:>13} {:>13}", "j", "exact", "PVL rel err", "Arnoldi rel err");
    for j in 0..2 * q {
        let rel = |m: &[f64]| ((m[j] - exact[j]) / exact[j]).abs();
        println!("{j:>4} {:>13.4e} {:>13.2e} {:>13.2e}", exact[j], rel(&m_pvl), rel(&m_arn));
    }
    println!("PVL matches ~2q = 8 moments; Arnoldi only q = 4 — the §5 claim.");

    heading("RLC ladder (resonant): PVL vs Arnoldi at q = 12");
    let ladder = rlc_ladder(6, 2.0, 1e-9, 1e-12);
    let lfreqs = log_freqs(1e6, 2e10, 80);
    for (name, err) in [
        ("PVL", pvl_rom(&ladder, 0.0, 12).map(|m| relative_error(&ladder, &m, &lfreqs))),
        ("Arnoldi", arnoldi_rom(&ladder, 0.0, 12).map(|m| relative_error(&ladder, &m, &lfreqs))),
    ] {
        match err {
            Ok(e) => println!("{name:>8}: rel err {e:.3e}"),
            Err(e) => println!("{name:>8}: {e}"),
        }
    }

    heading("passivity: detection and post-processing");
    let pvl_dp = h.phase("passivity", || {
        let mut dp = rc_line(60, 100.0, 1e-12);
        dp.l = dp.b.clone(); // driving-point impedance
        let pvl_dp = pvl_rom(&dp, 0.0, 8).map_err(|e| format!("PVL driving-point: {e}"))?;
        let poles = pvl_dp.poles().map_err(|e| format!("PVL poles: {e}"))?;
        let rep = is_passive(&pvl_dp, &poles, 1e3, 1e10, 120);
        println!(
            "PVL driving-point model: stable = {}, min Re H(jw) = {:.3e} at {:.2e} Hz → passive = {}",
            rep.stable,
            rep.min_real,
            rep.worst_freq,
            rep.is_passive()
        );
        // A deliberately non-passive pole/residue model, then enforcement.
        let bad = rfsim::rom::statespace::PoleResidueModel {
            lambdas: vec![Complex::from_re(1.0 / 2e5), Complex::from_re(-1.0 / 1e6)],
            residues: vec![Complex::from_re(-20.0), Complex::from_re(80.0)],
            direct: 0.0,
            s0: 0.0,
        };
        let bad_poles = bad.poles();
        let bad_rep = is_passive(&bad, &bad_poles, 1e2, 1e8, 120);
        println!(
            "synthetic bad model: stable = {}, min Re = {:.3e} → passive = {}",
            bad_rep.stable,
            bad_rep.min_real,
            bad_rep.is_passive()
        );
        let fixed = enforce_passivity(&bad, 1e2, 1e8, 400);
        let fixed_poles = fixed.poles();
        let fixed_rep = is_passive(&fixed, &fixed_poles, 1e2, 1e8, 400);
        println!(
            "after pole reflection + conductance lift: stable = {}, min Re = {:.3e} → passive = {}",
            fixed_rep.stable,
            fixed_rep.min_real,
            fixed_rep.is_passive()
        );
        if !fixed_rep.is_passive() {
            return Err("passivity enforcement left a non-passive model".to_string());
        }
        // PRIMA passive by construction at every order.
        for q in [4usize, 8, 12] {
            let m = prima_rom(&dp, 0.0, q).map_err(|e| format!("PRIMA (q {q}): {e}"))?;
            let p = m.poles().map_err(|e| format!("PRIMA poles (q {q}): {e}"))?;
            if !is_passive(&m, &p, 1e3, 1e10, 120).is_passive() {
                return Err(format!("PRIMA congruence model non-passive at q = {q}"));
            }
        }
        println!("PRIMA congruence models passive at q = 4, 8, 12: true");
        Ok::<_, String>(pvl_dp)
    })?;

    heading("conversion fidelity (projection → pole/residue)");
    let (pr, t) = timed(|| to_pole_residue(&pvl_dp, 1e7));
    let pr = pr.map_err(|e| format!("pole/residue conversion: {e}"))?;
    let err = relative_error(&pvl_dp, &pr, &log_freqs(1e4, 1e9, 40));
    println!("pole/residue form reproduces the PVL model to {err:.2e} ({t:.3} s)");
    Ok(())
}
