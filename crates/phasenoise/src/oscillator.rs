//! Analytic oscillator models as ODE systems implementing the circuit
//! [`Dae`] trait: `ẋ + f(x) = 0` with `q(x) = x`.
//!
//! These are the test vehicles for the phase-noise theory — the theory is
//! "applicable to any oscillatory system, electrical or otherwise"
//! (paper, §3), so alongside the negative-resistance LC tank and ring
//! oscillator we include the canonical van der Pol system.

use rfsim_circuit::dae::{Dae, NoiseSource, Psd, TwoTime};
use rfsim_numerics::sparse::Triplets;

/// The van der Pol oscillator
/// `ẍ − μ(1 − x²)ẋ + x = 0`, as the first-order system
/// `ẋ₁ = x₂`, `ẋ₂ = μ(1 − x₁²)x₂ − x₁` (time normalized so the small-μ
/// period is 2π).
#[derive(Debug, Clone)]
pub struct VanDerPol {
    /// Nonlinearity parameter μ.
    pub mu: f64,
    /// White-noise intensity added to the `x₂` equation (A²/Hz analog).
    pub noise: f64,
}

impl VanDerPol {
    /// Creates a van der Pol oscillator with noise intensity `noise` on
    /// the velocity state.
    pub fn new(mu: f64, noise: f64) -> Self {
        VanDerPol { mu, noise }
    }

    /// A reasonable starting point and period guess for shooting.
    pub fn initial_guess(&self) -> (Vec<f64>, f64) {
        (vec![2.0, 0.0], 2.0 * std::f64::consts::PI * (1.0 + self.mu * self.mu / 16.0))
    }
}

impl Dae for VanDerPol {
    fn dim(&self) -> usize {
        2
    }

    fn eval(
        &self,
        x: &[f64],
        f: &mut [f64],
        q: &mut [f64],
        g: &mut Triplets<f64>,
        c: &mut Triplets<f64>,
    ) {
        // q = x, f = −g(x) so that q̇ + f = 0 reproduces ẋ = g(x).
        q.copy_from_slice(x);
        *c = Triplets::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        f[0] = -x[1];
        f[1] = -(self.mu * (1.0 - x[0] * x[0]) * x[1] - x[0]);
        *g = Triplets::new(2, 2);
        g.push(0, 1, -1.0);
        g.push(1, 0, -(-2.0 * self.mu * x[0] * x[1] - 1.0));
        g.push(1, 1, -(self.mu * (1.0 - x[0] * x[0])));
    }

    fn eval_b(&self, _t: TwoTime, b: &mut [f64]) {
        b.fill(0.0);
    }

    fn noise_sources(&self, _x_op: &[f64]) -> Vec<NoiseSource> {
        vec![NoiseSource {
            label: "vdp velocity noise".into(),
            from: Some(1),
            to: None,
            psd: Psd::White(self.noise),
        }]
    }
}

/// A negative-resistance LC oscillator: tank `L ∥ C` with a cubic
/// active conductance `i_nl(v) = −g₁·v + g₃·v³`.
///
/// States: `x₀ = v` (tank voltage), `x₁ = i_L` (inductor current).
///
/// ```text
/// C·v̇ = −i_L + g₁·v − g₃·v³ (+ noise)
/// L·i̇_L = v
/// ```
///
/// Steady amplitude `v ≈ 2√(g₁/(3g₃))`, frequency `≈ 1/(2π√(LC))`.
#[derive(Debug, Clone)]
pub struct LcOscillator {
    /// Tank inductance (H).
    pub l: f64,
    /// Tank capacitance (F).
    pub c: f64,
    /// Small-signal negative conductance magnitude (S).
    pub g1: f64,
    /// Cubic limiting coefficient (S/V²).
    pub g3: f64,
    /// White current-noise PSD injected at the tank node (A²/Hz).
    pub noise: f64,
}

impl LcOscillator {
    /// Creates the oscillator.
    pub fn new(l: f64, c: f64, g1: f64, g3: f64, noise: f64) -> Self {
        LcOscillator { l, c, g1, g3, noise }
    }

    /// Natural frequency `1/(2π√(LC))` (Hz).
    pub fn natural_freq(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (self.l * self.c).sqrt())
    }

    /// Predicted steady amplitude `2√(g₁/(3g₃))` (V).
    pub fn amplitude_estimate(&self) -> f64 {
        2.0 * (self.g1 / (3.0 * self.g3)).sqrt()
    }

    /// Starting point and period guess for shooting.
    pub fn initial_guess(&self) -> (Vec<f64>, f64) {
        (vec![self.amplitude_estimate(), 0.0], 1.0 / self.natural_freq())
    }
}

impl Dae for LcOscillator {
    fn dim(&self) -> usize {
        2
    }

    fn eval(
        &self,
        x: &[f64],
        f: &mut [f64],
        q: &mut [f64],
        g: &mut Triplets<f64>,
        c: &mut Triplets<f64>,
    ) {
        let (v, il) = (x[0], x[1]);
        // v̇ = (−i_L + g₁v − g₃v³)/C ;  i̇ = v/L
        q.copy_from_slice(x);
        *c = Triplets::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        f[0] = -(-il + self.g1 * v - self.g3 * v * v * v) / self.c;
        f[1] = -v / self.l;
        *g = Triplets::new(2, 2);
        g.push(0, 0, -(self.g1 - 3.0 * self.g3 * v * v) / self.c);
        g.push(0, 1, 1.0 / self.c);
        g.push(1, 0, -1.0 / self.l);
    }

    fn eval_b(&self, _t: TwoTime, b: &mut [f64]) {
        b.fill(0.0);
    }

    fn noise_sources(&self, _x_op: &[f64]) -> Vec<NoiseSource> {
        // Current noise at the tank node enters v̇ scaled by 1/C.
        vec![NoiseSource {
            label: "tank current noise".into(),
            from: Some(0),
            to: None,
            psd: Psd::White(self.noise / (self.c * self.c)),
        }]
    }
}

/// An N-stage ring oscillator: `τ·ẋᵢ = −xᵢ − K·tanh(x_{i−1})` with the ring
/// closed through an inverting connection (odd N sustains oscillation).
#[derive(Debug, Clone)]
pub struct RingOscillator {
    /// Number of stages (odd).
    pub stages: usize,
    /// Stage gain `K > 1`.
    pub gain: f64,
    /// Stage time constant τ (s).
    pub tau: f64,
    /// Per-stage white noise intensity.
    pub noise: f64,
}

impl RingOscillator {
    /// Creates a ring oscillator.
    ///
    /// # Panics
    /// Panics if `stages` is even or < 3.
    pub fn new(stages: usize, gain: f64, tau: f64, noise: f64) -> Self {
        assert!(stages >= 3 && stages % 2 == 1, "ring needs an odd stage count >= 3");
        RingOscillator { stages, gain, tau, noise }
    }

    /// Starting point and period guess (period ≈ 2·N·τ·ln(…) ~ use 2Nτ).
    pub fn initial_guess(&self) -> (Vec<f64>, f64) {
        let mut x0 = vec![0.0; self.stages];
        for (i, v) in x0.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        (x0, 2.0 * self.stages as f64 * self.tau)
    }
}

impl Dae for RingOscillator {
    fn dim(&self) -> usize {
        self.stages
    }

    fn eval(
        &self,
        x: &[f64],
        f: &mut [f64],
        q: &mut [f64],
        g: &mut Triplets<f64>,
        c: &mut Triplets<f64>,
    ) {
        let n = self.stages;
        q.copy_from_slice(x);
        *c = Triplets::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
        }
        *g = Triplets::new(n, n);
        for i in 0..n {
            let prev = (i + n - 1) % n;
            let drive = -self.gain * x[prev].tanh();
            f[i] = -(-x[i] + drive) / self.tau;
            g.push(i, i, 1.0 / self.tau);
            let sech2 = 1.0 - x[prev].tanh().powi(2);
            g.push(i, prev, self.gain * sech2 / self.tau);
        }
    }

    fn eval_b(&self, _t: TwoTime, b: &mut [f64]) {
        b.fill(0.0);
    }

    fn noise_sources(&self, _x_op: &[f64]) -> Vec<NoiseSource> {
        (0..self.stages)
            .map(|i| NoiseSource {
                label: format!("stage {i} noise"),
                from: Some(i),
                to: None,
                psd: Psd::White(self.noise),
            })
            .collect()
    }
}

/// Evaluates the autonomous vector field `ẋ = g(x) = b(0) − f(x)` of an
/// ODE-form DAE (identity `q`). Shared by the RK4 integrators in this
/// crate.
pub(crate) fn vector_field(dae: &dyn Dae, x: &[f64], out: &mut [f64]) {
    let n = dae.dim();
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut gt = Triplets::new(n, n);
    let mut ct = Triplets::new(n, n);
    dae.eval(x, &mut f, &mut q, &mut gt, &mut ct);
    let mut b = vec![0.0; n];
    dae.eval_b(TwoTime::uni(0.0), &mut b);
    for i in 0..n {
        out[i] = b[i] - f[i];
    }
}

/// Evaluates the state Jacobian `∂g/∂x = −G` of an ODE-form DAE as a dense
/// matrix.
pub(crate) fn state_jacobian(dae: &dyn Dae, x: &[f64]) -> rfsim_numerics::dense::Mat<f64> {
    let n = dae.dim();
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut gt = Triplets::new(n, n);
    let mut ct = Triplets::new(n, n);
    dae.eval(x, &mut f, &mut q, &mut gt, &mut ct);
    let g = gt.to_csr();
    let mut j = rfsim_numerics::dense::Mat::zeros(n, n);
    for (r, c, v) in g.iter() {
        j[(r, c)] = -v;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdp_vector_field_signs() {
        let osc = VanDerPol::new(0.5, 0.0);
        let mut out = vec![0.0; 2];
        vector_field(&osc, &[1.0, 0.0], &mut out);
        // ẋ1 = x2 = 0, ẋ2 = −x1 = −1.
        assert_eq!(out[0], 0.0);
        assert_eq!(out[1], -1.0);
    }

    #[test]
    fn lc_frequency_and_amplitude_estimates() {
        let osc = LcOscillator::new(1e-9, 1e-12, 1e-3, 1e-4, 0.0);
        assert!((osc.natural_freq() - 5.0329e9).abs() / 5.03e9 < 1e-3);
        assert!((osc.amplitude_estimate() - 2.0 * (10.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ring_requires_odd_stages() {
        let r = RingOscillator::new(3, 2.0, 1e-9, 0.0);
        assert_eq!(r.dim(), 3);
        let res = std::panic::catch_unwind(|| RingOscillator::new(4, 2.0, 1e-9, 0.0));
        assert!(res.is_err());
    }

    #[test]
    fn state_jacobian_matches_finite_difference() {
        let osc = VanDerPol::new(1.3, 0.0);
        let x = [0.7, -0.4];
        let j = state_jacobian(&osc, &x);
        let eps = 1e-7;
        for col in 0..2 {
            let mut xp = x;
            xp[col] += eps;
            let mut gp = vec![0.0; 2];
            let mut gm = vec![0.0; 2];
            vector_field(&osc, &xp, &mut gp);
            vector_field(&osc, &x, &mut gm);
            for row in 0..2 {
                let fd = (gp[row] - gm[row]) / eps;
                assert!((j[(row, col)] - fd).abs() < 1e-5, "({row},{col})");
            }
        }
    }

    #[test]
    fn noise_sources_present() {
        let osc = LcOscillator::new(1e-9, 1e-12, 1e-3, 1e-4, 1e-20);
        assert_eq!(osc.noise_sources(&[0.0, 0.0]).len(), 1);
        let ring = RingOscillator::new(5, 2.0, 1e-9, 1e-18);
        assert_eq!(ring.noise_sources(&[0.0; 5]).len(), 5);
    }
}
