//! Strategy trait and the combinators the workspace's tests use.

use crate::collection::SizeRange;
use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// `try_gen` returns `None` when a filter rejects the drawn value; the
/// runner retries the whole case (upstream retries locally, but with
/// the mild filters used here the difference is immaterial).
pub trait Strategy: Sized {
    type Value;

    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        f: F,
    ) -> Filter<Self, F> {
        Filter { inner: self, _whence: whence.into(), f }
    }

    fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn try_gen(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn try_gen(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.try_gen(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn try_gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.try_gen(rng).filter(|v| (self.f)(v))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn try_gen(&self, rng: &mut TestRng) -> Option<O::Value> {
        let mid = self.inner.try_gen(rng)?;
        (self.f)(mid).try_gen(rng)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn try_gen(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + rng.next_f64_unit() * (self.end - self.start))
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn try_gen(&self, rng: &mut TestRng) -> Option<f32> {
        Some(self.start + (rng.next_f64_unit() as f32) * (self.end - self.start))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn try_gen(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                Some((self.start as i128 + v) as $t)
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.try_gen(rng)?,)+))
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Built by [`crate::collection::vec`].
pub struct VecStrategy<S, Z> {
    pub(crate) element: S,
    pub(crate) size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn try_gen(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let n = self.size.pick(rng);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.element.try_gen(rng)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..500 {
            let x = (-2.0f64..3.0).try_gen(&mut rng).unwrap();
            assert!((-2.0..3.0).contains(&x));
            let k = (5usize..9).try_gen(&mut rng).unwrap();
            assert!((5..9).contains(&k));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let strat = (0.0f64..1.0).prop_map(|x| x * 10.0).prop_filter("big", |x| *x > 5.0);
        let mut rng = TestRng::from_seed(9);
        let mut accepted = 0;
        for _ in 0..200 {
            if let Some(v) = strat.try_gen(&mut rng) {
                assert!(v > 5.0 && v < 10.0);
                accepted += 1;
            }
        }
        assert!(accepted > 50, "filter accepted only {accepted}/200");
    }

    #[test]
    fn vec_of_tuples_has_requested_len() {
        let strat = crate::collection::vec((0.0f64..1.0, 0.0f64..1.0), 7usize);
        let mut rng = TestRng::from_seed(1);
        assert_eq!(strat.try_gen(&mut rng).unwrap().len(), 7);
    }

    #[test]
    fn ranged_vec_len_in_bounds() {
        let strat = crate::collection::vec(0.0f64..1.0, 2usize..6);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = strat.try_gen(&mut rng).unwrap();
            assert!((2..6).contains(&v.len()));
        }
    }
}
