//! E9 — Fig 7: spiral inductor on a lossy substrate, simulation vs
//! "measurement".
//!
//! The paper compares IES³-based electromagnetic simulation of an
//! integrated CMOS inductor against measurements. Hardware being
//! unavailable, the measurement surrogate is a refined-discretization
//! extraction of the same spiral (6 panels/segment, 24-point inductance
//! quadrature) with 1% instrument noise; the "simulation" uses production
//! settings (2 panels/segment, 6-point quadrature). Reported: L(f), Q(f)
//! and |S₁₁| from 0.2 GHz to past self-resonance.

use rfsim::em::inductor::SpiralInductor;
use rfsim_bench::{heading, sweep_adaptive, sweep_cold};
use rfsim_observe::Harness;
use std::process::ExitCode;

/// Deterministic pseudo-noise in [−1, 1] (measurement jitter surrogate).
fn noise(i: usize) -> f64 {
    let mut x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    x ^= x >> 33;
    ((x >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

fn main() -> ExitCode {
    let mut h = Harness::new("e09");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(h: &mut Harness) -> Result<(), String> {
    println!("E9: spiral inductor extraction vs synthetic measurement (Fig 7)");
    println!("worker pool: {} thread(s) (RFSIM_THREADS)", rfsim::parallel::thread_count());
    let spiral = SpiralInductor::default();
    println!(
        "{} turns, {:.0} µm outer, {:.0} µm trace, oxide {:.1} µm, ρ_sub {:.0e} Ω·m",
        spiral.turns,
        spiral.outer * 1e6,
        spiral.width * 1e6,
        spiral.oxide * 1e6,
        spiral.rho_sub
    );

    let sim = h.sweep_point("extract:sim", &[("panels_per_seg", 2.0), ("quad", 6.0)], |pm| {
        let sim = spiral.extract(2, 6).map_err(|e| format!("extraction (sim settings): {e}"))?;
        pm.metric("l_nh", sim.l_series * 1e9);
        pm.metric("r_dc", sim.r_dc);
        pm.metric("c_ox_ff", sim.c_ox * 1e15);
        Ok::<_, String>(sim)
    })?;
    let meas = h.sweep_point("extract:ref", &[("panels_per_seg", 6.0), ("quad", 24.0)], |pm| {
        let meas = spiral.extract(6, 24).map_err(|e| format!("extraction (reference): {e}"))?;
        pm.metric("l_nh", meas.l_series * 1e9);
        pm.metric("c_ox_ff", meas.c_ox * 1e15);
        Ok::<_, String>(meas)
    })?;
    println!(
        "simulation: {} segments, L = {:.3} nH, R = {:.2} Ω, Cox = {:.1} fF",
        sim.segments,
        sim.l_series * 1e9,
        sim.r_dc,
        sim.c_ox * 1e15,
    );
    println!(
        "reference:  L = {:.3} nH, Cox = {:.1} fF; SRF(sim) = {:.2} GHz",
        meas.l_series * 1e9,
        meas.c_ox * 1e15,
        sim.self_resonance() / 1e9
    );

    heading("L(f), Q(f), |S11| — simulated vs measured");
    println!(
        "{:>9} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "f (GHz)", "L_sim(nH)", "L_mea(nH)", "Q_sim", "Q_mea", "S11_sim", "S11_mea"
    );
    let fsr = sim.self_resonance();
    let freqs: Vec<f64> =
        (0..14).map(|i| 0.2e9 * (fsr * 1.6 / 0.2e9).powf(i as f64 / 13.0)).collect();
    let mut max_dev: f64 = 0.0;
    for (i, &f) in freqs.iter().enumerate() {
        let ls = sim.l_eff(f);
        // Synthetic measurement: reference model + 1% noise.
        let lm = meas.l_eff(f) * (1.0 + 0.01 * noise(i));
        let qs = sim.q(f);
        let qm = meas.q(f) * (1.0 + 0.01 * noise(i + 100));
        let ss = sim.s11(f, 50.0).abs();
        let sm = (meas.s11(f, 50.0).abs() + 0.002 * noise(i + 200)).clamp(0.0, 1.0);
        if f < 0.8 * fsr {
            max_dev = max_dev.max(((ls - lm) / lm).abs());
        }
        println!(
            "{:>9.2} {:>10.3} {:>10.3} {:>8.2} {:>8.2} {:>8.4} {:>8.4}",
            f / 1e9,
            ls * 1e9,
            lm * 1e9,
            qs,
            qm,
            ss,
            sm
        );
    }
    println!(
        "\nmax |L_sim − L_meas|/L below 0.8·SRF: {:.1}% — the 'good agreement'\n\
         of Fig 7; both curves rise toward the same self-resonance and the\n\
         inductance collapses beyond it.",
        max_dev * 100.0
    );

    // --- Substrate-aware C_ox(f) sweep: the lossy substrate's image
    // coefficient k(f) relaxes with frequency, so every point has its own
    // MoM matrix A(k) = A_free − k·A_image. Warm mode compresses the two
    // kernel halves once and rides a warm-started, subspace-recycled
    // GMRES across points (`extract_swept`); RFSIM_SWEEP_MODE=adaptive
    // additionally fits the rational surrogate and only issues true
    // solves where the model is uncertain (the rest of the grid reads
    // from the fit); RFSIM_SWEEP_MODE=cold rebuilds the half-space
    // matrix and solves from scratch at every point, which is what CI
    // gates the speedup against.
    let cold = sweep_cold();
    let adaptive = sweep_adaptive();
    heading(if cold {
        "substrate-relaxation C_ox(f) sweep — COLD (rebuild per point)"
    } else if adaptive {
        "substrate-relaxation C_ox(f) sweep — ADAPTIVE (surrogate-driven solves)"
    } else {
        "substrate-relaxation C_ox(f) sweep — IES³ build-once + Krylov recycling"
    });
    use rfsim::em::adaptive::AdaptiveSweep;
    use rfsim::em::geom::spiral_panels;
    use rfsim::em::ies3::{CompressedMatrix, Ies3Options};
    use rfsim::em::inductor::SweptExtractor;
    use rfsim::em::mom::MomProblem;
    use rfsim::em::GreenFn;
    use rfsim::numerics::krylov::KrylovOptions;
    let sfreqs: Vec<f64> =
        (0..16).map(|i| 0.5e9 * (20e9f64 / 0.5e9).powf(i as f64 / 15.0)).collect();
    let n_freqs = sfreqs.len();
    // Reference-grade mesh: the per-point matrix is large enough that
    // rebuilding it cold at every frequency is the dominant cost.
    let mesh = 6;
    // Warm and adaptive legs share the build-once operators; hoisting
    // the IES³ compression into its own phase leaves `recycle:freqs`
    // timing only the per-point solves the two modes differ in.
    let mut engine = if cold {
        None
    } else {
        Some(h.phase("build", || {
            SweptExtractor::new(&spiral, mesh, 6).map_err(|e| format!("swept build: {e}"))
        })?)
    };
    let c_ox = h.sweep_point(
        "recycle:freqs",
        &[
            ("points", n_freqs as f64),
            ("cold", if cold { 1.0 } else { 0.0 }),
            ("adaptive", if adaptive { 1.0 } else { 0.0 }),
        ],
        |pm| {
            let c: Vec<f64> = if cold {
                let segs = spiral.segments();
                let panels = spiral_panels(&segs, mesh, 0);
                sfreqs
                    .iter()
                    .map(|&f| {
                        let k = spiral.substrate_image_coefficient(f);
                        let green = GreenFn::HalfSpace { eps_r: spiral.eps_ox, z0: 0.0, k };
                        let p = MomProblem::new(panels.clone(), green)
                            .map_err(|e| format!("cold sweep setup ({f:.2e} Hz): {e}"))?;
                        let cm =
                            CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default())
                                .map_err(|e| format!("cold IES³ build ({f:.2e} Hz): {e}"))?;
                        let (q, _) = p
                            .solve_iterative(
                                &cm,
                                &[1.0],
                                &KrylovOptions { tol: 1e-9, ..Default::default() },
                            )
                            .map_err(|e| format!("cold GMRES ({f:.2e} Hz): {e}"))?;
                        Ok::<_, String>(q.iter().sum::<f64>() / 2.0)
                    })
                    .collect::<Result<_, _>>()?
            } else if adaptive {
                let mut sweep = AdaptiveSweep::from_extractor(
                    engine.take().expect("engine built for the non-cold legs"),
                    Default::default(),
                );
                let c = sweep
                    .sweep(&sfreqs)
                    .map_err(|e| format!("adaptive sweep: {e}"))?
                    .iter()
                    .map(|m| m.c_ox)
                    .collect();
                pm.metric("true_solves", sweep.true_solves() as f64);
                pm.metric("surrogate_order", sweep.surrogate().len() as f64);
                c
            } else {
                let engine = engine.as_mut().expect("engine built for the non-cold legs");
                sfreqs
                    .iter()
                    .map(|&f| {
                        engine
                            .extract_at(f)
                            .map(|m| m.c_ox)
                            .map_err(|e| format!("swept extraction ({f:.2e} Hz): {e}"))
                    })
                    .collect::<Result<_, _>>()?
            };
            pm.metric("c_ox_ff_lo", c[0] * 1e15);
            pm.metric("c_ox_ff_hi", c[n_freqs - 1] * 1e15);
            Ok::<_, String>(c)
        },
    )?;
    println!("{:>9} {:>8} {:>12}", "f (GHz)", "k(f)", "C_ox (fF)");
    for (&f, &c) in sfreqs.iter().zip(&c_ox) {
        println!(
            "{:>9.2} {:>8.4} {:>12.2}",
            f / 1e9,
            spiral.substrate_image_coefficient(f),
            c * 1e15
        );
    }
    println!(
        "{n_freqs} matrices A(k) = A_free − k·A_image share {} compressed kernel\n\
         build(s); C_ox relaxes as the substrate stops looking like a ground\n\
         plane above its dielectric relaxation frequency.",
        if cold { "no" } else { "two" }
    );
    if adaptive {
        println!(
            "adaptive mode: the rational surrogate answered the {n_freqs}-point grid\n\
             from a fraction of the true solves (see the true_solves metric);\n\
             every grid value agrees with a dense warm sweep to the surrogate\n\
             tolerance."
        );
    }

    // --- Fig 8: multi-component assembly (spiral + capacitor plates)
    // extracted as ONE coupled system through IES³ — the paper's "critical
    // multi-component assemblies such as the resonator shown in Figure 8".
    heading("Fig 8: coupled multi-component assembly via IES³");
    use rfsim::em::geom::mesh_plate;
    use rfsim::em::mom::capacitance_matrix_iterative;
    let cap = h.phase("assembly", || {
        let segs = spiral.segments();
        let mut panels = spiral_panels(&segs, 3, 0); // conductor 0: the spiral
        panels.extend(mesh_plate(-250e-6, -60e-6, 1e-6, 120e-6, 120e-6, 6, 6, 1));
        panels.extend(mesh_plate(130e-6, -60e-6, 1e-6, 120e-6, 120e-6, 6, 6, 2));
        let assembly = MomProblem::new(panels, GreenFn::HalfSpace { eps_r: 3.9, z0: 0.0, k: 0.7 })
            .map_err(|e| format!("assembly setup: {e}"))?;
        let cm =
            CompressedMatrix::build(&assembly.panels, &assembly.green, &Ies3Options::default())
                .map_err(|e| format!("assembly IES³ build: {e}"))?;
        println!(
            "{} panels across 3 conductors; IES³ {} B vs dense {} B, {} low-rank blocks",
            assembly.len(),
            cm.memory_bytes(),
            assembly.len() * assembly.len() * 8,
            cm.low_rank_blocks()
        );
        // All three conductor excitations solve together as one block
        // GMRES against the shared compressed operator — the Krylov space
        // is built once, not once per column.
        let (c, stats) = capacitance_matrix_iterative(
            &assembly,
            &cm,
            &KrylovOptions { tol: 1e-8, ..Default::default() },
        )
        .map_err(|e| format!("assembly block GMRES: {e}"))?;
        println!(
            "block GMRES: {} basis columns across 3 excitations, {} operator applications",
            stats.iterations, stats.matvecs
        );
        let cap: Vec<Vec<f64>> = (0..3).map(|i| (0..3).map(|j| c[(i, j)]).collect()).collect();
        Ok::<_, String>(cap)
    })?;
    println!("coupled Maxwell capacitance matrix (fF):");
    for row in &cap {
        println!("  {:>9.3} {:>9.3} {:>9.3}", row[0] * 1e15, row[1] * 1e15, row[2] * 1e15);
    }
    println!(
        "spiral↔plate coupling C01 = {:.3} fF, plate↔plate C12 = {:.3} fF —\n\
         cross-component coupling captured in a single coupled solve, which\n\
         is what partitioned per-component extraction would miss.",
        -cap[0][1] * 1e15,
        -cap[1][2] * 1e15
    );
    Ok(())
}
