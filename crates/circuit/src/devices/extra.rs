//! Additional devices: current-controlled sources (self-contained — each
//! carries its own zero-volt sense branch, like SPICE's F/H sources use a
//! named V source) and the junction varactor that RF VCO work needs.

use crate::dae::{LoadCtx, Var};
use crate::netlist::{Device, NodeId};

/// Current-controlled current source:
/// `i(out+ → out−) = gain·i_sense`, where `i_sense` flows through the
/// device's internal zero-volt branch from `sense+` to `sense−`.
#[derive(Debug, Clone)]
pub struct Cccs {
    name: String,
    out_p: NodeId,
    out_n: NodeId,
    sense_p: NodeId,
    sense_n: NodeId,
    gain: f64,
}

impl Cccs {
    /// Creates a CCCS with the given current gain.
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        sense_p: NodeId,
        sense_n: NodeId,
        gain: f64,
    ) -> Self {
        Cccs { name: name.into(), out_p, out_n, sense_p, sense_n, gain }
    }
}

impl Device for Cccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let i_s = ctx.branch_current(0);
        // Sense branch: zero-volt source between sense+ and sense−.
        ctx.add_f(Var::Node(self.sense_p), i_s);
        ctx.add_f(Var::Node(self.sense_n), -i_s);
        ctx.add_g(Var::Node(self.sense_p), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.sense_n), Var::Branch(0), -1.0);
        ctx.add_f(Var::Branch(0), ctx.v(self.sense_p) - ctx.v(self.sense_n));
        ctx.add_g(Var::Branch(0), Var::Node(self.sense_p), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.sense_n), -1.0);
        // Controlled output current.
        let i_out = self.gain * i_s;
        ctx.add_f(Var::Node(self.out_p), i_out);
        ctx.add_f(Var::Node(self.out_n), -i_out);
        ctx.add_g(Var::Node(self.out_p), Var::Branch(0), self.gain);
        ctx.add_g(Var::Node(self.out_n), Var::Branch(0), -self.gain);
    }
}

/// Current-controlled voltage source:
/// `v(out+) − v(out−) = r_trans·i_sense` (transresistance), with an
/// internal zero-volt sense branch and an output branch.
#[derive(Debug, Clone)]
pub struct Ccvs {
    name: String,
    out_p: NodeId,
    out_n: NodeId,
    sense_p: NodeId,
    sense_n: NodeId,
    r_trans: f64,
}

impl Ccvs {
    /// Creates a CCVS with transresistance `r_trans` (Ω).
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        sense_p: NodeId,
        sense_n: NodeId,
        r_trans: f64,
    ) -> Self {
        Ccvs { name: name.into(), out_p, out_n, sense_p, sense_n, r_trans }
    }
}

impl Device for Ccvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        2 // 0: sense, 1: output
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let i_s = ctx.branch_current(0);
        let i_o = ctx.branch_current(1);
        // Sense branch (0 V).
        ctx.add_f(Var::Node(self.sense_p), i_s);
        ctx.add_f(Var::Node(self.sense_n), -i_s);
        ctx.add_g(Var::Node(self.sense_p), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.sense_n), Var::Branch(0), -1.0);
        ctx.add_f(Var::Branch(0), ctx.v(self.sense_p) - ctx.v(self.sense_n));
        ctx.add_g(Var::Branch(0), Var::Node(self.sense_p), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.sense_n), -1.0);
        // Output branch: v_out − r·i_sense = 0.
        ctx.add_f(Var::Node(self.out_p), i_o);
        ctx.add_f(Var::Node(self.out_n), -i_o);
        ctx.add_g(Var::Node(self.out_p), Var::Branch(1), 1.0);
        ctx.add_g(Var::Node(self.out_n), Var::Branch(1), -1.0);
        ctx.add_f(Var::Branch(1), ctx.v(self.out_p) - ctx.v(self.out_n) - self.r_trans * i_s);
        ctx.add_g(Var::Branch(1), Var::Node(self.out_p), 1.0);
        ctx.add_g(Var::Branch(1), Var::Node(self.out_n), -1.0);
        ctx.add_g(Var::Branch(1), Var::Branch(0), -self.r_trans);
    }
}

/// A reverse-biased junction varactor: voltage-dependent capacitance
/// `C(v) = C₀ / (1 + v_r/Φ)^γ` for reverse voltage `v_r = v_cathode −
/// v_anode ≥ 0`, with the charge integrated in closed form and a linear
/// extension into (unintended) forward bias.
///
/// This is the tuning element of RF VCOs — the standard application of
/// the paper's §3 oscillators.
#[derive(Debug, Clone)]
pub struct Varactor {
    name: String,
    anode: NodeId,
    cathode: NodeId,
    c0: f64,
    phi: f64,
    gamma: f64,
}

impl Varactor {
    /// Creates a varactor with zero-bias capacitance `c0`, built-in
    /// potential 0.7 V and grading coefficient 0.5 (abrupt junction).
    ///
    /// # Panics
    /// Panics for non-positive `c0`.
    pub fn new(name: &str, anode: NodeId, cathode: NodeId, c0: f64) -> Self {
        assert!(c0 > 0.0, "varactor {name}: c0 must be positive");
        Varactor { name: name.into(), anode, cathode, c0, phi: 0.7, gamma: 0.5 }
    }

    /// Sets the grading coefficient γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Charge and capacitance at reverse voltage `vr` (cathode − anode).
    /// Charge is measured on the cathode.
    pub fn qc(&self, vr: f64) -> (f64, f64) {
        if vr > -self.phi / 2.0 {
            // q(vr) = ∫C dv = C₀·Φ/(1−γ)·[(1 + vr/Φ)^{1−γ} − 1]
            let u = 1.0 + vr / self.phi;
            let q = self.c0 * self.phi / (1.0 - self.gamma) * (u.powf(1.0 - self.gamma) - 1.0);
            let c = self.c0 / u.powf(self.gamma);
            (q, c)
        } else {
            // Deep forward bias: linear extension at the edge capacitance.
            let edge = -self.phi / 2.0;
            let (q_edge, c_edge) = self.qc(edge + 1e-12);
            (q_edge + c_edge * (vr - edge), c_edge)
        }
    }

    /// Small-signal capacitance at reverse bias `vr`.
    pub fn capacitance(&self, vr: f64) -> f64 {
        self.qc(vr).1
    }
}

impl Device for Varactor {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let vr = ctx.v(self.cathode) - ctx.v(self.anode);
        let (q, c) = self.qc(vr);
        // Charge +q on the cathode, −q on the anode.
        ctx.add_q(Var::Node(self.cathode), q);
        ctx.add_q(Var::Node(self.anode), -q);
        ctx.add_c(Var::Node(self.cathode), Var::Node(self.cathode), c);
        ctx.add_c(Var::Node(self.cathode), Var::Node(self.anode), -c);
        ctx.add_c(Var::Node(self.anode), Var::Node(self.cathode), -c);
        ctx.add_c(Var::Node(self.anode), Var::Node(self.anode), c);
    }
}

/// A cubic nonlinear conductance `i(a → b) = g1·v + g3·v³` with
/// `v = v_a − v_b`.
///
/// With `g1 < 0 < g3` this is the classic negative-resistance element that
/// sustains LC oscillation and limits its amplitude at
/// `v̂ = 2√(−g1/(3·g3))` — the active core of the §3 oscillator studies at
/// circuit level. An optional white noise current source models the
/// element's electronic noise.
#[derive(Debug, Clone)]
pub struct NonlinearConductance {
    name: String,
    a: NodeId,
    b: NodeId,
    g1: f64,
    g3: f64,
    noise_psd: f64,
}

impl NonlinearConductance {
    /// Creates the element. `g1` may be negative (active).
    pub fn new(name: &str, a: NodeId, b: NodeId, g1: f64, g3: f64) -> Self {
        NonlinearConductance { name: name.into(), a, b, g1, g3, noise_psd: 0.0 }
    }

    /// Attaches a white current-noise generator of the given PSD (A²/Hz).
    pub fn with_noise(mut self, psd: f64) -> Self {
        self.noise_psd = psd;
        self
    }
}

impl Device for NonlinearConductance {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let v = ctx.v(self.a) - ctx.v(self.b);
        let i = self.g1 * v + self.g3 * v * v * v;
        let g = self.g1 + 3.0 * self.g3 * v * v;
        ctx.add_f(Var::Node(self.a), i);
        ctx.add_f(Var::Node(self.b), -i);
        ctx.add_g(Var::Node(self.a), Var::Node(self.a), g);
        ctx.add_g(Var::Node(self.a), Var::Node(self.b), -g);
        ctx.add_g(Var::Node(self.b), Var::Node(self.a), -g);
        ctx.add_g(Var::Node(self.b), Var::Node(self.b), g);
    }

    fn noise(&self, _x_op: &[f64], ctx: &crate::dae::NoiseCtx<'_>) -> Vec<crate::dae::NoiseSource> {
        if self.noise_psd <= 0.0 {
            return Vec::new();
        }
        vec![crate::dae::NoiseSource {
            label: format!("{} noise", self.name),
            from: ctx.index(Var::Node(self.a)),
            to: ctx.index(Var::Node(self.b)),
            psd: crate::dae::Psd::White(self.noise_psd),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::Circuit;

    #[test]
    fn cccs_mirrors_current() {
        // 1 mA through the sense path; CCCS gain 2 drives a 1 kΩ load.
        let mut ckt = Circuit::new();
        let s = ckt.node("s");
        let o = ckt.node("o");
        ckt.add(ISource::dc("I1", Circuit::GROUND, s, 1e-3));
        ckt.add(Cccs::new("F1", Circuit::GROUND, o, s, Circuit::GROUND, 2.0));
        ckt.add(Resistor::new("RL", o, Circuit::GROUND, 1e3));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        // Output current 2 mA into the load (through out−=o): v_o = +2 V.
        assert!((op.voltage(o) - 2.0).abs() < 1e-9, "v_o = {}", op.voltage(o));
        // The sense path is a perfect short: v_s = 0.
        assert!(op.voltage(s).abs() < 1e-12);
    }

    #[test]
    fn ccvs_transresistance() {
        let mut ckt = Circuit::new();
        let s = ckt.node("s");
        let o = ckt.node("o");
        ckt.add(ISource::dc("I1", Circuit::GROUND, s, 2e-3));
        ckt.add(Ccvs::new("H1", o, Circuit::GROUND, s, Circuit::GROUND, 500.0));
        ckt.add(Resistor::new("RL", o, Circuit::GROUND, 1e3));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        assert!((op.voltage(o) - 1.0).abs() < 1e-9, "v_o = {}", op.voltage(o));
    }

    #[test]
    fn varactor_capacitance_tunes_down_with_reverse_bias() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = Varactor::new("CV1", a, Circuit::GROUND, 1e-12);
        let c0 = v.capacitance(0.0);
        let c5 = v.capacitance(5.0);
        assert!((c0 - 1e-12).abs() < 1e-18);
        // C(5 V) = C0/√(1+5/0.7) ≈ C0/2.85.
        assert!((c5 - 1e-12 / (1.0f64 + 5.0 / 0.7).sqrt()).abs() < 1e-18);
        assert!(c5 < c0 / 2.0);
    }

    #[test]
    fn varactor_charge_consistent_with_capacitance() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = Varactor::new("CV1", a, Circuit::GROUND, 2e-12).with_gamma(0.4);
        // dq/dv ≈ C by finite difference across the bias range.
        for vr in [-0.2, 0.0, 1.0, 3.0, 10.0] {
            let eps = 1e-6;
            let (qp, _) = v.qc(vr + eps);
            let (qm, _) = v.qc(vr - eps);
            let fd = (qp - qm) / (2.0 * eps);
            let (_, c) = v.qc(vr);
            assert!((fd - c).abs() / c < 1e-5, "vr = {vr}: fd {fd:.3e} vs c {c:.3e}");
        }
    }

    #[test]
    fn varactor_shifts_rc_corner_with_bias() {
        // Varactor as the C of an RC filter: more reverse bias → smaller C
        // → higher corner (a VCO's tuning mechanism in filter form).
        let corner_of = |bias: f64| {
            let mut ckt = Circuit::new();
            let inp = ckt.node("in");
            let out = ckt.node("out");
            let vb = ckt.node("vb");
            ckt.add(VSource::dc("V1", inp, Circuit::GROUND, 0.0));
            ckt.add(VSource::dc("VB", vb, Circuit::GROUND, bias));
            ckt.add(Resistor::new("R1", inp, out, 1e3).noiseless());
            ckt.add(Varactor::new("CV1", out, vb, 10e-12));
            // Bias resistor keeps DC defined at `out`.
            ckt.add(Resistor::new("RB", out, Circuit::GROUND, 1e9).noiseless());
            let dae = ckt.into_dae().unwrap();
            let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
            let mut b_ac = vec![0.0; rfsim_numerics_dim(&dae)];
            b_ac[dae.branch_index("V1", 0).unwrap()] = 1.0;
            // Find the −3 dB point by bisection over a coarse grid.
            let freqs: Vec<f64> = (0..60).map(|i| 1e6 * 10f64.powf(i as f64 / 20.0)).collect();
            let res = crate::ac::ac_sweep(&dae, &op.x, &b_ac, &freqs).unwrap();
            let g = res.gain_db(out);
            let idx = g.iter().position(|&v| v < -3.0103).unwrap_or(freqs.len() - 1);
            freqs[idx]
        };
        let f_low_bias = corner_of(0.0);
        let f_high_bias = corner_of(10.0);
        assert!(
            f_high_bias > 1.5 * f_low_bias,
            "corner did not tune: {f_low_bias:.3e} → {f_high_bias:.3e}"
        );
    }

    fn rfsim_numerics_dim(dae: &crate::CircuitDae) -> usize {
        use crate::dae::Dae as _;
        dae.dim()
    }
}
