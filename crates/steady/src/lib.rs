#![warn(missing_docs)]
// Index-based loops are deliberate throughout: they mirror the
// subscripted linear-algebra notation of the algorithms implemented.
#![allow(clippy::needless_range_loop)]
//! Steady-state analysis engines: harmonic balance and shooting
//! (paper, Section 2.1).
//!
//! Harmonic balance (HB) "represents all circuit waveforms in the frequency
//! domain" and is "particularly natural in the case of incommensurate
//! multi-tone drive". The implementation here follows the paper's key
//! insight for RF ICs: the HB Jacobian is never formed — GMRES solves each
//! Newton correction through a matrix-free operator, with a per-harmonic
//! block-diagonal preconditioner built from the time-averaged circuit
//! linearization. That is what lets HB "handle integrated designs
//! containing many more nonlinear components than traditional
//! implementations".
//!
//! The module also provides the classic univariate [`shooting()`] method,
//! both as the baseline the paper compares MMFT against (Fig. 5) and as the
//! periodic-steady-state substrate for phase-noise analysis.

pub mod adaptive;
pub mod fourier;
pub mod hb;
pub mod shooting;

pub use adaptive::AdaptiveHbSweep;
pub use fourier::{GridWorkspace, SpectralGrid, ToneAxis};
pub use hb::{
    solve_hb, solve_hb_carried, solve_hb_sweep, HbHotPath, HbOptions, HbSolution, HbSolver,
    HbStats, HbSweep, NewtonCarry, PrecondRefresh,
};
pub use shooting::{shooting, ShootingOptions, ShootingResult};

/// Errors from the steady-state engines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Newton iteration on the boundary-value system failed.
    NoConvergence {
        /// Newton iterations performed.
        iterations: usize,
        /// Final residual infinity-norm.
        residual: f64,
        /// Last few residual norms (oldest first, ending with
        /// `residual`) for post-mortem diagnosis of the stall.
        residual_tail: Vec<f64>,
    },
    /// Underlying circuit error (DC solve, transient step, …).
    Circuit(rfsim_circuit::Error),
    /// Underlying linear-algebra error.
    Numerics(rfsim_numerics::Error),
    /// Invalid analysis setup (no tones, even grid size, …).
    InvalidSetup(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NoConvergence { iterations, residual, residual_tail } => {
                write!(
                    f,
                    "steady-state newton failed after {iterations} iterations \
                     (residual {residual:.3e}"
                )?;
                if !residual_tail.is_empty() {
                    write!(f, ", tail")?;
                    for r in residual_tail {
                        write!(f, " {r:.3e}")?;
                    }
                }
                write!(f, ")")
            }
            Error::Circuit(e) => write!(f, "circuit error: {e}"),
            Error::Numerics(e) => write!(f, "numerics error: {e}"),
            Error::InvalidSetup(msg) => write!(f, "invalid setup: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Circuit(e) => Some(e),
            Error::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfsim_circuit::Error> for Error {
    fn from(e: rfsim_circuit::Error) -> Self {
        Error::Circuit(e)
    }
}

impl From<rfsim_numerics::Error> for Error {
    fn from(e: rfsim_numerics::Error) -> Self {
        Error::Numerics(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
