//! Monte Carlo validation of the phase-noise theory: Euler–Maruyama
//! integration of the noisy oscillator SDE
//!
//! ```text
//!   dx = g(x)·dt + B(x)·dW
//! ```
//!
//! over an ensemble of trajectories. This plays the role of the paper's
//! measurements ("we used the theory and numerical methods to analyze
//! several oscillators, and compared the results against measurements") —
//! hardware being unavailable, brute-force stochastic simulation of the
//! true nonlinear system is the ground truth the PPV prediction must match.

use crate::oscillator::vector_field;
use crate::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfsim_circuit::dae::Dae;
use rfsim_parallel as parallel;

/// Options for [`monte_carlo_ensemble`].
#[derive(Debug, Clone)]
pub struct McOptions {
    /// Number of trajectories.
    pub ensemble: usize,
    /// Integration steps per oscillation period.
    pub steps_per_period: usize,
    /// Number of periods to simulate.
    pub periods: usize,
    /// RNG seed (deterministic runs).
    pub seed: u64,
    /// State component whose upward crossings of its mean define the
    /// cycle timing.
    pub observe: usize,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions { ensemble: 64, steps_per_period: 200, periods: 40, seed: 42, observe: 0 }
    }
}

/// Ensemble statistics from the Monte Carlo run.
#[derive(Debug, Clone)]
pub struct McResult {
    /// `(elapsed_time, crossing-time variance)` per observed cycle.
    pub jitter: Vec<(f64, f64)>,
    /// Least-squares slope of variance vs. time — the empirical diffusion
    /// constant `c`.
    pub c_estimate: f64,
    /// Number of trajectories that completed all cycles.
    pub completed: usize,
}

/// Simulates the noisy oscillator ensemble and extracts timing jitter.
///
/// Each trajectory starts on the deterministic orbit at `x0`; the `m`-th
/// upward mean-crossing time of the observed state is recorded, and the
/// across-ensemble variance of that time is regressed against elapsed time
/// to estimate `c`.
///
/// # Errors
/// [`Error::InvalidSetup`] for an empty ensemble or missing noise sources.
pub fn monte_carlo_ensemble(
    dae: &dyn Dae,
    x0: &[f64],
    period: f64,
    opts: &McOptions,
) -> Result<McResult> {
    let n = dae.dim();
    if opts.ensemble == 0 {
        return Err(Error::InvalidSetup("ensemble must be nonempty".into()));
    }
    if dae.noise_sources(x0).is_empty() {
        return Err(Error::InvalidSetup("oscillator has no noise sources".into()));
    }
    let dt = period / opts.steps_per_period as f64;
    let total_steps = opts.steps_per_period * opts.periods;
    // Mean level of the observed state over one clean period.
    let (states, _, _) = crate::pss::integrate_period(dae, x0, period, opts.steps_per_period);
    let mean_level: f64 =
        states[..opts.steps_per_period].iter().map(|s| s[opts.observe]).sum::<f64>()
            / opts.steps_per_period as f64;

    // Trajectories are independent: each seeds its own RNG from the base
    // seed + trajectory index, so the ensemble is identical for any thread
    // count.
    let crossings_per_traj: Vec<Vec<f64>> = parallel::par_map_indexed(opts.ensemble, |traj| {
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(traj as u64));
        let mut g = vec![0.0; n];
        let mut x = x0.to_vec();
        let mut crossings = Vec::new();
        let mut prev = x[opts.observe] - mean_level;
        for step in 0..total_steps {
            vector_field(dae, &x, &mut g);
            // Deterministic drift.
            for i in 0..n {
                x[i] += g[i] * dt;
            }
            // Stochastic term per source: √dt·N(0,1) in the column
            // direction (columns already carry √S).
            for src in dae.noise_sources(&x) {
                let col = src.column(n, 1.0);
                let xi: f64 = sample_gauss(&mut rng) * dt.sqrt();
                for i in 0..n {
                    x[i] += col[i] * xi;
                }
            }
            let cur = x[opts.observe] - mean_level;
            if prev <= 0.0 && cur > 0.0 && step > 0 {
                // Linear interpolation of the crossing instant.
                let frac = prev / (prev - cur);
                crossings.push((step as f64 - 1.0 + frac + 1.0) * dt);
            }
            prev = cur;
        }
        crossings
    });
    // Align: use the k-th crossing per trajectory.
    let min_crossings = crossings_per_traj.iter().map(Vec::len).min().unwrap_or(0);
    let mut jitter = Vec::with_capacity(min_crossings);
    for k in 0..min_crossings {
        let times: Vec<f64> = crossings_per_traj.iter().map(|c| c[k]).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var =
            times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (times.len() - 1) as f64;
        jitter.push((mean, var));
    }
    // Least-squares slope through the origin: c = Σ t·σ² / Σ t².
    let (mut num, mut den) = (0.0, 0.0);
    // Skip the first few cycles (transient alignment).
    for &(t, v) in jitter.iter().skip(jitter.len() / 5) {
        num += t * v;
        den += t * t;
    }
    let c_estimate = if den > 0.0 { num / den } else { 0.0 };
    Ok(McResult { jitter, c_estimate, completed: opts.ensemble })
}

/// Standard normal via Box–Muller.
fn sample_gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscillator::VanDerPol;
    use crate::pss::{oscillator_pss, PssOptions};
    use crate::spectrum::PhaseNoiseAnalysis;

    /// The headline validation: Monte Carlo jitter growth matches the
    /// PPV-predicted diffusion constant within statistical error, and the
    /// growth is linear in time.
    #[test]
    fn mc_jitter_matches_ppv_prediction() {
        let noise = 4e-5;
        let osc = VanDerPol::new(1.0, noise);
        let pss = oscillator_pss(&osc, osc.initial_guess(), &PssOptions::default()).unwrap();
        let ppv = crate::ppv::compute_ppv(&osc, &pss).unwrap();
        let pn = PhaseNoiseAnalysis::new(&osc, &pss, &ppv, 0).unwrap();
        let mc_opts = McOptions { ensemble: 96, periods: 60, ..Default::default() };
        let mc = monte_carlo_ensemble(&osc, &pss.x0, pss.period, &mc_opts).unwrap();
        assert!(mc.jitter.len() > 20, "crossings found: {}", mc.jitter.len());
        // Within a factor ~2 (small ensemble): the point is order-of-
        // magnitude agreement plus linear growth.
        let ratio = mc.c_estimate / pn.c;
        assert!(ratio > 0.4 && ratio < 2.5, "mc c {} vs ppv c {}", mc.c_estimate, pn.c);
        // Linearity: variance at late times ≈ 2× variance at half time.
        let half = &mc.jitter[mc.jitter.len() / 2];
        let full = mc.jitter.last().unwrap();
        let growth = full.1 / half.1;
        let t_ratio = full.0 / half.0;
        assert!(
            (growth / t_ratio - 1.0).abs() < 0.6,
            "variance growth {growth:.2} vs time ratio {t_ratio:.2}"
        );
    }

    #[test]
    fn deterministic_seed_reproducible() {
        let osc = VanDerPol::new(1.0, 1e-5);
        let pss = oscillator_pss(&osc, osc.initial_guess(), &PssOptions::default()).unwrap();
        let opts = McOptions { ensemble: 8, periods: 10, ..Default::default() };
        let a = monte_carlo_ensemble(&osc, &pss.x0, pss.period, &opts).unwrap();
        let b = monte_carlo_ensemble(&osc, &pss.x0, pss.period, &opts).unwrap();
        assert_eq!(a.c_estimate, b.c_estimate);
    }

    #[test]
    fn rejects_noiseless_oscillator() {
        let osc = VanDerPol::new(1.0, 0.0);
        // Noise sources exist but with zero PSD — treat as present; build
        // a 0-ensemble instead to hit the validation path.
        let opts = McOptions { ensemble: 0, ..Default::default() };
        assert!(matches!(
            monte_carlo_ensemble(&osc, &[2.0, 0.0], 6.3, &opts),
            Err(Error::InvalidSetup(_))
        ));
    }
}
