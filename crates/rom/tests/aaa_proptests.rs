//! Property-based tests for the AAA barycentric rational fitter: exact
//! recovery of randomly parameterized rationals, pole-location accuracy,
//! and monotone residual decrease as the support cap grows.

use proptest::prelude::*;
use rfsim_rom::aaa::{AaaFit, AaaOptions};

/// Samples `n` equispaced points on `[0, 1]`.
fn unit_grid(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64 / (n - 1) as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A random partial-fraction rational with poles outside the sample
    /// interval is recovered essentially exactly — at the samples (the
    /// fitter's own residual) and off the samples (true generalization,
    /// checked at midpoints the fit never saw).
    #[test]
    fn recovers_random_rationals(
        c0 in 0.5f64..2.0,
        r1 in 0.5f64..2.0,
        r2 in 0.5f64..2.0,
        p1 in 1.3f64..3.0,
        p2 in -3.0f64..-1.3,
    ) {
        let truth = |x: f64| c0 + r1 / (x - p1) + r2 / (x - p2);
        let xs = unit_grid(41);
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let fit = AaaFit::fit(&xs, &ys, &AaaOptions::default()).expect("fit");
        prop_assert!(
            fit.max_rel_residual() < 1e-10,
            "in-sample residual {:.3e}", fit.max_rel_residual()
        );
        // Degree (2,2) truth: three support points suffice; the greedy
        // stage must not balloon past the data's intrinsic order.
        prop_assert!(fit.order() <= 5, "order {} for a degree-2 rational", fit.order());
        for w in xs.windows(2) {
            let mid = 0.5 * (w[0] + w[1]);
            let rel = (fit.eval(mid) - truth(mid)).abs() / truth(mid).abs().max(1e-300);
            prop_assert!(rel < 1e-8, "off-sample drift {rel:.3e} at {mid}");
        }
    }

    /// The fitted barycentric form localizes a real simple pole to high
    /// relative accuracy via its companion-matrix eigenvalues.
    #[test]
    fn localizes_a_real_pole(p in 1.2f64..2.5, res in 0.5f64..2.0, c0 in -1.0f64..1.0) {
        let truth = |x: f64| c0 + res / (x - p);
        let xs = unit_grid(31);
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let fit = AaaFit::fit(&xs, &ys, &AaaOptions::default()).expect("fit");
        let poles = fit.poles().expect("poles");
        let nearest = poles
            .iter()
            .map(|z| ((z.re - p).powi(2) + z.im.powi(2)).sqrt())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(nearest / p < 1e-6, "pole off by {nearest:.3e} (truth {p})");
    }

    /// With Lawson polish disabled the fitter keeps the best support set
    /// seen, so the reported residual never increases as the cap grows.
    #[test]
    fn residual_is_monotone_in_support_cap(
        a in 1.0f64..4.0,
        b in 0.2f64..1.0,
    ) {
        // Smooth but non-rational: every extra support point can help.
        let truth = |x: f64| (a * x).tanh() + b * (-x * x).exp();
        let xs = unit_grid(61);
        let ys: Vec<f64> = xs.iter().map(|&x| truth(x)).collect();
        let mut prev = f64::INFINITY;
        for cap in 2..=9 {
            let fit = AaaFit::fit(
                &xs,
                &ys,
                &AaaOptions { tol: 0.0, max_support: cap, lawson_iters: 0 },
            )
            .expect("fit");
            prop_assert!(
                fit.max_rel_residual() <= prev,
                "cap {cap}: residual rose {prev:.3e} -> {:.3e}",
                fit.max_rel_residual()
            );
            prev = fit.max_rel_residual();
        }
        prop_assert!(prev < 1e-7, "cap 9 should fit a smooth curve, got {prev:.3e}");
    }

    /// The barycentric form interpolates its support points exactly, for
    /// arbitrary smooth data.
    #[test]
    fn interpolates_support_points(k in 0.5f64..6.0) {
        let xs = unit_grid(25);
        let ys: Vec<f64> = xs.iter().map(|&x| (k * x).sin() + 2.0).collect();
        let fit = AaaFit::fit(&xs, &ys, &AaaOptions::default()).expect("fit");
        for (&x, &y) in xs.iter().zip(&ys) {
            if fit.support().contains(&x) {
                let rel = (fit.eval(x) - y).abs() / y.abs();
                prop_assert!(rel < 1e-13, "support point {x} off by {rel:.3e}");
            }
        }
    }
}
