//! Phase-noise characterisation from the PPV: the scalar diffusion
//! constant `c`, linearly growing jitter, the Lorentzian spectrum with
//! finite carrier power, and the (incorrect) LTV prediction for contrast.
//!
//! Key results reproduced from the paper's Section 3:
//!
//! - mean-square jitter "increases without bound (precisely linearly for
//!   shot and thermal noise) with time": `σ²(t) = c·t`;
//! - "the power spectrum of the perturbed oscillator has a finite value at
//!   the carrier frequency and its harmonics, and the total carrier power
//!   is preserved": the Lorentzian [`lorentzian_psd`] integrates to the
//!   unperturbed harmonic power;
//! - "previous analyses based on LTI or LTV concepts erroneously predict
//!   infinite noise power density at the carrier, as well as infinite
//!   total integrated power": [`ltv_psd`] is that divergent prediction;
//! - "the separate contributions of noise sources … can be obtained
//!   easily": [`PhaseNoiseAnalysis::per_source`].

use crate::oscillator::vector_field;
use crate::ppv::Ppv;
use crate::pss::PssResult;
use crate::Result;
use rfsim_circuit::dae::Dae;

/// Result of the PPV-based phase-noise computation.
#[derive(Debug, Clone)]
pub struct PhaseNoiseAnalysis {
    /// Scalar phase diffusion constant `c` (s²/s = s).
    pub c: f64,
    /// Per-source contributions to `c`, with labels.
    pub contributions: Vec<(String, f64)>,
    /// Oscillation frequency (Hz).
    pub f0: f64,
    /// Carrier (first harmonic) peak amplitude of the observed state.
    pub carrier_amplitude: f64,
}

impl PhaseNoiseAnalysis {
    /// Runs the full analysis for the given oscillator, orbit, and PPV,
    /// observing state `observe` for the carrier amplitude.
    ///
    /// The diffusion constant is
    /// `c = (1/T)·∫₀ᵀ v₁ᵀ(t)·B(x(t))·Bᵀ(x(t))·v₁(t) dt`, with `B` rebuilt
    /// at each orbit point so operating-point-dependent noise (shot noise)
    /// is modulated correctly (cyclostationary noise handling).
    ///
    /// # Errors
    /// Currently infallible in practice; returns `Result` for parity with
    /// the other constructors.
    pub fn new(dae: &dyn Dae, pss: &PssResult, ppv: &Ppv, observe: usize) -> Result<Self> {
        let n = dae.dim();
        let samples = ppv.vecs.len() - 1; // last duplicates first
        let mut labels: Vec<String> = Vec::new();
        let mut integrals: Vec<f64> = Vec::new();
        for s in 0..samples {
            let x = &pss.states[s];
            let v1 = &ppv.vecs[s];
            let sources = dae.noise_sources(x);
            if labels.is_empty() {
                labels = sources.iter().map(|ns| ns.label.clone()).collect();
                integrals = vec![0.0; sources.len()];
            }
            for (i, src) in sources.iter().enumerate() {
                // v₁ᵀ·col, col = √S·(e_from − e_to); evaluate white part at
                // 1 Hz (white ⇒ frequency-independent).
                let col = src.column(n, 1.0);
                let dot: f64 = v1.iter().zip(&col).map(|(a, b)| a * b).sum();
                integrals[i] += dot * dot;
            }
        }
        let dt = pss.period / samples as f64;
        let contributions: Vec<(String, f64)> =
            labels.into_iter().zip(integrals.iter().map(|v| v * dt / pss.period)).collect();
        let c = contributions.iter().map(|(_, v)| v).sum();
        Ok(PhaseNoiseAnalysis {
            c,
            contributions,
            f0: pss.freq(),
            carrier_amplitude: pss.amplitude(observe, 1),
        })
    }

    /// Per-source contributions sorted descending — the sensitivity
    /// breakdown designers use to find the dominant noise source.
    pub fn per_source(&self) -> Vec<(String, f64)> {
        let mut v = self.contributions.clone();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite contributions"));
        v
    }

    /// Single-sideband phase noise `L(Δf)` in dBc/Hz at offset `df` from
    /// the carrier.
    pub fn l_dbc_hz(&self, df: f64) -> f64 {
        phase_noise_dbc(df, self.c, self.f0)
    }
}

/// Lorentzian PSD of harmonic `k` at offset `df` from `k·f0`, normalized
/// so that the total power (integral over all offsets) equals
/// `carrier_power` — the finite-at-carrier spectrum of the correct theory.
///
/// `S(df) = P·(γ/π)/(γ² + df²)` with half-width `γ = π·k²·f0²·c`.
pub fn lorentzian_psd(df: f64, k: i32, c: f64, f0: f64, carrier_power: f64) -> f64 {
    let gamma = std::f64::consts::PI * (k * k) as f64 * f0 * f0 * c;
    carrier_power * (gamma / std::f64::consts::PI) / (gamma * gamma + df * df)
}

/// The LTV (linear time-varying) prediction for the same sideband: the
/// Lorentzian's `1/df²` tail extended all the way to the carrier. It
/// matches the Lorentzian for `df ≫ γ` but diverges as `df → 0` — the
/// non-physical infinite carrier power the paper calls out.
pub fn ltv_psd(df: f64, k: i32, c: f64, f0: f64, carrier_power: f64) -> f64 {
    let kk = (k * k) as f64;
    carrier_power * kk * f0 * f0 * c / (df * df)
}

/// Single-sideband phase noise `L(Δf) = 10·log₁₀(S₁(Δf)/P₁)` in dBc/Hz.
pub fn phase_noise_dbc(df: f64, c: f64, f0: f64) -> f64 {
    let gamma = std::f64::consts::PI * f0 * f0 * c;
    10.0 * ((gamma / std::f64::consts::PI) / (gamma * gamma + df * df)).log10()
}

/// Mean-square timing jitter after elapsed time `t`: `σ²(t) = c·t`
/// (variance of the phase deviation, in s²).
pub fn jitter_variance(c: f64, t: f64) -> f64 {
    c * t
}

/// Numerically integrates a PSD over `[f_lo, f_hi]` (log-spaced trapezoid,
/// both sidebands). Used to demonstrate power conservation vs. LTV
/// divergence.
pub fn total_sideband_power(psd: impl Fn(f64) -> f64, f_lo: f64, f_hi: f64, points: usize) -> f64 {
    assert!(f_lo > 0.0 && f_hi > f_lo && points >= 2, "bad band");
    let l0 = f_lo.ln();
    let l1 = f_hi.ln();
    let mut acc = 0.0;
    let mut prev_f = f_lo;
    let mut prev_v = psd(f_lo);
    for i in 1..points {
        let f = (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp();
        let v = psd(f);
        acc += 0.5 * (prev_v + v) * (f - prev_f);
        prev_f = f;
        prev_v = v;
    }
    2.0 * acc // both sidebands
}

/// Verifies that an oscillator's output phase-noise behaviour follows the
/// theory; convenience wrapper returning the analysis for a model with an
/// `initial_guess`-style interface.
///
/// # Errors
/// Propagates PSS/PPV failures.
pub fn analyze(
    dae: &dyn Dae,
    guess: (Vec<f64>, f64),
    observe: usize,
    pss_opts: &crate::pss::PssOptions,
) -> Result<(PssResult, Ppv, PhaseNoiseAnalysis)> {
    let pss = crate::pss::oscillator_pss(dae, guess, pss_opts)?;
    let ppv = crate::ppv::compute_ppv(dae, &pss)?;
    let pn = PhaseNoiseAnalysis::new(dae, &pss, &ppv, observe)?;
    Ok((pss, ppv, pn))
}

/// Sanity helper used by tests and benches: `v₁ᵀẋ` averaged over the
/// orbit (should be 1).
pub fn mean_ppv_projection(dae: &dyn Dae, pss: &PssResult, ppv: &Ppv) -> f64 {
    let n = dae.dim();
    let mut g = vec![0.0; n];
    let m = ppv.vecs.len();
    let mut acc = 0.0;
    for (v, x) in ppv.vecs.iter().zip(&pss.states) {
        vector_field(dae, x, &mut g);
        acc += v.iter().zip(&g).map(|(a, b)| a * b).sum::<f64>();
    }
    acc / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscillator::{LcOscillator, VanDerPol};
    use crate::pss::PssOptions;

    #[test]
    fn lorentzian_conserves_power() {
        let (c, f0, p) = (1e-18, 1e9, 0.5);
        let gamma = std::f64::consts::PI * f0 * f0 * c; // ≈ 3.1 Hz
        let total = total_sideband_power(
            |df| lorentzian_psd(df, 1, c, f0, p),
            gamma * 1e-4,
            gamma * 1e7,
            4000,
        );
        // Two-sided integral ≈ carrier power (tails truncated).
        assert!((total - p).abs() / p < 0.02, "total {total} vs {p}");
    }

    #[test]
    fn ltv_diverges_at_carrier() {
        let (c, f0, p) = (1e-18, 1e9, 0.5);
        let band = |lo: f64| total_sideband_power(|df| ltv_psd(df, 1, c, f0, p), lo, 1e6, 2000);
        // Shrinking the lower limit grows the LTV power without bound.
        assert!(band(1e-2) > 10.0 * band(1e2));
        // The Lorentzian stays finite at the carrier itself.
        let at_carrier = lorentzian_psd(0.0, 1, c, f0, p);
        assert!(at_carrier.is_finite());
        assert!(ltv_psd(1e-12, 1, c, f0, p) > 1e6 * at_carrier);
    }

    #[test]
    fn ltv_matches_lorentzian_far_out() {
        let (c, f0, p) = (1e-18, 1e9, 1.0);
        let gamma = std::f64::consts::PI * f0 * f0 * c;
        let df = 1e4 * gamma;
        let lo = lorentzian_psd(df, 1, c, f0, p);
        let ltv = ltv_psd(df, 1, c, f0, p);
        assert!((lo / ltv - 1.0).abs() < 1e-6, "ratio {}", lo / ltv);
    }

    #[test]
    fn jitter_grows_linearly() {
        let c = 3e-19;
        assert_eq!(jitter_variance(c, 2.0), 2.0 * jitter_variance(c, 1.0));
    }

    #[test]
    fn harmonic_lc_c_matches_analytic() {
        // Nearly harmonic LC: v(t) = A·cos(ωt) with state noise intensity
        // s on v̇: v₁ has |v₁ᵀB|² averaging s/(2A²ω²)·(1/C²)… our model
        // injects PSD = noise/C² on state 0, so
        // c ≈ (noise/C²)·⟨v₁,₀²⟩ = (noise/C²)/(2A²ω²).
        let noise = 1e-24;
        let osc = LcOscillator::new(1e-6, 1e-9, 1e-3, 1e-4, noise);
        let (pss, _ppv, pn) =
            analyze(&osc, osc.initial_guess(), 0, &PssOptions::default()).unwrap();
        let a = pss.amplitude(0, 1);
        let omega = 2.0 * std::f64::consts::PI * pss.freq();
        let c_analytic = (noise / (1e-9f64 * 1e-9)) / (2.0 * a * a * omega * omega);
        assert!(
            (pn.c - c_analytic).abs() / c_analytic < 0.2,
            "c {} vs analytic {}",
            pn.c,
            c_analytic
        );
    }

    #[test]
    fn contributions_sum_to_total() {
        let osc = VanDerPol::new(0.8, 1e-6);
        let (_, _, pn) = analyze(&osc, osc.initial_guess(), 0, &PssOptions::default()).unwrap();
        let sum: f64 = pn.contributions.iter().map(|(_, v)| v).sum();
        assert!((sum - pn.c).abs() < 1e-18 * (1.0 + pn.c.abs()));
        assert!(!pn.per_source().is_empty());
    }

    #[test]
    fn l_dbc_slope_is_minus_20_per_decade() {
        let (c, f0) = (1e-20, 1e9);
        let l1 = phase_noise_dbc(1e4, c, f0);
        let l2 = phase_noise_dbc(1e5, c, f0);
        assert!((l1 - l2 - 20.0).abs() < 0.1, "slope {}", l1 - l2);
    }
}
