//! E3 — §2.1 bullets: HB memory/time growth with the number of tones.
//!
//! "The memory and time required for Harmonic Balance simulation increase
//! rapidly as more 'tones' are added … predicting the intermodulation
//! distortion of the entire modulator chain would require … four tones;
//! such a simulation would probably exceed available memory." We measure
//! one- and two-tone runs on the same circuit and extrapolate the
//! unknown-count/memory model (`n·Π(2Hᵢ+1)`) to 3 and 4 tones; transient
//! cost, by contrast, is tone-count-insensitive.

use rfsim::circuit::transient::{transient, TranOptions};
use rfsim::steady::{solve_hb, solve_hb_sweep, HbOptions, SpectralGrid, ToneAxis};
use rfsim_bench::{heading, sweep_cold, switching_mixer, timed, MixerSpec};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e03");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(harness: &mut Harness) -> Result<(), String> {
    println!("E3: HB cost vs number of tones (§2.1)");
    let spec = MixerSpec { f_rf: 1e6, f_lo: 100e6, ..Default::default() };
    let (dae, _) = switching_mixer(&spec);
    let n = {
        use rfsim::circuit::dae::Dae as _;
        dae.dim()
    };
    let h = 4usize; // harmonics per tone

    heading("measured");
    println!("{:>7} {:>12} {:>12} {:>12}", "tones", "unknowns", "memory (B)", "time (s)");
    // 1 tone: LO only (RF source amplitude effectively a perturbation —
    // single-tone analysis at the LO).
    harness.sweep_point("tones=1", &[("tones", 1.0)], |pm| {
        let grid1 =
            SpectralGrid::single_tone(spec.f_lo, h).map_err(|e| format!("1-tone grid: {e}"))?;
        let (sol, t) = timed(|| solve_hb(&dae, &grid1, &HbOptions::default()));
        let sol = sol.map_err(|e| format!("1-tone HB: {e}"))?;
        pm.metric("unknowns", sol.stats.unknowns as f64);
        pm.metric("solver_bytes", sol.stats.solver_bytes as f64);
        println!("{:>7} {:>12} {:>12} {:>12.3}", 1, sol.stats.unknowns, sol.stats.solver_bytes, t);
        Ok::<_, String>(())
    })?;
    // 2 tones.
    let (sol2, t2) = harness.sweep_point("tones=2", &[("tones", 2.0)], |pm| {
        let grid2 =
            SpectralGrid::two_tone(ToneAxis::new(spec.f_rf, h), ToneAxis::new(spec.f_lo, h))
                .map_err(|e| format!("2-tone grid: {e}"))?;
        let (sol, t) = timed(|| solve_hb(&dae, &grid2, &HbOptions::default()));
        let sol = sol.map_err(|e| format!("2-tone HB: {e}"))?;
        pm.metric("unknowns", sol.stats.unknowns as f64);
        pm.metric("solver_bytes", sol.stats.solver_bytes as f64);
        println!("{:>7} {:>12} {:>12} {:>12.3}", 2, sol.stats.unknowns, sol.stats.solver_bytes, t);
        Ok::<_, String>((sol, t))
    })?;

    heading("extrapolated (unknowns = n·(2H+1)^tones, memory/time models)");
    let per_axis = 2 * h + 1;
    let mem_per_unknown = sol2.stats.solver_bytes as f64 / sol2.stats.unknowns as f64;
    let time_per_unknown = t2 / sol2.stats.unknowns as f64;
    println!("{:>7} {:>12} {:>12} {:>12}", "tones", "unknowns", "memory (B)", "time (s)");
    for tones in 3..=4 {
        let unknowns = n * per_axis.pow(tones);
        // Memory model: preconditioner blocks scale with bins·n²; basis
        // with unknowns — both linear in the bin count, so scale linearly;
        // the *direct* (traditional) solver would scale quadratically.
        let mem = mem_per_unknown * unknowns as f64;
        let mem_direct = (unknowns as f64).powi(2) * 8.0;
        let t = time_per_unknown * unknowns as f64;
        println!(
            "{:>7} {:>12} {:>12.0} {:>12.3}   (traditional direct: {:.1e} B)",
            tones, unknowns, mem, t, mem_direct
        );
    }
    println!(
        "\npaper's point: at 4 tones the traditional dense-Jacobian HB 'would\n\
         probably exceed available memory' — the quadratic column above."
    );

    // --- Warm-started continuation: the two-tone analysis repeated
    // across an RF drive-level sweep (the IP3 / compression workload).
    // Warm mode carries the previous point's solution, the factored
    // harmonic-block preconditioner, and the recycled Krylov subspace
    // across points; RFSIM_SWEEP_MODE=cold reruns every point from
    // scratch so CI can gate the speedup.
    let cold = sweep_cold();
    heading(if cold {
        "RF drive-level sweep — COLD (every point from scratch)"
    } else {
        "RF drive-level sweep — warm-started continuation"
    });
    let amps: Vec<f64> = (0..8).map(|i| 0.05 + 0.05 * i as f64).collect();
    let grid2 = SpectralGrid::two_tone(ToneAxis::new(spec.f_rf, h), ToneAxis::new(spec.f_lo, h))
        .map_err(|e| format!("sweep grid: {e}"))?;
    // Strong drive needs globalization when solved in isolation: the cold
    // path ramps the sources at every point, the warm path rides the
    // sweep's own continuation instead.
    let sweep_opts = HbOptions { source_steps: 4, ..Default::default() };
    let n_amps = amps.len();
    let (sols, t_sweep) = harness.sweep_point(
        "recycle:amps",
        &[("points", n_amps as f64), ("cold", if cold { 1.0 } else { 0.0 })],
        |pm| {
            let daes: Vec<_> = amps
                .iter()
                .map(|&a| switching_mixer(&MixerSpec { rf_amplitude: a, ..spec }).0)
                .collect();
            let (sols, t) = timed(|| -> Result<_, String> {
                if cold {
                    daes.iter()
                        .map(|dae| {
                            solve_hb(dae, &grid2, &sweep_opts)
                                .map_err(|e| format!("cold sweep point: {e}"))
                        })
                        .collect::<Result<Vec<_>, _>>()
                } else {
                    let refs: Vec<&dyn rfsim::circuit::dae::Dae> =
                        daes.iter().map(|d| d as &dyn rfsim::circuit::dae::Dae).collect();
                    solve_hb_sweep(&refs, &grid2, &sweep_opts)
                        .map_err(|e| format!("warm sweep: {e}"))
                }
            });
            let sols = sols?;
            let newton: usize = sols.iter().map(|s| s.stats.newton_iterations).sum();
            let linear: usize = sols.iter().map(|s| s.stats.linear_iterations).sum();
            let factorizations: usize = sols.iter().map(|s| s.stats.precond_factorizations).sum();
            pm.metric("newton_iterations", newton as f64);
            pm.metric("linear_iterations", linear as f64);
            pm.metric("precond_factorizations", factorizations as f64);
            Ok::<_, String>((sols, t))
        },
    )?;
    println!("{:>10} {:>10} {:>10} {:>10}", "A_rf (V)", "newton", "linear", "factor");
    for (a, s) in amps.iter().zip(&sols) {
        println!(
            "{:>10.2} {:>10} {:>10} {:>10}",
            a, s.stats.newton_iterations, s.stats.linear_iterations, s.stats.precond_factorizations
        );
    }
    println!(
        "{n_amps} points in {t_sweep:.3} s — {} carries x, the preconditioner\n\
         factors, and the recycled Krylov space across points.",
        if cold { "cold mode discards what warm mode" } else { "continuation" }
    );

    heading("transient insensitivity to tone count");
    let dt = 1.0 / (spec.f_lo * 30.0);
    let t_end = 20.0 / spec.f_lo;
    let (r1, tt1) = harness.phase("transient", || {
        let (r, t) =
            timed(|| transient(&dae, 0.0, t_end, &TranOptions { dt, ..Default::default() }));
        r.map(|r| (r, t)).map_err(|e| format!("transient: {e}"))
    })?;
    println!("1-or-N-tone transient: {} steps in {:.3} s (cost set by the", r1.times.len(), tt1);
    println!("fastest tone and the observation window, not by the tone count).");
    Ok(())
}
