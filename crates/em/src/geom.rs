//! 3-D geometry: points, rectangular surface panels, and meshers for the
//! structures used in the extraction experiments (plates, plate stacks,
//! bus crossings, planar spirals).

/// A point (or vector) in 3-D space, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
    /// z coordinate (m).
    pub z: f64,
}

impl Point3 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Vector addition.
    pub fn add(&self, o: &Point3) -> Point3 {
        Point3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Scales by a factor.
    pub fn scale(&self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

/// A flat rectangular charge panel: center, two in-plane edge lengths, the
/// in-plane direction of the first edge, and which conductor it belongs to.
///
/// All panels in this crate lie in horizontal (`z`-normal) planes — the
/// structures extracted (plates, buses, planar spirals) are planar metal —
/// so the second edge direction is implied (`ẑ × axis_a`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Panel {
    /// Centroid.
    pub center: Point3,
    /// Full edge length along `axis_a` (m).
    pub len_a: f64,
    /// Full edge length along the perpendicular in-plane axis (m).
    pub len_b: f64,
    /// Unit vector of the first edge (in the xy plane).
    pub axis_a: Point3,
    /// Conductor index this panel belongs to.
    pub conductor: usize,
}

impl Panel {
    /// Panel area (m²).
    pub fn area(&self) -> f64 {
        self.len_a * self.len_b
    }

    /// Panel diameter (diagonal).
    pub fn diameter(&self) -> f64 {
        self.len_a.hypot(self.len_b)
    }
}

/// Meshes a rectangle in the `z = z0` plane spanning
/// `[x0, x0+w] × [y0, y0+h]` into `nx × ny` panels for conductor `cond`.
#[allow(clippy::too_many_arguments)] // mirrors the geometric parameter list
pub fn mesh_plate(
    x0: f64,
    y0: f64,
    z0: f64,
    w: f64,
    h: f64,
    nx: usize,
    ny: usize,
    cond: usize,
) -> Vec<Panel> {
    let mut panels = Vec::with_capacity(nx * ny);
    let dx = w / nx as f64;
    let dy = h / ny as f64;
    for i in 0..nx {
        for j in 0..ny {
            panels.push(Panel {
                center: Point3::new(x0 + (i as f64 + 0.5) * dx, y0 + (j as f64 + 0.5) * dy, z0),
                len_a: dx,
                len_b: dy,
                axis_a: Point3::new(1.0, 0.0, 0.0),
                conductor: cond,
            });
        }
    }
    panels
}

/// A parallel-plate capacitor: two `side × side` plates separated by `gap`
/// along z, `n × n` panels each. Conductors 0 (bottom) and 1 (top).
pub fn mesh_parallel_plates(side: f64, gap: f64, n: usize) -> Vec<Panel> {
    let mut p = mesh_plate(0.0, 0.0, 0.0, side, side, n, n, 0);
    p.extend(mesh_plate(0.0, 0.0, gap, side, side, n, n, 1));
    p
}

/// Two perpendicular bus wires crossing at different heights — the classic
/// coupling-extraction structure. Conductors 0 and 1.
pub fn mesh_bus_crossing(
    width: f64,
    length: f64,
    z_sep: f64,
    n_len: usize,
    n_w: usize,
) -> Vec<Panel> {
    // Wire 0 along x at z=0, wire 1 along y at z=z_sep, crossing above the
    // center.
    let mut p = mesh_plate(-length / 2.0, -width / 2.0, 0.0, length, width, n_len, n_w, 0);
    p.extend(mesh_plate(-width / 2.0, -length / 2.0, z_sep, width, length, n_w, n_len, 1));
    p
}

/// A straight conductor segment of a spiral trace (for inductance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub start: Point3,
    /// End point.
    pub end: Point3,
    /// Trace width (m).
    pub width: f64,
    /// Trace thickness (m).
    pub thickness: f64,
}

impl Segment {
    /// Segment length (m).
    pub fn length(&self) -> f64 {
        self.start.distance(&self.end)
    }

    /// Midpoint.
    pub fn midpoint(&self) -> Point3 {
        self.start.add(&self.end).scale(0.5)
    }

    /// Unit direction vector.
    pub fn direction(&self) -> Point3 {
        let l = self.length();
        Point3::new(
            (self.end.x - self.start.x) / l,
            (self.end.y - self.start.y) / l,
            (self.end.z - self.start.z) / l,
        )
    }
}

/// Generates a square planar spiral inductor: `turns` turns of trace
/// `width` with `spacing` between turns, outer dimension `outer`, at
/// height `z0`. Returns the segment chain from the outer terminal inward.
pub fn spiral_segments(
    outer: f64,
    turns: usize,
    width: f64,
    spacing: f64,
    thickness: f64,
    z0: f64,
) -> Vec<Segment> {
    let mut segs = Vec::new();
    let pitch = width + spacing;
    let mut half = outer / 2.0;
    // Start at the right edge, wind counterclockwise, shrinking every two
    // sides to keep a square spiral.
    let mut cur = Point3::new(half, -half, z0);
    let mut dir = 0usize; // 0:+y, 1:-x, 2:-y, 3:+x
    let sides = turns * 4;
    for side in 0..sides {
        // Every two sides, the run length shrinks by one pitch.
        let run = 2.0 * half - if side % 2 == 1 { pitch } else { 0.0 };
        if run <= pitch {
            break;
        }
        let next = match dir {
            0 => Point3::new(cur.x, cur.y + run, z0),
            1 => Point3::new(cur.x - run, cur.y, z0),
            2 => Point3::new(cur.x, cur.y - run, z0),
            _ => Point3::new(cur.x + run, cur.y, z0),
        };
        segs.push(Segment { start: cur, end: next, width, thickness });
        cur = next;
        dir = (dir + 1) % 4;
        if side % 2 == 1 {
            half -= pitch / 2.0;
        }
    }
    segs
}

/// Meshes the footprint of a spiral's segments into surface panels (for
/// the capacitance-to-substrate extraction), `per_seg` panels per segment.
pub fn spiral_panels(segs: &[Segment], per_seg: usize, cond: usize) -> Vec<Panel> {
    let mut panels = Vec::new();
    for seg in segs {
        let l = seg.length();
        let d = seg.direction();
        for k in 0..per_seg {
            let t = (k as f64 + 0.5) / per_seg as f64;
            let c = Point3::new(seg.start.x + d.x * l * t, seg.start.y + d.y * l * t, seg.start.z);
            // Panel oriented along the segment.
            let (la, lb) = (l / per_seg as f64, seg.width);
            panels.push(Panel {
                center: c,
                len_a: la,
                len_b: lb,
                axis_a: Point3::new(d.x, d.y, 0.0),
                conductor: cond,
            });
        }
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plate_mesh_covers_area() {
        let panels = mesh_plate(0.0, 0.0, 0.0, 2.0, 1.0, 4, 2, 0);
        assert_eq!(panels.len(), 8);
        let total: f64 = panels.iter().map(Panel::area).sum();
        assert!((total - 2.0).abs() < 1e-12);
        // Centroids inside the plate.
        for p in &panels {
            assert!(p.center.x > 0.0 && p.center.x < 2.0);
            assert!(p.center.y > 0.0 && p.center.y < 1.0);
        }
    }

    #[test]
    fn parallel_plates_two_conductors() {
        let panels = mesh_parallel_plates(1e-3, 1e-4, 3);
        assert_eq!(panels.len(), 18);
        assert_eq!(panels.iter().filter(|p| p.conductor == 0).count(), 9);
        assert_eq!(panels.iter().filter(|p| p.conductor == 1).count(), 9);
    }

    #[test]
    fn spiral_winds_inward() {
        let segs = spiral_segments(200e-6, 3, 10e-6, 5e-6, 1e-6, 0.0);
        assert!(segs.len() >= 8, "got {} segments", segs.len());
        // Later segments are shorter (winding inward).
        assert!(segs.last().unwrap().length() < segs[0].length());
        // Chain continuity.
        for w in segs.windows(2) {
            assert!(w[0].end.distance(&w[1].start) < 1e-12);
        }
        let panels = spiral_panels(&segs, 4, 0);
        assert_eq!(panels.len(), segs.len() * 4);
    }

    #[test]
    fn point_ops() {
        let a = Point3::new(1.0, 2.0, 2.0);
        let b = Point3::new(1.0, 2.0, 0.0);
        assert_eq!(a.distance(&b), 2.0);
        assert_eq!(a.add(&b).scale(0.5).z, 1.0);
    }
}
