//! Passivity checking and post-processing enforcement.
//!
//! "In certain cases, Lanczos-based methods may produce non-passive
//! reduced-order models of passive linear systems. In these cases
//! post-processing is required to enforce the desired properties"
//! (paper, §5). For driving-point (immittance) transfer functions,
//! passivity of a stable rational model means `Re H(jω) ≥ 0` for all ω.

use crate::statespace::{PoleResidueModel, ReducedModel, TransferFunction};
use crate::Result;
use rfsim_numerics::dense::Mat;
use rfsim_numerics::Complex;

/// Result of a passivity scan.
#[derive(Debug, Clone, PartialEq)]
pub struct PassivityReport {
    /// All poles strictly in the left half plane.
    pub stable: bool,
    /// Minimum of `Re H(jω)` over the scanned band.
    pub min_real: f64,
    /// Frequency (Hz) at which the minimum occurs.
    pub worst_freq: f64,
}

impl PassivityReport {
    /// Passive: stable and non-negative real part (small tolerance).
    pub fn is_passive(&self) -> bool {
        self.stable && self.min_real >= -1e-12
    }
}

/// Scans a model's poles and `Re H(jω)` over a log band.
pub fn is_passive(
    tf: &dyn TransferFunction,
    poles: &[Complex],
    f_lo: f64,
    f_hi: f64,
    points: usize,
) -> PassivityReport {
    let stable = poles.iter().all(|p| p.re < 1e-9);
    let mut min_real = f64::INFINITY;
    let mut worst = f_lo;
    for i in 0..points {
        let f = (f_lo.ln() + (f_hi.ln() - f_lo.ln()) * i as f64 / (points - 1) as f64).exp();
        let h = tf.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
        if h.re < min_real {
            min_real = h.re;
            worst = f;
        }
    }
    PassivityReport { stable, min_real, worst_freq: worst }
}

/// Converts a projection-form reduced model to pole/residue form by
/// eigen-decomposition of `A_r` plus a least-squares residue fit at
/// sample points on the imaginary axis.
///
/// # Errors
/// Propagates eigensolver/solve failures.
pub fn to_pole_residue(model: &ReducedModel, f_scale: f64) -> Result<PoleResidueModel> {
    let lambdas: Vec<Complex> = rfsim_numerics::eig::eigenvalues(&model.a_r)?.into_iter().collect();
    let q = lambdas.len();
    // Fit residues: H(σ_i) = Σ_j k_j/(1 − σ_i·λ_j) at q well-spread
    // sample points σ_i = j·ω_i.
    let mut sigmas = Vec::with_capacity(q);
    for i in 0..q {
        let f = f_scale * 10f64.powf(-2.0 + 4.0 * i as f64 / q.max(1) as f64);
        sigmas.push(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
    }
    let a = Mat::from_fn(q, q, |i, j| (Complex::ONE - sigmas[i] * lambdas[j]).recip());
    let rhs: Vec<Complex> =
        sigmas.iter().map(|&s| model.eval(Complex::from_re(model.s0) + s)).collect();
    let residues = a.solve(&rhs)?;
    Ok(PoleResidueModel { lambdas, residues, direct: 0.0, s0: model.s0 })
}

/// Post-processes a pole/residue model into a stable, (weakly) passive
/// one:
///
/// 1. right-half-plane poles are reflected across the imaginary axis
///    (standard vector-fitting-style enforcement);
/// 2. if `Re H(jω)` still dips negative on the scanned band, a constant
///    conductance shift lifts it to zero (guaranteed-passive but lossy —
///    documented trade-off of simple post-processing).
pub fn enforce_passivity(
    model: &PoleResidueModel,
    f_lo: f64,
    f_hi: f64,
    points: usize,
) -> PoleResidueModel {
    // Reflect unstable poles: s_p = s0 + 1/λ; flip Re(s_p) to −|Re|.
    let lambdas: Vec<Complex> = model
        .lambdas
        .iter()
        .map(|&l| {
            if l.abs() < 1e-14 {
                return l;
            }
            let sp = Complex::from_re(model.s0) + l.recip();
            if sp.re > 0.0 {
                let reflected = Complex::new(-sp.re, sp.im);
                (reflected - Complex::from_re(model.s0)).recip()
            } else {
                l
            }
        })
        .collect();
    let mut out = PoleResidueModel {
        lambdas,
        residues: model.residues.clone(),
        direct: model.direct,
        s0: model.s0,
    };
    // Lift any residual negative real part.
    let poles = out.poles();
    let rep = is_passive(&out, &poles, f_lo, f_hi, points);
    if rep.min_real < 0.0 {
        out.direct -= rep.min_real;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvl::pvl_rom;
    use crate::statespace::{log_freqs, rc_line, relative_error};

    #[test]
    fn rc_line_driving_point_is_passive() {
        let mut sys = rc_line(30, 100.0, 1e-12);
        sys.l = sys.b.clone(); // driving-point impedance
        let model = pvl_rom(&sys, 0.0, 6).unwrap();
        let poles = model.poles().unwrap();
        let rep = is_passive(&model, &poles, 1e3, 1e10, 80);
        assert!(rep.is_passive(), "report: {rep:?}");
    }

    #[test]
    fn synthetic_nonpassive_model_detected_and_fixed() {
        // Hand-built model with an RHP pole and a negative-real dip.
        let bad = PoleResidueModel {
            lambdas: vec![
                Complex::from_re(1.0 / 2e3), // pole at s = +2e3 (unstable)
                Complex::from_re(-1.0 / 1e4),
            ],
            residues: vec![Complex::from_re(-0.5), Complex::from_re(1.0)],
            direct: 0.0,
            s0: 0.0,
        };
        let poles = bad.poles();
        let rep = is_passive(&bad, &poles, 1.0, 1e6, 60);
        assert!(!rep.is_passive());
        let fixed = enforce_passivity(&bad, 1.0, 1e6, 200);
        let fixed_poles = fixed.poles();
        let rep2 = is_passive(&fixed, &fixed_poles, 1.0, 1e6, 200);
        assert!(rep2.stable, "poles after reflection: {fixed_poles:?}");
        assert!(rep2.min_real >= -1e-9, "min Re after lift: {}", rep2.min_real);
    }

    #[test]
    fn pole_residue_conversion_faithful() {
        let sys = rc_line(40, 100.0, 1e-12);
        let model = pvl_rom(&sys, 0.0, 6).unwrap();
        // Pick the fit scale near the line's bandwidth.
        let pr = to_pole_residue(&model, 1e7).unwrap();
        let freqs = log_freqs(1e4, 1e9, 40);
        let err = relative_error(&model, &pr, &freqs);
        assert!(err < 1e-5, "conversion err = {err}");
    }

    #[test]
    fn enforcement_preserves_already_passive_models() {
        let mut sys = rc_line(20, 100.0, 1e-12);
        sys.l = sys.b.clone();
        let model = pvl_rom(&sys, 0.0, 5).unwrap();
        let pr = to_pole_residue(&model, 1e7).unwrap();
        let fixed = enforce_passivity(&pr, 1e3, 1e10, 100);
        let freqs = log_freqs(1e3, 1e10, 40);
        let err = relative_error(&pr, &fixed, &freqs);
        assert!(err < 1e-9, "enforcement changed a passive model: {err}");
    }
}
