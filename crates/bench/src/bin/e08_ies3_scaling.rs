//! E8 — Fig 6: IES³ time and memory scaling with problem size.
//!
//! "Figure 6 shows how time and memory requirements scale only slightly
//! faster than linearly with increasing problem size in an IES³-based
//! electromagnetic simulator." We extract a plate-pair capacitance at
//! growing panel counts, recording compressed storage, build+solve time,
//! and the dense O(n²)/O(n³) baseline, then fit the log-log slopes.
//!
//! Pass `--ablate` for the rank-tolerance ε ablation.

use rfsim::em::geom::mesh_parallel_plates;
use rfsim::em::ies3::{CompressedMatrix, Ies3Options};
use rfsim::em::mom::{capacitance_matrix_iterative, MomProblem};
use rfsim::em::GreenFn;
use rfsim::numerics::krylov::KrylovOptions;
use rfsim_bench::{ablate, heading, timed};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e08");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run_case(n_side: usize, opts: &Ies3Options) -> Result<(usize, usize, f64, f64, f64), String> {
    let panels = mesh_parallel_plates(1e-3, 1e-4, n_side);
    let n = panels.len();
    let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 })
        .map_err(|e| format!("MoM setup (n_side {n_side}): {e}"))?;
    let (cm, t_build) = timed(|| CompressedMatrix::build(&p.panels, &p.green, opts));
    let cm = cm.map_err(|e| format!("IES³ build (n {n}): {e}"))?;
    // Both plate excitations solve as one block GMRES against the shared
    // compressed operator — the full 2×2 Maxwell matrix for the price of
    // one Krylov space.
    let (solved, t_solve) = timed(|| {
        capacitance_matrix_iterative(&p, &cm, &KrylovOptions { tol: 1e-8, ..Default::default() })
    });
    let (cmat, _stats) = solved.map_err(|e| format!("block GMRES solve (n {n}): {e}"))?;
    let c = cmat[(0, 0)];
    Ok((n, cm.memory_bytes(), t_build, t_solve, c))
}

fn run(h: &mut Harness) -> Result<(), String> {
    println!("E8: IES³ scaling (Fig 6)");
    println!("worker pool: {} thread(s) (RFSIM_THREADS)", rfsim::parallel::thread_count());
    let opts = Ies3Options::default();
    heading("size sweep (plate pair, n panels total)");
    println!(
        "{:>7} {:>13} {:>13} {:>10} {:>10} {:>13}",
        "n", "ies3 (B)", "dense (B)", "build (s)", "solve (s)", "C (F)"
    );
    let mut sizes = Vec::new();
    let mut mems = Vec::new();
    let mut times = Vec::new();
    for n_side in [8usize, 12, 16, 24, 32] {
        let label = format!("n_side={n_side}");
        let (n, mem, tb, ts, c) = h.sweep_point(&label, &[("n_side", n_side as f64)], |pm| {
            let (n, mem, tb, ts, c) = run_case(n_side, &opts)?;
            pm.metric("panels", n as f64);
            pm.metric("memory_bytes", mem as f64);
            pm.metric("build_seconds", tb);
            pm.metric("solve_seconds", ts);
            pm.metric("capacitance_f", c);
            Ok::<_, String>((n, mem, tb, ts, c))
        })?;
        println!("{:>7} {:>13} {:>13} {:>10.3} {:>10.3} {:>13.4e}", n, mem, n * n * 8, tb, ts, c);
        sizes.push(n as f64);
        mems.push(mem as f64);
        times.push(tb + ts);
    }
    // Log-log slope fits (first vs last point).
    let slope = |ys: &[f64]| {
        (ys.last().expect("nonempty") / ys[0]).ln()
            / (sizes.last().expect("nonempty") / sizes[0]).ln()
    };
    heading("fitted scaling exponents (Fig 6's 'slightly faster than linear')");
    println!("memory  ~ n^{:.2}   (dense: n^2.00)", slope(&mems));
    println!("time    ~ n^{:.2}   (dense LU: n^3.00)", slope(&times));

    heading("dense O(n²) assembly wall (batched panel quadrature)");
    println!("{:>7} {:>10} {:>12}", "n", "reps", "wall (s)");
    for n_side in [16usize, 24] {
        let panels = mesh_parallel_plates(1e-3, 1e-4, n_side);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 })
            .map_err(|e| format!("MoM setup (assembly, n_side {n_side}): {e}"))?;
        let n = p.len();
        let reps = (3_000_000 / (n * n)).max(1);
        let label = format!("assemble:n={n}");
        h.sweep_point(&label, &[("n", n as f64), ("reps", reps as f64)], |pm| {
            let mut trace = 0.0;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                let a = p.assemble_dense();
                trace += a[(0, 0)];
            }
            let t = t0.elapsed().as_secs_f64();
            pm.metric("ns_per_entry", t * 1e9 / (n * n * reps) as f64);
            println!("{:>7} {:>10} {:>12.3}", n, reps, t);
            if !trace.is_finite() {
                return Err("dense assembly produced non-finite entries".into());
            }
            Ok::<_, String>(())
        })?;
    }

    if ablate() {
        heading("ablation: rank tolerance ε vs memory and accuracy");
        // Reference from the dense solve at moderate size.
        let panels = mesh_parallel_plates(1e-3, 1e-4, 16);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 })
            .map_err(|e| format!("MoM setup (ablation): {e}"))?;
        let q_ref = p.solve_dense(&[1.0, 0.0]).map_err(|e| format!("dense reference: {e}"))?;
        let c_ref = p.conductor_charges(&q_ref)[0];
        println!("{:>9} {:>13} {:>14} {:>12}", "epsilon", "memory (B)", "C error", "lowrank blks");
        for tol in [1e-3, 1e-6, 1e-9] {
            let label = format!("eps={tol:.0e}");
            h.sweep_point(&label, &[("tol", tol)], |pm| {
                let o = Ies3Options { tol, ..Default::default() };
                let cm = CompressedMatrix::build(&p.panels, &p.green, &o)
                    .map_err(|e| format!("IES³ build (ε {tol:.0e}): {e}"))?;
                let (q, _) = p
                    .solve_iterative(
                        &cm,
                        &[1.0, 0.0],
                        &KrylovOptions { tol: 1e-10, ..Default::default() },
                    )
                    .map_err(|e| format!("GMRES (ε {tol:.0e}): {e}"))?;
                let c = p.conductor_charges(&q)[0];
                let c_err = ((c - c_ref) / c_ref).abs();
                pm.metric("memory_bytes", cm.memory_bytes() as f64);
                pm.metric("c_rel_err", c_err);
                println!(
                    "{:>9.0e} {:>13} {:>14.3e} {:>12}",
                    tol,
                    cm.memory_bytes(),
                    c_err,
                    cm.low_rank_blocks()
                );
                Ok::<_, String>(())
            })?;
        }
    } else {
        println!("\n(pass --ablate for the rank-tolerance ablation)");
    }
    Ok(())
}
