//! E10 — Section 3: oscillator phase noise — theory vs Monte Carlo vs LTV.
//!
//! Reproduces every §3 claim on three oscillators:
//! - jitter grows **linearly** with time, slope = the PPV diffusion
//!   constant `c` (validated against Euler–Maruyama ensembles — the
//!   measurement surrogate);
//! - the spectrum is a **Lorentzian** with finite power at the carrier and
//!   total carrier power preserved;
//! - **LTV** analysis "erroneously predicts infinite noise power density
//!   at the carrier, as well as infinite total integrated power";
//! - per-source contributions fall out of the same computation.
//!
//! Any solver failure — PSS, PPV, Monte Carlo, or the circuit adapter —
//! aborts the run with a nonzero exit code; a benchmark that cannot
//! complete its physics must not look green.

use rfsim::circuit::dae::Dae;
use rfsim::phasenoise::montecarlo::{monte_carlo_ensemble, McOptions};
use rfsim::phasenoise::oscillator::{LcOscillator, RingOscillator, VanDerPol};
use rfsim::phasenoise::ppv::compute_ppv;
use rfsim::phasenoise::pss::{oscillator_pss, PssOptions};
use rfsim::phasenoise::spectrum::{
    lorentzian_psd, ltv_psd, phase_noise_dbc, total_sideband_power, PhaseNoiseAnalysis,
};
use rfsim_bench::{heading, timed};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e10");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn analyze(
    name: &str,
    dae: &dyn Dae,
    guess: (Vec<f64>, f64),
) -> Result<PhaseNoiseAnalysis, String> {
    heading(&format!("{name}: PSS + PPV"));
    let (pss, t_pss) = timed(|| oscillator_pss(dae, guess, &PssOptions::default()));
    let pss = pss.map_err(|e| format!("{name}: PSS failed: {e}"))?;
    println!(
        "f0 = {:.4e} Hz (found, not assumed), carrier amp = {:.3} ({:.2} s)",
        pss.freq(),
        pss.amplitude(0, 1),
        t_pss
    );
    let ppv = compute_ppv(dae, &pss).map_err(|e| format!("{name}: PPV failed: {e}"))?;
    println!(
        "PPV normalization error max|v1ᵀẋ − 1| = {:.2e}",
        ppv.normalization_error(dae, &pss.states)
    );
    let pn = PhaseNoiseAnalysis::new(dae, &pss, &ppv, 0)
        .map_err(|e| format!("{name}: phase-noise analysis failed: {e}"))?;
    println!("diffusion constant c = {:.4e} s", pn.c);
    for (label, contribution) in pn.per_source() {
        println!("  {label}: {:.3e} ({:.0}%)", contribution, 100.0 * contribution / pn.c);
    }
    Ok(pn)
}

fn run(h: &mut Harness) -> Result<(), String> {
    println!("E10: phase noise in oscillators (Section 3)");

    // --- van der Pol: full MC validation. ---
    let vdp = VanDerPol::new(1.0, 4e-5);
    let (pn, pss) = h.phase("vdp", || {
        let pn = analyze("van der Pol (mu = 1)", &vdp, vdp.initial_guess())?;
        let pss = oscillator_pss(&vdp, vdp.initial_guess(), &PssOptions::default())
            .map_err(|e| format!("van der Pol: PSS failed: {e}"))?;
        Ok::<_, String>((pn, pss))
    })?;

    heading("jitter: Monte Carlo ensemble vs sigma^2 = c·t");
    let opts = McOptions { ensemble: 96, periods: 60, ..Default::default() };
    let mc = h.sweep_point("monte_carlo", &[("ensemble", opts.ensemble as f64)], |pm| {
        let (mc, t_mc) = timed(|| monte_carlo_ensemble(&vdp, &pss.x0, pss.period, &opts));
        let mc = mc.map_err(|e| format!("Monte Carlo ensemble failed: {e}"))?;
        pm.metric("c_mc", mc.c_estimate);
        pm.metric("c_ppv", pn.c);
        pm.metric("c_ratio", mc.c_estimate / pn.c);
        println!("({t_mc:.1} s for {} trajectories)", opts.ensemble);
        Ok::<_, String>(mc)
    })?;
    println!("{:>12} {:>14} {:>14}", "t (s)", "MC var (s²)", "c·t (s²)");
    let step = (mc.jitter.len() / 6).max(1);
    for (t, v) in mc.jitter.iter().step_by(step) {
        println!("{:>12.3} {:>14.4e} {:>14.4e}", t, v, pn.c * t);
    }
    println!(
        "MC slope ĉ = {:.3e} vs PPV c = {:.3e} (ratio {:.2})",
        mc.c_estimate,
        pn.c,
        mc.c_estimate / pn.c,
    );

    heading("spectrum: Lorentzian (finite at carrier) vs LTV (divergent)");
    let p1 = pss.amplitude(0, 1).powi(2) / 2.0;
    let gamma = std::f64::consts::PI * pn.f0 * pn.f0 * pn.c;
    println!("linewidth gamma = {gamma:.3e} Hz");
    println!("{:>12} {:>14} {:>14} {:>10}", "df (Hz)", "Lorentzian", "LTV", "L (dBc/Hz)");
    for mult in [0.0, 0.1, 1.0, 10.0, 100.0, 1e4] {
        let df = gamma * mult;
        println!(
            "{:>12.3e} {:>14.4e} {:>14.4e} {:>10.1}",
            df,
            lorentzian_psd(df, 1, pn.c, pn.f0, p1),
            if df > 0.0 { ltv_psd(df, 1, pn.c, pn.f0, p1) } else { f64::INFINITY },
            if df > 0.0 { phase_noise_dbc(df, pn.c, pn.f0) } else { f64::NEG_INFINITY }
        );
    }
    let lorentz_power = total_sideband_power(
        |df| lorentzian_psd(df, 1, pn.c, pn.f0, p1),
        gamma * 1e-4,
        gamma * 1e7,
        4000,
    );
    println!(
        "total Lorentzian sideband power: {:.4e} vs carrier power {:.4e} — conserved",
        lorentz_power, p1
    );
    for f_lo_mult in [1e-1, 1e-3, 1e-5] {
        let ltv_power = total_sideband_power(
            |df| ltv_psd(df, 1, pn.c, pn.f0, p1),
            gamma * f_lo_mult,
            gamma * 1e7,
            4000,
        );
        println!(
            "LTV integrated power from {:.0e}·gamma: {:.3e} (grows without bound)",
            f_lo_mult, ltv_power
        );
    }

    // --- LC oscillator: theory cross-check against the analytic c. ---
    h.phase("lc", || {
        let lc = LcOscillator::new(1e-6, 1e-9, 1e-3, 1e-4, 1e-24);
        let pn_lc = analyze("negative-resistance LC tank", &lc, lc.initial_guess())?;
        let pss_lc = oscillator_pss(&lc, lc.initial_guess(), &PssOptions::default())
            .map_err(|e| format!("LC tank: PSS failed: {e}"))?;
        let a = pss_lc.amplitude(0, 1);
        let omega = 2.0 * std::f64::consts::PI * pss_lc.freq();
        let c_analytic = (1e-24 / (1e-9f64 * 1e-9)) / (2.0 * a * a * omega * omega);
        println!(
            "harmonic-oscillator analytic c = {:.3e}; PPV c = {:.3e} (ratio {:.2})",
            c_analytic,
            pn_lc.c,
            pn_lc.c / c_analytic
        );
        Ok::<_, String>(())
    })?;

    // --- Ring oscillator: per-stage contributions. ---
    h.phase("ring", || {
        let ring = RingOscillator::new(3, 3.0, 1e-9, 1e-18);
        analyze("3-stage ring oscillator", &ring, ring.initial_guess())?;
        println!("(equal per-stage contributions reflect the ring's symmetry)");
        Ok::<_, String>(())
    })?;

    // --- Circuit-level oscillator: the same pipeline on an MNA netlist
    // ("efficient for practical circuits", §3). ---
    heading("circuit-level LC oscillator (MNA netlist through the same pipeline)");
    h.phase("circuit", || {
        let (osc, guess) = rfsim::phasenoise::lc_oscillator_circuit(1e-6, 1e-9, 1e-3, 1e-4, 1e-24)
            .map_err(|e| format!("circuit adapter failed: {e}"))?;
        let pss = oscillator_pss(&osc, guess, &PssOptions::default())
            .map_err(|e| format!("circuit oscillator: PSS failed: {e}"))?;
        let ppv =
            compute_ppv(&osc, &pss).map_err(|e| format!("circuit oscillator: PPV failed: {e}"))?;
        let (c_circ, contribs) = rfsim::phasenoise::circuit_diffusion_constant(&osc, &pss, &ppv);
        println!(
            "f0 = {:.4e} Hz, amplitude {:.3} V, c = {:.4e} s",
            pss.freq(),
            pss.amplitude(0, 1),
            c_circ
        );
        for (label, v) in contribs {
            println!("  {label}: {v:.3e}");
        }
        println!("(matches the analytic LC tank above — same physics, netlist form)");
        Ok::<_, String>(())
    })?;
    Ok(())
}
