//! Field solver → circuit simulation integration: capacitances extracted
//! by MoM/IES³/FD feed circuit analyses, and ROM macromodels stand in for
//! the systems they reduce.

use rfsim::circuit::ac::{ac_sweep, log_sweep};
use rfsim::circuit::prelude::*;
use rfsim::circuit::Circuit;
use rfsim::em::fd::{FdConductor, FdProblem};
use rfsim::em::geom::mesh_parallel_plates;
use rfsim::em::ies3::{CompressedMatrix, Ies3Options};
use rfsim::em::mom::{capacitance_matrix, MomProblem};
use rfsim::em::GreenFn;
use rfsim::numerics::krylov::KrylovOptions;
use rfsim::numerics::Complex;
use rfsim::rom::pvl::pvl_rom;
use rfsim::rom::statespace::{rc_line, TransferFunction};

/// Extract a plate capacitor with MoM, build an RC filter around it, and
/// check the AC corner frequency lands where the extracted C says.
#[test]
fn extracted_capacitance_sets_the_rc_corner() {
    let (side, gap) = (200e-6, 20e-6);
    let panels = mesh_parallel_plates(side, gap, 8);
    let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 3.9 }).expect("mom");
    let cmat = capacitance_matrix(&p).expect("cap");
    let c_extracted = -cmat[(0, 1)];
    assert!(c_extracted > 0.0);

    let r = 10e3;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::dc("V1", a, Circuit::GROUND, 0.0));
    ckt.add(Resistor::new("R1", a, out, r));
    ckt.add(Capacitor::new("CEXT", out, Circuit::GROUND, c_extracted));
    let dae = ckt.into_dae().expect("netlist");
    let mut b_ac = vec![0.0; rfsim::circuit::dae::Dae::dim(&dae)];
    b_ac[dae.branch_index("V1", 0).expect("branch")] = 1.0;
    let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c_extracted);
    let res = ac_sweep(&dae, &[0.0; 3], &b_ac, &[fc]).expect("ac");
    let gain = res.voltage(0, out).abs();
    // At the corner the magnitude is 1/√2.
    assert!(
        (gain - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6,
        "gain at extracted corner = {gain}"
    );
}

/// Dense MoM, IES³-compressed MoM and the FD volume solver agree on the
/// same structure (within discretization error).
#[test]
fn three_solvers_one_capacitance() {
    let (side, gap) = (60e-6, 12e-6);
    let panels = mesh_parallel_plates(side, gap, 8);
    let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).expect("mom");
    // Dense: both the mutual capacitance (for the FD comparison) and the
    // conductor-0 self charge at [1, 0] V (for the IES³ comparison).
    let c_mutual = -capacitance_matrix(&p).expect("cap")[(0, 1)];
    let q_dense = p.solve_dense(&[1.0, 0.0]).expect("dense");
    let c_dense = p.conductor_charges(&q_dense)[0];
    // IES³ + GMRES (same excitation → same quantity).
    let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).expect("ies3");
    let (q, _) = p
        .solve_iterative(&cm, &[1.0, 0.0], &KrylovOptions { tol: 1e-9, ..Default::default() })
        .expect("gmres");
    let c_ies3 = p.conductor_charges(&q)[0];
    assert!((c_ies3 - c_dense).abs() / c_dense < 1e-3, "dense {c_dense:.4e} vs ies3 {c_ies3:.4e}");
    // FD (coarser physics: grounded box adds fringing; same order).
    let nf = 18;
    let h = 3.0 * side / nf as f64;
    let cell_of = |x: f64| ((x + 1.5 * side) / h).round() as usize;
    let (plo, phi) = (cell_of(-side / 2.0), cell_of(side / 2.0));
    let (zlo, zhi) = (cell_of(-gap / 2.0), cell_of(gap / 2.0));
    let fd = FdProblem {
        nx: nf,
        ny: nf,
        nz: nf,
        h,
        eps_r: 1.0,
        conductors: vec![
            FdConductor { x: (plo, phi), y: (plo, phi), z: (zlo, zlo + 1) },
            FdConductor { x: (plo, phi), y: (plo, phi), z: (zhi, zhi + 1) },
        ],
    };
    let sol = fd.solve(&[1.0, 0.0]).expect("fd");
    let c_fd = 2.0 * fd.field_energy(&sol.phi);
    let ratio = c_fd / c_mutual;
    assert!(
        ratio > 0.7 && ratio < 2.5,
        "fd {c_fd:.4e} vs mutual {c_mutual:.4e} (ratio {ratio:.2})"
    );
}

/// A PVL macromodel of an RC line reproduces the full line's response as
/// computed by the *circuit* simulator (not just by its own descriptor
/// evaluation) — the two crates implement the same physics independently.
#[test]
fn rom_macromodel_matches_circuit_simulator() {
    let n = 40;
    let (r_per, c_per) = (100.0, 1e-12);
    // ROM side: descriptor RC line driven by a 1 A current source.
    let sys = rc_line(n, r_per, c_per);
    let model = pvl_rom(&sys, 0.0, 8).expect("pvl");
    // Circuit side: build the same line from devices.
    let mut ckt = Circuit::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| ckt.node(&format!("n{i}"))).collect();
    ckt.add(ISource::dc("I1", Circuit::GROUND, nodes[0], 1.0));
    // The descriptor generator grounds the input through r_per.
    ckt.add(Resistor::new("RG", nodes[0], Circuit::GROUND, r_per));
    for i in 0..n - 1 {
        ckt.add(Resistor::new(&format!("R{i}"), nodes[i], nodes[i + 1], r_per));
    }
    for (i, &node) in nodes.iter().enumerate() {
        ckt.add(Capacitor::new(&format!("C{i}"), node, Circuit::GROUND, c_per));
    }
    let dae = ckt.into_dae().expect("netlist");
    let op = dc_operating_point(&dae, &DcOptions::default()).expect("dc");
    // AC: unit current injection.
    let mut b_ac = vec![0.0; rfsim::circuit::dae::Dae::dim(&dae)];
    b_ac[dae.node_index(nodes[0]).expect("node")] = 1.0;
    let freqs = log_sweep(1e4, 1e9, 12);
    let ac = ac_sweep(&dae, &op.x, &b_ac, &freqs).expect("ac");
    // Error referenced to the peak response (as in §5 ROM practice):
    // pointwise relative error deep in the stopband is not meaningful for
    // a moment-matched model.
    let h_max = ac.voltage(0, nodes[n - 1]).abs();
    for (k, &f) in freqs.iter().enumerate() {
        let v_circuit = ac.voltage(k, nodes[n - 1]);
        let v_rom = model.eval(Complex::new(0.0, 2.0 * std::f64::consts::PI * f));
        assert!(
            (v_circuit - v_rom).abs() < 1e-3 * h_max,
            "f = {f:.2e}: circuit {v_circuit} vs rom {v_rom}"
        );
    }
}

/// Spiral-inductor extraction feeding AC analysis: the extracted L and the
/// circuit simulator agree on the LC resonance with a known capacitor.
#[test]
fn extracted_inductor_resonates_where_predicted() {
    let spiral = rfsim::em::inductor::SpiralInductor::default();
    let model = spiral.extract(2, 6).expect("extract");
    let l = model.l_series;
    let c = 1e-12;
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let m = ckt.node("m");
    let x = ckt.node("x");
    ckt.add(VSource::dc("V1", a, Circuit::GROUND, 0.0));
    ckt.add(Resistor::new("RS", a, m, 50.0));
    ckt.add(Inductor::new("LSP", m, x, l));
    ckt.add(Capacitor::new("CT", x, Circuit::GROUND, c));
    let dae = ckt.into_dae().expect("netlist");
    let mut b_ac = vec![0.0; rfsim::circuit::dae::Dae::dim(&dae)];
    b_ac[dae.branch_index("V1", 0).expect("branch")] = 1.0;
    let freqs = [f0 * 0.5, f0, f0 * 2.0];
    let res = ac_sweep(&dae, &[0.0; 5], &b_ac, &freqs).expect("ac");
    let i_branch = dae.branch_index("V1", 0).expect("branch");
    let mags: Vec<f64> = (0..3).map(|k| res.solutions[k][i_branch].abs()).collect();
    // Series resonance: current maximal at f0.
    assert!(mags[1] > mags[0] && mags[1] > mags[2], "{mags:?}");
    assert!((mags[1] - 1.0 / 50.0).abs() < 1e-3);
}
