//! Small-signal AC analysis: linearize at the DC operating point and sweep
//! `(G + jωC)·x̃ = b̃` across frequency.

use crate::dae::Dae;
use crate::netlist::NodeId;
use crate::Result;
use rfsim_numerics::sparse::{Csr, Triplets};
use rfsim_numerics::Complex;

/// Result of an AC sweep: one complex solution vector per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    /// Analysis frequencies (Hz).
    pub freqs: Vec<f64>,
    /// Small-signal solutions, one per frequency.
    pub solutions: Vec<Vec<Complex>>,
    nn: usize,
}

impl AcResult {
    /// Complex node voltage at sweep point `k` (0 for ground).
    pub fn voltage(&self, k: usize, node: NodeId) -> Complex {
        if node.is_ground() {
            Complex::ZERO
        } else {
            assert!(node.index() - 1 < self.nn, "node outside circuit");
            self.solutions[k][node.index() - 1]
        }
    }

    /// Magnitude response of a node across the sweep, in dB (20·log₁₀).
    pub fn gain_db(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| 20.0 * self.voltage(k, node).abs().max(1e-300).log10())
            .collect()
    }
}

/// Builds the complex MNA matrix `G + jωC` from real CSR parts.
pub fn complex_system(g: &Csr<f64>, c: &Csr<f64>, omega: f64) -> Csr<Complex> {
    let n = g.rows();
    let mut t = Triplets::new(n, n);
    for (i, j, v) in g.iter() {
        t.push(i, j, Complex::new(v, 0.0));
    }
    for (i, j, v) in c.iter() {
        t.push(i, j, Complex::new(0.0, omega * v));
    }
    t.to_csr()
}

/// Sweeps the small-signal response over `freqs`.
///
/// `x_op` is the DC operating point; `b_ac` the small-signal excitation
/// pattern (e.g. 1.0 in the source branch row for a unit AC source).
///
/// # Errors
/// Propagates singular-matrix errors from the per-frequency solves.
pub fn ac_sweep(dae: &dyn Dae, x_op: &[f64], b_ac: &[f64], freqs: &[f64]) -> Result<AcResult> {
    let n = dae.dim();
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut gt = Triplets::new(n, n);
    let mut ct = Triplets::new(n, n);
    dae.eval(x_op, &mut f, &mut q, &mut gt, &mut ct);
    let g = gt.to_csr();
    let c = ct.to_csr();
    let bc: Vec<Complex> = b_ac.iter().map(|&v| Complex::from_re(v)).collect();
    let mut solutions = Vec::with_capacity(freqs.len());
    for &fq in freqs {
        let omega = 2.0 * std::f64::consts::PI * fq;
        let a = complex_system(&g, &c, omega);
        let x = a.solve(&bc)?;
        solutions.push(x);
    }
    Ok(AcResult { freqs: freqs.to_vec(), solutions, nn: n })
}

/// Logarithmically spaced frequency grid (inclusive of endpoints).
///
/// # Panics
/// Panics unless `0 < f_start < f_stop` and `points ≥ 2`.
pub fn log_sweep(f_start: f64, f_stop: f64, points: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start && points >= 2, "invalid sweep");
    let l0 = f_start.ln();
    let l1 = f_stop.ln();
    (0..points).map(|i| (l0 + (l1 - l0) * i as f64 / (points - 1) as f64).exp()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::Circuit;

    #[test]
    fn rc_lowpass_bode() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, 0.0));
        ckt.add(Resistor::new("R1", a, b, 1e3));
        ckt.add(Capacitor::new("C1", b, Circuit::GROUND, 1e-9));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        // Unit AC stimulus in the V1 branch equation row.
        let mut b_ac = vec![0.0; dae.dim()];
        b_ac[dae.branch_index("V1", 0).unwrap()] = 1.0;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9); // ≈159 kHz
        let freqs = vec![fc / 100.0, fc, fc * 100.0];
        let res = ac_sweep(&dae, &op.x, &b_ac, &freqs).unwrap();
        let g = res.gain_db(b);
        assert!(g[0].abs() < 0.1, "passband gain {df}", df = g[0]);
        assert!((g[1] + 3.0103).abs() < 0.1, "corner gain {}", g[1]);
        assert!((g[2] + 40.0).abs() < 0.5, "stopband gain {}", g[2]);
        // Phase at the corner is −45°.
        let ph = res.voltage(1, b).arg().to_degrees();
        assert!((ph + 45.0).abs() < 1.0, "phase {ph}");
    }

    #[test]
    fn rlc_resonance_peak() {
        // Series RLC: current peaks at resonance where |Z| = R.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        let x = ckt.node("x");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, 0.0));
        ckt.add(Resistor::new("R1", a, m, 10.0));
        ckt.add(Inductor::new("L1", m, x, 1e-6));
        ckt.add(Capacitor::new("C1", x, Circuit::GROUND, 1e-9));
        let dae = ckt.into_dae().unwrap();
        let op = vec![0.0; dae.dim()];
        let mut b_ac = vec![0.0; dae.dim()];
        b_ac[dae.branch_index("V1", 0).unwrap()] = 1.0;
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-6f64 * 1e-9).sqrt());
        let freqs = vec![f0 / 10.0, f0, f0 * 10.0];
        let res = ac_sweep(&dae, &op, &b_ac, &freqs).unwrap();
        // Branch current magnitude peaks at resonance (|Z| = R there).
        let ib = dae.branch_index("V1", 0).unwrap();
        let i_res = res.solutions[1][ib].abs();
        assert!((i_res - 1.0 / 10.0).abs() < 1e-3, "i_res = {i_res}");
        assert!(res.solutions[0][ib].abs() < i_res / 5.0);
        assert!(res.solutions[2][ib].abs() < i_res / 5.0);
    }

    #[test]
    fn log_sweep_endpoints() {
        let f = log_sweep(1.0, 1e6, 7);
        assert_eq!(f.len(), 7);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[6] - 1e6).abs() < 1e-6);
        assert!((f[3] - 1e3).abs() < 1e-9);
    }
}
