//! Span profile of the e02 HB mixer-ladder workload: one solve, then
//! the telemetry span tree, so kernel-level time (assembly, FFT,
//! per-bin triangular solves, matvecs) is attributable without a
//! sampling profiler. Usage:
//!
//! ```text
//! RFSIM_THREADS=1 cargo run --release -p rfsim-bench --example prof_hb -- 144
//! RFSIM_SIMD=off RFSIM_THREADS=1 ... # scalar-dispatch comparison leg
//! ```
use rfsim::steady::{solve_hb, HbOptions, SpectralGrid, ToneAxis};
use rfsim_bench::{modulator_chain, ModulatorSpec};

fn main() {
    let stages: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(144);
    let spec = ModulatorSpec { f_bb: 1e6, f_lo: 100e6, ..ModulatorSpec::default() };
    let (dae, _out) = modulator_chain(&spec, stages);
    let grid =
        SpectralGrid::two_tone(ToneAxis::new(spec.f_bb, 5), ToneAxis::new(spec.f_lo, 5)).unwrap();
    let t0 = std::time::Instant::now();
    let sol = solve_hb(&dae, &grid, &HbOptions::default()).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    println!("wall {:.3}s unknowns {}", wall, sol.stats.unknowns);
    let snap = rfsim::telemetry::snapshot();
    print!("{}", snap.render_report());
}
