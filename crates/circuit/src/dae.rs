//! The circuit differential-algebraic equation: the [`Dae`] trait consumed
//! by every analysis engine, and [`CircuitDae`], the MNA-assembled
//! implementation built from a [`Circuit`](crate::Circuit).
//!
//! The system solved throughout the workspace is the paper's Eq. (3),
//!
//! ```text
//!     d/dt q(x) + f(x) = b(t)
//! ```
//!
//! and its bivariate MPDE generalization Eq. (4),
//!
//! ```text
//!     ∂q(x̂)/∂t₁ + ∂q(x̂)/∂t₂ + f(x̂) = b̂(t₁, t₂),
//! ```
//!
//! which is why excitations are evaluated at a [`TwoTime`]: univariate
//! analyses pass `t₁ = t₂ = t`, while the MPDE engines separate the slow
//! (`t₁`) and fast (`t₂`) arguments.

use crate::netlist::{Device, NodeId};
use crate::waveform::TimeScale;
use rfsim_numerics::sparse::{Csr, Triplets};

/// A pair of time arguments `(t₁ slow, t₂ fast)` for bivariate excitation
/// evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoTime {
    /// Slow time scale argument.
    pub t1: f64,
    /// Fast time scale argument.
    pub t2: f64,
}

impl TwoTime {
    /// Univariate time: both arguments equal (`b(t) = b̂(t, t)`).
    pub fn uni(t: f64) -> Self {
        TwoTime { t1: t, t2: t }
    }

    /// Bivariate time.
    pub fn new(t1: f64, t2: f64) -> Self {
        TwoTime { t1, t2 }
    }

    /// Selects the argument matching a stimulus time scale.
    pub fn select(&self, scale: TimeScale) -> f64 {
        match scale {
            TimeScale::Slow => self.t1,
            TimeScale::Fast => self.t2,
        }
    }
}

/// A differential-algebraic system `q̇(x) + f(x) = b(t)`.
///
/// Implemented by [`CircuitDae`] (MNA circuits) and by analytic ODE systems
/// (e.g. the oscillator models in `rfsim-phasenoise`).
pub trait Dae: Send + Sync {
    /// Number of unknowns.
    fn dim(&self) -> usize;

    /// Evaluates `f(x)`, `q(x)` and their Jacobians `G = ∂f/∂x`,
    /// `C = ∂q/∂x`. All outputs are cleared by the callee before stamping.
    fn eval(
        &self,
        x: &[f64],
        f: &mut [f64],
        q: &mut [f64],
        g: &mut Triplets<f64>,
        c: &mut Triplets<f64>,
    );

    /// Evaluates the excitation `b̂(t₁, t₂)` into `b` (cleared first).
    fn eval_b(&self, t: TwoTime, b: &mut [f64]);

    /// Whether `f`/`q` depend nonlinearly on `x`.
    fn is_nonlinear(&self) -> bool {
        true
    }

    /// Human-readable name of unknown `i` (diagnostics).
    fn unknown_name(&self, i: usize) -> String {
        format!("x{i}")
    }

    /// Small-signal noise generators at the operating point (empty when the
    /// system is noiseless).
    fn noise_sources(&self, _x_op: &[f64]) -> Vec<NoiseSource> {
        Vec::new()
    }
}

/// Addresses an MNA unknown from a device's point of view: one of its nodes
/// or one of its own branch currents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Var {
    /// A circuit node (ground contributes nothing).
    Node(NodeId),
    /// The device's `k`-th branch-current unknown.
    Branch(usize),
}

/// Stamping context passed to [`Device::load`]: read the candidate solution
/// and accumulate `f`, `q`, `G`, `C` contributions.
pub struct LoadCtx<'a> {
    pub(crate) x: &'a [f64],
    pub(crate) nn: usize,
    pub(crate) branch0: usize,
    pub(crate) f: &'a mut [f64],
    pub(crate) q: &'a mut [f64],
    pub(crate) g: &'a mut Triplets<f64>,
    pub(crate) c: &'a mut Triplets<f64>,
}

impl LoadCtx<'_> {
    fn idx(&self, v: Var) -> Option<usize> {
        match v {
            Var::Node(n) if n.is_ground() => None,
            Var::Node(n) => Some(n.0 - 1),
            Var::Branch(k) => {
                debug_assert!(self.branch0 + k < self.x.len(), "branch index out of range");
                Some(self.branch0 + k)
            }
        }
    }

    /// Voltage of a node at the current solution (0 for ground).
    pub fn v(&self, n: NodeId) -> f64 {
        if n.is_ground() {
            0.0
        } else {
            self.x[n.0 - 1]
        }
    }

    /// Current through the device's `k`-th branch unknown.
    pub fn branch_current(&self, k: usize) -> f64 {
        self.x[self.branch0 + k]
    }

    /// Adds to the resistive term of an equation.
    pub fn add_f(&mut self, eq: Var, val: f64) {
        if let Some(i) = self.idx(eq) {
            self.f[i] += val;
        }
    }

    /// Adds to the charge/flux term of an equation.
    pub fn add_q(&mut self, eq: Var, val: f64) {
        if let Some(i) = self.idx(eq) {
            self.q[i] += val;
        }
    }

    /// Adds to `G[eq, var] = ∂f_eq/∂x_var`.
    pub fn add_g(&mut self, eq: Var, var: Var, val: f64) {
        if let (Some(i), Some(j)) = (self.idx(eq), self.idx(var)) {
            self.g.push(i, j, val);
        }
    }

    /// Adds to `C[eq, var] = ∂q_eq/∂x_var`.
    pub fn add_c(&mut self, eq: Var, var: Var, val: f64) {
        if let (Some(i), Some(j)) = (self.idx(eq), self.idx(var)) {
            self.c.push(i, j, val);
        }
    }

    /// Number of node-voltage unknowns (excludes ground).
    pub fn node_unknowns(&self) -> usize {
        self.nn
    }
}

/// Context passed to [`Device::source`] for stamping `b(t)`.
pub struct SrcCtx<'a> {
    pub(crate) t: TwoTime,
    pub(crate) branch0: usize,
    pub(crate) b: &'a mut [f64],
}

impl SrcCtx<'_> {
    /// The (possibly bivariate) evaluation time.
    pub fn time(&self) -> TwoTime {
        self.t
    }

    /// Adds to the excitation entry of a node equation.
    pub fn add_b(&mut self, n: NodeId, val: f64) {
        if !n.is_ground() {
            self.b[n.0 - 1] += val;
        }
    }

    /// Adds to the excitation entry of the device's `k`-th branch equation.
    pub fn add_b_branch(&mut self, k: usize, val: f64) {
        self.b[self.branch0 + k] += val;
    }
}

/// Resolves device-local variables to global unknown indices when
/// enumerating noise sources.
pub struct NoiseCtx<'a> {
    nn: usize,
    branch0: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl NoiseCtx<'_> {
    /// Global unknown index of a variable (`None` for ground).
    pub fn index(&self, v: Var) -> Option<usize> {
        match v {
            Var::Node(n) if n.is_ground() => None,
            Var::Node(n) => Some(n.0 - 1),
            Var::Branch(k) => Some(self.branch0 + k),
        }
    }

    /// Number of node unknowns.
    pub fn node_unknowns(&self) -> usize {
        self.nn
    }
}

/// Power spectral density model of a device noise generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Psd {
    /// Frequency-independent PSD (thermal, shot) in A²/Hz.
    White(f64),
    /// White plus 1/f: `S(f) = white·(1 + fc/f)` with corner `fc` in Hz.
    Flicker {
        /// White floor in A²/Hz.
        white: f64,
        /// Flicker corner frequency in Hz.
        corner: f64,
    },
}

impl Psd {
    /// Evaluates the PSD at frequency `f` (Hz). 1/f noise diverges as
    /// `f → 0`; callers clamp the evaluation band.
    pub fn at(&self, f: f64) -> f64 {
        match *self {
            Psd::White(s) => s,
            Psd::Flicker { white, corner } => white * (1.0 + corner / f.max(1e-12)),
        }
    }
}

/// A small-signal noise current source between two unknowns.
///
/// The stochastic excitation enters the DAE as `B·ξ(t)` with one column per
/// source: `+√S` at `from`, `−√S` at `to` (`None` = ground).
#[derive(Debug, Clone)]
pub struct NoiseSource {
    /// Label (`"R1 thermal"`, `"Q3 shot"`, …).
    pub label: String,
    /// Unknown receiving `+`.
    pub from: Option<usize>,
    /// Unknown receiving `−`.
    pub to: Option<usize>,
    /// PSD model (single-sided, A²/Hz).
    pub psd: Psd,
}

impl NoiseSource {
    /// Scatters this source's unit-intensity column into a dense vector
    /// scaled by `√S(f)`.
    pub fn column(&self, dim: usize, f: f64) -> Vec<f64> {
        let mut col = vec![0.0; dim];
        let s = self.psd.at(f).sqrt();
        if let Some(i) = self.from {
            col[i] += s;
        }
        if let Some(i) = self.to {
            col[i] -= s;
        }
        col
    }
}

/// The MNA-assembled DAE of a circuit.
///
/// Unknown layout: node voltages for nodes `1..n` (ground excluded) followed
/// by device branch currents in device insertion order.
pub struct CircuitDae {
    node_names: Vec<String>,
    devices: Vec<Box<dyn Device>>,
    branch_offsets: Vec<usize>,
    nn: usize,
    dim: usize,
    nonlinear: bool,
}

impl std::fmt::Debug for CircuitDae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CircuitDae(dim = {}, nodes = {}, devices = {})",
            self.dim,
            self.nn,
            self.devices.len()
        )
    }
}

impl CircuitDae {
    pub(crate) fn build(node_names: Vec<String>, devices: Vec<Box<dyn Device>>) -> Self {
        let nn = node_names.len() - 1;
        let mut branch_offsets = Vec::with_capacity(devices.len());
        let mut nb = 0;
        for d in &devices {
            branch_offsets.push(nn + nb);
            nb += d.branch_count();
        }
        let nonlinear = devices.iter().any(|d| d.is_nonlinear());
        CircuitDae { node_names, devices, branch_offsets, nn, dim: nn + nb, nonlinear }
    }

    /// Unknown index of a node's voltage (`None` for ground).
    pub fn node_index(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    /// Voltage of `n` in the solution vector `x` (0 for ground).
    ///
    /// # Panics
    /// Panics if `x` is shorter than the node-unknown count.
    pub fn voltage(&self, x: &[f64], n: NodeId) -> f64 {
        match self.node_index(n) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Unknown index of the `k`-th branch current of the named device.
    pub fn branch_index(&self, device: &str, k: usize) -> Option<usize> {
        self.devices.iter().position(|d| d.name() == device).map(|di| self.branch_offsets[di] + k)
    }

    /// Number of node-voltage unknowns.
    pub fn node_unknowns(&self) -> usize {
        self.nn
    }

    /// Assembled `G`, `C` Jacobians at `x` as CSR matrices.
    pub fn linearize(&self, x: &[f64]) -> (Csr<f64>, Csr<f64>) {
        let mut f = vec![0.0; self.dim];
        let mut q = vec![0.0; self.dim];
        let mut g = Triplets::new(self.dim, self.dim);
        let mut c = Triplets::new(self.dim, self.dim);
        self.eval(x, &mut f, &mut q, &mut g, &mut c);
        (g.to_csr(), c.to_csr())
    }

    /// The excitation vector at time `t` as a dense vector.
    pub fn b_vector(&self, t: TwoTime) -> Vec<f64> {
        let mut b = vec![0.0; self.dim];
        self.eval_b(t, &mut b);
        b
    }
}

impl Dae for CircuitDae {
    fn dim(&self) -> usize {
        self.dim
    }

    fn eval(
        &self,
        x: &[f64],
        f: &mut [f64],
        q: &mut [f64],
        g: &mut Triplets<f64>,
        c: &mut Triplets<f64>,
    ) {
        assert_eq!(x.len(), self.dim, "eval: solution length mismatch");
        f.fill(0.0);
        q.fill(0.0);
        g.reset(self.dim, self.dim);
        c.reset(self.dim, self.dim);
        for (di, d) in self.devices.iter().enumerate() {
            let mut ctx = LoadCtx { x, nn: self.nn, branch0: self.branch_offsets[di], f, q, g, c };
            d.load(&mut ctx);
        }
    }

    fn eval_b(&self, t: TwoTime, b: &mut [f64]) {
        b.fill(0.0);
        for (di, d) in self.devices.iter().enumerate() {
            let mut ctx = SrcCtx { t, branch0: self.branch_offsets[di], b };
            d.source(&mut ctx);
        }
    }

    fn is_nonlinear(&self) -> bool {
        self.nonlinear
    }

    fn unknown_name(&self, i: usize) -> String {
        if i < self.nn {
            format!("v({})", self.node_names[i + 1])
        } else {
            // Find the owning device.
            for (di, d) in self.devices.iter().enumerate() {
                let lo = self.branch_offsets[di];
                let hi = lo + d.branch_count();
                if i >= lo && i < hi {
                    return format!("i({},{})", d.name(), i - lo);
                }
            }
            format!("x{i}")
        }
    }

    fn noise_sources(&self, x_op: &[f64]) -> Vec<NoiseSource> {
        let mut out = Vec::new();
        for (di, d) in self.devices.iter().enumerate() {
            let ctx = NoiseCtx {
                nn: self.nn,
                branch0: self.branch_offsets[di],
                _marker: std::marker::PhantomData,
            };
            out.extend(d.noise(x_op, &ctx));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Resistor, VSource};
    use crate::netlist::Circuit;

    fn divider() -> CircuitDae {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, 2.0));
        ckt.add(Resistor::new("R1", a, b, 100.0));
        ckt.add(Resistor::new("R2", b, Circuit::GROUND, 100.0));
        ckt.into_dae().unwrap()
    }

    #[test]
    fn dimension_and_names() {
        let dae = divider();
        // 2 node voltages + 1 vsource branch.
        assert_eq!(dae.dim(), 3);
        assert_eq!(dae.unknown_name(0), "v(a)");
        assert_eq!(dae.unknown_name(1), "v(b)");
        assert_eq!(dae.unknown_name(2), "i(V1,0)");
        assert!(!dae.is_nonlinear());
    }

    #[test]
    fn b_vector_carries_source() {
        let dae = divider();
        let b = dae.b_vector(TwoTime::uni(0.0));
        // VSource branch equation RHS = 2.0.
        assert_eq!(b[2], 2.0);
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn linearize_shapes() {
        let dae = divider();
        let x = vec![0.0; dae.dim()];
        let (g, c) = dae.linearize(&x);
        assert_eq!(g.rows(), 3);
        assert_eq!(c.rows(), 3);
        // Conductance stamps present; no capacitors.
        assert!(g.nnz() > 0);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn two_time_selection() {
        let t = TwoTime::new(1.0, 2.0);
        assert_eq!(t.select(TimeScale::Slow), 1.0);
        assert_eq!(t.select(TimeScale::Fast), 2.0);
        assert_eq!(TwoTime::uni(3.0), TwoTime::new(3.0, 3.0));
    }

    #[test]
    fn psd_models() {
        let w = Psd::White(4e-21);
        assert_eq!(w.at(1.0), w.at(1e9));
        let fl = Psd::Flicker { white: 1e-20, corner: 1e3 };
        assert!(fl.at(10.0) > fl.at(1e6));
        assert!((fl.at(1e3) - 2e-20).abs() < 1e-30);
    }

    #[test]
    fn noise_source_column() {
        let ns =
            NoiseSource { label: "test".into(), from: Some(0), to: Some(2), psd: Psd::White(4.0) };
        let col = ns.column(3, 1.0);
        assert_eq!(col, vec![2.0, 0.0, -2.0]);
    }
}
