//! A miniature receiver front end analyzed three ways — the workflow the
//! paper's introduction motivates: one design, verified with the analysis
//! that fits each question.
//!
//! Run with `cargo run --release --example receiver_chain`.
//!
//! Chain: RF input (desired tone + strong adjacent-channel blocker) →
//! down-conversion mixer (LO) → RC channel filter. Questions:
//! 1. conversion gain and blocker rejection (two-tone HB),
//! 2. output noise of the filter (noise analysis + kT/C check),
//! 3. envelope of the desired channel under AM (TD-ENV).

use rfsim::circuit::noise::noise_sweep;
use rfsim::circuit::prelude::*;
use rfsim::circuit::waveform::{Stimulus, TimeScale, Tone};
use rfsim::circuit::Circuit;
use rfsim::mpde::{envelope_follow, EnvelopeOptions};
use rfsim::steady::{solve_hb, HbOptions, SpectralGrid, ToneAxis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f_rf = 101e6; // desired channel (100 MHz LO + 1 MHz IF)
    let f_lo = 100e6;
    let f_if = 1e6;

    // --- Build the chain. ---
    // A tone at f_rf = f_lo + f_if lives on *both* MPDE time scales: it is
    // the (1, 1) mix, not a pure fast harmonic. Synthesize it the way a
    // transmitter would — single-sideband: sin(ω_lo·t₂ + ω_if·t₁) =
    // sin·cos + cos·sin via two multipliers summed in current.
    let _ = f_rf;
    let mut ckt = Circuit::new();
    let rf = ckt.node("rf");
    let lo = ckt.node("lo");
    let mix = ckt.node("mix");
    let out = ckt.node("out");
    let half_pi = std::f64::consts::FRAC_PI_2;
    let bb_i = ckt.node("bb_i");
    let bb_q = ckt.node("bb_q");
    let lo_i = ckt.node("lo_i");
    ckt.add(VSource::sine("VBI", bb_i, Circuit::GROUND, 0.0, 1.0, f_if));
    ckt.add(VSource::new(
        "VBQ",
        bb_q,
        Circuit::GROUND,
        Stimulus::Sine {
            offset: 0.0,
            tone: Tone { amplitude: 1.0, freq: f_if, phase: half_pi },
            scale: TimeScale::Slow,
        },
    ));
    ckt.add(VSource::sine_fast("VLI", lo_i, Circuit::GROUND, 0.0, 1.0, f_lo));
    let lo_q = ckt.node("lo_q");
    ckt.add(VSource::new(
        "VLQ",
        lo_q,
        Circuit::GROUND,
        Stimulus::Sine {
            offset: 0.0,
            tone: Tone { amplitude: 1.0, freq: f_lo, phase: half_pi },
            scale: TimeScale::Fast,
        },
    ));
    // rf = 10 mV single-sideband at f_lo + f_if (upper sideband).
    ckt.add(Resistor::new("RRF", rf, Circuit::GROUND, 1e3));
    ckt.add(Multiplier::new(
        "SSB1",
        rf,
        Circuit::GROUND,
        bb_i,
        Circuit::GROUND,
        lo_q,
        Circuit::GROUND,
        -5e-6,
    ));
    ckt.add(Multiplier::new(
        "SSB2",
        rf,
        Circuit::GROUND,
        bb_q,
        Circuit::GROUND,
        lo_i,
        Circuit::GROUND,
        -5e-6,
    ));
    ckt.add(VSource::sine_fast("VLO", lo, Circuit::GROUND, 0.0, 1.0, f_lo));
    ckt.add(Multiplier::new(
        "MIX",
        mix,
        Circuit::GROUND,
        rf,
        Circuit::GROUND,
        lo,
        Circuit::GROUND,
        -2e-3, // conversion gain 2 into the 1 kΩ load
    ));
    ckt.add(Resistor::new("RMIX", mix, Circuit::GROUND, 1e3));
    // IF channel filter: corner ≈ 1.6 MHz passes the 1 MHz IF, rejects
    // the 2f_lo feedthrough.
    ckt.add(Resistor::new("RF1", mix, out, 1e3));
    ckt.add(Capacitor::new("CF1", out, Circuit::GROUND, 100e-12));
    let dae = ckt.into_dae()?;
    let oi = dae.node_index(out).expect("out is a node");

    // --- 1. Conversion gain by two-tone HB (f_if slow × f_lo fast). ---
    let grid = SpectralGrid::two_tone(ToneAxis::new(f_if, 2), ToneAxis::new(f_lo, 3))?;
    let sol = solve_hb(&dae, &grid, &HbOptions::default())?;
    // The synthesized RF sits at mix (1, 1).
    let ri = dae.node_index(rf).expect("rf is a node");
    let v_rf = sol.amplitude(ri, &[1, 1]);
    // Down-converted IF at (1, 0); 2·LO image at (1, 2).
    let v_if = sol.amplitude(oi, &[1, 0]);
    let v_2lo = sol.amplitude(oi, &[1, 2]);
    println!(
        "RF input {:.2} mV at f_lo+f_if → {:.2} mV IF (conversion gain {:.1} dB)",
        v_rf * 1e3,
        v_if * 1e3,
        20.0 * (v_if / v_rf).log10()
    );
    println!(
        "2·LO+IF feedthrough after filter: {:.4} mV ({:.1} dBc)",
        v_2lo * 1e3,
        20.0 * (v_2lo / v_if).log10()
    );

    // --- 2. Output noise of the IF filter. ---
    let op = dc_operating_point(&dae, &DcOptions::default())?;
    let freqs: Vec<f64> = (1..200).map(|i| i as f64 * 1e5).collect();
    let noise = noise_sweep(&dae, &op.x, out, &freqs)?;
    println!(
        "\noutput noise at 1 MHz: {:.3e} V²/Hz; dominant source: {}",
        noise.total[9],
        noise
            .labels
            .iter()
            .zip(&noise.contributions)
            .max_by(|a, b| a.1[9].partial_cmp(&b.1[9]).expect("finite"))
            .map(|(l, _)| l.as_str())
            .unwrap_or("-")
    );

    // --- 3. AM envelope through the chain (TD-ENV). ---
    // Re-build with an AM-modulated desired tone (10 kHz envelope).
    let mut ckt2 = Circuit::new();
    let rf2 = ckt2.node("rf");
    let lo2 = ckt2.node("lo");
    let mix2 = ckt2.node("mix");
    let am = ckt2.node("am");
    ckt2.add(VSource::sine("VAM", am, Circuit::GROUND, 0.7, 0.3, 10e3));
    ckt2.add(VSource::sine_fast("VCW", rf2, Circuit::GROUND, 0.0, 10e-3, f_lo));
    ckt2.add(VSource::sine_fast("VLO2", lo2, Circuit::GROUND, 0.0, 1.0, f_lo));
    // AM applied by multiplying the carrier with the envelope, then mixed.
    let mod_out = ckt2.node("mod");
    ckt2.add(Multiplier::new(
        "AMOD",
        mod_out,
        Circuit::GROUND,
        am,
        Circuit::GROUND,
        rf2,
        Circuit::GROUND,
        -1e-3,
    ));
    ckt2.add(Resistor::new("RMOD", mod_out, Circuit::GROUND, 1e3));
    ckt2.add(Multiplier::new(
        "MIX2",
        mix2,
        Circuit::GROUND,
        mod_out,
        Circuit::GROUND,
        lo2,
        Circuit::GROUND,
        -2e-3,
    ));
    ckt2.add(Resistor::new("RIF", mix2, Circuit::GROUND, 1e3));
    let dae2 = ckt2.into_dae()?;
    let mi = dae2.node_index(mix2).expect("mix2 is a node");
    let env = envelope_follow(
        &dae2,
        1.0 / f_lo,
        1.0 / 10e3,
        24,
        &EnvelopeOptions { n2: 16, ..Default::default() },
    )?;
    // Down-converted DC term per slow step tracks the AM envelope.
    let dc_env = env.harmonic_envelope(mi, 0);
    println!("\nTD-ENV: demodulated envelope over one 10 kHz period:");
    print!("  ");
    let peak = dc_env.iter().copied().fold(0.0f64, f64::max);
    for v in &dc_env {
        let level = (v / peak * 9.0).round() as u32;
        print!("{}", char::from_digit(level.min(9), 10).expect("digit"));
    }
    println!("  (peak {:.3} mV — the 0.7 ± 0.3 AM recovered)", peak * 1e3);
    Ok(())
}
