//! Quickstart: build a circuit, find its operating point, run AC,
//! transient and harmonic-balance analyses, and print what each sees.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The circuit is a diode limiter driven hard enough to clip: a classic
//! case where small-signal AC misses everything interesting and the
//! steady-state engines earn their keep.

use rfsim::circuit::ac::{ac_sweep, log_sweep};
use rfsim::circuit::prelude::*;
use rfsim::circuit::Circuit;
use rfsim::steady::{solve_hb, HbOptions, SpectralGrid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Build: 1 MHz source → 1 kΩ → diode clamp ∥ load. ---
    let f0 = 1e6;
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", inp, Circuit::GROUND, 0.0, 2.0, f0));
    ckt.add(Resistor::new("R1", inp, out, 1e3));
    ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
    ckt.add(Resistor::new("RL", out, Circuit::GROUND, 10e3));
    ckt.add(Capacitor::new("CL", out, Circuit::GROUND, 10e-12));
    let dae = ckt.into_dae()?;
    let oi = dae.node_index(out).expect("out is not ground");

    // --- DC operating point. ---
    let op = dc_operating_point(&dae, &DcOptions::default())?;
    println!("DC operating point: v(out) = {:.4} V", op.voltage(out));

    // --- Small-signal AC (linearized at the OP — blind to clipping). ---
    let mut b_ac = vec![
        0.0;
        {
            use rfsim::circuit::dae::Dae as _;
            dae.dim()
        }
    ];
    b_ac[dae.branch_index("V1", 0).expect("V1 exists")] = 1.0;
    let ac = ac_sweep(&dae, &op.x, &b_ac, &log_sweep(1e4, 1e8, 5))?;
    println!("\nAC small-signal gain at out (dB):");
    for (f, g) in ac.freqs.iter().zip(ac.gain_db(out)) {
        println!("  {f:>10.3e} Hz: {g:7.2} dB");
    }

    // --- Transient: see the clipping in the time domain. ---
    let tran = transient(
        &dae,
        0.0,
        4.0 / f0,
        &TranOptions { dt: 1.0 / (f0 * 200.0), ..Default::default() },
    )?;
    let v = tran.unknown(oi);
    let peak_pos = v.iter().copied().fold(f64::MIN, f64::max);
    let peak_neg = v.iter().copied().fold(f64::MAX, f64::min);
    println!(
        "\nTransient: out swings {:.3} V / {:+.3} V — the diode clamps the top.",
        peak_pos, peak_neg
    );

    // --- Harmonic balance: the clipped spectrum, directly. ---
    let grid = SpectralGrid::single_tone(f0, 9)?;
    let sol = solve_hb(&dae, &grid, &HbOptions { source_steps: 3, ..Default::default() })?;
    println!("\nHarmonic balance spectrum at out:");
    for k in 0..=5 {
        println!("  harmonic {k}: {:.4e} V", sol.amplitude(oi, &[k]));
    }
    println!(
        "\nclipping ⇒ strong even+odd harmonics and a DC shift ({:.3} V) that\n\
         the linearized AC analysis cannot see.",
        sol.amplitude(oi, &[0])
    );
    Ok(())
}
