//! DC operating-point analysis: damped Newton–Raphson with gmin and
//! source-stepping continuation fallbacks.

use crate::dae::{Dae, TwoTime};
use crate::netlist::NodeId;
use crate::{Error, Result};
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::{norm2, norm_inf};
use rfsim_telemetry as telemetry;

/// Options controlling the DC Newton iteration.
#[derive(Debug, Clone, Copy)]
pub struct DcOptions {
    /// Absolute residual tolerance (A for node eqs, V for branch eqs).
    pub abstol: f64,
    /// Relative update tolerance.
    pub reltol: f64,
    /// Maximum Newton iterations per attempt.
    pub max_iters: usize,
    /// Number of gmin continuation steps used as a fallback.
    pub gmin_steps: usize,
    /// Number of source-stepping continuation steps used as a fallback.
    pub source_steps: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions { abstol: 1e-12, reltol: 1e-9, max_iters: 100, gmin_steps: 10, source_steps: 10 }
    }
}

/// A converged DC solution.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// Solution vector (node voltages then branch currents).
    pub x: Vec<f64>,
    /// Newton iterations used (total across continuation steps).
    pub iterations: usize,
    nn: usize,
}

impl OperatingPoint {
    /// Voltage of a node (0 for ground).
    ///
    /// # Panics
    /// Panics if the node does not belong to the analyzed circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            assert!(node.index() - 1 < self.nn, "node outside circuit");
            self.x[node.index() - 1]
        }
    }
}

/// Solves `f(x) = b` (with `b` frozen at its DC value) by damped Newton.
///
/// This is the core iteration reused by transient (inside each time step),
/// shooting, and harmonic balance (in its time-domain preconditioner).
/// `scale_b` scales the excitation (used by source stepping) and
/// `gmin_extra` adds a conductance to every node diagonal (gmin stepping).
///
/// # Errors
/// [`Error::NewtonNoConvergence`] when the iteration stalls;
/// [`Error::Numerics`] on singular Jacobians.
pub fn newton_solve(
    dae: &dyn Dae,
    x0: &[f64],
    b: &[f64],
    opts: &DcOptions,
    gmin_extra: f64,
) -> Result<(Vec<f64>, usize)> {
    let n = dae.dim();
    let _span = telemetry::span("dc.newton");
    let mut trace = telemetry::TraceBuf::new("dc.newton");
    let mut x = x0.to_vec();
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut g = Triplets::new(n, n);
    let mut c = Triplets::new(n, n);
    let mut last_res = f64::INFINITY;
    for it in 0..opts.max_iters {
        dae.eval(&x, &mut f, &mut q, &mut g, &mut c);
        // Residual r = f(x) − b (+ gmin·x on node equations).
        let mut r: Vec<f64> = f.iter().zip(b).map(|(fi, bi)| fi - bi).collect();
        if gmin_extra > 0.0 {
            for i in 0..n {
                r[i] += gmin_extra * x[i];
            }
        }
        let res = norm_inf(&r);
        last_res = res;
        trace.push(res);
        if res < opts.abstol {
            telemetry::counter_add("dc.newton.iterations", it as u64);
            trace.commit(true);
            return Ok((x, it));
        }
        let mut jac = g.clone();
        if gmin_extra > 0.0 {
            for i in 0..n {
                jac.push(i, i, gmin_extra);
            }
        }
        let a = jac.to_csr();
        let dx = a.solve(&r).map_err(Error::Numerics)?;
        // Damped update: halve the step until the residual does not blow up
        // (simple line search, max 8 halvings).
        let mut alpha = 1.0;
        let base_norm = norm2(&r);
        for _ in 0..8 {
            let xt: Vec<f64> = x.iter().zip(&dx).map(|(xi, di)| xi - alpha * di).collect();
            dae.eval(&xt, &mut f, &mut q, &mut g, &mut c);
            let mut rt: Vec<f64> = f.iter().zip(b).map(|(fi, bi)| fi - bi).collect();
            if gmin_extra > 0.0 {
                for i in 0..n {
                    rt[i] += gmin_extra * xt[i];
                }
            }
            if norm2(&rt).is_finite() && (norm2(&rt) <= base_norm || alpha < 0.02) {
                x = xt;
                break;
            }
            alpha *= 0.5;
        }
        // Convergence also when the update stalls below reltol.
        let dx_norm = norm_inf(&dx) * alpha;
        let x_norm = norm_inf(&x).max(1.0);
        if dx_norm < opts.reltol * x_norm && res < 1e3 * opts.abstol {
            telemetry::counter_add("dc.newton.iterations", it as u64 + 1);
            trace.commit(true);
            return Ok((x, it + 1));
        }
    }
    telemetry::counter_add("dc.newton.iterations", opts.max_iters as u64);
    trace.commit(false);
    Err(Error::NewtonNoConvergence { iterations: opts.max_iters, residual: last_res })
}

/// Finds the DC operating point of a DAE.
///
/// Strategy: plain Newton from zero; on failure, gmin stepping (decade
/// reduction of an added node conductance); on failure, source stepping
/// (ramping `b` from 0 to 1). This is the standard SPICE escalation.
///
/// # Errors
/// [`Error::NewtonNoConvergence`] if every strategy fails.
pub fn dc_operating_point(dae: &dyn Dae, opts: &DcOptions) -> Result<OperatingPoint> {
    let _span = telemetry::span("dc.operating_point");
    telemetry::counter_add("dc.operating_point.solves", 1);
    let n = dae.dim();
    let b = {
        let mut b = vec![0.0; n];
        dae.eval_b(TwoTime::uni(0.0), &mut b);
        b
    };
    let x0 = vec![0.0; n];
    let nn = n; // for OperatingPoint::voltage bounds check we only need an upper bound
                // 1. Plain Newton.
    if let Ok((x, iters)) = newton_solve(dae, &x0, &b, opts, 0.0) {
        return Ok(OperatingPoint { x, iterations: iters, nn });
    }
    // 2. Gmin stepping.
    let mut total = 0;
    let mut x = x0.clone();
    let mut ok = true;
    for k in (0..=opts.gmin_steps).rev() {
        // gmin from 1e-0 down to 0 logarithmically: 10^{-(steps-k)}… simpler:
        let gmin = if k == 0 { 0.0 } else { 10f64.powi(-((opts.gmin_steps - k) as i32)) };
        match newton_solve(dae, &x, &b, opts, gmin) {
            Ok((xs, it)) => {
                x = xs;
                total += it;
            }
            Err(_) => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        return Ok(OperatingPoint { x, iterations: total, nn });
    }
    // 3. Source stepping.
    let mut x = x0;
    let mut total = 0;
    for k in 1..=opts.source_steps {
        let frac = k as f64 / opts.source_steps as f64;
        let bk: Vec<f64> = b.iter().map(|v| v * frac).collect();
        let (xs, it) = newton_solve(dae, &x, &bk, opts, 0.0)?;
        x = xs;
        total += it;
    }
    Ok(OperatingPoint { x, iterations: total, nn })
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Circuit;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, 10.0));
        ckt.add(Resistor::new("R1", a, b, 3e3));
        ckt.add(Resistor::new("R2", b, Circuit::GROUND, 1e3));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        assert!((op.voltage(b) - 2.5).abs() < 1e-9);
        assert!((op.voltage(a) - 10.0).abs() < 1e-12);
        // Source current = −10/4k … branch current flows a→ground externally:
        let i = op.x[dae.branch_index("V1", 0).unwrap()];
        assert!((i + 10.0 / 4e3).abs() < 1e-9, "i = {i}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add(ISource::dc("I1", Circuit::GROUND, n, 1e-3));
        ckt.add(Resistor::new("R1", n, Circuit::GROUND, 2e3));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        assert!((op.voltage(n) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn diode_forward_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, 5.0));
        ckt.add(Resistor::new("R1", a, d, 1e3));
        ckt.add(Diode::new("D1", d, Circuit::GROUND, 1e-14));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        let vd = op.voltage(d);
        assert!(vd > 0.55 && vd < 0.85, "vd = {vd}");
        // KCL check: resistor current equals diode current.
        let ir = (5.0 - vd) / 1e3;
        let id = 1e-14 * ((vd / crate::VT_300K).exp() - 1.0);
        assert!((ir - id).abs() / ir < 1e-6);
    }

    #[test]
    fn bjt_common_emitter_bias() {
        let mut ckt = Circuit::new();
        let vcc = ckt.node("vcc");
        let vc = ckt.node("vc");
        let vb = ckt.node("vb");
        ckt.add(VSource::dc("VCC", vcc, Circuit::GROUND, 5.0));
        ckt.add(Resistor::new("RC", vcc, vc, 1e3));
        ckt.add(Resistor::new("RB", vcc, vb, 430e3));
        ckt.add(Bjt::npn("Q1", vc, vb, Circuit::GROUND, 1e-16, 100.0));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        let vb_v = op.voltage(vb);
        let vc_v = op.voltage(vc);
        // Base around 0.7–0.8 V; collector pulled down from 5 V but above sat.
        assert!(vb_v > 0.6 && vb_v < 0.95, "vb = {vb_v}");
        assert!(vc_v < 5.0 && vc_v > 0.2, "vc = {vc_v}");
        // Ic ≈ beta·Ib.
        let ib = (5.0 - vb_v) / 430e3;
        let ic = (5.0 - vc_v) / 1e3;
        let beta = ic / ib;
        assert!(beta > 80.0 && beta < 120.0, "beta = {beta}");
    }

    #[test]
    fn mosfet_inverter_logic() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let inp = ckt.node("in");
        ckt.add(VSource::dc("VDD", vdd, Circuit::GROUND, 3.0));
        ckt.add(VSource::dc("VIN", inp, Circuit::GROUND, 3.0));
        ckt.add(Resistor::new("RL", vdd, out, 10e3));
        ckt.add(Mosfet::nmos("M1", out, inp, Circuit::GROUND, 0.7, 5e-3));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        // Strong drive → output pulled low.
        assert!(op.voltage(out) < 0.3, "vout = {}", op.voltage(out));
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Inductor::new("L1", a, b, 1e-9));
        ckt.add(Resistor::new("R1", b, Circuit::GROUND, 50.0));
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-9);
        let il = op.x[dae.branch_index("L1", 0).unwrap()];
        assert!((il - 0.02).abs() < 1e-9);
    }
}
