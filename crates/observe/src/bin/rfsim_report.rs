//! `rfsim-report` — diff two benchmark artifact sets.
//!
//! ```text
//! rfsim-report <old-dir-or-file> <new-dir-or-file> \
//!     [--threshold 0.25] [--min-seconds 0.05] [--allow-health]
//! ```
//!
//! Prints a per-metric delta table and exits nonzero when any wall-clock
//! metric regressed past the threshold (relative growth past
//! `--threshold` AND absolute growth past `--min-seconds`), a baseline
//! id is missing from the new set, a new run recorded a failure, or
//! (unless `--allow-health`) the new set contains any health event.

use rfsim_observe::{compare_sets, load_set, Thresholds};
use std::process::ExitCode;

const USAGE: &str = "usage: rfsim-report <old-dir-or-file> <new-dir-or-file> \
     [--threshold <frac>] [--min-seconds <s>] [--allow-health]";

fn parse_args() -> Result<(std::path::PathBuf, std::path::PathBuf, Thresholds), String> {
    let mut positional = Vec::new();
    let mut thresholds = Thresholds::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().ok_or("--threshold needs a value")?;
                thresholds.wall_regression =
                    v.parse().map_err(|_| format!("bad --threshold value {v:?}"))?;
            }
            "--min-seconds" => {
                let v = args.next().ok_or("--min-seconds needs a value")?;
                thresholds.wall_min_seconds =
                    v.parse().map_err(|_| format!("bad --min-seconds value {v:?}"))?;
            }
            "--allow-health" => thresholds.fail_on_health = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg:?}\n{USAGE}")),
            _ => positional.push(std::path::PathBuf::from(arg)),
        }
    }
    let [old, new] = <[std::path::PathBuf; 2]>::try_from(positional)
        .map_err(|_| format!("expected exactly two paths\n{USAGE}"))?;
    Ok((old, new, thresholds))
}

fn main() -> ExitCode {
    let (old_path, new_path, thresholds) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (old, new) = match (load_set(&old_path), load_set(&new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("rfsim-report: {e}");
            return ExitCode::from(2);
        }
    };
    if old.is_empty() {
        eprintln!("rfsim-report: no BENCH_*.json artifacts in {}", old_path.display());
        return ExitCode::from(2);
    }
    let cmp = compare_sets(&old, &new, &thresholds);
    print!("{}", cmp.render(&thresholds));
    if cmp.failed(&thresholds) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
