//! Criterion benches for the MPDE family on the Fig 4 switching mixer:
//! MMFT vs MFDTD vs hierarchical shooting vs univariate shooting — the
//! Fig 5 cost comparison at benchable scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim::mpde::{
    hierarchical_shooting, solve_mfdtd, solve_mmft, HsOptions, MfdtdOptions, MmftOptions,
};
use rfsim::steady::{shooting, ShootingOptions};
use rfsim_bench::{switching_mixer, MixerSpec};

fn bench_mpde(c: &mut Criterion) {
    // Ratio 30 keeps univariate shooting benchable.
    let spec = MixerSpec { f_rf: 30e6, f_lo: 900e6, ..Default::default() };
    let (dae, _) = switching_mixer(&spec);
    let mut g = c.benchmark_group("mmft_speedup");
    g.sample_size(10);
    g.bench_function("mmft", |b| {
        b.iter(|| {
            solve_mmft(
                &dae,
                spec.f_rf,
                spec.f_lo,
                &MmftOptions { slow_harmonics: 3, n2: 50, ..Default::default() },
            )
            .expect("mmft")
        })
    });
    g.bench_function("mfdtd", |b| {
        b.iter(|| {
            solve_mfdtd(
                &dae,
                1.0 / spec.f_rf,
                1.0 / spec.f_lo,
                &MfdtdOptions { n1: 7, n2: 50, ..Default::default() },
            )
            .expect("mfdtd")
        })
    });
    g.bench_function("hierarchical_shooting", |b| {
        b.iter(|| {
            hierarchical_shooting(
                &dae,
                1.0 / spec.f_rf,
                1.0 / spec.f_lo,
                &HsOptions { n1: 7, n2: 50, ..Default::default() },
            )
            .expect("hs")
        })
    });
    g.bench_function("univariate_shooting", |b| {
        b.iter(|| {
            shooting(
                &dae,
                1.0 / spec.f_rf,
                &ShootingOptions { steps_per_period: 30 * 50, tol: 1e-7, ..Default::default() },
            )
            .expect("shooting")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mpde);
criterion_main!(benches);
