//! Quasi-static spiral-inductor extraction on a lossy substrate (Fig 7):
//! partial self/mutual inductances of the trace segments, series
//! resistance with skin effect, oxide capacitance and substrate loss from
//! the MoM solver, assembled into a one-port model yielding `L(f)`,
//! `Q(f)` and `S₁₁(f)`.

use crate::geom::{spiral_panels, spiral_segments, Segment};
use crate::ies3::{CompressedMatrix, Ies3Options};
use crate::kernel::GreenFn;
use crate::mom::{capacitance_matrix, MomProblem};
use crate::{Result, EPS0, MU0};
use rfsim_numerics::krylov::{
    gmres_recycled, GmresWorkspace, JacobiPrecond, KrylovOptions, LinearOperator, RecycleSpace,
};
use rfsim_numerics::Complex;
use rfsim_telemetry as telemetry;
use std::sync::Mutex;

/// Relative permittivity of the silicon substrate under the oxide.
const EPS_SI: f64 = 11.9;

/// Geometry + material description of a planar spiral inductor.
#[derive(Debug, Clone, PartialEq)]
pub struct SpiralInductor {
    /// Outer dimension (m).
    pub outer: f64,
    /// Number of turns.
    pub turns: usize,
    /// Trace width (m).
    pub width: f64,
    /// Turn spacing (m).
    pub spacing: f64,
    /// Metal thickness (m).
    pub thickness: f64,
    /// Metal conductivity (S/m).
    pub sigma: f64,
    /// Oxide thickness to substrate (m).
    pub oxide: f64,
    /// Oxide relative permittivity.
    pub eps_ox: f64,
    /// Substrate resistivity (Ω·m) — the "lossy substrate" of Fig 7.
    /// Mid-1990s CMOS used heavily doped epi substrates (~0.01 Ω·cm =
    /// 1e-4 Ω·m); the default is slightly lighter doping so both the loss
    /// and the self-resonance are visible in the extracted curves.
    pub rho_sub: f64,
}

impl Default for SpiralInductor {
    fn default() -> Self {
        // A mid-1990s CMOS spiral: 3.5 turns, 200 µm outer, 10 µm wide.
        SpiralInductor {
            outer: 200e-6,
            turns: 4,
            width: 10e-6,
            spacing: 5e-6,
            thickness: 1e-6,
            sigma: 3.5e7,
            oxide: 1e-6,
            eps_ox: 3.9,
            rho_sub: 1e-3,
        }
    }
}

/// Extracted lumped model of the spiral (π-model values).
#[derive(Debug, Clone)]
pub struct SpiralModel {
    /// Series inductance (H).
    pub l_series: f64,
    /// DC series resistance (Ω).
    pub r_dc: f64,
    /// Skin-effect corner frequency (Hz).
    pub f_skin: f64,
    /// Oxide (trace-to-substrate) capacitance, per end (F).
    pub c_ox: f64,
    /// Substrate shunt resistance, per end (Ω).
    pub r_sub: f64,
    /// Number of segments used.
    pub segments: usize,
}

/// Self partial inductance of a straight rectangular-cross-section segment
/// (Rosa/Grover): `L = (μ₀l/2π)(ln(2l/(w+t)) + 0.5 + (w+t)/(3l))`.
pub fn self_inductance(seg: &Segment) -> f64 {
    let l = seg.length();
    let wt = seg.width + seg.thickness;
    MU0 * l / (2.0 * std::f64::consts::PI) * ((2.0 * l / wt).ln() + 0.5 + wt / (3.0 * l))
}

/// Mutual partial inductance between two segments by the Neumann double
/// integral with midpoint quadrature (`nq` points per segment).
pub fn mutual_inductance(a: &Segment, b: &Segment, nq: usize) -> f64 {
    let (la, lb) = (a.length(), b.length());
    let da = a.direction();
    let db = b.direction();
    let dot = da.x * db.x + da.y * db.y + da.z * db.z;
    if dot.abs() < 1e-12 {
        return 0.0; // perpendicular segments do not couple
    }
    let mut acc = 0.0;
    for i in 0..nq {
        let ta = (i as f64 + 0.5) / nq as f64;
        let pa = crate::geom::Point3::new(
            a.start.x + da.x * la * ta,
            a.start.y + da.y * la * ta,
            a.start.z + da.z * la * ta,
        );
        for j in 0..nq {
            let tb = (j as f64 + 0.5) / nq as f64;
            let pb = crate::geom::Point3::new(
                b.start.x + db.x * lb * tb,
                b.start.y + db.y * lb * tb,
                b.start.z + db.z * lb * tb,
            );
            // Regularize by the geometric mean distance of the traces.
            let r = pa.distance(&pb).max((a.width + b.width) / 4.0);
            acc += 1.0 / r;
        }
    }
    MU0 / (4.0 * std::f64::consts::PI) * dot * (la / nq as f64) * (lb / nq as f64) * acc
}

/// The half-space operator at one sweep point, composed from the two
/// frequency-independent compressed matrices of the decomposition
/// `A(k) = A_free − k·A_image`: sweeping the substrate image coefficient
/// `k(f)` costs two compressed matvecs per application and **zero**
/// re-assembly or re-compression.
struct HalfSpaceSweepOp<'a> {
    free: &'a CompressedMatrix,
    image: &'a CompressedMatrix,
    k: f64,
    /// Image-term buffer; `Mutex` because `apply` takes `&self`
    /// (uncontended — GMRES applies are sequential).
    scratch: Mutex<Vec<f64>>,
}

impl LinearOperator<f64> for HalfSpaceSweepOp<'_> {
    fn dim(&self) -> usize {
        self.free.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.free.matvec_into(x, y);
        let mut s = self.scratch.lock().expect("sweep scratch poisoned");
        s.resize(y.len(), 0.0);
        self.image.matvec_into(x, &mut s);
        for (yi, si) in y.iter_mut().zip(s.iter()) {
            *yi -= self.k * *si;
        }
    }
}

impl SpiralInductor {
    /// The trace segments of this spiral.
    pub fn segments(&self) -> Vec<Segment> {
        spiral_segments(
            self.outer,
            self.turns,
            self.width,
            self.spacing,
            self.thickness,
            self.oxide,
        )
    }

    /// Extracts the lumped model. `panels_per_seg` controls the MoM mesh
    /// for the substrate capacitance, `nq` the inductance quadrature —
    /// refining both is how the "measurement" reference of the Fig 7
    /// experiment is produced.
    ///
    /// # Errors
    /// Propagates MoM failures.
    pub fn extract(&self, panels_per_seg: usize, nq: usize) -> Result<SpiralModel> {
        let segs = self.segments();
        // Inductance: L = Σ self + Σ mutual (signed by direction dot).
        let mut l = 0.0;
        for (i, s) in segs.iter().enumerate() {
            l += self_inductance(s);
            for (j, t) in segs.iter().enumerate() {
                if i != j {
                    l += mutual_inductance(s, t, nq);
                }
            }
        }
        // Series resistance.
        let total_len: f64 = segs.iter().map(Segment::length).sum();
        let r_dc = total_len / (self.sigma * self.width * self.thickness);
        // Skin-effect corner: δ(f) = thickness ⇒ f_skin = 1/(πμσt²).
        let f_skin = 1.0 / (std::f64::consts::PI * MU0 * self.sigma * self.thickness.powi(2));
        // Substrate capacitance via MoM with the half-space image kernel.
        let panels = spiral_panels(&segs, panels_per_seg, 0);
        let green = GreenFn::GroundPlane { eps_r: self.eps_ox, z0: 0.0 };
        let problem = MomProblem::new(panels, green)?;
        let c_total = capacitance_matrix(&problem)?[(0, 0)];
        // Substrate spreading resistance under the coil footprint.
        let area: f64 = segs.iter().map(|s| s.length() * s.width).sum();
        let r_sub = self.rho_sub / area.sqrt();
        Ok(SpiralModel {
            l_series: l,
            r_dc,
            f_skin,
            c_ox: c_total / 2.0,
            r_sub,
            segments: segs.len(),
        })
    }

    /// Frequency-dependent substrate image coefficient `k(f)`. A lossy
    /// silicon substrate relaxes from conductor-like behavior (perfect
    /// image, `k → 1`) below its dielectric relaxation frequency
    /// `f_relax = 1/(2π·ρ_sub·ε_si)` to a plain dielectric image
    /// `k_∞ = (ε_si − ε_ox)/(ε_si + ε_ox)` well above it — this is what
    /// makes the substrate capacitance (and through it `L(f)`, `Q(f)`)
    /// genuinely frequency-dependent in the Fig 7 extraction.
    pub fn substrate_image_coefficient(&self, f: f64) -> f64 {
        // Counted so the sweep paths can prove k(f) is hoisted: exactly
        // one evaluation per solved frequency point, never one per
        // GMRES iteration (see the regression test in
        // `tests/adaptive_sweep.rs`).
        telemetry::counter_add("em.inductor.k_evals", 1);
        let k_inf = (EPS_SI - self.eps_ox) / (EPS_SI + self.eps_ox);
        let f_relax = 1.0 / (2.0 * std::f64::consts::PI * self.rho_sub * EPS_SI * EPS0);
        k_inf + (1.0 - k_inf) / (1.0 + (f / f_relax).powi(2))
    }

    /// Extracts the lumped model across a frequency sweep through the
    /// IES³ + Krylov-recycling fast path: the free-space and image-term
    /// compressed matrices build **once**, and every frequency point
    /// solves the substrate capacitance at its own image coefficient
    /// `k(f)` with a warm-started, subspace-recycled GMRES — previous
    /// points' solutions seed and deflate the next solve. Results match
    /// a cold per-point extraction to the solver tolerance; only the
    /// work is shared. Convenience wrapper over [`SweptExtractor`].
    ///
    /// # Errors
    /// Propagates geometry, compression, and GMRES failures.
    pub fn extract_swept(
        &self,
        panels_per_seg: usize,
        nq: usize,
        freqs: &[f64],
    ) -> Result<Vec<SpiralModel>> {
        let mut engine = SweptExtractor::new(self, panels_per_seg, nq)?;
        freqs.iter().map(|&f| engine.extract_at(f)).collect()
    }
}

/// The resident warm state of a swept extraction: the compressed
/// free-space and image-term IES³ operators (built once per geometry),
/// the self-term diagonals feeding each point's Jacobi preconditioner,
/// and the GMRES workspace / recycle space / previous solution that
/// warm-start every further frequency point.
///
/// [`SpiralInductor::extract_swept`] drives this for a fixed frequency
/// list; the type is public so a long-running caller (the `rfsim-serve`
/// daemon) can keep one extractor per geometry resident across requests
/// — a second request at the same or a nearby frequency reuses the
/// built operators and the recycled Krylov subspace instead of paying a
/// cold build. Every point still converges to the configured GMRES
/// tolerance, so warm answers agree with cold ones to that tolerance.
pub struct SweptExtractor {
    spiral: SpiralInductor,
    /// Frequency-independent model values, with `c_ox` left at the last
    /// solved point (overwritten per [`SweptExtractor::extract_at`]).
    base: SpiralModel,
    a_free: CompressedMatrix,
    a_image: CompressedMatrix,
    diag_free: Vec<f64>,
    diag_image: Vec<f64>,
    kopts: KrylovOptions,
    gws: GmresWorkspace<f64>,
    recycle: RecycleSpace<f64>,
    prev_q: Option<Vec<f64>>,
    points_solved: u64,
}

impl SweptExtractor {
    /// Builds the sweep state for `spiral` at the default 1e-9 GMRES
    /// tolerance (the [`SpiralInductor::extract_swept`] setting).
    ///
    /// # Errors
    /// Propagates geometry and compression failures.
    pub fn new(spiral: &SpiralInductor, panels_per_seg: usize, nq: usize) -> Result<Self> {
        Self::with_tolerance(spiral, panels_per_seg, nq, 1e-9)
    }

    /// [`SweptExtractor::new`] with an explicit GMRES relative tolerance.
    /// Tightening it tightens the warm-vs-cold agreement of the answers
    /// (the serve warm-cache tests run at 1e-12).
    ///
    /// # Errors
    /// Propagates geometry and compression failures.
    pub fn with_tolerance(
        spiral: &SpiralInductor,
        panels_per_seg: usize,
        nq: usize,
        tol: f64,
    ) -> Result<Self> {
        let _span = telemetry::span("em.inductor.sweep.build");
        let segs = spiral.segments();
        let mut l = 0.0;
        for (i, s) in segs.iter().enumerate() {
            l += self_inductance(s);
            for (j, t) in segs.iter().enumerate() {
                if i != j {
                    l += mutual_inductance(s, t, nq);
                }
            }
        }
        let total_len: f64 = segs.iter().map(Segment::length).sum();
        let r_dc = total_len / (spiral.sigma * spiral.width * spiral.thickness);
        let f_skin = 1.0 / (std::f64::consts::PI * MU0 * spiral.sigma * spiral.thickness.powi(2));
        let area: f64 = segs.iter().map(|s| s.length() * s.width).sum();
        let r_sub = spiral.rho_sub / area.sqrt();
        // Compress the two kernel halves once for the whole sweep.
        let panels = spiral_panels(&segs, panels_per_seg, 0);
        let problem = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: spiral.eps_ox })?;
        let image_green = GreenFn::ImageOnly { eps_r: spiral.eps_ox, z0: 0.0 };
        let opts = Ies3Options::default();
        let a_free = CompressedMatrix::build(&problem.panels, &problem.green, &opts)?;
        let a_image = CompressedMatrix::build(&problem.panels, &image_green, &opts)?;
        let n = problem.len();
        // Self-term diagonals of both halves, combined per point into the
        // Jacobi preconditioner for that point's k.
        let diag_free: Vec<f64> = (0..n)
            .map(|i| problem.green.coefficient(&problem.panels[i], &problem.panels[i], i, i))
            .collect();
        let diag_image: Vec<f64> = (0..n)
            .map(|i| image_green.coefficient(&problem.panels[i], &problem.panels[i], i, i))
            .collect();
        Ok(SweptExtractor {
            spiral: spiral.clone(),
            base: SpiralModel { l_series: l, r_dc, f_skin, c_ox: 0.0, r_sub, segments: segs.len() },
            a_free,
            a_image,
            diag_free,
            diag_image,
            kopts: KrylovOptions { tol, ..Default::default() },
            gws: GmresWorkspace::new(),
            recycle: RecycleSpace::new(8),
            prev_q: None,
            points_solved: 0,
        })
    }

    /// Solves one frequency point, warm-started from every point solved
    /// before it (on this extractor, in any order).
    ///
    /// # Errors
    /// Propagates GMRES failures.
    pub fn extract_at(&mut self, f: f64) -> Result<SpiralModel> {
        let c_total = self.solve_c_total(f)?;
        Ok(self.model_from_c_total(c_total))
    }

    /// One true EM solve: the total substrate capacitance at `f`. The
    /// image coefficient `k(f)` is loop-invariant across the GMRES
    /// iterations of a point, so it is hoisted here — evaluated exactly
    /// once per frequency point and passed by value into the sweep
    /// operator, the Jacobi diagonal, and the recycle refresh. Every
    /// call is counted under `em.true_solves`; this is the quantity the
    /// adaptive sweep exists to minimize.
    ///
    /// # Errors
    /// Propagates GMRES failures.
    pub fn solve_c_total(&mut self, f: f64) -> Result<f64> {
        let _span = telemetry::span("em.inductor.sweep");
        telemetry::counter_add("em.true_solves", 1);
        let k = self.spiral.substrate_image_coefficient(f);
        let op = HalfSpaceSweepOp {
            free: &self.a_free,
            image: &self.a_image,
            k,
            scratch: Mutex::new(Vec::new()),
        };
        let diag: Vec<f64> =
            self.diag_free.iter().zip(&self.diag_image).map(|(d, m)| d - k * m).collect();
        let pc = JacobiPrecond::from_diagonal(&diag);
        // The operator moved with k: restore C = A·U before deflating.
        self.recycle.refresh(&op);
        let v = vec![1.0; self.a_free.len()]; // single conductor at 1 V
        let (q, _) = gmres_recycled(
            &op,
            &v,
            self.prev_q.as_deref(),
            &pc,
            &self.kopts,
            &mut self.gws,
            &mut self.recycle,
        )?;
        let c_total: f64 = q.iter().sum();
        self.prev_q = Some(q);
        self.points_solved += 1;
        Ok(c_total)
    }

    /// Assembles the lumped model from a total substrate capacitance —
    /// every other model value is frequency-independent and shared. Both
    /// the true-solve path ([`SweptExtractor::extract_at`]) and the
    /// surrogate path (`AdaptiveSweep`, which gets `c_total` from the
    /// fitted model instead of a solve) go through here.
    pub fn model_from_c_total(&self, c_total: f64) -> SpiralModel {
        SpiralModel { c_ox: c_total / 2.0, ..self.base.clone() }
    }

    /// Number of panels in the MoM discretization.
    pub fn panels(&self) -> usize {
        self.a_free.len()
    }

    /// Whether a previous solution exists to warm-start the next point.
    pub fn is_warm(&self) -> bool {
        self.prev_q.is_some()
    }

    /// Frequency points solved on this extractor so far.
    pub fn points_solved(&self) -> u64 {
        self.points_solved
    }

    /// Approximate resident bytes: the two compressed operators plus the
    /// diagonals, recycle space, and previous solution. What an eviction
    /// would free — used by `rfsim-serve` for its cache budget.
    pub fn memory_bytes(&self) -> usize {
        let n = self.a_free.len();
        let vectors = 2 * n // diagonals
            + self.prev_q.as_ref().map_or(0, Vec::len)
            + 2 * self.recycle.dim() * n; // U and C blocks
        self.a_free.memory_bytes() + self.a_image.memory_bytes() + vectors * 8
    }
}

impl SpiralModel {
    /// Series impedance at `f`, with √f skin-effect resistance growth.
    pub fn z_series(&self, f: f64) -> Complex {
        let r = self.r_dc * (1.0 + (f / self.f_skin).sqrt());
        Complex::new(r, 2.0 * std::f64::consts::PI * f * self.l_series)
    }

    /// Shunt (one end) admittance at `f`: oxide C in series with
    /// substrate R.
    pub fn y_shunt(&self, f: f64) -> Complex {
        let w = 2.0 * std::f64::consts::PI * f;
        let zc = Complex::new(0.0, -1.0 / (w * self.c_ox));
        let z = zc + Complex::from_re(self.r_sub);
        z.recip()
    }

    /// One-port input impedance with the far end grounded.
    pub fn z_in(&self, f: f64) -> Complex {
        // Series branch in parallel with nothing at the near end except
        // its own shunt; far end grounded shorts the far shunt.
        let z_series = self.z_series(f);
        let y_near = self.y_shunt(f);
        // Zin = (1/Znear_shunt ∥ series) … series to ground directly:
        (y_near + z_series.recip()).recip()
    }

    /// Effective inductance `Im(Z_in)/ω` at `f` (what an impedance
    /// analyzer reports — this is the Fig 7 `L(f)` curve, which rises
    /// toward self-resonance then collapses).
    pub fn l_eff(&self, f: f64) -> f64 {
        self.z_in(f).im / (2.0 * std::f64::consts::PI * f)
    }

    /// Quality factor `Q = Im(Z_in)/Re(Z_in)`.
    pub fn q(&self, f: f64) -> f64 {
        let z = self.z_in(f);
        z.im / z.re
    }

    /// Self-resonant frequency estimate `1/(2π√(L·C_ox))`.
    pub fn self_resonance(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (self.l_series * self.c_ox).sqrt())
    }

    /// `S₁₁` in a `z0` system at `f`.
    pub fn s11(&self, f: f64, z0: f64) -> Complex {
        let z = self.z_in(f);
        (z - Complex::from_re(z0)) / (z + Complex::from_re(z0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_inductance_scales_with_length() {
        let mk = |l: f64| Segment {
            start: crate::geom::Point3::new(0.0, 0.0, 0.0),
            end: crate::geom::Point3::new(l, 0.0, 0.0),
            width: 10e-6,
            thickness: 1e-6,
        };
        let l1 = self_inductance(&mk(100e-6));
        let l2 = self_inductance(&mk(200e-6));
        // Slightly superlinear (log term).
        assert!(l2 > 2.0 * l1 && l2 < 3.0 * l1, "{l1} {l2}");
    }

    #[test]
    fn mutual_sign_and_orthogonality() {
        let a = Segment {
            start: crate::geom::Point3::new(0.0, 0.0, 0.0),
            end: crate::geom::Point3::new(100e-6, 0.0, 0.0),
            width: 10e-6,
            thickness: 1e-6,
        };
        // Parallel, same direction: positive coupling.
        let b = Segment {
            start: crate::geom::Point3::new(0.0, 20e-6, 0.0),
            end: crate::geom::Point3::new(100e-6, 20e-6, 0.0),
            ..a
        };
        assert!(mutual_inductance(&a, &b, 16) > 0.0);
        // Anti-parallel: negative.
        let c = Segment { start: b.end, end: b.start, ..b };
        assert!(mutual_inductance(&a, &c, 16) < 0.0);
        // Perpendicular: zero.
        let d = Segment {
            start: crate::geom::Point3::new(0.0, 0.0, 0.0),
            end: crate::geom::Point3::new(0.0, 100e-6, 0.0),
            ..a
        };
        assert_eq!(mutual_inductance(&a, &d, 16), 0.0);
    }

    #[test]
    fn image_coefficient_relaxes_from_ground_to_dielectric() {
        let sp = SpiralInductor::default();
        let k_inf = (11.9 - sp.eps_ox) / (11.9 + sp.eps_ox);
        let lo = sp.substrate_image_coefficient(1.0);
        let hi = sp.substrate_image_coefficient(1e15);
        assert!((lo - 1.0).abs() < 1e-6, "conductor-like at DC: {lo}");
        assert!((hi - k_inf).abs() < 1e-3, "dielectric image at high f: {hi} vs {k_inf}");
        // Monotone decrease in between.
        let mid1 = sp.substrate_image_coefficient(1e9);
        let mid2 = sp.substrate_image_coefficient(5e9);
        assert!(lo >= mid1 && mid1 >= mid2 && mid2 >= hi);
    }

    #[test]
    fn swept_extraction_matches_cold_per_point() {
        use crate::ies3::{CompressedMatrix, Ies3Options};
        use rfsim_numerics::krylov::KrylovOptions;
        let sp = SpiralInductor::default();
        let freqs = [0.5e9, 2e9, 8e9];
        let swept = sp.extract_swept(2, 6, &freqs).unwrap();
        // Cold reference: rebuild the half-space compressed matrix and
        // solve from scratch at every point.
        let segs = sp.segments();
        let panels = crate::geom::spiral_panels(&segs, 2, 0);
        for (&f, model) in freqs.iter().zip(&swept) {
            let k = sp.substrate_image_coefficient(f);
            let green = GreenFn::HalfSpace { eps_r: sp.eps_ox, z0: 0.0, k };
            let p = MomProblem::new(panels.clone(), green).unwrap();
            let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
            let (q, _) = p
                .solve_iterative(&cm, &[1.0], &KrylovOptions { tol: 1e-9, ..Default::default() })
                .unwrap();
            let c_cold: f64 = q.iter().sum::<f64>() / 2.0;
            assert!(
                (model.c_ox - c_cold).abs() < 1e-4 * c_cold.abs(),
                "f = {f}: warm {} vs cold {c_cold}",
                model.c_ox
            );
        }
        // The substrate relaxation must make C_ox fall with frequency.
        assert!(swept[0].c_ox > swept[2].c_ox);
    }

    #[test]
    fn extracted_model_plausible_nh_range() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        // A 200 µm 3–4 turn spiral is a few nH.
        assert!(model.l_series > 0.5e-9 && model.l_series < 20e-9, "L = {:.3e}", model.l_series);
        assert!(model.r_dc > 0.1 && model.r_dc < 100.0, "R = {}", model.r_dc);
        assert!(model.c_ox > 1e-15 && model.c_ox < 1e-11, "C = {:.3e}", model.c_ox);
    }

    #[test]
    fn l_eff_rises_to_self_resonance_then_collapses() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        let fsr = model.self_resonance();
        let l_low = model.l_eff(fsr / 100.0);
        let l_mid = model.l_eff(fsr / 2.0);
        let l_high = model.l_eff(fsr * 2.0);
        assert!((l_low - model.l_series).abs() / model.l_series < 0.2);
        assert!(l_mid > l_low, "L rises toward resonance: {l_mid} > {l_low}");
        assert!(l_high < 0.0, "above SRF the reactance is capacitive: {l_high}");
    }

    #[test]
    fn q_peaks_midband() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        let fsr = model.self_resonance();
        let q_low = model.q(fsr / 1000.0);
        let q_mid = model.q(fsr / 4.0);
        assert!(q_mid > q_low, "Q rises with f initially: {q_mid} > {q_low}");
        // Near resonance Q collapses through 0.
        assert!(model.q(fsr * 1.5) < 0.0);
    }

    #[test]
    fn s11_passive_magnitude() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        for f in [1e8, 1e9, 5e9] {
            let s = model.s11(f, 50.0);
            assert!(s.abs() <= 1.0 + 1e-9, "|S11| = {} at {f}", s.abs());
        }
    }
}
