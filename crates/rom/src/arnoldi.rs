//! Arnoldi-based model reduction [2, 6, 42]: an orthonormal Krylov basis
//! of `A = −(G + s0C)⁻¹C` projects the system to a small Hessenberg model
//! that matches `q` moments — half as many as PVL for the same order,
//! which is the efficiency comparison of the paper's Section 5.

use crate::statespace::{check_order, DescriptorSystem, ReducedModel};
use crate::{Error, Result};
use rfsim_numerics::dense::Mat;
use rfsim_numerics::{dot, norm2};
use rfsim_telemetry as telemetry;

/// Builds an order-`q` Arnoldi model of `sys` about `s0`.
///
/// `V` is an orthonormal basis of `K_q(A, r)`; the reduced model is
/// `A_r = VᵀAV`, `r_r = Vᵀr = ‖r‖·e₁`, `l_r = Vᵀl`.
///
/// # Errors
/// [`Error::Breakdown`] if the Krylov space degenerates before reaching a
/// single vector; order/factorization errors otherwise.
pub fn arnoldi_rom(sys: &DescriptorSystem, s0: f64, q: usize) -> Result<ReducedModel> {
    let _span = telemetry::span("rom.arnoldi");
    check_order(q, sys.order())?;
    let (ops, r) = sys.krylov_setup(s0)?;
    let rnorm = norm2(&r);
    if rnorm < 1e-300 {
        return Err(Error::Breakdown("arnoldi: zero start vector"));
    }
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(q);
    basis.push(r.iter().map(|x| x / rnorm).collect());
    let mut h = Mat::zeros(q, q);
    let mut m = 1;
    for k in 0..q {
        let mut w = ops.apply(&basis[k])?;
        // Modified Gram–Schmidt with reorthogonalization.
        for _pass in 0..2 {
            for (i, vi) in basis.iter().enumerate() {
                let hik = dot(vi, &w);
                h[(i, k)] += hik;
                for (we, ve) in w.iter_mut().zip(vi) {
                    *we -= hik * ve;
                }
            }
        }
        let wn = norm2(&w);
        if k + 1 < q {
            if wn < 1e-280 {
                telemetry::counter_add("rom.arnoldi.lucky_breakdowns", 1);
                m = k + 1;
                break; // invariant subspace: lucky breakdown
            }
            h[(k + 1, k)] = wn;
            basis.push(w.into_iter().map(|x| x / wn).collect());
            m = k + 2;
        } else {
            m = q;
        }
    }
    let a_r = Mat::from_fn(m, m, |i, j| h[(i, j)]);
    let mut r_r = vec![0.0; m];
    r_r[0] = rnorm;
    let l_r: Vec<f64> = basis.iter().take(m).map(|v| dot(&sys.l, v)).collect();
    telemetry::counter_add("rom.arnoldi.models", 1);
    telemetry::counter_add("rom.arnoldi.moments_matched", m as u64);
    Ok(ReducedModel { a_r, r_r, l_r, s0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pvl::pvl_rom;
    use crate::statespace::{log_freqs, rc_line, relative_error, TransferFunction};

    #[test]
    fn arnoldi_matches_q_moments() {
        let sys = rc_line(30, 100.0, 1e-12);
        let q = 5;
        let model = arnoldi_rom(&sys, 0.0, q).unwrap();
        let exact = sys.moments(0.0, q).unwrap();
        let reduced = model.moments(q);
        for (k, (e, r)) in exact.iter().zip(&reduced).enumerate() {
            let rel = (e - r).abs() / e.abs().max(1e-300);
            assert!(rel < 1e-8, "moment {k}: {e:.6e} vs {r:.6e}");
        }
    }

    #[test]
    fn arnoldi_does_not_match_2q_moments() {
        // The PVL-vs-Arnoldi moment count claim, tested from the Arnoldi
        // side: moment q+1 is generally wrong.
        let sys = rc_line(30, 100.0, 1e-12);
        let q = 4;
        let model = arnoldi_rom(&sys, 0.0, q).unwrap();
        let exact = sys.moments(0.0, 2 * q).unwrap();
        let reduced = model.moments(2 * q);
        let k = q + 1;
        let rel = (exact[k] - reduced[k]).abs() / exact[k].abs();
        assert!(rel > 1e-6, "moment {k} unexpectedly matched: rel = {rel:.2e}");
    }

    #[test]
    fn pvl_beats_arnoldi_at_equal_order() {
        // The paper's efficiency claim, as transfer-function accuracy.
        let sys = rc_line(80, 100.0, 1e-12);
        let freqs = log_freqs(1e3, 1e10, 60);
        let q = 6;
        let pvl = pvl_rom(&sys, 0.0, q).unwrap();
        let arn = arnoldi_rom(&sys, 0.0, q).unwrap();
        let err_pvl = relative_error(&sys, &pvl, &freqs);
        let err_arn = relative_error(&sys, &arn, &freqs);
        assert!(err_pvl < err_arn, "pvl {err_pvl:.3e} should beat arnoldi {err_arn:.3e}");
    }

    #[test]
    fn arnoldi_accuracy_grows_with_order() {
        let sys = rc_line(60, 100.0, 1e-12);
        let freqs = log_freqs(1e3, 1e9, 40);
        let e4 = relative_error(&sys, &arnoldi_rom(&sys, 0.0, 4).unwrap(), &freqs);
        let e10 = relative_error(&sys, &arnoldi_rom(&sys, 0.0, 10).unwrap(), &freqs);
        assert!(e10 < e4, "e10 {e10:.2e} !< e4 {e4:.2e}");
    }

    #[test]
    fn arnoldi_dc_gain() {
        let sys = rc_line(25, 80.0, 2e-12);
        let model = arnoldi_rom(&sys, 0.0, 5).unwrap();
        let h0 = sys.eval(rfsim_numerics::Complex::ZERO);
        let m0 = model.eval(rfsim_numerics::Complex::ZERO);
        assert!((h0 - m0).abs() < 1e-8 * h0.abs());
    }
}
