//! A minimal blocking client for tests, benches, and examples: one
//! TCP connection, synchronous request/response frames.

use crate::wire::{read_frame, write_frame, FrameError};
use rfsim_telemetry::Json;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket/framing trouble.
    Frame(FrameError),
    /// The server closed the connection before replying.
    Disconnected,
    /// The reply was not valid JSON (a server bug, not a client one).
    BadReply(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::BadReply(msg) => write!(f, "unparseable reply: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One synchronous connection to a server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    /// Socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sends one request object and waits for the reply object.
    ///
    /// # Errors
    /// Framing/socket failures or an unparseable reply.
    pub fn call(&mut self, request: &Json) -> Result<Json, ClientError> {
        self.send_raw(request.to_string_compact().as_bytes())?;
        self.recv()
    }

    /// Sends raw payload bytes as one frame — the fuzz tests use this
    /// to deliver deliberately malformed requests.
    ///
    /// # Errors
    /// Framing/socket failures.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload).map_err(|e| ClientError::Frame(FrameError::Io(e)))
    }

    /// Reads the next reply frame.
    ///
    /// # Errors
    /// Framing/socket failures, EOF, or an unparseable reply.
    pub fn recv(&mut self) -> Result<Json, ClientError> {
        let payload = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        let text =
            std::str::from_utf8(&payload).map_err(|e| ClientError::BadReply(e.to_string()))?;
        Json::parse(text).map_err(|e| ClientError::BadReply(format!("{e:?}")))
    }
}
