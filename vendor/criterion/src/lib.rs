//! Offline, API-compatible subset of the `criterion` bench harness.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! the slice of criterion's API the benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, per-group
//! `sample_size`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! and `black_box`. Measurement is a simple warmup + fixed-sample
//! median/mean estimator printed in a criterion-like format — good
//! enough to compare before/after on the same machine, with none of
//! upstream's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark (`group/name/param`).
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { name: String::new(), param: param.to_string() }
    }

    fn label(&self) -> String {
        if self.name.is_empty() {
            self.param.clone()
        } else if self.param.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, self.param)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string(), param: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, param: String::new() }
    }
}

/// Timing context passed to the closure under `bench_function`.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup: one call to populate caches and trigger lazy init.
        black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort();
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "    time: [median {}  mean {}]  ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            self.samples
        );
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        black_box(routine(input));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed());
        }
        times.sort();
        let median = times[times.len() / 2];
        println!("    time: [median {}]  ({} samples)", fmt_duration(median), self.samples);
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        println!("{}/{}", self.name, id.label());
        let mut b = Bencher { samples: self.samples };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("{}/{}", self.name, id.label());
        let mut b = Bencher { samples: self.samples };
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup { criterion: self, name: name.into(), samples }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("{id}");
        let mut b = Bencher { samples: self.default_samples };
        f(&mut b);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_samples = n.max(1);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut calls = 0usize;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // warmup + 3 samples
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(2);
        let input = 21u64;
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("double", input), &input, |b, &i| {
            b.iter(|| seen = i * 2)
        });
        g.finish();
        assert_eq!(seen, 42);
    }
}
