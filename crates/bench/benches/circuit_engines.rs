//! Criterion benches for the SPICE-class substrate: transient integrator
//! ablation (BE vs trapezoidal vs Gear-2) and sparse-LU assembly/solve.

use criterion::{criterion_group, criterion_main, Criterion};
use rfsim::circuit::prelude::*;
use rfsim::circuit::Circuit;
use rfsim::numerics::sparse::Triplets;

fn ladder_dae(n: usize) -> rfsim::circuit::CircuitDae {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    ckt.add(VSource::sine("V1", inp, Circuit::GROUND, 0.0, 1.0, 1e6));
    let mut prev = inp;
    for i in 0..n {
        let node = ckt.node(&format!("n{i}"));
        ckt.add(Resistor::new(&format!("R{i}"), prev, node, 100.0));
        ckt.add(Capacitor::new(&format!("C{i}"), node, Circuit::GROUND, 1e-11));
        prev = node;
    }
    ckt.add(Diode::new("D1", prev, Circuit::GROUND, 1e-14));
    ckt.into_dae().expect("netlist")
}

fn bench_integrators(c: &mut Criterion) {
    let dae = ladder_dae(30);
    let mut g = c.benchmark_group("transient_integrators");
    g.sample_size(10);
    for (name, integ) in [
        ("backward_euler", Integrator::BackwardEuler),
        ("trapezoidal", Integrator::Trapezoidal),
        ("gear2", Integrator::Gear2),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                transient(
                    &dae,
                    0.0,
                    5e-6,
                    &TranOptions { integrator: integ, dt: 5e-9, ..Default::default() },
                )
                .expect("transient")
            })
        });
    }
    g.finish();
}

fn bench_sparse_lu(c: &mut Criterion) {
    // A 2-D grid Laplacian, the canonical sparse pattern.
    let n = 40;
    let mut t = Triplets::new(n * n, n * n);
    for i in 0..n {
        for j in 0..n {
            let row = i * n + j;
            t.push(row, row, 4.0);
            if i > 0 {
                t.push(row, row - n, -1.0);
            }
            if i + 1 < n {
                t.push(row, row + n, -1.0);
            }
            if j > 0 {
                t.push(row, row - 1, -1.0);
            }
            if j + 1 < n {
                t.push(row, row + 1, -1.0);
            }
        }
    }
    let a = t.to_csr();
    let b: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.1).sin()).collect();
    let mut g = c.benchmark_group("sparse_lu");
    g.sample_size(20);
    g.bench_function("factor_1600", |bch| bch.iter(|| a.lu().expect("lu")));
    let lu = a.lu().expect("lu");
    g.bench_function("solve_1600", |bch| bch.iter(|| lu.solve(&b).expect("solve")));
    g.finish();
}

criterion_group!(benches, bench_integrators, bench_sparse_lu);
criterion_main!(benches);
