//! Sparse matrices: triplet assembly, CSR storage, and a Gilbert–Peierls
//! left-looking sparse LU with partial pivoting.
//!
//! The differential-equation formulations surveyed in Section 4 of the paper
//! (and the circuit MNA systems of Section 2) "generate sparse matrices with
//! near diagonal or block-diagonal structure". This module provides the
//! storage and direct factorization those engines use; the companion
//! [`krylov`](crate::krylov) module provides the iterative alternatives.

use crate::scalar::Scalar;
use crate::{Error, Result};

/// Triplet (COO) matrix builder. Duplicate entries are summed on conversion,
/// matching the accumulate-by-stamping style of MNA assembly.
///
/// ```
/// use rfsim_numerics::sparse::Triplets;
///
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // accumulates
/// t.push(1, 1, 5.0);
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 3.0);
/// assert_eq!(a.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Triplets<T = f64> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// Creates an empty builder for an `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets { rows, cols, entries: Vec::new() }
    }

    /// Adds `v` at `(i, j)`. Duplicates accumulate.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "triplet index out of bounds");
        self.entries.push((i, j, v));
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Raw `(row, col, value)` entries as pushed (duplicates not merged).
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR, summing duplicates and dropping exact zeros.
    pub fn to_csr(&self) -> Csr<T> {
        let mut counts = vec![0usize; self.rows + 1];
        for &(i, _, _) in &self.entries {
            counts[i + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut col_idx = vec![0usize; self.entries.len()];
        let mut vals = vec![T::ZERO; self.entries.len()];
        let mut next = counts.clone();
        for &(i, j, v) in &self.entries {
            let k = next[i];
            col_idx[k] = j;
            vals[k] = v;
            next[i] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        for i in 0..self.rows {
            let lo = counts[i];
            let hi = counts[i + 1];
            let mut row: Vec<(usize, T)> = (lo..hi).map(|k| (col_idx[k], vals[k])).collect();
            row.sort_by_key(|&(c, _)| c);
            let mut idx = 0;
            while idx < row.len() {
                let c = row[idx].0;
                let mut v = row[idx].1;
                let mut k = idx + 1;
                while k < row.len() && row[k].0 == c {
                    v += row[k].1;
                    k += 1;
                }
                if v != T::ZERO {
                    out_cols.push(c);
                    out_vals.push(v);
                }
                idx = k;
            }
            row_ptr[i + 1] = out_cols.len();
        }
        Csr { rows: self.rows, cols: self.cols, row_ptr, col_idx: out_cols, vals: out_vals }
    }

    /// Drops every entry, keeping the allocation, and resets the shape —
    /// the reuse form of [`Triplets::new`] for stamping loops that
    /// rebuild the same matrix every iteration.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.entries.clear();
        self.rows = rows;
        self.cols = cols;
    }

    /// Converts to CSR like [`Triplets::to_csr`] but keeps every stamped
    /// position — exact-zero sums stay as explicit entries — and returns,
    /// for each raw entry in push order, the index of the CSR value slot
    /// it accumulates into.
    ///
    /// This is the *stamp map* for assembly loops whose sparsity is
    /// iteration-invariant: build the pattern once, then refill a value
    /// buffer with [`Triplets::scatter_into`] on every subsequent stamp,
    /// skipping the per-row sort entirely. Keeping structural zeros makes
    /// the pattern valid for every iteration, not just the one that
    /// built it.
    pub fn to_pattern(&self) -> (Csr<T>, Vec<usize>) {
        let mut counts = vec![0usize; self.rows + 1];
        for &(i, _, _) in &self.entries {
            counts[i + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        // Bucket raw-entry ids by row, preserving push order within a row.
        let mut ids = vec![0usize; self.entries.len()];
        let mut next = counts.clone();
        for (k, &(i, _, _)) in self.entries.iter().enumerate() {
            ids[next[i]] = k;
            next[i] += 1;
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut out_cols = Vec::with_capacity(self.entries.len());
        let mut out_vals = Vec::with_capacity(self.entries.len());
        let mut slots = vec![0usize; self.entries.len()];
        let mut row: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.rows {
            row.clear();
            row.extend(ids[counts[i]..counts[i + 1]].iter().map(|&k| (self.entries[k].1, k)));
            row.sort_by_key(|&(c, _)| c);
            let mut idx = 0;
            while idx < row.len() {
                let c = row[idx].0;
                let slot = out_cols.len();
                out_cols.push(c);
                let mut v = T::ZERO;
                while idx < row.len() && row[idx].0 == c {
                    v += self.entries[row[idx].1].2;
                    slots[row[idx].1] = slot;
                    idx += 1;
                }
                out_vals.push(v);
            }
            row_ptr[i + 1] = out_cols.len();
        }
        (
            Csr { rows: self.rows, cols: self.cols, row_ptr, col_idx: out_cols, vals: out_vals },
            slots,
        )
    }

    /// Accumulates this builder's raw values into `vals` through the slot
    /// map produced by [`Triplets::to_pattern`] on an identically-stamped
    /// builder. `vals` is zeroed first; duplicates sum in push order,
    /// matching the pattern build bitwise.
    ///
    /// # Panics
    /// Panics if `slots` does not have one slot per raw entry.
    pub fn scatter_into(&self, slots: &[usize], vals: &mut [T]) {
        assert_eq!(slots.len(), self.entries.len(), "stamp map length mismatch");
        for v in vals.iter_mut() {
            *v = T::ZERO;
        }
        for (&(_, _, v), &slot) in self.entries.iter().zip(slots) {
            vals[slot] += v;
        }
    }
}

/// Compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T = f64> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, T::ONE);
        }
        t.to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mutable view of the stored values in row-major slot order, for
    /// restamping through a [`Triplets::to_pattern`] slot map.
    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fill density `nnz / (rows·cols)`, the quantity contrasted in the
    /// paper's Table 1 between differential (sparse) and integral (dense)
    /// formulations.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Value at `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> T {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.vals[lo + k],
            Err(_) => T::ZERO,
        }
    }

    /// Iterates over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.row_ptr[i]..self.row_ptr[i + 1]).map(move |k| (i, self.col_idx[k], self.vals[k]))
        })
    }

    /// Sparse matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Product `A·x` into a caller-provided buffer — the allocation-free
    /// form of [`Csr::matvec`] for hot loops that reuse `y`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        assert_eq!(y.len(), self.rows, "matvec_into: output length mismatch");
        // Iterator form lets the row slices elide the per-element bounds
        // checks on `vals`/`col_idx`; the accumulation order (ascending k)
        // is unchanged, so results stay bitwise identical.
        for (yi, w) in y.iter_mut().zip(self.row_ptr.windows(2)) {
            let (lo, hi) = (w[0], w[1]);
            let mut acc = T::ZERO;
            for (v, &c) in self.vals[lo..hi].iter().zip(&self.col_idx[lo..hi]) {
                acc += *v * x[c];
            }
            *yi = acc;
        }
    }

    /// Transposed product `Aᵀ·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transposed(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.rows, "matvec_transposed: length mismatch");
        let mut y = vec![T::ZERO; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            if xi == T::ZERO {
                continue;
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k]] += self.vals[k] * xi;
            }
        }
        y
    }

    /// Transpose as a new CSR matrix.
    pub fn transpose(&self) -> Csr<T> {
        let mut t = Triplets::new(self.cols, self.rows);
        for (i, j, v) in self.iter() {
            t.push(j, i, v);
        }
        t.to_csr()
    }

    /// Returns `alpha·A + beta·B` (shapes must match).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_scaled(&self, alpha: f64, other: &Csr<T>, beta: f64) -> Csr<T> {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add_scaled: shape mismatch");
        let mut t = Triplets::new(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            t.push(i, j, v.scale_by(alpha));
        }
        for (i, j, v) in other.iter() {
            t.push(i, j, v.scale_by(beta));
        }
        t.to_csr()
    }

    /// Dense conversion (for tests and small-problem fallbacks).
    pub fn to_dense(&self) -> crate::dense::Mat<T> {
        let mut m = crate::dense::Mat::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            m[(i, j)] = v;
        }
        m
    }

    /// Extracts the diagonal.
    pub fn diagonal(&self) -> Vec<T> {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).collect()
    }

    /// Sparse LU factorization (Gilbert–Peierls, partial pivoting).
    ///
    /// # Errors
    /// Returns [`Error::Singular`] if no acceptable pivot exists in some
    /// column and [`Error::InvalidArgument`] for non-square matrices.
    pub fn lu(&self) -> Result<SparseLu<T>> {
        SparseLu::new(self)
    }

    /// Solves `A·x = b` through a fresh sparse LU.
    ///
    /// # Errors
    /// Propagates factorization errors; see [`Csr::lu`].
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        self.lu()?.solve(b)
    }
}

/// Sparse LU factors from the Gilbert–Peierls algorithm: `P·A = L·U` with
/// unit-diagonal `L`, both stored column-wise.
#[derive(Debug, Clone)]
pub struct SparseLu<T> {
    n: usize,
    l_colptr: Vec<usize>,
    l_rowidx: Vec<usize>,
    l_vals: Vec<T>,
    u_colptr: Vec<usize>,
    u_rowidx: Vec<usize>,
    u_vals: Vec<T>,
    u_diag: Vec<T>,
    /// `pinv[orig_row] = pivoted position`.
    pinv: Vec<usize>,
}

const UNSET: usize = usize::MAX;

impl<T: Scalar> SparseLu<T> {
    /// Factors a square CSR matrix.
    ///
    /// # Errors
    /// Returns [`Error::Singular`] on pivot breakdown,
    /// [`Error::InvalidArgument`] if not square.
    pub fn new(a: &Csr<T>) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::InvalidArgument("sparse lu: matrix must be square"));
        }
        rfsim_telemetry::counter_add("lu.sparse.factorizations", 1);
        let n = a.rows();
        // Column-compressed view of A (we need columns).
        let at = a.transpose(); // rows of aᵗ are columns of a
        let mut lu = SparseLu {
            n,
            l_colptr: vec![0],
            l_rowidx: Vec::new(),
            l_vals: Vec::new(),
            u_colptr: vec![0],
            u_rowidx: Vec::new(),
            u_vals: Vec::new(),
            u_diag: vec![T::ZERO; n],
            pinv: vec![UNSET; n],
        };
        // Work arrays.
        let mut x = vec![T::ZERO; n]; // numeric values by original row index
        let mut pattern: Vec<usize> = Vec::with_capacity(n); // topo order (orig rows)
        let mut visited = vec![false; n];
        let mut stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            // --- Symbolic: reachability DFS from the pattern of A(:,j). ---
            pattern.clear();
            for k in at.row_ptr[j]..at.row_ptr[j + 1] {
                let root = at.col_idx[k];
                if visited[root] {
                    continue;
                }
                stack.push((root, 0));
                visited[root] = true;
                while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                    let pj = lu.pinv[node];
                    let (lo, hi) =
                        if pj == UNSET { (0, 0) } else { (lu.l_colptr[pj], lu.l_colptr[pj + 1]) };
                    if lo + *child < hi {
                        let next = lu.l_rowidx[lo + *child];
                        *child += 1;
                        if !visited[next] {
                            visited[next] = true;
                            stack.push((next, 0));
                        }
                    } else {
                        pattern.push(node);
                        stack.pop();
                    }
                }
            }
            // pattern is in reverse topological order; reverse for the solve.
            pattern.reverse();
            for &p in &pattern {
                visited[p] = false;
            }
            // --- Numeric: scatter A(:,j), then eliminate in topo order. ---
            for k in at.row_ptr[j]..at.row_ptr[j + 1] {
                x[at.col_idx[k]] = at.vals[k];
            }
            for &node in &pattern {
                let pj = lu.pinv[node];
                if pj == UNSET {
                    continue;
                }
                let xv = x[node];
                if xv == T::ZERO {
                    continue;
                }
                for k in lu.l_colptr[pj]..lu.l_colptr[pj + 1] {
                    let r = lu.l_rowidx[k];
                    x[r] -= lu.l_vals[k] * xv;
                }
            }
            // --- Pivot: largest modulus among not-yet-pivotal rows. ---
            let mut ipiv = UNSET;
            let mut pmax = 0.0f64;
            for &node in &pattern {
                if lu.pinv[node] == UNSET {
                    let m = x[node].modulus();
                    if m > pmax {
                        pmax = m;
                        ipiv = node;
                    }
                }
            }
            if ipiv == UNSET || pmax == 0.0 {
                return Err(Error::Singular(j));
            }
            let pivot = x[ipiv];
            lu.pinv[ipiv] = j;
            lu.u_diag[j] = pivot;
            // --- Store U(:, j): pivotal rows; L(:, j): the rest, scaled. ---
            for &node in &pattern {
                let pj = lu.pinv[node];
                let xv = x[node];
                x[node] = T::ZERO;
                if node == ipiv {
                    continue;
                }
                if pj != UNSET && pj < j {
                    if xv != T::ZERO {
                        lu.u_rowidx.push(pj);
                        lu.u_vals.push(xv);
                    }
                } else if xv != T::ZERO {
                    lu.l_rowidx.push(node); // original index; remapped below
                    lu.l_vals.push(xv / pivot);
                }
            }
            lu.u_colptr.push(lu.u_rowidx.len());
            lu.l_colptr.push(lu.l_rowidx.len());
        }
        Ok(lu)
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Total stored nonzeros in `L + U` (a fill-in measure).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] for a wrong-sized `b`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        if b.len() != self.n {
            return Err(Error::DimensionMismatch { expected: self.n, found: b.len() });
        }
        // z = P·b in pivoted coordinates: z[pinv[i]] = b[i].
        let mut z = vec![T::ZERO; self.n];
        for i in 0..self.n {
            z[self.pinv[i]] = b[i];
        }
        // Forward solve L·y = z (unit diagonal), L columns hold original row
        // indices: remap through pinv.
        for j in 0..self.n {
            let zj = z[j];
            if zj == T::ZERO {
                continue;
            }
            for k in self.l_colptr[j]..self.l_colptr[j + 1] {
                let r = self.pinv[self.l_rowidx[k]];
                z[r] -= self.l_vals[k] * zj;
            }
        }
        // Backward solve U·x = y, U stored by columns with separate diagonal.
        for j in (0..self.n).rev() {
            z[j] /= self.u_diag[j];
            let xj = z[j];
            if xj == T::ZERO {
                continue;
            }
            for k in self.u_colptr[j]..self.u_colptr[j + 1] {
                z[self.u_rowidx[k]] -= self.u_vals[k] * xj;
            }
        }
        Ok(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;

    fn laplacian_1d(n: usize) -> Csr<f64> {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn triplets_accumulate_and_drop_zero() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 2.0);
        t.push(0, 1, -2.0); // cancels to zero → dropped
        t.push(1, 0, 5.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(1, 0), 5.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = laplacian_1d(6);
        let x: Vec<f64> = (0..6).map(|i| (i as f64 + 1.0).sin()).collect();
        let y = a.matvec(&x);
        let yd = a.to_dense().matvec(&x);
        for (s, d) in y.iter().zip(&yd) {
            assert!((s - d).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut t = Triplets::new(3, 2);
        t.push(0, 1, 1.0);
        t.push(2, 0, 4.0);
        let a = t.to_csr();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn sparse_lu_tridiagonal() {
        let a = laplacian_1d(50);
        let xref: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = a.matvec(&xref);
        let x = a.solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-10);
        }
    }

    #[test]
    fn sparse_lu_needs_pivoting() {
        // Zero diagonal forces off-diagonal pivoting.
        let mut t = Triplets::new(3, 3);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 2, 2.0);
        t.push(2, 2, 1.0);
        let a = t.to_csr();
        let b = [1.0, 3.0, 1.0];
        let x = a.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        // Column 1 is empty → structurally singular.
        let a = t.to_csr();
        assert!(matches!(a.lu(), Err(Error::Singular(_))));
    }

    #[test]
    fn complex_sparse_solve() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, Complex::new(1.0, 1.0));
        t.push(0, 1, Complex::I);
        t.push(1, 1, Complex::new(2.0, -1.0));
        let a = t.to_csr();
        let xref = vec![Complex::new(0.5, -0.5), Complex::new(1.0, 2.0)];
        let b = a.matvec(&xref);
        let x = a.solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((*xi - *ri).abs() < 1e-12);
        }
    }

    #[test]
    fn random_pattern_vs_dense() {
        // Deterministic pseudo-random sparse matrix compared against the
        // dense LU on the same system.
        let n = 25;
        let mut t = Triplets::new(n, n);
        let mut seed = 12345u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64 / 2.0) - 1.0
        };
        for i in 0..n {
            t.push(i, i, 4.0 + rnd());
            for _ in 0..3 {
                let j = ((rnd().abs() * n as f64) as usize).min(n - 1);
                t.push(i, j, rnd());
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xs = a.solve(&b).unwrap();
        let xd = a.to_dense().solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "sparse {s} dense {d}");
        }
    }

    #[test]
    fn density_and_fill() {
        let a = laplacian_1d(100);
        assert!(a.density() < 0.03);
        let lu = a.lu().unwrap();
        // Tridiagonal LU has no fill-in beyond the band.
        assert!(lu.factor_nnz() <= 3 * 100);
    }

    #[test]
    fn add_scaled_combines() {
        let a = laplacian_1d(4);
        let id = Csr::identity(4);
        let c = a.add_scaled(2.0, &id, 3.0);
        assert_eq!(c.get(0, 0), 7.0);
        assert_eq!(c.get(0, 1), -2.0);
    }

    #[test]
    fn matvec_transposed_matches() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 2, 1.5);
        t.push(1, 0, -2.0);
        let a = t.to_csr();
        let x = [1.0, 2.0];
        let y = a.matvec_transposed(&x);
        let yd = a.to_dense().transpose().matvec(&x);
        assert_eq!(y, yd);
    }
}
