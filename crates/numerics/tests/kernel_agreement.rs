//! Agreement suite for the dispatched numerics kernels.
//!
//! Every kernel in `rfsim_numerics::kernels` has two implementations:
//! the AVX2+FMA fast path and the scalar reference. This suite pins the
//! contract between them:
//!
//! * **Scalar dispatch is the bitwise reference.** When `simd_active()`
//!   is false (no AVX2, `--no-default-features`, or `RFSIM_SIMD=off`),
//!   each kernel must reproduce the naive evaluation order exactly —
//!   asserted here bit for bit.
//! * **SIMD dispatch agrees within reassociation error.** The vector
//!   paths split reductions across lanes, so results may differ from
//!   the reference by normal floating-point reassociation — bounded
//!   here relative to the sum of term magnitudes.
//!
//! The suite is dispatch-agnostic: run under the default build it checks
//! the SIMD tolerance arm, run with `RFSIM_SIMD=off` (the CI matrix does
//! both) it checks bitwise equality. One subprocess test additionally
//! forces the kill-switch regardless of how the parent was invoked, so
//! the scalar contract is exercised even in a SIMD-only environment.

use proptest::prelude::*;
use rfsim_numerics::dense::Mat;
use rfsim_numerics::kernels;
use rfsim_numerics::Complex;

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e3f64..1e3
}

fn f64_vec(n: impl Strategy<Value = usize>) -> impl Strategy<Value = Vec<f64>> {
    n.prop_flat_map(|len| proptest::collection::vec(finite_f64(), len))
}

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec((finite_f64(), finite_f64()), n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

/// Lengths spanning empty, sub-lane, and multi-lane-plus-remainder
/// cases, so every kernel's vector tail handling is exercised.
fn len_strategy() -> impl Strategy<Value = usize> {
    0usize..40
}

/// Reassociation bound for a reduction over terms of magnitude `mag`.
fn tol(mag: f64) -> f64 {
    1e-12 * mag.max(1.0)
}

fn check_f64(simd: bool, got: f64, reference: f64, mag: f64) -> Result<(), String> {
    if simd {
        prop_assert!(
            (got - reference).abs() <= tol(mag),
            "simd {got} vs scalar {reference} (mag {mag})"
        );
    } else {
        prop_assert_eq!(got.to_bits(), reference.to_bits());
    }
    Ok(())
}

fn check_complex(simd: bool, got: Complex, reference: Complex, mag: f64) -> Result<(), String> {
    check_f64(simd, got.re, reference.re, mag)?;
    check_f64(simd, got.im, reference.im, mag)
}

proptest! {
    #[test]
    fn dot_f64_agrees((a, b) in len_strategy().prop_flat_map(|n| (f64_vec(Just(n)), f64_vec(Just(n))))) {
        let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        check_f64(kernels::simd_active(), kernels::dot_f64(&a, &b), reference, mag)?;
    }

    #[test]
    fn norm2_sq_f64_agrees(v in f64_vec(len_strategy())) {
        let reference: f64 = v.iter().map(|x| x * x).sum();
        check_f64(kernels::simd_active(), kernels::norm2_sq_f64(&v), reference, reference.abs())?;
    }

    #[test]
    fn axpy_f64_agrees(
        alpha in finite_f64(),
        (x, y) in len_strategy().prop_flat_map(|n| (f64_vec(Just(n)), f64_vec(Just(n)))),
    ) {
        let mut got = y.clone();
        kernels::axpy_f64(alpha, &x, &mut got);
        for i in 0..x.len() {
            let reference = alpha.mul_add(x[i], y[i]);
            // FMA on both paths; the scalar fallback uses mul_add too, so
            // elementwise updates are bitwise on every dispatch.
            let loose = alpha * x[i] + y[i];
            let mag = (alpha * x[i]).abs() + y[i].abs();
            prop_assert!(
                got[i].to_bits() == reference.to_bits() || (got[i] - loose).abs() <= tol(mag),
                "axpy[{i}]: {} vs {reference}", got[i]
            );
        }
    }

    #[test]
    fn scale_f64_agrees(s in finite_f64(), v in f64_vec(len_strategy())) {
        let mut got = v.clone();
        kernels::scale_f64(&mut got, s);
        for i in 0..v.len() {
            prop_assert_eq!(got[i].to_bits(), (v[i] * s).to_bits());
        }
    }

    #[test]
    fn cdot_agrees((a, b) in len_strategy().prop_flat_map(|n| (complex_vec(n), complex_vec(n)))) {
        let reference = a.iter().zip(&b).fold(Complex::ZERO, |acc, (x, y)| acc + x.conj() * *y);
        let mag: f64 = a.iter().zip(&b).map(|(x, y)| x.abs() * y.abs()).sum();
        check_complex(kernels::simd_active(), kernels::cdot(&a, &b), reference, mag)?;
    }

    #[test]
    fn cdotu_agrees((a, b) in len_strategy().prop_flat_map(|n| (complex_vec(n), complex_vec(n)))) {
        let reference = a.iter().zip(&b).fold(Complex::ZERO, |acc, (x, y)| acc + *x * *y);
        let mag: f64 = a.iter().zip(&b).map(|(x, y)| x.abs() * y.abs()).sum();
        check_complex(kernels::simd_active(), kernels::cdotu(&a, &b), reference, mag)?;
    }

    #[test]
    fn cdotu_widen_agrees((a, b) in len_strategy().prop_flat_map(|n| (f64_vec(Just(2 * n)), complex_vec(n)))) {
        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let reference = a32
            .chunks_exact(2)
            .zip(&b)
            .fold(Complex::ZERO, |acc, (p, y)| acc + Complex::new(p[0] as f64, p[1] as f64) * *y);
        let mag: f64 = a32
            .chunks_exact(2)
            .zip(&b)
            .map(|(p, y)| Complex::new(p[0] as f64, p[1] as f64).abs() * y.abs())
            .sum();
        check_complex(kernels::simd_active(), kernels::cdotu_widen(&a32, &b), reference, mag)?;
    }

    #[test]
    fn cnorm2_sq_agrees(v in (0usize..40).prop_flat_map(complex_vec)) {
        let reference: f64 = v.iter().map(|z| z.re * z.re + z.im * z.im).sum();
        check_f64(kernels::simd_active(), kernels::cnorm2_sq(&v), reference, reference.abs())?;
    }

    #[test]
    fn caxpy_agrees(
        alpha in (finite_f64(), finite_f64()).prop_map(|(re, im)| Complex::new(re, im)),
        (x, y) in len_strategy().prop_flat_map(|n| (complex_vec(n), complex_vec(n))),
    ) {
        let mut got = y.clone();
        kernels::caxpy(alpha, &x, &mut got);
        let simd = kernels::simd_active();
        for i in 0..x.len() {
            let reference = y[i] + alpha * x[i];
            let mag = alpha.abs() * x[i].abs() + y[i].abs();
            if simd {
                prop_assert!((got[i] - reference).abs() <= tol(mag),
                    "caxpy[{i}]: {} vs {reference}", got[i]);
            } else {
                prop_assert_eq!(got[i].re.to_bits(), reference.re.to_bits());
                prop_assert_eq!(got[i].im.to_bits(), reference.im.to_bits());
            }
        }
    }

    #[test]
    fn cscale_agrees(s in finite_f64(), v in (0usize..40).prop_flat_map(complex_vec)) {
        let mut got = v.clone();
        kernels::cscale(&mut got, s);
        for i in 0..v.len() {
            prop_assert_eq!(got[i].re.to_bits(), (v[i].re * s).to_bits());
            prop_assert_eq!(got[i].im.to_bits(), (v[i].im * s).to_bits());
        }
    }

    #[test]
    fn asinh_slice_agrees(v in f64_vec(len_strategy())) {
        let mut got = v.clone();
        kernels::asinh_slice(&mut got);
        let simd = kernels::simd_active();
        for i in 0..v.len() {
            let reference = v[i].asinh();
            if simd {
                // The vector path evaluates via log1p algebra — agree to a
                // few ULP, checked relatively.
                prop_assert!((got[i] - reference).abs() <= 1e-14 * reference.abs().max(1.0),
                    "asinh({}) = {} vs {reference}", v[i], got[i]);
            } else {
                prop_assert_eq!(got[i].to_bits(), reference.to_bits());
            }
        }
    }

    #[test]
    fn atan_slice_agrees(v in f64_vec(len_strategy())) {
        let mut got = v.clone();
        kernels::atan_slice(&mut got);
        let simd = kernels::simd_active();
        for i in 0..v.len() {
            let reference = v[i].atan();
            if simd {
                prop_assert!((got[i] - reference).abs() <= 1e-14 * reference.abs().max(1.0),
                    "atan({}) = {} vs {reference}", v[i], got[i]);
            } else {
                prop_assert_eq!(got[i].to_bits(), reference.to_bits());
            }
        }
    }

    /// The narrowed (f32-storage) LU factors must solve the same system
    /// as the f64 factors to within single-precision accuracy. The test
    /// matrices are diagonally dominant, so κ(A) is O(1) and the bound
    /// is a comfortable 1e-4 relative.
    #[test]
    fn lu_single_matches_double(
        vals in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 64),
        rhs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 8),
    ) {
        let n = 8;
        let mut m = Mat::from_fn(n, n, |i, j| {
            let (re, im) = vals[i * n + j];
            Complex::new(re, im)
        });
        for i in 0..n {
            m[(i, i)] += Complex::new(n as f64 + 1.0, 0.0);
        }
        let b: Vec<Complex> = rhs.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let lu = m.lu().unwrap();
        let x64 = lu.solve(&b).unwrap();
        let single = lu.to_single().expect("finite factors narrow");
        prop_assert_eq!(single.order(), n);
        let x32 = single.solve(&b).unwrap();
        let scale = x64.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1.0);
        for i in 0..n {
            prop_assert!(
                (x32[i] - x64[i]).abs() <= 1e-4 * scale,
                "x[{i}]: narrowed {} vs double {}", x32[i], x64[i]
            );
        }
    }
}

/// Narrowing must refuse factors it cannot represent instead of
/// producing garbage: overflow to ±∞ and diagonals that underflow to
/// zero both return `None`, and the caller keeps the f64 path.
#[test]
fn lu_single_rejects_unrepresentable_factors() {
    let huge =
        Mat::from_fn(
            2,
            2,
            |i, j| {
                if i == j {
                    Complex::new(1e200, 0.0)
                } else {
                    Complex::new(0.0, 0.0)
                }
            },
        );
    assert!(huge.lu().unwrap().to_single().is_none(), "1e200 overflows f32");

    let tiny =
        Mat::from_fn(
            2,
            2,
            |i, j| {
                if i == j {
                    Complex::new(1e-60, 0.0)
                } else {
                    Complex::new(0.0, 0.0)
                }
            },
        );
    assert!(tiny.lu().unwrap().to_single().is_none(), "1e-60 diagonal underflows to zero");
}

/// Forces the kill-switch in a subprocess (dispatch is resolved once per
/// process) and checks that a canonical computation matches the naive
/// reference bit for bit — the scalar contract, independent of how the
/// parent suite was invoked.
#[test]
fn simd_off_subprocess_is_bitwise_reference() {
    const CHILD_VAR: &str = "RFSIM_KERNEL_AGREEMENT_CHILD";
    if std::env::var(CHILD_VAR).is_ok() {
        assert_eq!(kernels::dispatch_label(), "scalar", "RFSIM_SIMD=off must select scalar");
        let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 1.3).cos() * 2.0).collect();
        let ca: Vec<Complex> = a.iter().zip(&b).map(|(&re, &im)| Complex::new(re, im)).collect();
        let cb: Vec<Complex> = b.iter().zip(&a).map(|(&re, &im)| Complex::new(re, im)).collect();
        println!("REF dot {:016x}", kernels::dot_f64(&a, &b).to_bits());
        let d = kernels::cdotu(&ca, &cb);
        println!("REF cdotu {:016x} {:016x}", d.re.to_bits(), d.im.to_bits());
        return;
    }
    let exe = std::env::current_exe().expect("current exe");
    let out = std::process::Command::new(exe)
        .args([
            "--exact",
            "simd_off_subprocess_is_bitwise_reference",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env(CHILD_VAR, "1")
        .env("RFSIM_SIMD", "off")
        .output()
        .expect("spawn child");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Naive references, computed in-process.
    let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
    let b: Vec<f64> = (0..37).map(|i| (i as f64 * 1.3).cos() * 2.0).collect();
    let ca: Vec<Complex> = a.iter().zip(&b).map(|(&re, &im)| Complex::new(re, im)).collect();
    let cb: Vec<Complex> = b.iter().zip(&a).map(|(&re, &im)| Complex::new(re, im)).collect();
    let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    let cdotu = ca.iter().zip(&cb).fold(Complex::ZERO, |acc, (x, y)| acc + *x * *y);
    let expect_dot = format!("REF dot {:016x}", dot.to_bits());
    let expect_cdotu = format!("REF cdotu {:016x} {:016x}", cdotu.re.to_bits(), cdotu.im.to_bits());
    assert!(
        stdout.lines().any(|l| l.contains(&expect_dot)),
        "scalar dot is not the bitwise reference:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.contains(&expect_cdotu)),
        "scalar cdotu is not the bitwise reference:\n{stdout}"
    );
}
