//! E3 — §2.1 bullets: HB memory/time growth with the number of tones.
//!
//! "The memory and time required for Harmonic Balance simulation increase
//! rapidly as more 'tones' are added … predicting the intermodulation
//! distortion of the entire modulator chain would require … four tones;
//! such a simulation would probably exceed available memory." We measure
//! one- and two-tone runs on the same circuit and extrapolate the
//! unknown-count/memory model (`n·Π(2Hᵢ+1)`) to 3 and 4 tones; transient
//! cost, by contrast, is tone-count-insensitive.

use rfsim::circuit::transient::{transient, TranOptions};
use rfsim::steady::{solve_hb, HbOptions, SpectralGrid, ToneAxis};
use rfsim_bench::{heading, switching_mixer, timed, MixerSpec};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e03");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(harness: &mut Harness) -> Result<(), String> {
    println!("E3: HB cost vs number of tones (§2.1)");
    let spec = MixerSpec { f_rf: 1e6, f_lo: 100e6, ..Default::default() };
    let (dae, _) = switching_mixer(&spec);
    let n = {
        use rfsim::circuit::dae::Dae as _;
        dae.dim()
    };
    let h = 4usize; // harmonics per tone

    heading("measured");
    println!("{:>7} {:>12} {:>12} {:>12}", "tones", "unknowns", "memory (B)", "time (s)");
    // 1 tone: LO only (RF source amplitude effectively a perturbation —
    // single-tone analysis at the LO).
    harness.sweep_point("tones=1", &[("tones", 1.0)], |pm| {
        let grid1 =
            SpectralGrid::single_tone(spec.f_lo, h).map_err(|e| format!("1-tone grid: {e}"))?;
        let (sol, t) = timed(|| solve_hb(&dae, &grid1, &HbOptions::default()));
        let sol = sol.map_err(|e| format!("1-tone HB: {e}"))?;
        pm.metric("unknowns", sol.stats.unknowns as f64);
        pm.metric("solver_bytes", sol.stats.solver_bytes as f64);
        println!("{:>7} {:>12} {:>12} {:>12.3}", 1, sol.stats.unknowns, sol.stats.solver_bytes, t);
        Ok::<_, String>(())
    })?;
    // 2 tones.
    let (sol2, t2) = harness.sweep_point("tones=2", &[("tones", 2.0)], |pm| {
        let grid2 =
            SpectralGrid::two_tone(ToneAxis::new(spec.f_rf, h), ToneAxis::new(spec.f_lo, h))
                .map_err(|e| format!("2-tone grid: {e}"))?;
        let (sol, t) = timed(|| solve_hb(&dae, &grid2, &HbOptions::default()));
        let sol = sol.map_err(|e| format!("2-tone HB: {e}"))?;
        pm.metric("unknowns", sol.stats.unknowns as f64);
        pm.metric("solver_bytes", sol.stats.solver_bytes as f64);
        println!("{:>7} {:>12} {:>12} {:>12.3}", 2, sol.stats.unknowns, sol.stats.solver_bytes, t);
        Ok::<_, String>((sol, t))
    })?;

    heading("extrapolated (unknowns = n·(2H+1)^tones, memory/time models)");
    let per_axis = 2 * h + 1;
    let mem_per_unknown = sol2.stats.solver_bytes as f64 / sol2.stats.unknowns as f64;
    let time_per_unknown = t2 / sol2.stats.unknowns as f64;
    println!("{:>7} {:>12} {:>12} {:>12}", "tones", "unknowns", "memory (B)", "time (s)");
    for tones in 3..=4 {
        let unknowns = n * per_axis.pow(tones);
        // Memory model: preconditioner blocks scale with bins·n²; basis
        // with unknowns — both linear in the bin count, so scale linearly;
        // the *direct* (traditional) solver would scale quadratically.
        let mem = mem_per_unknown * unknowns as f64;
        let mem_direct = (unknowns as f64).powi(2) * 8.0;
        let t = time_per_unknown * unknowns as f64;
        println!(
            "{:>7} {:>12} {:>12.0} {:>12.3}   (traditional direct: {:.1e} B)",
            tones, unknowns, mem, t, mem_direct
        );
    }
    println!(
        "\npaper's point: at 4 tones the traditional dense-Jacobian HB 'would\n\
         probably exceed available memory' — the quadratic column above."
    );

    heading("transient insensitivity to tone count");
    let dt = 1.0 / (spec.f_lo * 30.0);
    let t_end = 20.0 / spec.f_lo;
    let (r1, tt1) = harness.phase("transient", || {
        let (r, t) =
            timed(|| transient(&dae, 0.0, t_end, &TranOptions { dt, ..Default::default() }));
        r.map(|r| (r, t)).map_err(|e| format!("transient: {e}"))
    })?;
    println!("1-or-N-tone transient: {} steps in {:.3} s (cost set by the", r1.times.len(), tt1);
    println!("fastest tone and the observation window, not by the tone count).");
    Ok(())
}
