//! Criterion benches for extraction: IES³ build/matvec vs dense (the Fig 6
//! scaling at two sizes) and the FD volume solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rfsim::em::fd::{FdConductor, FdProblem};
use rfsim::em::geom::mesh_parallel_plates;
use rfsim::em::ies3::{CompressedMatrix, Ies3Options};
use rfsim::em::mom::MomProblem;
use rfsim::em::GreenFn;

fn bench_ies3(c: &mut Criterion) {
    let mut g = c.benchmark_group("ies3_scaling");
    g.sample_size(10);
    for n_side in [8usize, 16] {
        let panels = mesh_parallel_plates(1e-3, 1e-4, n_side);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).expect("mom");
        let n = p.len();
        g.bench_with_input(BenchmarkId::new("dense_assemble", n), &p, |b, p| {
            b.iter(|| p.assemble_dense())
        });
        g.bench_with_input(BenchmarkId::new("ies3_build", n), &p, |b, p| {
            b.iter(|| {
                CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).expect("ies3")
            })
        });
        let dense = p.assemble_dense();
        let cm =
            CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).expect("ies3");
        let x = vec![1.0; n];
        g.bench_with_input(BenchmarkId::new("dense_matvec", n), &x, |b, x| {
            b.iter(|| dense.matvec(x))
        });
        g.bench_with_input(BenchmarkId::new("ies3_matvec", n), &x, |b, x| b.iter(|| cm.matvec(x)));
    }
    g.finish();
}

fn bench_fd(c: &mut Criterion) {
    let mut g = c.benchmark_group("fd_volume_solve");
    g.sample_size(10);
    let prob = FdProblem {
        nx: 14,
        ny: 14,
        nz: 14,
        h: 1e-5,
        eps_r: 1.0,
        conductors: vec![FdConductor { x: (5, 9), y: (5, 9), z: (6, 8) }],
    };
    g.bench_function("laplace_14cubed", |b| b.iter(|| prob.solve(&[1.0]).expect("fd")));
    g.finish();
}

criterion_group!(benches, bench_ies3, bench_fd);
criterion_main!(benches);
