//! E7 — Table 1: measured characteristics of the differential (FD) vs
//! integral (MoM) simulation classes.
//!
//! |                      | differential | integral |
//! |----------------------|--------------|----------|
//! | Matrix type          | sparse       | dense    |
//! | Discretization       | volume       | surface  |
//! | Matrix conditioning  | poor         | good     |
//!
//! We extract the same parallel-plate structure with both classes and
//! measure every row of the table on the actual matrices.

use rfsim::em::fd::{cond2_estimate, FdConductor, FdProblem};
use rfsim::em::geom::mesh_parallel_plates;
use rfsim::em::mom::{capacitance_matrix, MomProblem};
use rfsim::em::GreenFn;
use rfsim::numerics::svd::Svd;
use rfsim_bench::{heading, timed};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e07");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(h: &mut Harness) -> Result<(), String> {
    println!("E7: Table 1 — differential vs integral formulations, measured");

    // The structure: parallel plates, 60 µm square, 12 µm apart.
    let side = 60e-6;
    let gap = 12e-6;

    // --- Integral class: MoM surface discretization. ---
    let (n_mom, cond_mom, c_mom, t_asm, t_solve) =
        h.sweep_point("mom", &[("side_um", side * 1e6), ("gap_um", gap * 1e6)], |pm| {
            let panels = mesh_parallel_plates(side, gap, 10);
            let n_mom = panels.len();
            let mom = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 })
                .map_err(|e| format!("MoM setup: {e}"))?;
            let (a_mom, t_asm) = timed(|| mom.assemble_dense());
            let cond_mom = Svd::new(&a_mom).map_err(|e| format!("MoM svd: {e}"))?.cond2();
            let (c_mom, t_solve) = timed(|| capacitance_matrix(&mom));
            let c_mom = c_mom.map_err(|e| format!("MoM capacitance: {e}"))?;
            pm.metric("panels", n_mom as f64);
            pm.metric("cond2", cond_mom);
            Ok::<_, String>((n_mom, cond_mom, c_mom, t_asm, t_solve))
        })?;

    // --- Differential class: FD volume discretization of the same box.
    // Domain 3× the plate extent; grid chosen so the plates resolve.
    let (sol, cap_fd, cond_fd, t_fd) = h.sweep_point("fd", &[("grid", 24.0)], |pm| {
        let nf = 24;
        let hstep = 3.0 * side / nf as f64;
        let cell_of = |x: f64| ((x + 1.5 * side) / hstep).round() as usize;
        let zlo = cell_of(-gap / 2.0);
        let zhi = cell_of(gap / 2.0);
        let (plo, phi) = (cell_of(-side / 2.0), cell_of(side / 2.0));
        let fd = FdProblem {
            nx: nf,
            ny: nf,
            nz: nf,
            h: hstep,
            eps_r: 1.0,
            conductors: vec![
                FdConductor { x: (plo, phi), y: (plo, phi), z: (zlo, zlo + 1) },
                FdConductor { x: (plo, phi), y: (plo, phi), z: (zhi, zhi + 1) },
            ],
        };
        let (fd_out, t_fd) = timed(|| {
            let s = fd.solve(&[1.0, 0.0]).map_err(|e| format!("FD solve: {e}"))?;
            let c = 2.0 * fd.field_energy(&s.phi);
            Ok::<_, String>((s, c))
        });
        let (sol, cap_fd) = fd_out?;
        let cond_fd =
            cond2_estimate(&sol.matrix, 60).map_err(|e| format!("FD conditioning: {e}"))?;
        pm.metric("unknowns", sol.unknowns as f64);
        pm.metric("cond2", cond_fd);
        Ok::<_, String>((sol, cap_fd, cond_fd, t_fd))
    })?;

    heading("Table 1, measured");
    println!("{:<22} {:>18} {:>18}", "", "differential (FD)", "integral (MoM)");
    println!(
        "{:<22} {:>18} {:>18}",
        "matrix type",
        format!("sparse ({:.2}% nnz)", sol.matrix.density() * 100.0),
        "dense (100% nnz)"
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "discretization",
        format!("volume ({} cells)", sol.unknowns),
        format!("surface ({n_mom} panels)")
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "matrix conditioning",
        format!("poor (κ≈{cond_fd:.0})"),
        format!("good (κ≈{cond_mom:.1})")
    );

    heading("cross-check: both classes extract the same capacitance");
    let c12 = -c_mom[(0, 1)];
    println!(
        "MoM plate-to-plate C: {:.3e} F ({:.3} s assemble + {:.3} s solve)",
        c12, t_asm, t_solve
    );
    println!("FD  energy-method C:  {:.3e} F ({:.3} s)", cap_fd, t_fd);
    println!(
        "ratio FD/MoM: {:.2} (FD includes plate-to-wall fringing of the\n\
         grounded truncation box; same order = both solvers healthy)",
        cap_fd / c12
    );
    println!(
        "\nproblem-size reduction: the surface mesh needs {}× fewer unknowns\n\
         than the volume mesh — §4's 'orders of magnitude' once 3-D structures\n\
         grow (the gap widens as (size/h)³ vs (size/h)²).",
        sol.unknowns / n_mom
    );
    Ok(())
}
