//! Independent voltage and current sources driven by a
//! [`Stimulus`](crate::waveform::Stimulus).

use crate::dae::{LoadCtx, SrcCtx, Var};
use crate::netlist::{Device, NodeId};
use crate::waveform::{Stimulus, TimeScale, Tone};

/// An independent voltage source (one branch unknown).
///
/// Enforces `v_a − v_b = V(t)`; the branch current flows `a → b` through
/// the source (positive current means the source delivers current out of
/// its `a` terminal into the circuit... measured as leaving node `a`).
#[derive(Debug, Clone)]
pub struct VSource {
    name: String,
    a: NodeId,
    b: NodeId,
    stimulus: Stimulus,
}

impl VSource {
    /// Creates a voltage source with an arbitrary stimulus.
    pub fn new(name: &str, a: NodeId, b: NodeId, stimulus: Stimulus) -> Self {
        VSource { name: name.into(), a, b, stimulus }
    }

    /// DC source of `volts`.
    pub fn dc(name: &str, a: NodeId, b: NodeId, volts: f64) -> Self {
        Self::new(name, a, b, Stimulus::Dc(volts))
    }

    /// Sinusoidal source on the slow time scale.
    pub fn sine(name: &str, a: NodeId, b: NodeId, offset: f64, amplitude: f64, freq: f64) -> Self {
        Self::new(name, a, b, Stimulus::sine(offset, amplitude, freq))
    }

    /// Sinusoidal source on the fast time scale (carrier / LO).
    pub fn sine_fast(
        name: &str,
        a: NodeId,
        b: NodeId,
        offset: f64,
        amplitude: f64,
        freq: f64,
    ) -> Self {
        Self::new(name, a, b, Stimulus::sine_fast(offset, amplitude, freq))
    }

    /// Square-wave LO source of `amplitude` and `freq` on the fast scale.
    pub fn square_lo(name: &str, a: NodeId, b: NodeId, amplitude: f64, freq: f64) -> Self {
        Self::new(name, a, b, Stimulus::square_fast(amplitude, freq))
    }

    /// Two-tone source: `offset + Σ aᵢ·sin(2πfᵢt)`, each tone with a time
    /// scale (used by intermodulation and MPDE studies).
    pub fn multi_tone(
        name: &str,
        a: NodeId,
        b: NodeId,
        offset: f64,
        tones: Vec<(Tone, TimeScale)>,
    ) -> Self {
        Self::new(name, a, b, Stimulus::MultiTone { offset, tones })
    }

    /// The stimulus waveform.
    pub fn stimulus(&self) -> &Stimulus {
        &self.stimulus
    }
}

impl Device for VSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let i = ctx.branch_current(0);
        ctx.add_f(Var::Node(self.a), i);
        ctx.add_f(Var::Node(self.b), -i);
        ctx.add_g(Var::Node(self.a), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.b), Var::Branch(0), -1.0);
        // Branch equation: v_a − v_b = V(t) (RHS stamped in `source`).
        ctx.add_f(Var::Branch(0), ctx.v(self.a) - ctx.v(self.b));
        ctx.add_g(Var::Branch(0), Var::Node(self.a), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.b), -1.0);
    }

    fn source(&self, ctx: &mut SrcCtx<'_>) {
        let v = self.stimulus.eval(ctx.time());
        ctx.add_b_branch(0, v);
    }
}

/// An independent current source.
///
/// Drives a current `I(t)` through itself from node `a` to node `b`: the
/// current is extracted from node `a` and injected into node `b`.
#[derive(Debug, Clone)]
pub struct ISource {
    name: String,
    a: NodeId,
    b: NodeId,
    stimulus: Stimulus,
}

impl ISource {
    /// Creates a current source with an arbitrary stimulus.
    pub fn new(name: &str, a: NodeId, b: NodeId, stimulus: Stimulus) -> Self {
        ISource { name: name.into(), a, b, stimulus }
    }

    /// DC source of `amps`.
    pub fn dc(name: &str, a: NodeId, b: NodeId, amps: f64) -> Self {
        Self::new(name, a, b, Stimulus::Dc(amps))
    }

    /// Sinusoidal source on the slow time scale.
    pub fn sine(name: &str, a: NodeId, b: NodeId, offset: f64, amplitude: f64, freq: f64) -> Self {
        Self::new(name, a, b, Stimulus::sine(offset, amplitude, freq))
    }

    /// The stimulus waveform.
    pub fn stimulus(&self) -> &Stimulus {
        &self.stimulus
    }
}

impl Device for ISource {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(&self, _ctx: &mut LoadCtx<'_>) {}

    fn source(&self, ctx: &mut SrcCtx<'_>) {
        let i = self.stimulus.eval(ctx.time());
        ctx.add_b(self.a, -i);
        ctx.add_b(self.b, i);
    }
}
