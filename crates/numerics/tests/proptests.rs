//! Property-based tests for the numerical kernels.

use proptest::prelude::*;
use rfsim_numerics::complex::{cdot, cnorm2};
use rfsim_numerics::dense::Mat;
use rfsim_numerics::fft::{dft, fft_pow2, idft, ifft_pow2};
use rfsim_numerics::krylov::{gmres, IdentityPrecond, KrylovOptions};
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::svd::Svd;
use rfsim_numerics::Complex;

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e3f64..1e3).prop_filter("nonzero-ish", |x| x.abs() > 1e-9 || *x == 0.0)
}

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec((finite_f64(), finite_f64()), n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

/// Well-conditioned matrix: diagonally dominant with bounded off-diagonals.
fn dd_matrix(n: usize) -> impl Strategy<Value = Mat<f64>> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |v| {
        let mut m = Mat::from_fn(n, n, |i, j| v[i * n + j]);
        for i in 0..n {
            m[(i, i)] = n as f64 + 1.0 + v[i * n + i];
        }
        m
    })
}

proptest! {
    #[test]
    fn complex_mul_commutes(a in (finite_f64(), finite_f64()), b in (finite_f64(), finite_f64())) {
        let x = Complex::new(a.0, a.1);
        let y = Complex::new(b.0, b.1);
        let d = x * y - y * x;
        prop_assert!(d.abs() <= 1e-9 * (x.abs() * y.abs()).max(1.0));
    }

    #[test]
    fn complex_abs_triangle_inequality(a in (finite_f64(), finite_f64()), b in (finite_f64(), finite_f64())) {
        let x = Complex::new(a.0, a.1);
        let y = Complex::new(b.0, b.1);
        prop_assert!((x + y).abs() <= x.abs() + y.abs() + 1e-9);
    }

    #[test]
    fn lu_solve_residual_small(m in dd_matrix(8), b in proptest::collection::vec(-10.0f64..10.0, 8)) {
        let x = m.solve(&b).unwrap();
        let ax = m.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in dd_matrix(5), b in dd_matrix(5)) {
        let dab = a.matmul(&b).det();
        let dadb = a.det() * b.det();
        prop_assert!((dab - dadb).abs() <= 1e-6 * dadb.abs().max(1.0));
    }

    #[test]
    fn dft_linearity(x in complex_vec(24), y in complex_vec(24), s in finite_f64()) {
        let combined: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + b.scale(s)).collect();
        let lhs = dft(&combined);
        let fx = dft(&x);
        let fy = dft(&y);
        for k in 0..24 {
            let rhs = fx[k] + fy[k].scale(s);
            prop_assert!((lhs[k] - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
        }
    }

    #[test]
    fn dft_parseval(x in complex_vec(20)) {
        let f = dft(&x);
        let et: f64 = x.iter().map(|z| z.abs_sq()).sum();
        let ef: f64 = f.iter().map(|z| z.abs_sq()).sum::<f64>() / 20.0;
        prop_assert!((et - ef).abs() <= 1e-6 * et.max(1.0));
    }

    #[test]
    fn idft_inverts_dft(x in complex_vec(17)) {
        let back = idft(&dft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn fft_pow2_round_trip(x in complex_vec(32)) {
        let mut data = x.clone();
        fft_pow2(&mut data);
        ifft_pow2(&mut data);
        for (a, b) in data.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn fft_pow2_matches_dft(x in complex_vec(16)) {
        let mut fast = x.clone();
        fft_pow2(&mut fast);
        let slow = dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn complex_lu_solve_residual_small(
        vals in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 36),
        rhs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 6),
    ) {
        // Diagonally dominant complex system.
        let n = 6;
        let mut m = Mat::from_fn(n, n, |i, j| {
            let (re, im) = vals[i * n + j];
            Complex::new(re, im)
        });
        for i in 0..n {
            m[(i, i)] += Complex::new(n as f64 + 1.0, 0.0);
        }
        let b: Vec<Complex> = rhs.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        let lu = m.lu().unwrap();
        let x = lu.solve(&b).unwrap();
        // Residual ‖Mx − b‖∞ small relative to ‖b‖∞.
        let bnorm = b.iter().map(|z| z.abs()).fold(0.0, f64::max).max(1.0);
        for i in 0..n {
            let mut ax = Complex::ZERO;
            for j in 0..n {
                ax += m[(i, j)] * x[j];
            }
            prop_assert!((ax - b[i]).abs() < 1e-9 * bnorm);
        }
    }

    #[test]
    fn svd_values_nonnegative_sorted(vals in proptest::collection::vec(-5.0f64..5.0, 12)) {
        let m = Mat::from_fn(4, 3, |i, j| vals[i * 3 + j]);
        let svd = Svd::new(&m).unwrap();
        for w in svd.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for s in &svd.sigma {
            prop_assert!(*s >= 0.0);
        }
        // Frobenius norm equals the 2-norm of the singular values.
        let fro2: f64 = svd.sigma.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - m.norm_fro().powi(2)).abs() < 1e-8 * fro2.max(1.0));
    }

    #[test]
    fn gmres_matches_lu(m in dd_matrix(10), b in proptest::collection::vec(-5.0f64..5.0, 10)) {
        let xd = m.solve(&b).unwrap();
        let (xi, _) = gmres(&m, &b, None, &IdentityPrecond, &KrylovOptions::default()).unwrap();
        for (a, c) in xi.iter().zip(&xd) {
            prop_assert!((a - c).abs() < 1e-6 * (1.0 + c.abs()));
        }
    }

    #[test]
    fn sparse_matvec_matches_dense(entries in proptest::collection::vec((0usize..12, 0usize..12, -3.0f64..3.0), 1..60)) {
        let mut t = Triplets::new(12, 12);
        for &(i, j, v) in &entries {
            t.push(i, j, v);
        }
        let a = t.to_csr();
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let ys = a.matvec(&x);
        let yd = a.to_dense().matvec(&x);
        for (s, d) in ys.iter().zip(&yd) {
            prop_assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn cdot_conjugate_symmetry(x in complex_vec(9), y in complex_vec(9)) {
        let a = cdot(&x, &y);
        let b = cdot(&y, &x).conj();
        prop_assert!((a - b).abs() <= 1e-9 * (cnorm2(&x) * cnorm2(&y)).max(1.0));
    }

    // Lengths 1..=64 cover the trivial, power-of-two, and Bluestein
    // (composite and prime, e.g. 61) plan kinds.
    #[test]
    fn planned_dft_matches_reference_bitwise(x in (1usize..65).prop_flat_map(complex_vec)) {
        let p = dft(&x);
        let r = rfsim_numerics::fft::reference::dft(&x);
        for (a, b) in p.iter().zip(&r) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn planned_idft_matches_reference_bitwise(x in (1usize..65).prop_flat_map(complex_vec)) {
        let p = idft(&x);
        let r = rfsim_numerics::fft::reference::idft(&x);
        for (a, b) in p.iter().zip(&r) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    // Bitwise under scalar dispatch (the gather loop transforms the lines
    // one by one); within kernel tolerance under SIMD dispatch (the
    // batched executor runs FMA butterflies across the batch axis).
    #[test]
    fn strided_batch_matches_per_line(
        (ns, count, field, inverse) in (1usize..25, 1usize..7, 0usize..2)
            .prop_flat_map(|(ns, count, inv)| {
                (Just(ns), Just(count), complex_vec(ns * count), Just(inv == 1))
            })
    ) {
        let plan = rfsim_numerics::fft::plan(ns);
        let mut scratch = rfsim_numerics::fft::FftScratch::new();
        let mut batched = field.clone();
        if inverse {
            plan.inverse_strided(&mut batched, count, count, &mut scratch);
        } else {
            plan.forward_strided(&mut batched, count, count, &mut scratch);
        }
        let simd = rfsim_numerics::kernels::simd_active();
        for i in 0..count {
            let mut line: Vec<Complex> = (0..ns).map(|s| field[s * count + i]).collect();
            if inverse {
                plan.inverse(&mut line, &mut scratch);
            } else {
                plan.forward(&mut line, &mut scratch);
            }
            for (s, v) in line.iter().enumerate() {
                let w = batched[s * count + i];
                if simd {
                    let scale = v.abs().max(1.0);
                    prop_assert!((*v - w).abs() <= 1e-12 * scale,
                        "line {} sample {}: {} vs {}", i, s, v, w);
                } else {
                    prop_assert_eq!(v.re.to_bits(), w.re.to_bits());
                    prop_assert_eq!(v.im.to_bits(), w.im.to_bits());
                }
            }
        }
    }

    // A warm workspace must not leak state between solves: the second
    // solve with a reused workspace is bitwise the cold-start solution.
    #[test]
    fn gmres_workspace_reuse_is_bitwise(
        m in dd_matrix(10),
        b1 in proptest::collection::vec(-5.0f64..5.0, 10),
        b2 in proptest::collection::vec(-5.0f64..5.0, 10),
    ) {
        use rfsim_numerics::krylov::{gmres_with, GmresWorkspace};
        let opts = KrylovOptions::default();
        let mut ws = GmresWorkspace::new();
        gmres_with(&m, &b1, None, &IdentityPrecond, &opts, &mut ws).unwrap();
        let (warm, _) = gmres_with(&m, &b2, None, &IdentityPrecond, &opts, &mut ws).unwrap();
        let (cold, _) = gmres(&m, &b2, None, &IdentityPrecond, &opts).unwrap();
        for (a, c) in warm.iter().zip(&cold) {
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }
}
