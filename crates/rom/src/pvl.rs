//! Padé via Lanczos (PVL) [8, 9]: nonsymmetric (two-sided) Lanczos on
//! `A = −(G + s0C)⁻¹C` with start vectors `r` and `l`, yielding a
//! tridiagonal reduced model that matches `2q` moments of the transfer
//! function — "for the same order of approximation and computational
//! effort they match twice as many moments as the Arnoldi algorithm".

use crate::statespace::{check_order, DescriptorSystem, ReducedModel};
use crate::{Error, Result};
use rfsim_numerics::dense::Mat;
use rfsim_numerics::{dot, norm2};
use rfsim_telemetry as telemetry;

/// Builds an order-`q` PVL model of `sys` about expansion point `s0`.
///
/// Unit-normalized two-sided Lanczos: biorthogonal bases `V`, `W` with
/// `w_jᵀv_i = δ_i·δ_ij`; the projected operator
/// `T = D⁻¹·Wᵀ·A·V` is tridiagonal, and
/// `H(s0 + σ) ≈ (lᵀr)·e₁ᵀ(I − σT)⁻¹e₁`.
///
/// # Errors
/// [`Error::Breakdown`] on serious Lanczos breakdown (`wᵀv ≈ 0` with
/// nonzero `v`, `w`) — the case that motivates look-ahead variants; order
/// validation and factorization errors otherwise.
pub fn pvl_rom(sys: &DescriptorSystem, s0: f64, q: usize) -> Result<ReducedModel> {
    let _span = telemetry::span("rom.pvl");
    check_order(q, sys.order())?;
    let n = sys.order();
    let (ops, r) = sys.krylov_setup(s0)?;
    let rnorm = norm2(&r);
    let lnorm = norm2(&sys.l);
    if rnorm < 1e-300 || lnorm < 1e-300 {
        return Err(Error::Breakdown("pvl: zero start vector"));
    }
    let mut v: Vec<f64> = r.iter().map(|x| x / rnorm).collect();
    let mut w: Vec<f64> = sys.l.iter().map(|x| x / lnorm).collect();
    let mut v_prev = vec![0.0; n];
    let mut w_prev = vec![0.0; n];
    let mut deltas = vec![dot(&w, &v)];
    if deltas[0].abs() < 1e-14 {
        return Err(Error::Breakdown("pvl: initial wᵀv = 0"));
    }
    let mut alphas: Vec<f64> = Vec::with_capacity(q);
    let mut rhos: Vec<f64> = Vec::new(); // subdiagonal: ‖ṽ_k‖
    let mut etas: Vec<f64> = Vec::new(); // ‖w̃_k‖ (superdiagonal via δ)
                                         // Coefficients multiplying the previous basis vector in each
                                         // recurrence (zero for the first step).
    let mut beta = 0.0; // v-recurrence
    let mut gamma = 0.0; // w-recurrence
    let mut m = 0;
    for k in 0..q {
        let av = ops.apply(&v)?;
        let atw = ops.apply_transposed(&w)?;
        let alpha = dot(&w, &av) / deltas[k];
        alphas.push(alpha);
        m = k + 1;
        if k + 1 == q {
            break;
        }
        let mut v_next = av;
        let mut w_next = atw;
        for i in 0..n {
            v_next[i] -= alpha * v[i] + beta * v_prev[i];
            w_next[i] -= alpha * w[i] + gamma * w_prev[i];
        }
        let rho = norm2(&v_next);
        let eta = norm2(&w_next);
        if rho < 1e-280 || eta < 1e-280 {
            telemetry::counter_add("rom.pvl.lucky_breakdowns", 1);
            break; // lucky breakdown: invariant subspace found
        }
        for x in &mut v_next {
            *x /= rho;
        }
        for x in &mut w_next {
            *x /= eta;
        }
        let delta_next = dot(&w_next, &v_next);
        if delta_next.abs() < 1e-13 {
            telemetry::counter_add("rom.pvl.serious_breakdowns", 1);
            return Err(Error::Breakdown("pvl: serious breakdown (wᵀv = 0)"));
        }
        rhos.push(rho);
        etas.push(eta);
        // Next-step recurrence coefficients.
        beta = eta * delta_next / deltas[k];
        gamma = rho * delta_next / deltas[k];
        deltas.push(delta_next);
        v_prev = std::mem::replace(&mut v, v_next);
        w_prev = std::mem::replace(&mut w, w_next);
    }
    // Assemble T (m×m): T[k][k] = α_k, T[k+1][k] = ρ_k,
    // T[k][k+1] = η_k·δ_{k+1}/δ_k.
    let mut t = Mat::zeros(m, m);
    for (k, &a) in alphas.iter().take(m).enumerate() {
        t[(k, k)] = a;
    }
    for k in 0..m.saturating_sub(1) {
        t[(k + 1, k)] = rhos[k];
        t[(k, k + 1)] = etas[k] * deltas[k + 1] / deltas[k];
    }
    // Scalar model: H(σ) ≈ (lᵀr)·e₁ᵀ(I − σT)⁻¹e₁.
    let lr = dot(&sys.l, &r);
    let mut r_r = vec![0.0; m];
    r_r[0] = 1.0;
    let mut l_r = vec![0.0; m];
    l_r[0] = lr;
    telemetry::counter_add("rom.pvl.models", 1);
    telemetry::counter_add("rom.pvl.moments_matched", 2 * m as u64);
    Ok(ReducedModel { a_r: t, r_r, l_r, s0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statespace::{log_freqs, rc_line, relative_error, rlc_ladder, TransferFunction};

    #[test]
    fn pvl_matches_2q_moments() {
        let sys = rc_line(30, 100.0, 1e-12);
        let q = 4;
        let model = pvl_rom(&sys, 0.0, q).unwrap();
        let exact = sys.moments(0.0, 2 * q).unwrap();
        let reduced = model.moments(2 * q);
        for (k, (e, r)) in exact.iter().zip(&reduced).enumerate() {
            let rel = (e - r).abs() / e.abs().max(1e-300);
            let tol = if k < 2 * q - 2 { 1e-6 } else { 1e-3 };
            assert!(rel < tol, "moment {k}: exact {e:.6e} vs reduced {r:.6e}");
        }
    }

    #[test]
    fn pvl_transfer_accuracy() {
        let sys = rc_line(60, 100.0, 1e-12);
        let freqs = log_freqs(1e3, 1e9, 60);
        let model = pvl_rom(&sys, 0.0, 8).unwrap();
        let err = relative_error(&sys, &model, &freqs);
        assert!(err < 1e-3, "err = {err}");
    }

    #[test]
    fn pvl_handles_rlc_resonances() {
        let sys = rlc_ladder(5, 2.0, 1e-9, 1e-12);
        let freqs = log_freqs(1e6, 2e10, 80);
        let model = pvl_rom(&sys, 0.0, 10).unwrap();
        let err = relative_error(&sys, &model, &freqs);
        assert!(err < 0.02, "err = {err}");
    }

    #[test]
    fn pvl_stable_where_awe_breaks() {
        // Same configuration in which AWE degrades: PVL at the same order
        // stays accurate.
        let sys = rc_line(120, 50.0, 1e-12);
        let freqs = log_freqs(1e3, 1e10, 50);
        let model = pvl_rom(&sys, 0.0, 14).unwrap();
        let err = relative_error(&sys, &model, &freqs);
        assert!(err < 1e-4, "pvl err at order 14 = {err}");
    }

    #[test]
    fn dc_gain_preserved() {
        let sys = rc_line(25, 80.0, 2e-12);
        let model = pvl_rom(&sys, 0.0, 5).unwrap();
        let h0 = sys.eval(rfsim_numerics::Complex::ZERO);
        let m0 = model.eval(rfsim_numerics::Complex::ZERO);
        assert!((h0 - m0).abs() < 1e-9 * h0.abs());
    }
}
