//! Runtime-dispatched SIMD slice kernels.
//!
//! This module is the single funnel through which the numerics hot loops
//! (GMRES orthogonalization, FFT butterflies, dense LU, IES³ low-rank
//! matvec, MoM panel quadrature) reach vectorized arithmetic. Dispatch is
//! resolved **once per process** into a cached table:
//!
//! * the `simd` Cargo feature must be enabled (it is by default),
//! * the `RFSIM_SIMD` environment variable must not be `off`/`0`/`scalar`
//!   (the kill-switch for bitwise-reproducible runs), and
//! * the CPU must report AVX2 + FMA at runtime.
//!
//! When any of those fail, every kernel falls back to a **portable scalar
//! loop that is bitwise-identical to the historical implementation**, so
//! the `RFSIM_THREADS` determinism harness keeps its guarantees under
//! `RFSIM_SIMD=off`. The SIMD paths reassociate reductions (multiple
//! accumulators, fused multiply-add) and are therefore held to the
//! tolerance-based agreement suite instead of bitwise equality.
//!
//! Call sites record which path they used through [`note_dispatch`],
//! which feeds the `simd.dispatch.{avx2,scalar}` telemetry counters at
//! op granularity (one count per plan execution / factorization / solver
//! entry, never per element).

use crate::Complex;
use std::sync::OnceLock;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod avx2;

/// The resolved kernel dispatch decision for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// Whether the AVX2 + FMA fast path is active.
    pub simd: bool,
    /// Stable label for telemetry/artifacts: `"avx2"` or `"scalar"`.
    pub label: &'static str,
}

static DISPATCH: OnceLock<Dispatch> = OnceLock::new();

fn resolve_dispatch() -> Dispatch {
    let env_off = std::env::var("RFSIM_SIMD")
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "scalar"))
        .unwrap_or(false);
    let simd = !env_off && cpu_has_simd();
    Dispatch { simd, label: if simd { "avx2" } else { "scalar" } }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn cpu_has_simd() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn cpu_has_simd() -> bool {
    false
}

/// Returns the cached dispatch table entry (resolving it on first use).
#[inline]
pub fn dispatch() -> Dispatch {
    *DISPATCH.get_or_init(resolve_dispatch)
}

/// True when the AVX2 + FMA fast path is selected for this process.
#[inline]
pub fn simd_active() -> bool {
    dispatch().simd
}

/// Telemetry counter label for the active path (`"avx2"` / `"scalar"`).
#[inline]
pub fn dispatch_label() -> &'static str {
    dispatch().label
}

/// Records `ops` kernel dispatches on the active path's telemetry
/// counter. Called once per high-level operation (an FFT execution, an
/// LU factorization, a solver entry, an assembly pass) — not per element.
#[inline]
pub fn note_dispatch(ops: u64) {
    if simd_active() {
        rfsim_telemetry::counter_add("simd.dispatch.avx2", ops);
    } else {
        rfsim_telemetry::counter_add("simd.dispatch.scalar", ops);
    }
}

// ----------------------------------------------------------------------
// Real (f64) kernels
// ----------------------------------------------------------------------

/// `Σ aᵢ·bᵢ`. Scalar fallback matches the historical `numerics::dot`
/// evaluation order bitwise.
#[inline]
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        return unsafe { avx2::dot_f64(a, b) };
    }
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `Σ vᵢ²` (squared 2-norm, no square root). Scalar fallback matches the
/// historical `numerics::norm2` accumulation bitwise.
#[inline]
pub fn norm2_sq_f64(v: &[f64]) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        return unsafe { avx2::norm2_sq_f64(v) };
    }
    v.iter().map(|x| x * x).sum()
}

/// `y ← y + α·x`. Scalar fallback is the historical `numerics::axpy`
/// loop bitwise.
#[inline]
pub fn axpy_f64(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::axpy_f64(alpha, x, y) };
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// `v ← s·v`. Element-wise multiply; both paths agree bitwise (no
/// reassociation), but the scalar loop is kept as the reference.
#[inline]
pub fn scale_f64(v: &mut [f64], s: f64) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::scale_f64(v, s) };
        return;
    }
    for x in v.iter_mut() {
        *x *= s;
    }
}

// ----------------------------------------------------------------------
// Complex kernels
// ----------------------------------------------------------------------

/// Conjugated dot product `Σ conj(aᵢ)·bᵢ`. Scalar fallback matches the
/// historical `complex::cdot` / `scalar::gdot` loop bitwise.
#[inline]
pub fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "cdot length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        return unsafe { avx2::cdot(a, b) };
    }
    let mut acc = Complex::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x.conj() * *y;
    }
    acc
}

/// Unconjugated dot product `Σ aᵢ·bᵢ` (dense matvec / triangular-solve
/// row kernel). Scalar fallback matches the historical `Mat::matvec_into`
/// accumulation bitwise.
#[inline]
pub fn cdotu(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "cdotu length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        return unsafe { avx2::cdotu(a, b) };
    }
    let mut acc = Complex::ZERO;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += *x * *y;
    }
    acc
}

/// Unconjugated dot `Σ aᵢ·bᵢ` where `a` is a complex row stored as
/// interleaved re/im `f32` pairs (the [`LuSingle`] factor layout). Each
/// row element is widened to f64 before multiplying, so precision is lost
/// only in the stored row, never in the products or the accumulator.
///
/// [`LuSingle`]: crate::dense::LuSingle
#[inline]
pub fn cdotu_widen(a: &[f32], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), 2 * b.len(), "cdotu_widen length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        return unsafe { avx2::cdotu_widen(a, b) };
    }
    let mut acc = Complex::ZERO;
    for (p, y) in a.chunks_exact(2).zip(b.iter()) {
        acc += Complex::new(p[0] as f64, p[1] as f64) * *y;
    }
    acc
}

/// `Σ (reᵢ² + imᵢ²)` (squared 2-norm, no square root). Scalar fallback
/// matches the historical `complex::cnorm2` accumulation bitwise.
#[inline]
pub fn cnorm2_sq(v: &[Complex]) -> f64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        return unsafe { avx2::cnorm2_sq(v) };
    }
    v.iter().map(|z| z.abs_sq()).sum()
}

/// `y ← y + α·x` over complex slices. Scalar fallback matches the
/// historical `complex::caxpy` loop bitwise.
#[inline]
pub fn caxpy(alpha: Complex, x: &[Complex], y: &mut [Complex]) {
    assert_eq!(x.len(), y.len(), "caxpy length mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::caxpy(alpha, x, y) };
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// `v ← s·v` (real scale of a complex slice, the MGS normalization step).
#[inline]
pub fn cscale(v: &mut [Complex], s: f64) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::cscale(v, s) };
        return;
    }
    for z in v.iter_mut() {
        z.re *= s;
        z.im *= s;
    }
}

// ----------------------------------------------------------------------
// FFT butterfly stages
// ----------------------------------------------------------------------

/// Runs every radix-2 butterfly stage over bit-reversed `data` using the
/// per-stage concatenated twiddle layout produced by `Pow2Tables::build`.
/// Shared by the planned FFT path and `fft_pow2` so that planned and
/// reference transforms stay bitwise-identical to each other in *both*
/// dispatch modes. The scalar loop is the historical staged butterfly
/// bitwise.
#[inline]
pub(crate) fn fft_stages(data: &mut [Complex], twiddles: &[Complex]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::fft_stages(data, twiddles) };
        return;
    }
    let n = data.len();
    let mut off = 0usize;
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let tw = &twiddles[off..off + half];
        let mut base = 0usize;
        while base < n {
            let (lo, hi) = data[base..base + len].split_at_mut(half);
            for k in 0..half {
                let u = lo[k];
                let v = hi[k] * tw[k];
                lo[k] = u + v;
                hi[k] = u - v;
            }
            base += len;
        }
        off += half;
        len <<= 1;
    }
}

/// One radix-2 butterfly across two disjoint rows of a strided field with
/// a shared twiddle (`v = w·hi[i]; hi[i] = lo[i] − v; lo[i] += v`). Used
/// by the batched strided FFT execute path, where the batch axis is
/// contiguous in memory.
#[inline]
pub(crate) fn cbutterfly_rows(lo: &mut [Complex], hi: &mut [Complex], w: Complex) {
    debug_assert_eq!(lo.len(), hi.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::cbutterfly_rows(lo, hi, w) };
        return;
    }
    for (l, h) in lo.iter_mut().zip(hi.iter_mut()) {
        let v = *h * w;
        let u = *l;
        *l = u + v;
        *h = u - v;
    }
}

/// `dst[i] = w·src[i]` with a single constant complex factor (Bluestein
/// chirp/kernel row application).
#[inline]
pub(crate) fn cmul_rows(dst: &mut [Complex], src: &[Complex], w: Complex) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime; the two
        // slices are distinct borrows, hence non-overlapping.
        unsafe { avx2::cmul_rows(dst.as_mut_ptr(), src.as_ptr(), dst.len(), w) };
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = *s * w;
    }
}

/// In-place `row[i] ← w·row[i]` with one constant complex factor.
#[inline]
pub(crate) fn cmul_row_inplace(row: &mut [Complex], w: Complex) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime; src == dst
        // is full (not partial) overlap, which the kernel's load-compute-
        // store per chunk handles.
        unsafe { avx2::cmul_rows(row.as_mut_ptr(), row.as_ptr(), row.len(), w) };
        return;
    }
    for z in row.iter_mut() {
        *z *= w;
    }
}

/// `v[i] ← conj(v[i])·s` — the conjugate-and-scale passes bracketing an
/// inverse FFT run through the forward butterflies (`s = 1` for the
/// prologue conjugation).
#[inline]
pub(crate) fn cconj_scale(v: &mut [Complex], s: f64) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::cconj_scale(v, s) };
        return;
    }
    for z in v.iter_mut() {
        *z = z.conj().scale(s);
    }
}

// ----------------------------------------------------------------------
// Vector transcendentals (MoM panel-quadrature tiles)
// ----------------------------------------------------------------------

/// In-place `asinh` over a slice. SIMD path is a four-lane ln/artanh
/// evaluation (~2 ulp); scalar path is `f64::asinh`.
#[inline]
pub fn asinh_slice(v: &mut [f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::asinh_slice(v) };
        return;
    }
    for x in v.iter_mut() {
        *x = x.asinh();
    }
}

/// In-place `atan` over a slice. SIMD path is a four-lane Cephes-style
/// rational evaluation (~1 ulp); scalar path is `f64::atan`.
#[inline]
pub fn atan_slice(v: &mut [f64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 + FMA at runtime.
        unsafe { avx2::atan_slice(v) };
        return;
    }
    for x in v.iter_mut() {
        *x = x.atan();
    }
}
