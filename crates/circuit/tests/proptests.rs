//! Property-based tests on the circuit substrate: conservation laws and
//! linear-circuit theorems that must hold for any parameter values.

use proptest::prelude::*;
use rfsim_circuit::dae::{Dae, TwoTime};
use rfsim_circuit::prelude::*;
use rfsim_circuit::Circuit;
use rfsim_numerics::sparse::Triplets;

fn r_value() -> impl Strategy<Value = f64> {
    (1.0f64..1e5).prop_map(|x| x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Voltage divider obeys the division formula for any resistor pair.
    #[test]
    fn divider_formula(r1 in r_value(), r2 in r_value(), v in -10.0f64..10.0) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, v));
        ckt.add(Resistor::new("R1", a, b, r1));
        ckt.add(Resistor::new("R2", b, Circuit::GROUND, r2));
        let dae = ckt.into_dae().expect("netlist");
        let op = dc_operating_point(&dae, &DcOptions::default()).expect("dc");
        let expect = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(b) - expect).abs() < 1e-9 * (1.0 + expect.abs()));
    }

    /// Superposition: response to two DC sources equals the sum of the
    /// responses to each alone (linear resistive network).
    #[test]
    fn superposition_holds(v1 in -5.0f64..5.0, v2 in -5.0f64..5.0,
                           r1 in r_value(), r2 in r_value(), r3 in r_value()) {
        let build = |va: f64, vb: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            let m = ckt.node("m");
            ckt.add(VSource::dc("VA", a, Circuit::GROUND, va));
            ckt.add(VSource::dc("VB", b, Circuit::GROUND, vb));
            ckt.add(Resistor::new("R1", a, m, r1));
            ckt.add(Resistor::new("R2", b, m, r2));
            ckt.add(Resistor::new("R3", m, Circuit::GROUND, r3));
            let dae = ckt.into_dae().expect("netlist");
            let op = dc_operating_point(&dae, &DcOptions::default()).expect("dc");
            op.voltage(m)
        };
        let both = build(v1, v2);
        let first = build(v1, 0.0);
        let second = build(0.0, v2);
        prop_assert!((both - first - second).abs() < 1e-8 * (1.0 + both.abs()));
    }

    /// KCL: at the DC solution, f(x) − b sums to ~0 per node equation.
    #[test]
    fn kcl_residual_vanishes(r in r_value(), is in 1e-16f64..1e-12, v in 0.5f64..5.0) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, v));
        ckt.add(Resistor::new("R1", a, d, r));
        ckt.add(Diode::new("D1", d, Circuit::GROUND, is));
        let dae = ckt.into_dae().expect("netlist");
        let op = dc_operating_point(&dae, &DcOptions::default()).expect("dc");
        let n = dae.dim();
        let mut f = vec![0.0; n];
        let mut q = vec![0.0; n];
        let mut g = Triplets::new(n, n);
        let mut c = Triplets::new(n, n);
        dae.eval(&op.x, &mut f, &mut q, &mut g, &mut c);
        let mut b = vec![0.0; n];
        dae.eval_b(TwoTime::uni(0.0), &mut b);
        for i in 0..n {
            prop_assert!((f[i] - b[i]).abs() < 1e-6, "residual {} at row {i}", f[i] - b[i]);
        }
    }

    /// Reciprocity of a resistive two-port: transfer resistance is
    /// symmetric (drive node 1, read node 2 ↔ drive 2, read 1).
    #[test]
    fn reciprocity(r1 in r_value(), r2 in r_value(), r3 in r_value(),
                   r4 in r_value(), r5 in r_value()) {
        let build = |drive_first: bool| {
            let mut ckt = Circuit::new();
            let n1 = ckt.node("n1");
            let n2 = ckt.node("n2");
            let m = ckt.node("m");
            ckt.add(Resistor::new("R1", n1, m, r1));
            ckt.add(Resistor::new("R2", m, n2, r2));
            ckt.add(Resistor::new("R3", m, Circuit::GROUND, r3));
            ckt.add(Resistor::new("R4", n1, Circuit::GROUND, r4));
            ckt.add(Resistor::new("R5", n2, Circuit::GROUND, r5));
            let (src, obs) = if drive_first { (n1, n2) } else { (n2, n1) };
            ckt.add(ISource::dc("I1", Circuit::GROUND, src, 1e-3));
            let dae = ckt.into_dae().expect("netlist");
            let op = dc_operating_point(&dae, &DcOptions::default()).expect("dc");
            op.voltage(obs)
        };
        let fwd = build(true);
        let rev = build(false);
        prop_assert!((fwd - rev).abs() < 1e-9 * (1.0 + fwd.abs()), "{fwd} vs {rev}");
    }

    /// Transient of a source-free RC decays monotonically and never goes
    /// negative from a positive initial state (passivity).
    #[test]
    fn rc_decay_is_monotone(r in 10.0f64..1e4, c in 1e-12f64..1e-9) {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        // Charge via a pulse that ends at t = tau/10.
        let tau = r * c;
        ckt.add(ISource::new(
            "I1",
            Circuit::GROUND,
            n,
            Stimulus::Pulse {
                low: 0.0,
                high: 1e-3,
                delay: 0.0,
                rise: tau / 100.0,
                fall: tau / 100.0,
                width: tau / 10.0,
                period: 1e9,
                scale: TimeScale::Slow,
            },
        ));
        ckt.add(Resistor::new("R1", n, Circuit::GROUND, r));
        ckt.add(Capacitor::new("C1", n, Circuit::GROUND, c));
        let dae = ckt.into_dae().expect("netlist");
        let res = transient(
            &dae,
            0.0,
            3.0 * tau,
            &TranOptions { dt: tau / 50.0, start_from_dc: false, ..Default::default() },
        )
        .expect("transient");
        let v = res.unknown(0);
        // After the pulse ends, the waveform decays monotonically.
        let start = v.len() / 3;
        for w in v[start..].windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "non-monotone decay: {} -> {}", w[0], w[1]);
        }
        prop_assert!(v.iter().all(|&x| x >= -1e-9));
    }

    /// Engineering-notation parser roundtrip for generated values.
    #[test]
    fn parser_value_roundtrip(mant in 0.1f64..999.0, suffix in 0usize..7) {
        let (sfx, mult) = [("", 1.0), ("k", 1e3), ("meg", 1e6), ("m", 1e-3),
                          ("u", 1e-6), ("n", 1e-9), ("p", 1e-12)][suffix];
        let text = format!("{mant}{sfx}");
        let parsed = rfsim_circuit::parser::parse_value(&text).expect("parse");
        let expect = mant * mult;
        prop_assert!((parsed - expect).abs() < 1e-9 * expect.abs());
    }

    /// The Maxwell-style MNA conductance matrix at any operating point has
    /// zero column sums over node equations for floating (ground-free)
    /// resistive elements — charge conservation in stamp form.
    #[test]
    fn stamp_column_sums(r1 in r_value(), r2 in r_value()) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c_node = ckt.node("c");
        ckt.add(Resistor::new("R1", a, b, r1));
        ckt.add(Resistor::new("R2", b, c_node, r2));
        // Keep the matrix nonsingular for the builder but do not ground
        // the resistive chain itself.
        ckt.add(ISource::dc("I1", Circuit::GROUND, a, 0.0));
        let dae = ckt.into_dae().expect("netlist");
        let (g, _) = dae.linearize(&vec![0.0; dae.dim()]);
        // Each column of the floating-resistor network sums to zero over
        // the three node rows.
        for j in 0..3 {
            let col_sum: f64 = (0..3).map(|i| g.get(i, j)).sum();
            prop_assert!(col_sum.abs() < 1e-12, "column {j} sums to {col_sum}");
        }
    }
}
