//! Property tests for the log-bucketed quantile histogram (ISSUE 8):
//! quantile estimates stay within the bucket-width relative-error bound
//! of the exact sorted-sample quantiles, merge is exact on bucket
//! counts (and associative), and snapshot deltas recover the interval
//! distribution exactly.

use proptest::prelude::*;
use rfsim_telemetry::{Histogram, SUB_BUCKETS};

/// Positive samples spanning twelve decades, the range of everything
/// recorded in practice (iteration counts, milliseconds, ratios).
fn samples(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-6.0f64..6.0, n)
        .prop_map(|exps| exps.into_iter().map(|e| 10f64.powf(e)).collect())
}

fn record_all(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact nearest-rank quantile of a sorted sample set — the definition
/// `Histogram::quantile` estimates.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The estimate and the exact nearest-rank sample share a bucket,
    /// so their ratio is bounded by the bucket width 2^(1/SUB_BUCKETS).
    #[test]
    fn quantile_estimates_have_bounded_relative_error(
        values in samples(1..200),
        q in 0.0f64..1.0,
    ) {
        let h = record_all(&values);
        let mut sorted = values;
        sorted.sort_by(|a, b| a.total_cmp(b));
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile(q);
        let bound = (1.0f64 / SUB_BUCKETS as f64).exp2().ln() + 1e-9;
        prop_assert!(
            (est / exact).ln().abs() <= bound,
            "q={q}: estimate {est} vs exact {exact} (bound {bound})"
        );
    }

    /// Merging is associative and equals recording everything into one
    /// histogram: bucket counts, count, min, and max exactly; the sum
    /// to floating-point roundoff.
    #[test]
    fn merge_is_associative_and_matches_single_recording(
        a in samples(0..50),
        b in samples(0..50),
        c in samples(0..50),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(left.min, right.min);
        prop_assert_eq!(left.max, right.max);
        prop_assert!(left.nonzero_buckets().eq(right.nonzero_buckets()));
        prop_assert!((left.sum - right.sum).abs() <= 1e-9 * left.sum.abs().max(1.0));

        let all: Vec<f64> = a.into_iter().chain(b).chain(c).collect();
        let whole = record_all(&all);
        prop_assert_eq!(left.count, whole.count);
        prop_assert!(left.nonzero_buckets().eq(whole.nonzero_buckets()));
    }

    /// A snapshot delta reproduces the bucket counts of exactly the
    /// observations recorded after the snapshot.
    #[test]
    fn delta_is_exact_on_buckets(
        before in samples(0..50),
        after in samples(0..50),
    ) {
        let earlier = record_all(&before);
        let mut h = earlier.clone();
        for &v in &after {
            h.record(v);
        }
        let d = h.delta(&earlier);
        let expected = record_all(&after);
        prop_assert_eq!(d.count, expected.count);
        prop_assert!(d.nonzero_buckets().eq(expected.nonzero_buckets()));
    }

    /// JSON round-trip is lossless for the bucketed shape.
    #[test]
    fn json_round_trip_is_lossless(values in samples(0..80)) {
        let h = record_all(&values);
        let back = Histogram::from_json(&h.to_json()).unwrap();
        prop_assert_eq!(back, h);
    }
}
