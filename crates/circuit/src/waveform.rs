//! Source stimuli: DC, sinusoid, square/pulse, piecewise-linear, and
//! multi-tone waveforms, each tagged with the [`TimeScale`] it lives on so
//! the MPDE engines can evaluate `b̂(t₁, t₂)` (paper, Section 2.2).

use crate::dae::TwoTime;

/// Which MPDE time axis a stimulus varies along.
///
/// Univariate analyses ignore the distinction (both axes carry the same
/// time); the multi-rate engines route slow stimuli to `t₁` and fast ones
/// to `t₂`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeScale {
    /// Baseband / modulation / envelope time scale (`t₁`).
    #[default]
    Slow,
    /// Carrier / LO / switching time scale (`t₂`).
    Fast,
}

/// A single sinusoidal tone `amp·sin(2πft + φ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tone {
    /// Peak amplitude.
    pub amplitude: f64,
    /// Frequency in Hz.
    pub freq: f64,
    /// Phase in radians.
    pub phase: f64,
}

impl Tone {
    /// Creates a zero-phase tone.
    pub fn new(amplitude: f64, freq: f64) -> Self {
        Tone { amplitude, freq, phase: 0.0 }
    }

    /// Evaluates the tone at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        self.amplitude * (2.0 * std::f64::consts::PI * self.freq * t + self.phase).sin()
    }
}

/// A time-domain stimulus waveform.
#[derive(Debug, Clone, PartialEq)]
pub enum Stimulus {
    /// Constant value.
    Dc(f64),
    /// `offset + amp·sin(2πft + φ)` on the given time scale.
    Sine {
        /// DC offset.
        offset: f64,
        /// Tone parameters.
        tone: Tone,
        /// Time axis the sine varies along.
        scale: TimeScale,
    },
    /// Ideal square wave alternating ±`amplitude` with period `period`
    /// and 50% duty (first half-period positive), plus `offset`.
    Square {
        /// DC offset.
        offset: f64,
        /// Peak amplitude.
        amplitude: f64,
        /// Period in seconds.
        period: f64,
        /// Time axis.
        scale: TimeScale,
    },
    /// Trapezoidal pulse train (SPICE PULSE): low, high, delay, rise, fall,
    /// width, period.
    Pulse {
        /// Level before the pulse and after fall.
        low: f64,
        /// Plateau level.
        high: f64,
        /// Initial delay (s).
        delay: f64,
        /// Rise time (s).
        rise: f64,
        /// Fall time (s).
        fall: f64,
        /// Plateau width (s).
        width: f64,
        /// Repetition period (s).
        period: f64,
        /// Time axis.
        scale: TimeScale,
    },
    /// Piecewise-linear `(t, v)` samples; clamps outside the range.
    Pwl {
        /// Sorted sample points.
        points: Vec<(f64, f64)>,
        /// Time axis.
        scale: TimeScale,
    },
    /// Sum of tones, each on its own time scale, plus an offset — the
    /// two-tone / multi-tone drive of HB and MPDE studies.
    MultiTone {
        /// DC offset.
        offset: f64,
        /// The tones and their time scales.
        tones: Vec<(Tone, TimeScale)>,
    },
}

impl Stimulus {
    /// Convenience: a sine on the slow axis.
    pub fn sine(offset: f64, amplitude: f64, freq: f64) -> Self {
        Stimulus::Sine { offset, tone: Tone::new(amplitude, freq), scale: TimeScale::Slow }
    }

    /// Convenience: a sine on the fast axis.
    pub fn sine_fast(offset: f64, amplitude: f64, freq: f64) -> Self {
        Stimulus::Sine { offset, tone: Tone::new(amplitude, freq), scale: TimeScale::Fast }
    }

    /// Convenience: a ±`amplitude` square wave of frequency `freq` on the
    /// fast axis (the classic LO drive).
    pub fn square_fast(amplitude: f64, freq: f64) -> Self {
        Stimulus::Square { offset: 0.0, amplitude, period: 1.0 / freq, scale: TimeScale::Fast }
    }

    /// Evaluates at a (possibly bivariate) time.
    pub fn eval(&self, t: TwoTime) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Sine { offset, tone, scale } => offset + tone.eval(t.select(*scale)),
            Stimulus::Square { offset, amplitude, period, scale } => {
                let tt = t.select(*scale).rem_euclid(*period);
                if tt < period / 2.0 {
                    offset + amplitude
                } else {
                    offset - amplitude
                }
            }
            Stimulus::Pulse { low, high, delay, rise, fall, width, period, scale } => {
                let tt = t.select(*scale);
                if tt < *delay {
                    return *low;
                }
                let tp = (tt - delay).rem_euclid(*period);
                if tp < *rise {
                    low + (high - low) * tp / rise.max(1e-300)
                } else if tp < rise + width {
                    *high
                } else if tp < rise + width + fall {
                    high - (high - low) * (tp - rise - width) / fall.max(1e-300)
                } else {
                    *low
                }
            }
            Stimulus::Pwl { points, scale } => {
                let tt = t.select(*scale);
                if points.is_empty() {
                    return 0.0;
                }
                if tt <= points[0].0 {
                    return points[0].1;
                }
                if tt >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let i = points.partition_point(|&(pt, _)| pt <= tt) - 1;
                let (t0, v0) = points[i];
                let (t1, v1) = points[i + 1];
                v0 + (v1 - v0) * (tt - t0) / (t1 - t0)
            }
            Stimulus::MultiTone { offset, tones } => {
                offset + tones.iter().map(|(tone, sc)| tone.eval(t.select(*sc))).sum::<f64>()
            }
        }
    }

    /// Evaluates at a univariate time.
    pub fn eval_uni(&self, t: f64) -> f64 {
        self.eval(TwoTime::uni(t))
    }

    /// The DC (time-average-at-zero) value used as the starting excitation
    /// for operating-point analysis: all AC content evaluated at `t = 0`
    /// is suppressed, offsets retained.
    pub fn dc_value(&self) -> f64 {
        match self {
            Stimulus::Dc(v) => *v,
            Stimulus::Sine { offset, .. } => *offset,
            Stimulus::Square { offset, .. } => *offset,
            Stimulus::Pulse { low, .. } => *low,
            Stimulus::Pwl { points, .. } => points.first().map_or(0.0, |p| p.1),
            Stimulus::MultiTone { offset, .. } => *offset,
        }
    }

    /// Fundamental frequencies present, paired with their time scales.
    /// (Used by HB/MPDE to choose analysis frequencies.)
    pub fn frequencies(&self) -> Vec<(f64, TimeScale)> {
        match self {
            Stimulus::Dc(_) => Vec::new(),
            Stimulus::Sine { tone, scale, .. } => vec![(tone.freq, *scale)],
            Stimulus::Square { period, scale, .. } => vec![(1.0 / period, *scale)],
            Stimulus::Pulse { period, scale, .. } => vec![(1.0 / period, *scale)],
            Stimulus::Pwl { .. } => Vec::new(),
            Stimulus::MultiTone { tones, .. } => tones.iter().map(|(t, s)| (t.freq, *s)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = Stimulus::Dc(3.0);
        assert_eq!(s.eval_uni(0.0), 3.0);
        assert_eq!(s.eval_uni(1e9), 3.0);
        assert_eq!(s.dc_value(), 3.0);
    }

    #[test]
    fn sine_peaks_at_quarter_period() {
        let s = Stimulus::sine(1.0, 2.0, 10.0);
        assert!((s.eval_uni(0.025) - 3.0).abs() < 1e-12);
        assert!((s.eval_uni(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.dc_value(), 1.0);
    }

    #[test]
    fn square_alternates() {
        let s = Stimulus::square_fast(1.0, 100.0);
        assert_eq!(s.eval_uni(0.001), 1.0);
        assert_eq!(s.eval_uni(0.006), -1.0);
        // Periodicity.
        assert_eq!(s.eval_uni(0.001), s.eval_uni(0.011));
    }

    #[test]
    fn pulse_shape() {
        let s = Stimulus::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
            scale: TimeScale::Slow,
        };
        assert_eq!(s.eval_uni(0.5), 0.0); // before delay
        assert!((s.eval_uni(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(s.eval_uni(1.2), 1.0); // plateau
        assert!((s.eval_uni(1.45) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(s.eval_uni(1.9), 0.0); // off
        assert_eq!(s.eval_uni(2.2), 1.0); // next period plateau
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let s = Stimulus::Pwl {
            points: vec![(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)],
            scale: TimeScale::Slow,
        };
        assert_eq!(s.eval_uni(-1.0), 0.0);
        assert!((s.eval_uni(0.5) - 1.0).abs() < 1e-12);
        assert!((s.eval_uni(1.5) - 1.0).abs() < 1e-12);
        assert_eq!(s.eval_uni(5.0), 0.0);
    }

    #[test]
    fn multitone_separates_scales() {
        let s = Stimulus::MultiTone {
            offset: 0.0,
            tones: vec![
                (Tone::new(1.0, 1.0), TimeScale::Slow),
                (Tone::new(0.5, 100.0), TimeScale::Fast),
            ],
        };
        // At t1 = 0.25 (slow peak), t2 = 0: only slow contributes.
        let v = s.eval(TwoTime::new(0.25, 0.0));
        assert!((v - 1.0).abs() < 1e-12);
        // Frequencies advertised with their scales.
        let fs = s.frequencies();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0], (1.0, TimeScale::Slow));
        assert_eq!(fs[1], (100.0, TimeScale::Fast));
    }
}
