//! Eigenvalue computation for real matrices: Hessenberg reduction followed
//! by the shifted QR iteration, plus inverse iteration for selected
//! eigenvectors.
//!
//! Consumers in the toolkit:
//! - reduced-order modeling: poles of the reduced system are eigenvalues of
//!   the small reduced matrix (PVL tridiagonal / Arnoldi Hessenberg);
//! - phase noise: Floquet multipliers are eigenvalues of the monodromy
//!   matrix, and the perturbation projection vector is the left eigenvector
//!   for the multiplier 1.

use crate::dense::Mat;
use crate::Complex;
use crate::{Error, Result};

/// Reduces a square real matrix to upper Hessenberg form by Householder
/// similarity transforms, returning `H` (same eigenvalues as the input).
pub fn hessenberg(a: &Mat<f64>) -> Mat<f64> {
    let n = a.rows();
    assert!(a.is_square(), "hessenberg: matrix must be square");
    let mut h = a.clone();
    for k in 0..n.saturating_sub(2) {
        // Householder vector zeroing h[k+2.., k].
        let mut alpha = 0.0;
        for i in k + 1..n {
            alpha += h[(i, k)] * h[(i, k)];
        }
        alpha = alpha.sqrt();
        if alpha == 0.0 {
            continue;
        }
        if h[(k + 1, k)] > 0.0 {
            alpha = -alpha;
        }
        let mut v = vec![0.0; n];
        v[k + 1] = h[(k + 1, k)] - alpha;
        for i in k + 2..n {
            v[i] = h[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        // H ← (I − 2vvᵀ/vᵀv) H (I − 2vvᵀ/vᵀv)
        // Left multiply.
        for j in 0..n {
            let mut dot = 0.0;
            for i in k + 1..n {
                dot += v[i] * h[(i, j)];
            }
            let f = 2.0 * dot / vnorm2;
            for i in k + 1..n {
                h[(i, j)] -= f * v[i];
            }
        }
        // Right multiply.
        for i in 0..n {
            let mut dot = 0.0;
            for j in k + 1..n {
                dot += h[(i, j)] * v[j];
            }
            let f = 2.0 * dot / vnorm2;
            for j in k + 1..n {
                h[(i, j)] -= f * v[j];
            }
        }
    }
    h
}

/// Computes all eigenvalues of a square real matrix via Hessenberg reduction
/// and the (Wilkinson-shifted) QR iteration with deflation.
///
/// Complex conjugate pairs are returned as such; ordering is by decreasing
/// modulus.
///
/// # Errors
/// Returns [`Error::NoConvergence`] if the QR iteration stalls (pathological
/// inputs) and [`Error::InvalidArgument`] for non-square matrices.
pub fn eigenvalues(a: &Mat<f64>) -> Result<Vec<Complex>> {
    if !a.is_square() {
        return Err(Error::InvalidArgument("eigenvalues: matrix must be square"));
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let mut h = hessenberg(a);
    let mut eigs: Vec<Complex> = Vec::with_capacity(n);
    let mut hi = n; // active block is rows/cols 0..hi
    let max_total_iters = 100 * n.max(1);
    let mut iters_on_block = 0usize;
    let mut total = 0usize;
    while hi > 0 {
        total += 1;
        if total > max_total_iters {
            return Err(Error::NoConvergence {
                iterations: total,
                residual: f64::NAN,
                residual_tail: Vec::new(),
            });
        }
        // Check for small subdiagonal to deflate.
        let mut lo = hi - 1;
        while lo > 0 {
            let s = h[(lo - 1, lo - 1)].abs() + h[(lo, lo)].abs();
            let s = if s == 0.0 { 1.0 } else { s };
            if h[(lo, lo - 1)].abs() < 1e-14 * s {
                h[(lo, lo - 1)] = 0.0;
                break;
            }
            lo -= 1;
        }
        if lo == hi - 1 {
            // 1x1 block deflated.
            eigs.push(Complex::from_re(h[(hi - 1, hi - 1)]));
            hi -= 1;
            iters_on_block = 0;
            continue;
        }
        if lo == hi - 2 {
            // 2x2 block: solve quadratic directly.
            let a11 = h[(hi - 2, hi - 2)];
            let a12 = h[(hi - 2, hi - 1)];
            let a21 = h[(hi - 1, hi - 2)];
            let a22 = h[(hi - 1, hi - 1)];
            let tr = a11 + a22;
            let det = a11 * a22 - a12 * a21;
            let disc = tr * tr / 4.0 - det;
            if disc >= 0.0 {
                let rt = disc.sqrt();
                eigs.push(Complex::from_re(tr / 2.0 + rt));
                eigs.push(Complex::from_re(tr / 2.0 - rt));
            } else {
                let rt = (-disc).sqrt();
                eigs.push(Complex::new(tr / 2.0, rt));
                eigs.push(Complex::new(tr / 2.0, -rt));
            }
            hi -= 2;
            iters_on_block = 0;
            continue;
        }
        iters_on_block += 1;
        // Wilkinson shift from the trailing 2x2; occasionally use an
        // exceptional shift to break symmetry-induced cycling.
        let shift = if iters_on_block % 11 == 10 {
            h[(hi - 1, hi - 1)].abs() + h[(hi - 1, hi - 2)].abs()
        } else {
            let a11 = h[(hi - 2, hi - 2)];
            let a12 = h[(hi - 2, hi - 1)];
            let a21 = h[(hi - 1, hi - 2)];
            let a22 = h[(hi - 1, hi - 1)];
            let tr = a11 + a22;
            let det = a11 * a22 - a12 * a21;
            let disc = tr * tr / 4.0 - det;
            if disc >= 0.0 {
                let r1 = tr / 2.0 + disc.sqrt();
                let r2 = tr / 2.0 - disc.sqrt();
                if (r1 - a22).abs() < (r2 - a22).abs() {
                    r1
                } else {
                    r2
                }
            } else {
                // Complex pair: use real part (a simple, stable choice that
                // still converges for the conjugate-pair case via the 2x2
                // deflation above).
                tr / 2.0
            }
        };
        // Single-shift QR step on the active block via Givens rotations.
        qr_step(&mut h, lo, hi, shift);
    }
    eigs.sort_by(|x, y| y.abs().partial_cmp(&x.abs()).expect("finite eigenvalues"));
    Ok(eigs)
}

/// One explicit single-shift QR step restricted to rows/cols `lo..hi`:
/// `H_s = H − σI = Q·R`, then `H ← R·Q + σI`. The coupling entries outside
/// the active block are not updated; they do not affect the eigenvalues of
/// the remaining active blocks.
fn qr_step(h: &mut Mat<f64>, lo: usize, hi: usize, shift: f64) {
    for i in lo..hi {
        h[(i, i)] -= shift;
    }
    // Left-multiply: Givens rotations triangularizing the shifted block.
    let mut cs = Vec::with_capacity(hi - lo);
    for k in lo..hi - 1 {
        let x = h[(k, k)];
        let z = h[(k + 1, k)];
        let r = x.hypot(z);
        let (c, s) = if r == 0.0 { (1.0, 0.0) } else { (x / r, z / r) };
        cs.push((c, s));
        for j in k..hi {
            let hkj = h[(k, j)];
            let hk1j = h[(k + 1, j)];
            h[(k, j)] = c * hkj + s * hk1j;
            h[(k + 1, j)] = -s * hkj + c * hk1j;
        }
    }
    // Right-multiply by Qᵀ: H ← R·Q (re-creates the Hessenberg subdiagonal).
    for (idx, &(c, s)) in cs.iter().enumerate() {
        let k = lo + idx;
        for i in lo..=(k + 1).min(hi - 1) {
            let hik = h[(i, k)];
            let hik1 = h[(i, k + 1)];
            h[(i, k)] = c * hik + s * hik1;
            h[(i, k + 1)] = -s * hik + c * hik1;
        }
    }
    for i in lo..hi {
        h[(i, i)] += shift;
    }
}

/// Computes a right eigenvector of `a` for an (approximately known) real
/// eigenvalue `lambda` by shifted inverse iteration. The result has unit
/// 2-norm.
///
/// # Errors
/// Returns [`Error::NoConvergence`] if inverse iteration fails to settle.
pub fn eigenvector_for(a: &Mat<f64>, lambda: f64) -> Result<Vec<f64>> {
    inverse_iteration(a, lambda, false)
}

/// Computes a **left** eigenvector (`vᵀA = λvᵀ`, i.e. a right eigenvector of
/// `Aᵀ`) for a real eigenvalue by shifted inverse iteration. Used to compute
/// the perturbation projection vector of oscillator phase-noise analysis.
///
/// # Errors
/// Returns [`Error::NoConvergence`] if inverse iteration fails to settle.
pub fn left_eigenvector_for(a: &Mat<f64>, lambda: f64) -> Result<Vec<f64>> {
    inverse_iteration(a, lambda, true)
}

fn inverse_iteration(a: &Mat<f64>, lambda: f64, transpose: bool) -> Result<Vec<f64>> {
    let n = a.rows();
    // Perturb the shift slightly so A - λI is invertible even for exact λ.
    let scale = a.norm_max().max(1.0);
    let mut shifted = if transpose { a.transpose() } else { a.clone() };
    for i in 0..n {
        shifted[(i, i)] -= lambda + 1e-10 * scale;
    }
    let lu = match shifted.lu() {
        Ok(lu) => lu,
        Err(_) => {
            // Try a slightly larger perturbation.
            for i in 0..n {
                shifted[(i, i)] -= 1e-7 * scale;
            }
            shifted.lu()?
        }
    };
    let mut v = vec![0.0; n];
    // Deterministic non-degenerate start vector.
    for (i, vi) in v.iter_mut().enumerate() {
        *vi = 1.0 + (i as f64) * 0.37;
    }
    let mut last_resid = f64::INFINITY;
    for it in 0..200 {
        let mut w = lu.solve(&v)?;
        let nrm = crate::norm2(&w);
        if !nrm.is_finite() || nrm == 0.0 {
            return Err(Error::Breakdown("inverse iteration: zero/overflow iterate"));
        }
        for x in &mut w {
            *x /= nrm;
        }
        // Residual ‖(A−λI)w‖ against the *unperturbed* matrix.
        let base = if transpose { a.transpose() } else { a.clone() };
        let mut r = base.matvec(&w);
        for i in 0..n {
            r[i] -= lambda * w[i];
        }
        last_resid = crate::norm2(&r);
        v = w;
        if last_resid < 1e-10 * scale {
            return Ok(v);
        }
        if it > 5 && last_resid < 1e-8 * scale {
            return Ok(v);
        }
    }
    Err(Error::NoConvergence { iterations: 200, residual: last_resid, residual_tail: Vec::new() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_re(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        v
    }

    #[test]
    fn hessenberg_preserves_trace_and_shape() {
        let a = Mat::from_fn(5, 5, |i, j| ((i * 3 + j * 7) % 11) as f64 - 5.0);
        let h = hessenberg(&a);
        // Hessenberg: zero below first subdiagonal.
        for i in 0..5usize {
            for j in 0..i.saturating_sub(1) {
                assert!(h[(i, j)].abs() < 1e-12, "h[{i},{j}] = {}", h[(i, j)]);
            }
        }
        let tr_a: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let tr_h: f64 = (0..5).map(|i| h[(i, i)]).sum();
        assert!((tr_a - tr_h).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_of_diagonal() {
        let a = Mat::from_diag(&[1.0, -2.0, 3.0]);
        let e = sorted_re(eigenvalues(&a).unwrap());
        assert!((e[0].re + 2.0).abs() < 1e-10);
        assert!((e[1].re - 1.0).abs() < 1e-10);
        assert!((e[2].re - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigenvalues_of_rotation_are_complex_pair() {
        // 2D rotation by θ has eigenvalues e^{±jθ}.
        let th = 0.5f64;
        let a = Mat::from_rows(&[&[th.cos(), -th.sin()], &[th.sin(), th.cos()]]);
        let e = eigenvalues(&a).unwrap();
        assert_eq!(e.len(), 2);
        for z in &e {
            assert!((z.abs() - 1.0).abs() < 1e-10);
            assert!((z.arg().abs() - th).abs() < 1e-10);
        }
    }

    #[test]
    fn eigenvalues_of_general_matrix() {
        // Companion-style matrix with known eigenvalues 1, 2, 3.
        // p(x) = (x-1)(x-2)(x-3) = x³ -6x² +11x -6
        let a = Mat::from_rows(&[&[6.0, -11.0, 6.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let e = sorted_re(eigenvalues(&a).unwrap());
        assert!((e[0].re - 1.0).abs() < 1e-8, "{e:?}");
        assert!((e[1].re - 2.0).abs() < 1e-8);
        assert!((e[2].re - 3.0).abs() < 1e-8);
        for z in &e {
            assert!(z.im.abs() < 1e-8);
        }
    }

    #[test]
    fn eigenvalues_satisfy_characteristic_equation() {
        // Random-ish 8×8: every computed eigenvalue must make A − λI
        // singular, checked through the complex determinant.
        let n = 8;
        let a = Mat::from_fn(n, n, |i, j| (((i * 31 + j * 17 + 7) % 23) as f64 - 11.0) / 5.0);
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), n);
        // Scale reference: det of A itself.
        for lam in &eigs {
            let shifted = Mat::from_fn(n, n, |i, j| {
                let base = crate::Complex::from_re(a[(i, j)]);
                if i == j {
                    base - *lam
                } else {
                    base
                }
            });
            let d = shifted.det();
            assert!(d.abs() < 1e-6 * a.norm_fro().powi(n as i32), "det(A − {lam}I) = {d}");
        }
        // Trace equals the eigenvalue sum (1st Newton identity).
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: crate::Complex = eigs.iter().copied().sum();
        assert!((sum.re - tr).abs() < 1e-8 && sum.im.abs() < 1e-8);
    }

    #[test]
    fn right_eigenvector() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let v = eigenvector_for(&a, 3.0).unwrap();
        let av = a.matvec(&v);
        for i in 0..2 {
            assert!((av[i] - 3.0 * v[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn left_eigenvector() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let v = left_eigenvector_for(&a, 2.0).unwrap();
        let atv = a.transpose().matvec(&v);
        for i in 0..2 {
            assert!((atv[i] - 2.0 * v[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn monodromy_style_unit_multiplier() {
        // A matrix constructed to have eigenvalue exactly 1 (like a
        // monodromy matrix of an orbitally stable oscillator) plus a
        // contracting direction.
        let a = Mat::from_rows(&[&[1.0, 0.7], &[0.0, 0.4]]);
        let e = eigenvalues(&a).unwrap();
        assert!(e.iter().any(|z| (z.re - 1.0).abs() < 1e-10 && z.im.abs() < 1e-12));
        let v = left_eigenvector_for(&a, 1.0).unwrap();
        let atv = a.transpose().matvec(&v);
        for i in 0..2 {
            assert!((atv[i] - v[i]).abs() < 1e-7);
        }
    }
}
