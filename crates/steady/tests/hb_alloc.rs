//! Allocation regression test for the HB hot path: after warmup, ten
//! consecutive Jacobian matvecs and preconditioner applies must perform
//! zero heap allocations.
//!
//! This lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`. Telemetry stays inactive (recording
//! counters allocates) and the thread count is pinned to 1 so the
//! serial, workspace-backed code paths run — the parallel path spawns
//! scoped threads, which allocate by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rfsim_circuit::prelude::*;
use rfsim_circuit::Circuit;
use rfsim_steady::{HbHotPath, SpectralGrid};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Diode clipper: a stiff nonlinear circuit exercising both the spectral
/// differentiation (capacitor) and resistive coupling in the Jacobian.
fn clipper() -> (rfsim_circuit::dae::CircuitDae, SpectralGrid) {
    let f0 = 1e6;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
    ckt.add(Resistor::new("R1", a, out, 1e3));
    ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-9));
    let dae = ckt.into_dae().unwrap();
    let grid = SpectralGrid::single_tone(f0, 15).unwrap();
    (dae, grid)
}

#[test]
fn hb_matvec_and_precond_are_alloc_free_after_warmup() {
    rfsim_parallel::set_thread_count(1);
    let (dae, grid) = clipper();
    let mut hot = HbHotPath::prepare(&dae, &grid).unwrap();
    let n = hot.unknowns();

    let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; n];
    let mut z = vec![0.0; n];

    // Warmup: the first rounds grow the workspace buffers to capacity.
    for _ in 0..2 {
        hot.matvec(&v, &mut y);
        hot.precond_apply(&y, &mut z).unwrap();
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        hot.matvec(&v, &mut y);
        hot.precond_apply(&y, &mut z).unwrap();
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "HB hot path made {delta} heap allocations across 10 matvec+precond rounds"
    );
}
