//! Quasi-static spiral-inductor extraction on a lossy substrate (Fig 7):
//! partial self/mutual inductances of the trace segments, series
//! resistance with skin effect, oxide capacitance and substrate loss from
//! the MoM solver, assembled into a one-port model yielding `L(f)`,
//! `Q(f)` and `S₁₁(f)`.

use crate::geom::{spiral_panels, spiral_segments, Segment};
use crate::kernel::GreenFn;
use crate::mom::{capacitance_matrix, MomProblem};
use crate::{Result, MU0};
use rfsim_numerics::Complex;

/// Geometry + material description of a planar spiral inductor.
#[derive(Debug, Clone)]
pub struct SpiralInductor {
    /// Outer dimension (m).
    pub outer: f64,
    /// Number of turns.
    pub turns: usize,
    /// Trace width (m).
    pub width: f64,
    /// Turn spacing (m).
    pub spacing: f64,
    /// Metal thickness (m).
    pub thickness: f64,
    /// Metal conductivity (S/m).
    pub sigma: f64,
    /// Oxide thickness to substrate (m).
    pub oxide: f64,
    /// Oxide relative permittivity.
    pub eps_ox: f64,
    /// Substrate resistivity (Ω·m) — the "lossy substrate" of Fig 7.
    /// Mid-1990s CMOS used heavily doped epi substrates (~0.01 Ω·cm =
    /// 1e-4 Ω·m); the default is slightly lighter doping so both the loss
    /// and the self-resonance are visible in the extracted curves.
    pub rho_sub: f64,
}

impl Default for SpiralInductor {
    fn default() -> Self {
        // A mid-1990s CMOS spiral: 3.5 turns, 200 µm outer, 10 µm wide.
        SpiralInductor {
            outer: 200e-6,
            turns: 4,
            width: 10e-6,
            spacing: 5e-6,
            thickness: 1e-6,
            sigma: 3.5e7,
            oxide: 1e-6,
            eps_ox: 3.9,
            rho_sub: 1e-3,
        }
    }
}

/// Extracted lumped model of the spiral (π-model values).
#[derive(Debug, Clone)]
pub struct SpiralModel {
    /// Series inductance (H).
    pub l_series: f64,
    /// DC series resistance (Ω).
    pub r_dc: f64,
    /// Skin-effect corner frequency (Hz).
    pub f_skin: f64,
    /// Oxide (trace-to-substrate) capacitance, per end (F).
    pub c_ox: f64,
    /// Substrate shunt resistance, per end (Ω).
    pub r_sub: f64,
    /// Number of segments used.
    pub segments: usize,
}

/// Self partial inductance of a straight rectangular-cross-section segment
/// (Rosa/Grover): `L = (μ₀l/2π)(ln(2l/(w+t)) + 0.5 + (w+t)/(3l))`.
pub fn self_inductance(seg: &Segment) -> f64 {
    let l = seg.length();
    let wt = seg.width + seg.thickness;
    MU0 * l / (2.0 * std::f64::consts::PI) * ((2.0 * l / wt).ln() + 0.5 + wt / (3.0 * l))
}

/// Mutual partial inductance between two segments by the Neumann double
/// integral with midpoint quadrature (`nq` points per segment).
pub fn mutual_inductance(a: &Segment, b: &Segment, nq: usize) -> f64 {
    let (la, lb) = (a.length(), b.length());
    let da = a.direction();
    let db = b.direction();
    let dot = da.x * db.x + da.y * db.y + da.z * db.z;
    if dot.abs() < 1e-12 {
        return 0.0; // perpendicular segments do not couple
    }
    let mut acc = 0.0;
    for i in 0..nq {
        let ta = (i as f64 + 0.5) / nq as f64;
        let pa = crate::geom::Point3::new(
            a.start.x + da.x * la * ta,
            a.start.y + da.y * la * ta,
            a.start.z + da.z * la * ta,
        );
        for j in 0..nq {
            let tb = (j as f64 + 0.5) / nq as f64;
            let pb = crate::geom::Point3::new(
                b.start.x + db.x * lb * tb,
                b.start.y + db.y * lb * tb,
                b.start.z + db.z * lb * tb,
            );
            // Regularize by the geometric mean distance of the traces.
            let r = pa.distance(&pb).max((a.width + b.width) / 4.0);
            acc += 1.0 / r;
        }
    }
    MU0 / (4.0 * std::f64::consts::PI) * dot * (la / nq as f64) * (lb / nq as f64) * acc
}

impl SpiralInductor {
    /// The trace segments of this spiral.
    pub fn segments(&self) -> Vec<Segment> {
        spiral_segments(
            self.outer,
            self.turns,
            self.width,
            self.spacing,
            self.thickness,
            self.oxide,
        )
    }

    /// Extracts the lumped model. `panels_per_seg` controls the MoM mesh
    /// for the substrate capacitance, `nq` the inductance quadrature —
    /// refining both is how the "measurement" reference of the Fig 7
    /// experiment is produced.
    ///
    /// # Errors
    /// Propagates MoM failures.
    pub fn extract(&self, panels_per_seg: usize, nq: usize) -> Result<SpiralModel> {
        let segs = self.segments();
        // Inductance: L = Σ self + Σ mutual (signed by direction dot).
        let mut l = 0.0;
        for (i, s) in segs.iter().enumerate() {
            l += self_inductance(s);
            for (j, t) in segs.iter().enumerate() {
                if i != j {
                    l += mutual_inductance(s, t, nq);
                }
            }
        }
        // Series resistance.
        let total_len: f64 = segs.iter().map(Segment::length).sum();
        let r_dc = total_len / (self.sigma * self.width * self.thickness);
        // Skin-effect corner: δ(f) = thickness ⇒ f_skin = 1/(πμσt²).
        let f_skin = 1.0 / (std::f64::consts::PI * MU0 * self.sigma * self.thickness.powi(2));
        // Substrate capacitance via MoM with the half-space image kernel.
        let panels = spiral_panels(&segs, panels_per_seg, 0);
        let green = GreenFn::GroundPlane { eps_r: self.eps_ox, z0: 0.0 };
        let problem = MomProblem::new(panels, green)?;
        let c_total = capacitance_matrix(&problem)?[(0, 0)];
        // Substrate spreading resistance under the coil footprint.
        let area: f64 = segs.iter().map(|s| s.length() * s.width).sum();
        let r_sub = self.rho_sub / area.sqrt();
        Ok(SpiralModel {
            l_series: l,
            r_dc,
            f_skin,
            c_ox: c_total / 2.0,
            r_sub,
            segments: segs.len(),
        })
    }
}

impl SpiralModel {
    /// Series impedance at `f`, with √f skin-effect resistance growth.
    pub fn z_series(&self, f: f64) -> Complex {
        let r = self.r_dc * (1.0 + (f / self.f_skin).sqrt());
        Complex::new(r, 2.0 * std::f64::consts::PI * f * self.l_series)
    }

    /// Shunt (one end) admittance at `f`: oxide C in series with
    /// substrate R.
    pub fn y_shunt(&self, f: f64) -> Complex {
        let w = 2.0 * std::f64::consts::PI * f;
        let zc = Complex::new(0.0, -1.0 / (w * self.c_ox));
        let z = zc + Complex::from_re(self.r_sub);
        z.recip()
    }

    /// One-port input impedance with the far end grounded.
    pub fn z_in(&self, f: f64) -> Complex {
        // Series branch in parallel with nothing at the near end except
        // its own shunt; far end grounded shorts the far shunt.
        let z_series = self.z_series(f);
        let y_near = self.y_shunt(f);
        // Zin = (1/Znear_shunt ∥ series) … series to ground directly:
        (y_near + z_series.recip()).recip()
    }

    /// Effective inductance `Im(Z_in)/ω` at `f` (what an impedance
    /// analyzer reports — this is the Fig 7 `L(f)` curve, which rises
    /// toward self-resonance then collapses).
    pub fn l_eff(&self, f: f64) -> f64 {
        self.z_in(f).im / (2.0 * std::f64::consts::PI * f)
    }

    /// Quality factor `Q = Im(Z_in)/Re(Z_in)`.
    pub fn q(&self, f: f64) -> f64 {
        let z = self.z_in(f);
        z.im / z.re
    }

    /// Self-resonant frequency estimate `1/(2π√(L·C_ox))`.
    pub fn self_resonance(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (self.l_series * self.c_ox).sqrt())
    }

    /// `S₁₁` in a `z0` system at `f`.
    pub fn s11(&self, f: f64, z0: f64) -> Complex {
        let z = self.z_in(f);
        (z - Complex::from_re(z0)) / (z + Complex::from_re(z0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_inductance_scales_with_length() {
        let mk = |l: f64| Segment {
            start: crate::geom::Point3::new(0.0, 0.0, 0.0),
            end: crate::geom::Point3::new(l, 0.0, 0.0),
            width: 10e-6,
            thickness: 1e-6,
        };
        let l1 = self_inductance(&mk(100e-6));
        let l2 = self_inductance(&mk(200e-6));
        // Slightly superlinear (log term).
        assert!(l2 > 2.0 * l1 && l2 < 3.0 * l1, "{l1} {l2}");
    }

    #[test]
    fn mutual_sign_and_orthogonality() {
        let a = Segment {
            start: crate::geom::Point3::new(0.0, 0.0, 0.0),
            end: crate::geom::Point3::new(100e-6, 0.0, 0.0),
            width: 10e-6,
            thickness: 1e-6,
        };
        // Parallel, same direction: positive coupling.
        let b = Segment {
            start: crate::geom::Point3::new(0.0, 20e-6, 0.0),
            end: crate::geom::Point3::new(100e-6, 20e-6, 0.0),
            ..a
        };
        assert!(mutual_inductance(&a, &b, 16) > 0.0);
        // Anti-parallel: negative.
        let c = Segment { start: b.end, end: b.start, ..b };
        assert!(mutual_inductance(&a, &c, 16) < 0.0);
        // Perpendicular: zero.
        let d = Segment {
            start: crate::geom::Point3::new(0.0, 0.0, 0.0),
            end: crate::geom::Point3::new(0.0, 100e-6, 0.0),
            ..a
        };
        assert_eq!(mutual_inductance(&a, &d, 16), 0.0);
    }

    #[test]
    fn extracted_model_plausible_nh_range() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        // A 200 µm 3–4 turn spiral is a few nH.
        assert!(model.l_series > 0.5e-9 && model.l_series < 20e-9, "L = {:.3e}", model.l_series);
        assert!(model.r_dc > 0.1 && model.r_dc < 100.0, "R = {}", model.r_dc);
        assert!(model.c_ox > 1e-15 && model.c_ox < 1e-11, "C = {:.3e}", model.c_ox);
    }

    #[test]
    fn l_eff_rises_to_self_resonance_then_collapses() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        let fsr = model.self_resonance();
        let l_low = model.l_eff(fsr / 100.0);
        let l_mid = model.l_eff(fsr / 2.0);
        let l_high = model.l_eff(fsr * 2.0);
        assert!((l_low - model.l_series).abs() / model.l_series < 0.2);
        assert!(l_mid > l_low, "L rises toward resonance: {l_mid} > {l_low}");
        assert!(l_high < 0.0, "above SRF the reactance is capacitive: {l_high}");
    }

    #[test]
    fn q_peaks_midband() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        let fsr = model.self_resonance();
        let q_low = model.q(fsr / 1000.0);
        let q_mid = model.q(fsr / 4.0);
        assert!(q_mid > q_low, "Q rises with f initially: {q_mid} > {q_low}");
        // Near resonance Q collapses through 0.
        assert!(model.q(fsr * 1.5) < 0.0);
    }

    #[test]
    fn s11_passive_magnitude() {
        let sp = SpiralInductor::default();
        let model = sp.extract(2, 6).unwrap();
        for f in [1e8, 1e9, 5e9] {
            let s = model.s11(f, 50.0);
            assert!(s.abs() <= 1.0 + 1e-9, "|S11| = {} at {f}", s.abs());
        }
    }
}
