//! Stationary small-signal noise analysis by the adjoint method.
//!
//! For each analysis frequency the output-referred noise PSD is
//!
//! ```text
//!   S_out(f) = Σ_sources |zᵀ·col_i|²   with   (G + jωC)ᴴ·z = e_out,
//! ```
//!
//! one adjoint solve per frequency covering *all* sources — the classic
//! efficiency trick, and the quantity the ROM-based noise evaluation of
//! Section 5 (and `rfsim-rom::noise_rom`) accelerates.

use crate::ac::complex_system;
use crate::dae::{Dae, NoiseSource};
use crate::netlist::NodeId;
use crate::Result;
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::Complex;

/// Output-referred noise spectrum.
#[derive(Debug, Clone)]
pub struct NoiseResult {
    /// Analysis frequencies (Hz).
    pub freqs: Vec<f64>,
    /// Total output noise PSD (V²/Hz) per frequency.
    pub total: Vec<f64>,
    /// Per-source contributions (source-major: `contrib[s][k]`).
    pub contributions: Vec<Vec<f64>>,
    /// Labels of the sources, aligned with `contributions`.
    pub labels: Vec<String>,
}

impl NoiseResult {
    /// Integrated noise power over the analysis band (trapezoid in linear
    /// frequency), in V².
    pub fn integrated(&self) -> f64 {
        if self.freqs.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for k in 0..self.freqs.len() - 1 {
            let df = self.freqs[k + 1] - self.freqs[k];
            acc += 0.5 * (self.total[k] + self.total[k + 1]) * df;
        }
        acc
    }
}

/// Computes the output noise PSD at node `out` across `freqs`, with the
/// circuit linearized at `x_op`.
///
/// # Errors
/// Propagates singular-matrix errors from the adjoint solves.
pub fn noise_sweep(dae: &dyn Dae, x_op: &[f64], out: NodeId, freqs: &[f64]) -> Result<NoiseResult> {
    let n = dae.dim();
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut gt = Triplets::new(n, n);
    let mut ct = Triplets::new(n, n);
    dae.eval(x_op, &mut f, &mut q, &mut gt, &mut ct);
    let g = gt.to_csr();
    let c = ct.to_csr();
    let sources: Vec<NoiseSource> = dae.noise_sources(x_op);
    let out_idx = out.index().checked_sub(1).expect("noise output cannot be ground");

    let mut total = vec![0.0; freqs.len()];
    let mut contributions = vec![vec![0.0; freqs.len()]; sources.len()];
    for (k, &fq) in freqs.iter().enumerate() {
        let omega = 2.0 * std::f64::consts::PI * fq;
        // Adjoint system: Aᴴ z = e_out  ⇔  (Aᵀ)* z = e_out. We solve with
        // the conjugate-transposed matrix directly.
        let a = complex_system(&g, &c, omega);
        let ah = {
            let mut t = Triplets::new(n, n);
            for (i, j, v) in a.iter() {
                t.push(j, i, v.conj());
            }
            t.to_csr()
        };
        let mut e = vec![Complex::ZERO; n];
        e[out_idx] = Complex::ONE;
        let z = ah.solve(&e)?;
        for (s, src) in sources.iter().enumerate() {
            // Transfer from source current to output: zᴴ·col (col is real).
            let col = src.column(n, fq);
            let mut tf = Complex::ZERO;
            for i in 0..n {
                if col[i] != 0.0 {
                    tf += z[i].conj() * Complex::from_re(col[i]);
                }
            }
            let p = tf.abs_sq();
            contributions[s][k] = p;
            total[k] += p;
        }
    }
    Ok(NoiseResult {
        freqs: freqs.to_vec(),
        total,
        contributions,
        labels: sources.iter().map(|s| s.label.clone()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::{Circuit, BOLTZMANN};

    #[test]
    fn single_resistor_noise_is_4ktr() {
        // A resistor to ground, observed open-circuit: S_v = 4kTR.
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add(Resistor::new("R1", n, Circuit::GROUND, 1e3));
        let dae = ckt.into_dae().unwrap();
        let res = noise_sweep(&dae, &[0.0; 1], n, &[1e3, 1e6, 1e9]).unwrap();
        let expect = 4.0 * BOLTZMANN * 300.0 * 1e3;
        for v in &res.total {
            assert!((v - expect).abs() / expect < 1e-9, "got {v}, want {expect}");
        }
    }

    #[test]
    fn parallel_resistors_noise_like_parallel_resistance() {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add(Resistor::new("R1", n, Circuit::GROUND, 2e3));
        ckt.add(Resistor::new("R2", n, Circuit::GROUND, 2e3));
        let dae = ckt.into_dae().unwrap();
        let res = noise_sweep(&dae, &[0.0; 1], n, &[1e6]).unwrap();
        let expect = 4.0 * BOLTZMANN * 300.0 * 1e3; // 2k ∥ 2k = 1k
        assert!((res.total[0] - expect).abs() / expect < 1e-9);
        // Two equal contributors.
        assert_eq!(res.contributions.len(), 2);
        assert!((res.contributions[0][0] - res.contributions[1][0]).abs() < 1e-30);
    }

    #[test]
    fn rc_filter_shapes_noise_and_integrates_to_kt_over_c() {
        // Classic kT/C: total integrated noise of an RC filter is kT/C,
        // independent of R.
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add(Resistor::new("R1", n, Circuit::GROUND, 1e3));
        ckt.add(Capacitor::new("C1", n, Circuit::GROUND, 1e-12));
        let dae = ckt.into_dae().unwrap();
        // Corner at 1/(2πRC) ≈ 159 MHz: integrate well past it.
        let freqs: Vec<f64> = (0..20000).map(|i| 1e4 + i as f64 * 1e9 / 20000.0).collect();
        let res = noise_sweep(&dae, &[0.0; 1], n, &freqs).unwrap();
        let kt_c = BOLTZMANN * 300.0 / 1e-12;
        let integrated = res.integrated();
        // Finite band: expect within ~15% of kT/C (band covers ~6 corners).
        assert!(
            (integrated - kt_c).abs() / kt_c < 0.15,
            "integrated {integrated:.3e}, kT/C {kt_c:.3e}"
        );
        // Noise rolls off above the corner.
        assert!(res.total[0] > 10.0 * *res.total.last().unwrap());
    }

    #[test]
    fn flicker_corner_shapes_the_spectrum() {
        // A forward-biased diode with a 1/f corner: below the corner the
        // output noise rises ~10 dB/decade; well above it the spectrum is
        // flat (shot-limited).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.add(VSource::dc("V1", a, Circuit::GROUND, 1.0));
        ckt.add(Resistor::new("R1", a, d, 1e3).noiseless());
        ckt.add(Diode::new("D1", d, Circuit::GROUND, 1e-14).with_flicker_corner(1e5));
        let dae = ckt.into_dae().unwrap();
        let op = crate::dc::dc_operating_point(&dae, &crate::dc::DcOptions::default()).unwrap();
        let res = noise_sweep(&dae, &op.x, d, &[1e3, 1e4, 1e7, 1e8]).unwrap();
        // Decade below corner vs two decades below: 10x PSD ratio.
        let low_ratio = res.total[0] / res.total[1];
        assert!((low_ratio - 10.0).abs() < 1.0, "1/f slope ratio {low_ratio}");
        // Far above the corner: flat.
        let high_ratio = res.total[2] / res.total[3];
        assert!((high_ratio - 1.0).abs() < 0.05, "white region ratio {high_ratio}");
    }

    #[test]
    fn noiseless_resistor_contributes_nothing() {
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add(Resistor::new("R1", n, Circuit::GROUND, 1e3).noiseless());
        ckt.add(Resistor::new("R2", n, Circuit::GROUND, 1e3));
        let dae = ckt.into_dae().unwrap();
        let res = noise_sweep(&dae, &[0.0; 1], n, &[1e6]).unwrap();
        assert_eq!(res.labels.len(), 1);
        assert!(res.labels[0].contains("R2"));
    }
}
