//! Controlled sources: linear VCCS/VCVS and the nonlinear four-quadrant
//! [`Multiplier`] used to build behavioral mixers and modulators.

use crate::dae::{LoadCtx, Var};
use crate::netlist::{Device, NodeId};

/// Voltage-controlled current source: `i(out+ → out−) = gm·(v_c+ − v_c−)`.
#[derive(Debug, Clone)]
pub struct Vccs {
    name: String,
    out_p: NodeId,
    out_n: NodeId,
    ctl_p: NodeId,
    ctl_n: NodeId,
    gm: f64,
}

impl Vccs {
    /// Creates a VCCS with transconductance `gm` (siemens).
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        ctl_p: NodeId,
        ctl_n: NodeId,
        gm: f64,
    ) -> Self {
        Vccs { name: name.into(), out_p, out_n, ctl_p, ctl_n, gm }
    }
}

impl Device for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let vc = ctx.v(self.ctl_p) - ctx.v(self.ctl_n);
        let i = self.gm * vc;
        ctx.add_f(Var::Node(self.out_p), i);
        ctx.add_f(Var::Node(self.out_n), -i);
        ctx.add_g(Var::Node(self.out_p), Var::Node(self.ctl_p), self.gm);
        ctx.add_g(Var::Node(self.out_p), Var::Node(self.ctl_n), -self.gm);
        ctx.add_g(Var::Node(self.out_n), Var::Node(self.ctl_p), -self.gm);
        ctx.add_g(Var::Node(self.out_n), Var::Node(self.ctl_n), self.gm);
    }
}

/// Voltage-controlled voltage source:
/// `v(out+) − v(out−) = gain·(v_c+ − v_c−)` (one branch unknown).
#[derive(Debug, Clone)]
pub struct Vcvs {
    name: String,
    out_p: NodeId,
    out_n: NodeId,
    ctl_p: NodeId,
    ctl_n: NodeId,
    gain: f64,
}

impl Vcvs {
    /// Creates a VCVS with the given voltage gain.
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        ctl_p: NodeId,
        ctl_n: NodeId,
        gain: f64,
    ) -> Self {
        Vcvs { name: name.into(), out_p, out_n, ctl_p, ctl_n, gain }
    }
}

impl Device for Vcvs {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let i = ctx.branch_current(0);
        ctx.add_f(Var::Node(self.out_p), i);
        ctx.add_f(Var::Node(self.out_n), -i);
        ctx.add_g(Var::Node(self.out_p), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.out_n), Var::Branch(0), -1.0);
        // Branch: v_out − gain·v_ctl = 0.
        let vo = ctx.v(self.out_p) - ctx.v(self.out_n);
        let vc = ctx.v(self.ctl_p) - ctx.v(self.ctl_n);
        ctx.add_f(Var::Branch(0), vo - self.gain * vc);
        ctx.add_g(Var::Branch(0), Var::Node(self.out_p), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.out_n), -1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.ctl_p), -self.gain);
        ctx.add_g(Var::Branch(0), Var::Node(self.ctl_n), self.gain);
    }
}

/// Four-quadrant analog multiplier (behavioral Gilbert cell):
/// `i(out+ → out−) = gain·(v_x+ − v_x−)·(v_y+ − v_y−)`.
///
/// This is the workhorse of the synthetic modulator/mixer chains used in
/// the Fig. 1 and Fig. 4 reproductions: driven by an LO on one port and a
/// signal on the other it performs ideal frequency translation, and its
/// bilinear nonlinearity generates the intermodulation products HB and the
/// MPDE methods must resolve.
#[derive(Debug, Clone)]
pub struct Multiplier {
    name: String,
    out_p: NodeId,
    out_n: NodeId,
    x_p: NodeId,
    x_n: NodeId,
    y_p: NodeId,
    y_n: NodeId,
    gain: f64,
}

impl Multiplier {
    /// Creates a multiplier with output transconductance `gain` (A/V²).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        out_p: NodeId,
        out_n: NodeId,
        x_p: NodeId,
        x_n: NodeId,
        y_p: NodeId,
        y_n: NodeId,
        gain: f64,
    ) -> Self {
        Multiplier { name: name.into(), out_p, out_n, x_p, x_n, y_p, y_n, gain }
    }
}

impl Device for Multiplier {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let vx = ctx.v(self.x_p) - ctx.v(self.x_n);
        let vy = ctx.v(self.y_p) - ctx.v(self.y_n);
        let i = self.gain * vx * vy;
        ctx.add_f(Var::Node(self.out_p), i);
        ctx.add_f(Var::Node(self.out_n), -i);
        // ∂i/∂vx = gain·vy, ∂i/∂vy = gain·vx.
        let gx = self.gain * vy;
        let gy = self.gain * vx;
        for (node, sgn) in [(self.out_p, 1.0), (self.out_n, -1.0)] {
            ctx.add_g(Var::Node(node), Var::Node(self.x_p), sgn * gx);
            ctx.add_g(Var::Node(node), Var::Node(self.x_n), -sgn * gx);
            ctx.add_g(Var::Node(node), Var::Node(self.y_p), sgn * gy);
            ctx.add_g(Var::Node(node), Var::Node(self.y_n), -sgn * gy);
        }
    }
}
