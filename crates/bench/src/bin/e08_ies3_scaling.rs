//! E8 — Fig 6: IES³ time and memory scaling with problem size.
//!
//! "Figure 6 shows how time and memory requirements scale only slightly
//! faster than linearly with increasing problem size in an IES³-based
//! electromagnetic simulator." We extract a plate-pair capacitance at
//! growing panel counts, recording compressed storage, build+solve time,
//! and the dense O(n²)/O(n³) baseline, then fit the log-log slopes.
//!
//! Pass `--ablate` for the rank-tolerance ε ablation.

use rfsim::em::geom::mesh_parallel_plates;
use rfsim::em::ies3::{CompressedMatrix, Ies3Options};
use rfsim::em::mom::MomProblem;
use rfsim::em::GreenFn;
use rfsim::numerics::krylov::KrylovOptions;
use rfsim_bench::{ablate, heading, timed};

fn run_case(n_side: usize, opts: &Ies3Options) -> (usize, usize, f64, f64, f64) {
    let panels = mesh_parallel_plates(1e-3, 1e-4, n_side);
    let n = panels.len();
    let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).expect("mom");
    let (cm, t_build) = timed(|| CompressedMatrix::build(&p.panels, &p.green, opts).expect("ies3"));
    let ((q, _stats), t_solve) = timed(|| {
        p.solve_iterative(&cm, &[1.0, 0.0], &KrylovOptions { tol: 1e-8, ..Default::default() })
            .expect("gmres")
    });
    let c = p.conductor_charges(&q)[0];
    (n, cm.memory_bytes(), t_build, t_solve, c)
}

fn main() {
    println!("E8: IES³ scaling (Fig 6)");
    println!("worker pool: {} thread(s) (RFSIM_THREADS)", rfsim::parallel::thread_count());
    rfsim::telemetry::gauge_set("pool.threads", rfsim::parallel::thread_count() as f64);
    let opts = Ies3Options::default();
    heading("size sweep (plate pair, n panels total)");
    println!(
        "{:>7} {:>13} {:>13} {:>10} {:>10} {:>13}",
        "n", "ies3 (B)", "dense (B)", "build (s)", "solve (s)", "C (F)"
    );
    let mut sizes = Vec::new();
    let mut mems = Vec::new();
    let mut times = Vec::new();
    for n_side in [8usize, 12, 16, 24, 32] {
        let (n, mem, tb, ts, c) = run_case(n_side, &opts);
        println!("{:>7} {:>13} {:>13} {:>10.3} {:>10.3} {:>13.4e}", n, mem, n * n * 8, tb, ts, c);
        sizes.push(n as f64);
        mems.push(mem as f64);
        times.push(tb + ts);
    }
    // Log-log slope fits (first vs last point).
    let slope = |ys: &[f64]| {
        (ys.last().expect("nonempty") / ys[0]).ln()
            / (sizes.last().expect("nonempty") / sizes[0]).ln()
    };
    heading("fitted scaling exponents (Fig 6's 'slightly faster than linear')");
    println!("memory  ~ n^{:.2}   (dense: n^2.00)", slope(&mems));
    println!("time    ~ n^{:.2}   (dense LU: n^3.00)", slope(&times));

    if ablate() {
        heading("ablation: rank tolerance ε vs memory and accuracy");
        // Reference from the dense solve at moderate size.
        let panels = mesh_parallel_plates(1e-3, 1e-4, 16);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).expect("mom");
        let q_ref = p.solve_dense(&[1.0, 0.0]).expect("dense");
        let c_ref = p.conductor_charges(&q_ref)[0];
        println!("{:>9} {:>13} {:>14} {:>12}", "epsilon", "memory (B)", "C error", "lowrank blks");
        for tol in [1e-3, 1e-6, 1e-9] {
            let o = Ies3Options { tol, ..Default::default() };
            let cm = CompressedMatrix::build(&p.panels, &p.green, &o).expect("ies3");
            let (q, _) = p
                .solve_iterative(
                    &cm,
                    &[1.0, 0.0],
                    &KrylovOptions { tol: 1e-10, ..Default::default() },
                )
                .expect("gmres");
            let c = p.conductor_charges(&q)[0];
            println!(
                "{:>9.0e} {:>13} {:>14.3e} {:>12}",
                tol,
                cm.memory_bytes(),
                ((c - c_ref) / c_ref).abs(),
                cm.low_rank_blocks()
            );
        }
    } else {
        println!("\n(pass --ablate for the rank-tolerance ablation)");
    }
    rfsim_bench::emit_telemetry("e08_ies3_scaling");
}
