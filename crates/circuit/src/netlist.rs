//! Netlist construction: nodes, the [`Device`] trait, and the [`Circuit`]
//! builder that assembles devices into a [`CircuitDae`].

use crate::dae::{CircuitDae, LoadCtx, NoiseSource, SrcCtx};
use crate::{Error, Result};

/// Identifies a circuit node. Node 0 is always ground.
///
/// Obtain ids from [`Circuit::node`]; they are only meaningful within the
/// circuit that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }

    /// Raw index (0 = ground). Mostly useful for diagnostics.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A circuit device that knows how to stamp itself into the MNA system.
///
/// Implementations provide resistive/reactive contributions through
/// [`Device::load`] and excitations through [`Device::source`]. Devices with
/// internal noise generators additionally override [`Device::noise`].
pub trait Device: Send + Sync {
    /// Instance name (unique within a circuit).
    fn name(&self) -> &str;

    /// Number of extra branch-current unknowns this device introduces
    /// (e.g. 1 for an inductor or voltage source).
    fn branch_count(&self) -> usize {
        0
    }

    /// Stamps `f(x)`, `q(x)` and their Jacobians `G`, `C` at the solution
    /// in `ctx`. Called every Newton iteration.
    fn load(&self, ctx: &mut LoadCtx<'_>);

    /// Stamps the excitation vector `b(t)`. `ctx.time()` carries both MPDE
    /// time arguments; univariate analyses set them equal.
    fn source(&self, _ctx: &mut SrcCtx<'_>) {}

    /// Returns `true` if the device's `load` depends nonlinearly on `x`.
    /// Linear circuits let analyses skip Newton re-evaluation.
    fn is_nonlinear(&self) -> bool {
        false
    }

    /// Small-signal noise generators at the operating point `x`.
    fn noise(&self, _x_op: &[f64], _ctx: &crate::dae::NoiseCtx<'_>) -> Vec<NoiseSource> {
        Vec::new()
    }
}

/// A circuit under construction: a set of named nodes plus devices.
///
/// See the [crate-level example](crate) for typical use.
pub struct Circuit {
    node_names: Vec<String>,
    devices: Vec<Box<dyn Device>>,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Circuit({} nodes, {} devices)", self.node_names.len(), self.devices.len())
    }
}

impl Circuit {
    /// The ground (reference) node, present in every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit { node_names: vec!["0".to_string()], devices: Vec::new() }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"`, `"gnd"` and `"GND"` alias the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(i) = self.node_names.iter().position(|n| n == name) {
            return NodeId(i);
        }
        self.node_names.push(name.to_string());
        NodeId(self.node_names.len() - 1)
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Self::GROUND);
        }
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// Name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Adds a device to the circuit.
    pub fn add(&mut self, device: impl Device + 'static) {
        self.devices.push(Box::new(device));
    }

    /// Adds a boxed device (for parser-constructed netlists).
    pub fn add_boxed(&mut self, device: Box<dyn Device>) {
        self.devices.push(device);
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Iterates over the devices.
    pub fn devices(&self) -> impl Iterator<Item = &dyn Device> {
        self.devices.iter().map(AsRef::as_ref)
    }

    /// Finalizes the circuit into a [`CircuitDae`] ready for analysis.
    ///
    /// # Errors
    /// Returns [`Error::Netlist`] for duplicate device names or an empty
    /// circuit.
    pub fn into_dae(self) -> Result<CircuitDae> {
        if self.devices.is_empty() {
            return Err(Error::Netlist("circuit has no devices".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for d in &self.devices {
            if !seen.insert(d.name().to_string()) {
                return Err(Error::Netlist(format!("duplicate device name `{}`", d.name())));
            }
        }
        Ok(CircuitDae::build(self.node_names, self.devices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Resistor;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        assert!(Circuit::GROUND.is_ground());
    }

    #[test]
    fn node_identity_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zzz"), None);
        assert_eq!(c.node_count(), 3);
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new();
        assert!(matches!(c.into_dae(), Err(Error::Netlist(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Resistor::new("R1", a, Circuit::GROUND, 1.0));
        c.add(Resistor::new("R1", a, Circuit::GROUND, 2.0));
        assert!(matches!(c.into_dae(), Err(Error::Netlist(_))));
    }
}
