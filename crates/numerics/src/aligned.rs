//! A 32-byte-aligned growable buffer for SIMD workspace arenas.
//!
//! `Vec<f64>` only guarantees 8-byte alignment, so 256-bit loads on a
//! workspace arena may straddle cache lines. [`AlignedVec`] allocates at
//! 32-byte alignment and exposes enough of the `Vec` surface
//! (`clear`/`resize`/`push`/`extend`/`Deref<[T]>`) for the solver
//! workspaces (`HbWorkspace`, `GmresWorkspace`, IES³ scratch) to swap in
//! without call-site churn. Element types are restricted to `Copy` so
//! drop handling stays trivial.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// SIMD register width alignment, in bytes.
pub const SIMD_ALIGN: usize = 32;

/// A growable buffer whose storage is always 32-byte aligned.
pub struct AlignedVec<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
    cap: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, exactly like Vec.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
// SAFETY: shared access only hands out &[T]; T: Sync not required beyond
// the same bound Vec has (T: Copy implies no interior mutability here is
// assumed by our users, but keep the honest bound).
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Creates an empty buffer (no allocation).
    pub const fn new() -> Self {
        AlignedVec { ptr: NonNull::dangling(), len: 0, cap: 0 }
    }

    /// Creates an empty buffer with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        v.reserve_total(cap);
        v
    }

    /// Number of live elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn layout(cap: usize) -> Layout {
        let align = SIMD_ALIGN.max(std::mem::align_of::<T>());
        let bytes = std::mem::size_of::<T>().checked_mul(cap).expect("AlignedVec size overflow");
        Layout::from_size_align(bytes, align).expect("AlignedVec layout")
    }

    /// Grows storage to at least `total` elements, preserving contents.
    fn reserve_total(&mut self, total: usize) {
        if total <= self.cap || std::mem::size_of::<T>() == 0 {
            return;
        }
        let new_cap = total.max(self.cap.saturating_mul(2)).max(8);
        let layout = Self::layout(new_cap);
        // SAFETY: layout has nonzero size (size_of::<T>() > 0, new_cap > 0).
        let raw = unsafe { alloc(layout) } as *mut T;
        let Some(ptr) = NonNull::new(raw) else { handle_alloc_error(layout) };
        if self.cap != 0 {
            // SAFETY: both regions are valid for `self.len` elements and
            // cannot overlap (fresh allocation).
            unsafe {
                std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), ptr.as_ptr(), self.len);
                dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap));
            }
        }
        self.ptr = ptr;
        self.cap = new_cap;
    }

    /// Drops all elements (capacity is retained).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends one element.
    #[inline]
    pub fn push(&mut self, value: T) {
        if self.len == self.cap {
            self.reserve_total(self.len + 1);
        }
        // SAFETY: len < cap after the reserve above.
        unsafe { self.ptr.as_ptr().add(self.len).write(value) };
        self.len += 1;
    }

    /// Resizes to `new_len`, filling fresh slots with `value`.
    pub fn resize(&mut self, new_len: usize, value: T) {
        if new_len > self.cap {
            self.reserve_total(new_len);
        }
        if new_len > self.len {
            // SAFETY: capacity covers new_len; slots len..new_len are in
            // bounds of the allocation.
            unsafe {
                for i in self.len..new_len {
                    self.ptr.as_ptr().add(i).write(value);
                }
            }
        }
        self.len = new_len;
    }

    /// Copies `src` into the buffer, replacing current contents.
    pub fn copy_from(&mut self, src: &[T]) {
        self.clear();
        self.extend_from_slice(src);
    }

    /// Appends every element of `src`.
    pub fn extend_from_slice(&mut self, src: &[T]) {
        self.reserve_total(self.len + src.len());
        // SAFETY: capacity covers len + src.len(); regions cannot overlap
        // (src is a foreign borrow, dst is our exclusive allocation tail).
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.as_ptr().add(self.len), src.len());
        }
        self.len += src.len();
    }

    /// Live elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len initialized elements (dangling is
        // fine for len == 0).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Live elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as_slice, plus exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.cap != 0 && std::mem::size_of::<T>() != 0 {
            // SAFETY: allocation was made with the identical layout.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) };
        }
    }
}

impl<T: Copy> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        let mut v = Self::with_capacity(self.len);
        v.extend_from_slice(self);
        v
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy> Extend<T> for AlignedVec<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T: Copy> FromIterator<T> for AlignedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        v.extend(iter);
        v
    }
}

impl<T: Copy> From<&[T]> for AlignedVec<T> {
    fn from(src: &[T]) -> Self {
        let mut v = Self::with_capacity(src.len());
        v.extend_from_slice(src);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_32_byte_aligned() {
        for n in [1usize, 3, 8, 17, 1024] {
            let mut v = AlignedVec::<f64>::new();
            v.resize(n, 0.0);
            assert_eq!(v.as_ptr() as usize % SIMD_ALIGN, 0, "n = {n}");
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn vec_surface_behaves() {
        let mut v = AlignedVec::new();
        v.extend_from_slice(&[1.0, 2.0]);
        v.push(3.0);
        v.extend([4.0, 5.0]);
        assert_eq!(&v[..], &[1.0, 2.0, 3.0, 4.0, 5.0]);
        v.resize(2, 0.0);
        assert_eq!(&v[..], &[1.0, 2.0]);
        v.resize(4, 9.0);
        assert_eq!(&v[..], &[1.0, 2.0, 9.0, 9.0]);
        v.clear();
        assert!(v.is_empty());
        let w: AlignedVec<f64> = [1.0f64, 2.0].iter().copied().collect();
        assert_eq!(w.len(), 2);
        let c = w.clone();
        assert_eq!(&c[..], &w[..]);
        assert_eq!(format!("{c:?}"), "[1.0, 2.0]");
    }

    #[test]
    fn growth_preserves_contents() {
        let mut v = AlignedVec::new();
        for i in 0..1000 {
            v.push(i as f64);
        }
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as f64));
        assert_eq!(v.as_ptr() as usize % SIMD_ALIGN, 0);
    }
}
