//! Discrete Fourier transforms: radix-2 FFT, Bluestein's algorithm for
//! arbitrary lengths, 2-D transforms, and spectrum utilities (dBc scaling,
//! windows).
//!
//! Harmonic balance shuttles waveforms between the time grid and the
//! harmonic domain every Newton iteration (the Γ/Γ⁻¹ operators); the MPDE
//! engines use the 2-D transform; the transient-vs-HB dynamic-range study
//! (Fig 1 / §2.1) uses the windowed spectrum utilities.

use crate::Complex;

/// In-place radix-2 decimation-in-time FFT.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (use [`dft`] for arbitrary
/// lengths).
pub fn fft_pow2(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "fft_pow2: length must be a power of two");
    rfsim_telemetry::counter_add("fft.calls", 1);
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// In-place inverse radix-2 FFT (normalized by 1/n).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn ifft_pow2(data: &mut [Complex]) {
    let n = data.len();
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft_pow2(data);
    let scale = 1.0 / n as f64;
    for z in data.iter_mut() {
        *z = z.conj().scale(scale);
    }
}

/// Forward DFT of arbitrary length: radix-2 FFT when possible, otherwise
/// Bluestein's chirp-z algorithm (O(n log n)).
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    rfsim_telemetry::counter_add("fft.calls", 1);
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut d = input.to_vec();
        fft_pow2(&mut d);
        return d;
    }
    bluestein(input, false)
}

/// Inverse DFT of arbitrary length (normalized by 1/n).
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    rfsim_telemetry::counter_add("fft.calls", 1);
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut d = input.to_vec();
        ifft_pow2(&mut d);
        return d;
    }
    let mut out = bluestein(input, true);
    let scale = 1.0 / n as f64;
    for z in &mut out {
        *z = z.scale(scale);
    }
    out
}

/// Bluestein chirp-z transform; `inverse` flips the twiddle sign
/// (unnormalized).
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let m = (2 * n - 1).next_power_of_two();
    // Chirp w_k = exp(sign·jπk²/n).
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            // k² mod 2n avoids precision loss for large k.
            let kk = (k as u128 * k as u128) % (2 * n as u128);
            Complex::from_polar(1.0, sign * std::f64::consts::PI * kk as f64 / n as f64)
        })
        .collect();
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        b[k] = chirp[k].conj();
        b[m - k] = chirp[k].conj();
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for k in 0..m {
        a[k] *= b[k];
    }
    ifft_pow2(&mut a);
    (0..n).map(|k| a[k] * chirp[k]).collect()
}

/// Forward DFT of a real signal; returns the full complex spectrum.
pub fn dft_real(input: &[f64]) -> Vec<Complex> {
    dft(&input.iter().map(|&x| Complex::from_re(x)).collect::<Vec<_>>())
}

/// Row–column 2-D DFT of a `rows × cols` row-major grid.
pub fn dft2(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    assert_eq!(data.len(), rows * cols, "dft2: size mismatch");
    let mut tmp = vec![Complex::ZERO; rows * cols];
    // Transform rows.
    for r in 0..rows {
        let row = dft(&data[r * cols..(r + 1) * cols]);
        tmp[r * cols..(r + 1) * cols].copy_from_slice(&row);
    }
    // Transform columns.
    let mut out = vec![Complex::ZERO; rows * cols];
    let mut col = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = tmp[r * cols + c];
        }
        let t = dft(&col);
        for r in 0..rows {
            out[r * cols + c] = t[r];
        }
    }
    out
}

/// Inverse row–column 2-D DFT.
pub fn idft2(data: &[Complex], rows: usize, cols: usize) -> Vec<Complex> {
    assert_eq!(data.len(), rows * cols, "idft2: size mismatch");
    let mut tmp = vec![Complex::ZERO; rows * cols];
    for r in 0..rows {
        let row = idft(&data[r * cols..(r + 1) * cols]);
        tmp[r * cols..(r + 1) * cols].copy_from_slice(&row);
    }
    let mut out = vec![Complex::ZERO; rows * cols];
    let mut col = vec![Complex::ZERO; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = tmp[r * cols + c];
        }
        let t = idft(&col);
        for r in 0..rows {
            out[r * cols + c] = t[r];
        }
    }
    out
}

/// Hann window of length `n` (periodic form, for spectral estimation).
pub fn hann_window(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos())).collect()
}

/// Single-sided amplitude spectrum of a real signal (windowless), returning
/// `(frequency_bin_index, amplitude)` pairs for bins `0..n/2`.
///
/// Amplitudes are scaled so a pure tone `A·cos` reports `A`.
pub fn amplitude_spectrum(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let spec = dft_real(signal);
    let half = n / 2 + 1;
    (0..half)
        .map(|k| {
            let scale = if k == 0 || (n.is_multiple_of(2) && k == n / 2) { 1.0 } else { 2.0 };
            spec[k].abs() * scale / n as f64
        })
        .collect()
}

/// Converts an amplitude ratio to dB relative to a carrier amplitude
/// ("dBc"): `20·log₁₀(a / carrier)`. Returns `-inf` dB for zero amplitude.
pub fn dbc(amplitude: f64, carrier: f64) -> f64 {
    if amplitude <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * (amplitude / carrier).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} vs {y}");
        }
    }

    /// O(n²) reference DFT.
    fn slow_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex::from_polar(
                            1.0,
                            -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn fft_matches_slow_dft_pow2() {
        let x: Vec<Complex> =
            (0..16).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos())).collect();
        let fast = dft(&x);
        let slow = slow_dft(&x);
        assert_close(&fast, &slow, 1e-10);
    }

    #[test]
    fn bluestein_matches_slow_dft_odd_lengths() {
        for n in [3usize, 5, 7, 9, 15, 21, 33] {
            let x: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let fast = dft(&x);
            let slow = slow_dft(&x);
            assert_close(&fast, &slow, 1e-9);
        }
    }

    #[test]
    fn roundtrip_all_lengths() {
        for n in [1usize, 2, 3, 4, 5, 8, 12, 17, 32, 63] {
            let x: Vec<Complex> =
                (0..n).map(|i| Complex::new(i as f64, -(i as f64) * 0.25)).collect();
            let back = idft(&dft(&x));
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 64;
        let f = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f as f64 * i as f64 / n as f64).cos())
            .collect();
        let amp = amplitude_spectrum(&x);
        assert!((amp[f] - 1.0).abs() < 1e-10);
        for (k, a) in amp.iter().enumerate() {
            if k != f {
                assert!(*a < 1e-10, "leakage at bin {k}: {a}");
            }
        }
    }

    #[test]
    fn dft2_matches_nested_1d() {
        let (r, c) = (4, 6);
        let grid: Vec<Complex> =
            (0..r * c).map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0)).collect();
        let f2 = dft2(&grid, r, c);
        let back = idft2(&f2, r, c);
        assert_close(&back, &grid, 1e-9);
        // Parseval for the 2-D transform.
        let energy_t: f64 = grid.iter().map(|z| z.abs_sq()).sum();
        let energy_f: f64 = f2.iter().map(|z| z.abs_sq()).sum::<f64>() / (r * c) as f64;
        assert!((energy_t - energy_f).abs() < 1e-9);
    }

    #[test]
    fn parseval_1d() {
        let x: Vec<Complex> = (0..40).map(|i| Complex::new((i as f64).cos(), 0.0)).collect();
        let f = dft(&x);
        let et: f64 = x.iter().map(|z| z.abs_sq()).sum();
        let ef: f64 = f.iter().map(|z| z.abs_sq()).sum::<f64>() / 40.0;
        assert!((et - ef).abs() < 1e-9);
    }

    #[test]
    fn dbc_scaling() {
        assert!((dbc(0.1, 1.0) + 20.0).abs() < 1e-12);
        assert!((dbc(1.0, 1.0)).abs() < 1e-12);
        assert_eq!(dbc(0.0, 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn hann_window_endpoints() {
        let w = hann_window(8);
        assert!(w[0].abs() < 1e-15);
        assert!((w[4] - 1.0).abs() < 1e-15);
    }
}
