#![warn(missing_docs)]
//! `rfsim` — an RF IC design and verification toolkit.
//!
//! A from-scratch Rust reproduction of the tool family described in
//! *"Tools and Methodology for RF IC Design"* (Dunlop, Demir, Feldmann,
//! Kapur, Long, Melville, Roychowdhury — DAC 1998, Bell Laboratories),
//! covering all four of the paper's pillars:
//!
//! - **Multi-scale circuit simulation** — harmonic balance with
//!   matrix-implicit Krylov solution ([`steady`]) and the MPDE family:
//!   MFDTD, hierarchical shooting, MMFT, and envelope following
//!   ([`mpde`]), on top of a SPICE-class MNA substrate ([`circuit`]);
//! - **Oscillator phase noise** — the nonlinear perturbation theory:
//!   autonomous shooting, Floquet/PPV analysis, Lorentzian spectra,
//!   linearly growing jitter, Monte Carlo validation ([`phasenoise`]);
//! - **Electromagnetic extraction** — method of moments with exact panel
//!   integrals, the kernel-independent IES³ compression, and a
//!   finite-difference volume solver for the Table-1 comparison ([`em`]);
//! - **Reduced-order modeling** — AWE, PVL, Arnoldi, PRIMA, passivity
//!   post-processing, and Padé-accelerated noise evaluation ([`rom`]).
//!
//! Everything sits on a self-contained numerics layer ([`numerics`]):
//! dense/sparse linear algebra, SVD/eigen solvers, GMRES/BiCGStab, FFTs.
//!
//! # Quickstart
//!
//! Harmonic balance on a diode rectifier:
//!
//! ```
//! use rfsim::circuit::prelude::*;
//! use rfsim::steady::{solve_hb, HbOptions, SpectralGrid};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut ckt = Circuit::new();
//! let inp = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add(VSource::sine("V1", inp, Circuit::GROUND, 0.0, 1.0, 1e6));
//! ckt.add(Resistor::new("R1", inp, out, 1e3));
//! ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
//! let dae = ckt.into_dae()?;
//!
//! let grid = SpectralGrid::single_tone(1e6, 7)?;
//! let sol = solve_hb(&dae, &grid, &HbOptions::default())?;
//! let out_idx = dae.node_index(out).expect("out is not ground");
//! // The rectifier generates a DC component and harmonics.
//! assert!(sol.amplitude(out_idx, &[0]) > 0.0);
//! # Ok(())
//! # }
//! ```

pub use rfsim_circuit as circuit;
pub use rfsim_em as em;
pub use rfsim_mpde as mpde;
pub use rfsim_numerics as numerics;
pub use rfsim_parallel as parallel;
pub use rfsim_phasenoise as phasenoise;
pub use rfsim_rom as rom;
pub use rfsim_steady as steady;
pub use rfsim_telemetry as telemetry;

/// Version of the toolkit.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!crate::VERSION.is_empty());
    }
}
