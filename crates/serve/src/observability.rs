//! Request tracing, the JSONL access log, and the flight recorder
//! (DESIGN.md §14).
//!
//! Every request the server parses gets a monotonically increasing
//! request id (`req` in the response). When the request finishes — ok,
//! solver failure, or admission reject — a [`RequestRecord`] with the
//! queue/exec/total latency breakdown is appended to the in-memory
//! [`FlightRecorder`] ring (dumped by the `dump` op, and automatically
//! when a worker panics) and, when `--access-log` is set, written as
//! one JSON line to the [`AccessLog`].

use rfsim_telemetry::Json;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One completed (or refused) request, with its latency breakdown.
///
/// `queue_ms + exec_ms ≤ total_ms`: the total also covers frame
/// parsing and the response hand-off back to the connection thread.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Server-assigned request id, echoed as `req` in the response.
    pub req_id: u64,
    /// Client-chosen correlation id, echoed as `id` (absent → None).
    pub client_id: Option<f64>,
    /// Operation name (`hb`, `extract`, `sleep`, `ping`, ...).
    pub op: String,
    /// Completion time, milliseconds since the Unix epoch.
    pub unix_ms: f64,
    /// Time spent queued before a worker picked the job up (0 for
    /// inline ops).
    pub queue_ms: f64,
    /// Time executing on the worker (or inline).
    pub exec_ms: f64,
    /// Frame receipt to response ready.
    pub total_ms: f64,
    /// Whether resident warm state served the job.
    pub warm: bool,
    /// `"ok"`, or the error kind (`overloaded`, `solver`, ...).
    pub outcome: String,
}

impl RequestRecord {
    /// Serializes as the access-log line / flight-recorder entry shape.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("req", Json::Num(self.req_id as f64)),
            ("id", self.client_id.map_or(Json::Null, Json::Num)),
            ("op", Json::Str(self.op.clone())),
            ("unix_ms", Json::Num(self.unix_ms)),
            ("queue_ms", Json::Num(self.queue_ms)),
            ("exec_ms", Json::Num(self.exec_ms)),
            ("total_ms", Json::Num(self.total_ms)),
            ("warm", Json::Bool(self.warm)),
            ("outcome", Json::Str(self.outcome.clone())),
        ])
    }

    /// Rebuilds a record from its JSON form.
    pub fn from_json(v: &Json) -> Option<RequestRecord> {
        Some(RequestRecord {
            req_id: v.get("req")?.as_f64()? as u64,
            client_id: v.get("id").and_then(Json::as_f64),
            op: v.get("op")?.as_str()?.to_string(),
            unix_ms: v.get("unix_ms")?.as_f64()?,
            queue_ms: v.get("queue_ms")?.as_f64()?,
            exec_ms: v.get("exec_ms")?.as_f64()?,
            total_ms: v.get("total_ms")?.as_f64()?,
            warm: matches!(v.get("warm")?, Json::Bool(true)),
            outcome: v.get("outcome")?.as_str()?.to_string(),
        })
    }
}

/// Milliseconds since the Unix epoch, for record timestamps.
pub fn unix_ms_now() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64() * 1e3)
}

/// Fixed-size ring of the most recent [`RequestRecord`]s. Post-mortems
/// read it via the `dump` protocol op; a worker panic dumps it to disk
/// automatically so the state leading up to the crash survives without
/// a reproduction.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<RequestRecord>>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder { capacity, ring: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one record, dropping the oldest past capacity.
    pub fn record(&self, record: RequestRecord) {
        let mut ring = lock(&self.ring);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        lock(&self.ring).iter().cloned().collect()
    }

    /// The `dump`-op payload: capacity plus the retained records.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("capacity", Json::Num(self.capacity as f64)),
            ("records", Json::Arr(self.snapshot().iter().map(RequestRecord::to_json).collect())),
        ])
    }

    /// Writes the dump to `path` (the automatic panic dump).
    ///
    /// # Errors
    /// File I/O failures.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

/// Append-only JSONL access log: one [`RequestRecord`] per line,
/// flushed per record so a crashed or killed daemon loses at most the
/// line being written.
pub struct AccessLog {
    path: PathBuf,
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl AccessLog {
    /// Opens (appends to) the log at `path`.
    ///
    /// # Errors
    /// File creation/open failures.
    pub fn open(path: &Path) -> std::io::Result<AccessLog> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(AccessLog { path: path.to_path_buf(), out: Mutex::new(std::io::BufWriter::new(file)) })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as a JSON line. Write failures are reported
    /// to stderr, never propagated — losing a log line must not fail
    /// the request it describes.
    pub fn write(&self, record: &RequestRecord) {
        let line = record.to_json().to_string_compact();
        let mut out = lock(&self.out);
        if let Err(e) = writeln!(out, "{line}").and_then(|()| out.flush()) {
            eprintln!("rfsim-serve: access log {}: {e}", self.path.display());
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(req_id: u64) -> RequestRecord {
        RequestRecord {
            req_id,
            client_id: Some(7.5),
            op: "hb".to_string(),
            unix_ms: 1.7e12,
            queue_ms: 0.25,
            exec_ms: 3.5,
            total_ms: 4.0,
            warm: true,
            outcome: "ok".to_string(),
        }
    }

    #[test]
    fn record_json_round_trips() {
        let r = record(42);
        assert_eq!(RequestRecord::from_json(&r.to_json()).unwrap(), r);
        let mut anon = record(43);
        anon.client_id = None;
        assert_eq!(RequestRecord::from_json(&anon.to_json()).unwrap(), anon);
    }

    #[test]
    fn flight_recorder_keeps_last_n() {
        let fr = FlightRecorder::new(3);
        for i in 0..10 {
            fr.record(record(i));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.iter().map(|r| r.req_id).collect::<Vec<_>>(), vec![7, 8, 9]);
        let dump = fr.to_json();
        assert_eq!(dump.get("capacity").unwrap().as_f64(), Some(3.0));
        assert_eq!(dump.get("records").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn access_log_appends_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("rfsim-access-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let log = AccessLog::open(&path).unwrap();
            log.write(&record(1));
            log.write(&record(2));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let recs: Vec<RequestRecord> = text
            .lines()
            .map(|l| RequestRecord::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], record(2));
        std::fs::remove_file(&path).unwrap();
    }
}
