//! Property-based tests for model reduction: moment matching, monotone
//! convergence, and passivity invariants on randomly parameterized
//! interconnect.

use proptest::prelude::*;
use rfsim_rom::arnoldi::arnoldi_rom;
use rfsim_rom::passivity::is_passive;
use rfsim_rom::prima::prima_rom;
use rfsim_rom::pvl::pvl_rom;
use rfsim_rom::statespace::{log_freqs, rc_line, relative_error};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PVL matches the first 2q−1 moments for random line parameters and
    /// random (small) orders.
    #[test]
    fn pvl_moment_matching(n in 15usize..60, r in 10.0f64..1e3,
                           c_pf in 0.1f64..10.0, q in 2usize..6) {
        let sys = rc_line(n, r, c_pf * 1e-12);
        let model = pvl_rom(&sys, 0.0, q).expect("pvl");
        let exact = sys.moments(0.0, 2 * q - 1).expect("moments");
        let reduced = model.moments(2 * q - 1);
        for (k, (e, m)) in exact.iter().zip(&reduced).enumerate() {
            let rel = (e - m).abs() / e.abs().max(1e-300);
            prop_assert!(rel < 1e-5, "moment {k}: {e:.4e} vs {m:.4e} (rel {rel:.1e})");
        }
    }

    /// Arnoldi matches exactly q moments for the same random systems.
    #[test]
    fn arnoldi_moment_matching(n in 15usize..60, r in 10.0f64..1e3, q in 2usize..7) {
        let sys = rc_line(n, r, 1e-12);
        let model = arnoldi_rom(&sys, 0.0, q).expect("arnoldi");
        let exact = sys.moments(0.0, q).expect("moments");
        let reduced = model.moments(q);
        for (k, (e, m)) in exact.iter().zip(&reduced).enumerate() {
            let rel = (e - m).abs() / e.abs().max(1e-300);
            prop_assert!(rel < 1e-6, "moment {k}: rel {rel:.1e}");
        }
    }

    /// Reduction error does not increase when the order grows (PVL, same
    /// system, q vs q+2).
    #[test]
    fn pvl_error_monotone_in_order(n in 40usize..100, q in 3usize..8) {
        let sys = rc_line(n, 100.0, 1e-12);
        let freqs = log_freqs(1e4, 1e9, 30);
        let e_small = relative_error(&sys, &pvl_rom(&sys, 0.0, q).expect("pvl"), &freqs);
        let e_large = relative_error(&sys, &pvl_rom(&sys, 0.0, q + 2).expect("pvl"), &freqs);
        prop_assert!(
            e_large <= e_small * 1.5 + 1e-12,
            "q={q}: error grew {e_small:.2e} → {e_large:.2e}"
        );
    }

    /// PRIMA models of driving-point RC impedances are passive for any
    /// parameters and orders.
    #[test]
    fn prima_always_passive(n in 20usize..60, r in 10.0f64..5e3, q in 3usize..9) {
        let mut sys = rc_line(n, r, 1e-12);
        sys.l = sys.b.clone();
        let model = prima_rom(&sys, 0.0, q).expect("prima");
        let poles = model.poles().expect("poles");
        let rep = is_passive(&model, &poles, 1e3, 1e10, 60);
        prop_assert!(rep.is_passive(), "report {rep:?}");
    }

    /// All reduced poles of stable RC systems lie in the closed left half
    /// plane (PVL on symmetric RC is provably stable).
    #[test]
    fn pvl_poles_stable_for_rc(n in 20usize..80, q in 3usize..9) {
        let sys = rc_line(n, 100.0, 1e-12);
        let model = pvl_rom(&sys, 0.0, q).expect("pvl");
        for p in model.poles().expect("poles") {
            prop_assert!(p.re < 1e-6, "pole {p}");
        }
    }
}
