//! E2 — §2.1 cost claims: HB vs conventional transient as the time-scale
//! separation grows.
//!
//! The paper: "The large range in driving frequencies [80 KHz and 1.62
//! GHz] would require a conventional transient analysis to run for
//! several hundred thousand cycles" while HB cost is set by the harmonic
//! counts only. We sweep the carrier/baseband ratio and measure both.
//! Also runs the HB linear-solver ablation (`--ablate`): direct dense vs
//! GMRES with/without the per-harmonic preconditioner.

use rfsim::circuit::transient::{transient, TranOptions};
use rfsim::steady::{solve_hb, HbOptions, HbSolver, SpectralGrid, ToneAxis};
use rfsim_bench::{ablate, heading, modulator_chain, quadrature_modulator, timed, ModulatorSpec};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e02");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(h: &mut Harness) -> Result<(), String> {
    println!("E2: HB vs transient cost vs time-scale separation (§2.1)");
    heading("cost sweep (fixed carrier 100 MHz, shrinking baseband)");
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "ratio", "tran steps", "tran (s)", "hb unknowns", "hb (s)"
    );
    for ratio in [100.0, 300.0, 1000.0] {
        let f_lo = 100e6;
        let f_bb = f_lo / ratio;
        let spec = ModulatorSpec { f_bb, f_lo, ..Default::default() };
        let (dae, _) = quadrature_modulator(&spec);
        let label = format!("ratio={ratio:.0}");
        h.sweep_point(&label, &[("ratio", ratio)], |pm| {
            // Transient must cover one full baseband period at carrier
            // resolution: steps ∝ ratio.
            let dt = 1.0 / (f_lo * 30.0);
            let (tran, t_tr) = timed(|| {
                transient(&dae, 0.0, 1.0 / f_bb, &TranOptions { dt, ..Default::default() })
            });
            let tran = tran.map_err(|e| format!("transient at ratio {ratio}: {e}"))?;
            // HB cost: independent of the ratio.
            let grid = SpectralGrid::two_tone(ToneAxis::new(f_bb, 3), ToneAxis::new(f_lo, 3))
                .map_err(|e| format!("spectral grid: {e}"))?;
            let (sol, t_hb) = timed(|| solve_hb(&dae, &grid, &HbOptions::default()));
            let sol = sol.map_err(|e| format!("harmonic balance at ratio {ratio}: {e}"))?;
            pm.metric("tran_steps", tran.times.len() as f64);
            pm.metric("tran_seconds", t_tr);
            pm.metric("hb_unknowns", sol.stats.unknowns as f64);
            pm.metric("hb_seconds", t_hb);
            println!(
                "{:>10.0} {:>12} {:>12.3} {:>14} {:>12.3}",
                ratio,
                tran.times.len(),
                t_tr,
                sol.stats.unknowns,
                t_hb
            );
            Ok::<_, String>(())
        })?;
    }
    println!(
        "\nshape: transient cost grows ∝ ratio (paper: 'several hundred thousand\n\
         cycles' at ratio 2×10⁴); HB cost is flat — set by harmonics, not ratio."
    );

    heading("HB wall on the mixer ladder (kernel-dominated: block LU + GMRES + FFT)");
    println!("{:>10} {:>12} {:>10} {:>12}", "stages", "unknowns", "reps", "wall (s)");
    for (stages, reps) in [(128usize, 2usize), (144, 2)] {
        let spec = ModulatorSpec { f_bb: 1e6, f_lo: 100e6, ..Default::default() };
        let (dae, _) = modulator_chain(&spec, stages);
        let grid = SpectralGrid::two_tone(ToneAxis::new(spec.f_bb, 5), ToneAxis::new(spec.f_lo, 5))
            .map_err(|e| format!("spectral grid (ladder, {stages} stages): {e}"))?;
        let label = format!("hb:ladder stages={stages}");
        h.sweep_point(&label, &[("stages", stages as f64), ("reps", reps as f64)], |pm| {
            let mut unknowns = 0usize;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                let sol = solve_hb(&dae, &grid, &HbOptions::default())
                    .map_err(|e| format!("HB ladder ({stages} stages): {e}"))?;
                unknowns = sol.stats.unknowns;
            }
            let t = t0.elapsed().as_secs_f64();
            pm.metric("hb_unknowns", unknowns as f64);
            pm.metric("seconds_per_solve", t / reps as f64);
            println!("{:>10} {:>12} {:>10} {:>12.3}", stages, unknowns, reps, t);
            Ok::<_, String>(())
        })?;
    }

    if ablate() {
        heading("HB linear-solver ablation (direct vs GMRES ± preconditioner)");
        let spec = ModulatorSpec { f_bb: 1e6, f_lo: 100e6, ..Default::default() };
        let (dae, _) = quadrature_modulator(&spec);
        let grid = SpectralGrid::two_tone(ToneAxis::new(spec.f_bb, 3), ToneAxis::new(spec.f_lo, 3))
            .map_err(|e| format!("spectral grid: {e}"))?;
        println!(
            "{:>28} {:>10} {:>12} {:>14} {:>12}",
            "solver", "time (s)", "lin iters", "matvecs", "bytes"
        );
        for (name, solver) in [
            ("gmres + block precond", HbSolver::Gmres { precondition: true }),
            ("gmres (no precond)", HbSolver::Gmres { precondition: false }),
            ("direct dense", HbSolver::Direct),
        ] {
            let opts = HbOptions { solver, ..Default::default() };
            let (sol, t) = timed(|| solve_hb(&dae, &grid, &opts));
            let sol = sol.map_err(|e| format!("HB ablation '{name}': {e}"))?;
            println!(
                "{:>28} {:>10.3} {:>12} {:>14} {:>12}",
                name, t, sol.stats.linear_iterations, sol.stats.matvecs, sol.stats.solver_bytes
            );
        }
    } else {
        println!("\n(pass --ablate for the HB linear-solver ablation)");
    }
    Ok(())
}
