//! Request/response vocabulary of the service (DESIGN.md §13.2).
//!
//! One frame carries one JSON object. Requests name an `op` and an
//! optional numeric `id` the server echoes back, so clients can
//! pipeline. Every reply is either `{"ok":true,...}` with the result
//! and the per-job telemetry artifact, or `{"ok":false,"error":{...}}`
//! with a machine-readable `kind` — malformed input never kills the
//! server, it produces `bad_request`.

use rfsim_em::inductor::SpiralInductor;
use rfsim_telemetry::Json;
use std::collections::BTreeMap;

/// Ceiling on `sleep` requests so a hostile client cannot park a
/// worker forever.
pub const MAX_SLEEP_MS: u64 = 60_000;

/// A parsed request plus its client-chosen correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Echoed verbatim in the response (absent → echoed as null).
    pub id: Option<f64>,
    /// The operation.
    pub req: Request,
}

/// Service operations.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Queue/cache/counter introspection; answered inline.
    Stats,
    /// Full metrics snapshot (counters, gauges, quantile histograms)
    /// plus a Prometheus text rendering; answered inline.
    Metrics,
    /// Flight-recorder dump: the last N request records; answered
    /// inline.
    Dump,
    /// Deliberately panics the worker that picks it up. Exists to test
    /// the panic containment and automatic flight-recorder dump; the
    /// worker survives and the client gets a `solver` error.
    Panic,
    /// Asks the server to stop accepting work and drain.
    Shutdown,
    /// Occupies a worker for `ms` milliseconds. Exists for the
    /// backpressure tests: a deterministic way to saturate the pool.
    Sleep {
        /// Hold time, capped at [`MAX_SLEEP_MS`].
        ms: u64,
    },
    /// Harmonic-balance solve of a registry circuit.
    Hb(HbJob),
    /// Spiral-inductor extraction at one frequency.
    Extract(ExtractJob),
}

/// Harmonic-balance job parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HbJob {
    /// Registry circuit name: `rectifier`, `clipper`, or `lowpass`.
    pub circuit: String,
    /// Drive fundamental (Hz).
    pub f0: f64,
    /// Harmonics per side of the spectral grid.
    pub harmonics: usize,
    /// Drive amplitude (V).
    pub amp: f64,
}

impl HbJob {
    /// Warm-cache key. Amplitude is deliberately excluded: a resident
    /// sweep warm-starts nearby amplitudes and falls back to a cold
    /// solve on its own if the guess is too far — that reuse is the
    /// point of the cache.
    pub fn cache_key(&self) -> String {
        format!("hb:{}:{:016x}:{}", self.circuit, self.f0.to_bits(), self.harmonics)
    }
}

/// Extraction job parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractJob {
    /// Spiral geometry and materials.
    pub geometry: SpiralInductor,
    /// MoM panels per trace segment.
    pub panels_per_seg: usize,
    /// Quadrature points per segment for mutual inductances.
    pub nq: usize,
    /// GMRES relative tolerance. Defaults tight (1e-12) so warm and
    /// cold answers agree to the 1e-10 the integration tests demand.
    pub tol: f64,
    /// Extraction frequency (Hz).
    pub freq: f64,
}

impl ExtractJob {
    /// Warm-cache key: FNV-1a over the exact bit patterns of every
    /// build input (geometry, discretization, tolerance). Frequency is
    /// excluded — one resident extractor serves the whole sweep, which
    /// is exactly the nearby-frequency reuse the service sells.
    pub fn cache_key(&self) -> String {
        let g = &self.geometry;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for v in [g.outer, g.width, g.spacing, g.thickness, g.sigma, g.oxide, g.eps_ox, g.rho_sub] {
            mix(v.to_bits());
        }
        mix(g.turns as u64);
        mix(self.panels_per_seg as u64);
        mix(self.nq as u64);
        mix(self.tol.to_bits());
        format!("em:{h:016x}")
    }
}

/// Machine-readable error category of a failed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable or invalid request; the connection stays up.
    BadRequest,
    /// Admission control rejected the job: the queue is full.
    Overloaded,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The solver itself failed (divergence, bad geometry).
    Solver,
}

impl ErrorKind {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Solver => "solver",
        }
    }
}

fn id_json(id: Option<f64>) -> Json {
    id.map_or(Json::Null, Json::Num)
}

/// Builds a success response.
pub fn ok_response(id: Option<f64>, op: &str, warm: bool, result: Json, telemetry: Json) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("id", id_json(id)),
        ("op", Json::Str(op.to_string())),
        ("warm", Json::Bool(warm)),
        ("result", result),
        ("telemetry", telemetry),
    ])
}

/// Builds a structured error response.
pub fn error_response(id: Option<f64>, kind: ErrorKind, message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("id", id_json(id)),
        (
            "error",
            Json::obj([
                ("kind", Json::Str(kind.as_str().to_string())),
                ("message", Json::Str(message.to_string())),
            ]),
        ),
    ])
}

fn finite(v: &Json, what: &str) -> Result<f64, String> {
    let x = v.as_f64().ok_or_else(|| format!("{what} must be a number"))?;
    if x.is_finite() {
        Ok(x)
    } else {
        Err(format!("{what} must be finite"))
    }
}

fn positive(v: &Json, what: &str) -> Result<f64, String> {
    let x = finite(v, what)?;
    if x > 0.0 {
        Ok(x)
    } else {
        Err(format!("{what} must be positive"))
    }
}

fn count(v: &Json, what: &str, max: usize) -> Result<usize, String> {
    let x = finite(v, what)?;
    if x.fract() != 0.0 || x < 1.0 || x > max as f64 {
        return Err(format!("{what} must be an integer in 1..={max}"));
    }
    Ok(x as usize)
}

fn count_or(v: Option<&Json>, what: &str, max: usize, default: usize) -> Result<usize, String> {
    v.map_or(Ok(default), |v| count(v, what, max))
}

fn positive_or(v: Option<&Json>, what: &str, default: f64) -> Result<f64, String> {
    v.map_or(Ok(default), |v| positive(v, what))
}

fn parse_geometry(v: Option<&Json>) -> Result<SpiralInductor, String> {
    let d = SpiralInductor::default();
    let Some(v) = v else { return Ok(d) };
    if !matches!(v, Json::Obj(_)) {
        return Err("geometry must be an object".into());
    }
    Ok(SpiralInductor {
        outer: positive_or(v.get("outer"), "geometry.outer", d.outer)?,
        turns: count_or(v.get("turns"), "geometry.turns", 16, d.turns)?,
        width: positive_or(v.get("width"), "geometry.width", d.width)?,
        spacing: positive_or(v.get("spacing"), "geometry.spacing", d.spacing)?,
        thickness: positive_or(v.get("thickness"), "geometry.thickness", d.thickness)?,
        sigma: positive_or(v.get("sigma"), "geometry.sigma", d.sigma)?,
        oxide: positive_or(v.get("oxide"), "geometry.oxide", d.oxide)?,
        eps_ox: positive_or(v.get("eps_ox"), "geometry.eps_ox", d.eps_ox)?,
        rho_sub: positive_or(v.get("rho_sub"), "geometry.rho_sub", d.rho_sub)?,
    })
}

/// Parses one request frame, already decoded from JSON.
///
/// # Errors
/// A human-readable message destined for a `bad_request` response.
pub fn parse_request(v: &Json) -> Result<Envelope, String> {
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = match v.get("id") {
        None | Some(Json::Null) => None,
        Some(other) => Some(finite(other, "id")?),
    };
    let op = v.get("op").ok_or("missing \"op\"")?.as_str().ok_or("\"op\" must be a string")?;
    let req = match op {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "dump" => Request::Dump,
        "panic" => Request::Panic,
        "shutdown" => Request::Shutdown,
        "sleep" => {
            let ms = finite(v.get("ms").ok_or("sleep: missing \"ms\"")?, "ms")?;
            if !(0.0..=MAX_SLEEP_MS as f64).contains(&ms) || ms.fract() != 0.0 {
                return Err(format!("ms must be an integer in 0..={MAX_SLEEP_MS}"));
            }
            Request::Sleep { ms: ms as u64 }
        }
        "hb" => {
            let circuit = v
                .get("circuit")
                .ok_or("hb: missing \"circuit\"")?
                .as_str()
                .ok_or("\"circuit\" must be a string")?
                .to_string();
            Request::Hb(HbJob {
                circuit,
                f0: positive(v.get("f0").ok_or("hb: missing \"f0\"")?, "f0")?,
                harmonics: count_or(v.get("harmonics"), "harmonics", 64, 7)?,
                amp: positive_or(v.get("amp"), "amp", 1.0)?,
            })
        }
        "extract" => Request::Extract(ExtractJob {
            geometry: parse_geometry(v.get("geometry"))?,
            panels_per_seg: count_or(v.get("panels_per_seg"), "panels_per_seg", 8, 2)?,
            nq: count_or(v.get("nq"), "nq", 16, 4)?,
            tol: positive_or(v.get("tol"), "tol", 1e-12)?,
            freq: positive(v.get("freq").ok_or("extract: missing \"freq\"")?, "freq")?,
        }),
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Envelope { id, req })
}

/// Builds a JSON object from owned keys (the `Json::obj` helper wants
/// `'static` keys, counter maps do not have them).
pub fn dyn_obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
    Json::Obj(pairs.into_iter().collect::<BTreeMap<_, _>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_requests() {
        let v = Json::parse(r#"{"op":"ping","id":7}"#).unwrap();
        let env = parse_request(&v).unwrap();
        assert_eq!(env.id, Some(7.0));
        assert_eq!(env.req, Request::Ping);

        let v =
            Json::parse(r#"{"op":"hb","circuit":"rectifier","f0":1e6,"harmonics":5,"amp":0.8}"#)
                .unwrap();
        let Request::Hb(job) = parse_request(&v).unwrap().req else { panic!("not hb") };
        assert_eq!(job.harmonics, 5);
        assert_eq!(job.cache_key(), "hb:rectifier:412e848000000000:5");
    }

    #[test]
    fn rejects_bad_fields_with_messages() {
        for text in [
            r#"[1,2,3]"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"hb","circuit":"rectifier","f0":-1}"#,
            r#"{"op":"hb","circuit":"rectifier"}"#,
            r#"{"op":"sleep","ms":1e9}"#,
            r#"{"op":"extract","freq":1e9,"geometry":{"turns":0}}"#,
        ] {
            let v = Json::parse(text).unwrap();
            assert!(parse_request(&v).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn extract_key_ignores_frequency_but_not_geometry() {
        let base = ExtractJob {
            geometry: SpiralInductor::default(),
            panels_per_seg: 2,
            nq: 4,
            tol: 1e-12,
            freq: 1e9,
        };
        let nearby = ExtractJob { freq: 1.1e9, ..base.clone() };
        assert_eq!(base.cache_key(), nearby.cache_key());
        let mut other = base.clone();
        other.geometry.turns = 5;
        assert_ne!(base.cache_key(), other.cache_key());
    }
}
