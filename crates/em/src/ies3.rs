//! IES³: kernel-independent hierarchical compression of the dense
//! integral-equation matrix (paper, §4; Kapur & Long \[21\]).
//!
//! "With IES³, the matrix is recursively decomposed and compressed using
//! the singular value decomposition. The interaction between
//! well-separated groups of discretization elements is represented using a
//! low-rank outer product. The interaction need not have a 1/|r−r′|
//! dependence."
//!
//! Implementation: a binary spatial cluster tree over the panels; for each
//! admissible cluster pair the block is built by adaptive cross
//! approximation (sampling O(r·(m+n)) kernel entries, never the full
//! block) and recompressed with a truncated SVD; inadmissible leaf pairs
//! stay dense. The result stores O(n log n)-ish data, multiplies in the
//! same, and plugs into GMRES as a [`LinearOperator`].

use crate::geom::Panel;
use crate::kernel::GreenFn;
use crate::{Error, Result};
use rfsim_numerics::dense::{Mat, Qr};
use rfsim_numerics::kernels;
use rfsim_numerics::krylov::LinearOperator;
use rfsim_numerics::svd::Svd;
use rfsim_numerics::AlignedVec;
use rfsim_parallel as parallel;
use rfsim_telemetry as telemetry;

/// Options controlling the compression.
#[derive(Debug, Clone, Copy)]
pub struct Ies3Options {
    /// Maximum panels in a leaf cluster.
    pub leaf_size: usize,
    /// Admissibility parameter: a block is compressed when
    /// `max(diam) ≤ eta · dist`.
    pub eta: f64,
    /// Relative truncation tolerance for block ranks.
    pub tol: f64,
    /// Hard cap on block rank.
    pub max_rank: usize,
}

impl Default for Ies3Options {
    fn default() -> Self {
        Ies3Options { leaf_size: 24, eta: 1.5, tol: 1e-6, max_rank: 48 }
    }
}

/// A cluster of panel indices with its bounding box.
#[derive(Debug, Clone)]
struct Cluster {
    /// Range into the permuted index array.
    lo: usize,
    hi: usize,
    bb_min: [f64; 3],
    bb_max: [f64; 3],
    children: Option<(usize, usize)>,
}

impl Cluster {
    fn diameter(&self) -> f64 {
        let dx = self.bb_max[0] - self.bb_min[0];
        let dy = self.bb_max[1] - self.bb_min[1];
        let dz = self.bb_max[2] - self.bb_min[2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    fn distance(&self, other: &Cluster) -> f64 {
        let mut d2 = 0.0;
        for k in 0..3 {
            let gap =
                (self.bb_min[k] - other.bb_max[k]).max(other.bb_min[k] - self.bb_max[k]).max(0.0);
            d2 += gap * gap;
        }
        d2.sqrt()
    }

    fn len(&self) -> usize {
        self.hi - self.lo
    }
}

enum Block {
    Dense { row0: usize, col0: usize, m: Mat<f64> },
    LowRank { row0: usize, col0: usize, u: Mat<f64>, vt: Mat<f64> },
}

/// Reusable buffers for the serial [`CompressedMatrix::matvec_into`]
/// path. Behind a `Mutex` because the matvec takes `&self` (the matrix
/// is shared across GMRES iterations) — uncontended in the serial case,
/// and the parallel path never touches it.
#[derive(Debug, Default)]
struct MatvecScratch {
    /// Input permuted into cluster order (32-byte aligned for the SIMD
    /// block kernels).
    xp: AlignedVec<f64>,
    /// Accumulated output in cluster order.
    yp: AlignedVec<f64>,
    /// Per-block contribution.
    buf: AlignedVec<f64>,
    /// Low-rank intermediate `Vᵀ·x`.
    t: AlignedVec<f64>,
}

/// The IES³-compressed potential matrix.
pub struct CompressedMatrix {
    n: usize,
    /// permuted position → original panel index.
    perm: Vec<usize>,
    blocks: Vec<Block>,
    scratch: std::sync::Mutex<MatvecScratch>,
}

impl std::fmt::Debug for CompressedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompressedMatrix(n = {}, blocks = {}, bytes = {})",
            self.n,
            self.blocks.len(),
            self.memory_bytes()
        )
    }
}

fn bbox(panels: &[Panel], idx: &[usize]) -> ([f64; 3], [f64; 3]) {
    let mut mn = [f64::INFINITY; 3];
    let mut mx = [f64::NEG_INFINITY; 3];
    for &i in idx {
        let c = panels[i].center;
        for (k, v) in [c.x, c.y, c.z].into_iter().enumerate() {
            mn[k] = mn[k].min(v);
            mx[k] = mx[k].max(v);
        }
    }
    (mn, mx)
}

/// Builds the cluster tree; returns (clusters, root index) with `perm`
/// reordered so each cluster owns a contiguous range.
fn build_tree(panels: &[Panel], perm: &mut Vec<usize>, leaf_size: usize) -> (Vec<Cluster>, usize) {
    let mut clusters = Vec::new();
    // Recursive worklist: (lo, hi) ranges into perm.
    fn recurse(
        panels: &[Panel],
        perm: &mut Vec<usize>,
        lo: usize,
        hi: usize,
        leaf_size: usize,
        clusters: &mut Vec<Cluster>,
    ) -> usize {
        let (mn, mx) = bbox(panels, &perm[lo..hi]);
        let id = clusters.len();
        clusters.push(Cluster { lo, hi, bb_min: mn, bb_max: mx, children: None });
        if hi - lo > leaf_size {
            // Split on the longest axis at the median.
            let mut axis = 0;
            let mut best = mx[0] - mn[0];
            for k in 1..3 {
                if mx[k] - mn[k] > best {
                    best = mx[k] - mn[k];
                    axis = k;
                }
            }
            let key = |i: usize| {
                let c = panels[i].center;
                match axis {
                    0 => c.x,
                    1 => c.y,
                    _ => c.z,
                }
            };
            perm[lo..hi].sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("finite"));
            let mid = lo + (hi - lo) / 2;
            let l = recurse(panels, perm, lo, mid, leaf_size, clusters);
            let r = recurse(panels, perm, mid, hi, leaf_size, clusters);
            clusters[id].children = Some((l, r));
        }
        id
    }
    let n = perm.len();
    let root = recurse(panels, perm, 0, n, leaf_size, &mut clusters);
    (clusters, root)
}

/// Adaptive cross approximation of the block `A[rows, cols]`, sampling
/// whole kernel rows/columns through the batched quadrature, followed by
/// SVD recompression. Returns `(U, Vᵀ)`.
fn aca_block(
    panels: &[Panel],
    green: &GreenFn,
    rows: &[usize],
    cols: &[usize],
    tol: f64,
    max_rank: usize,
) -> (Mat<f64>, Mat<f64>) {
    let (m, n) = (rows.len(), cols.len());
    let mut us: Vec<Vec<f64>> = Vec::new();
    let mut vs: Vec<Vec<f64>> = Vec::new();
    let mut used_rows = vec![false; m];
    let mut row_pivot = 0usize;
    let mut approx_norm2 = 0.0f64;
    for _k in 0..max_rank.min(m).min(n) {
        // Residual row at row_pivot.
        let mut r = vec![0.0; n];
        green.coefficient_row_into(&panels[rows[row_pivot]], panels, cols, &mut r);
        for (u, v) in us.iter().zip(&vs) {
            let s = u[row_pivot];
            kernels::axpy_f64(-s, v, &mut r);
        }
        used_rows[row_pivot] = true;
        // Column pivot.
        let (mut cp, mut cmax) = (0usize, 0.0f64);
        for (j, &rj) in r.iter().enumerate() {
            if rj.abs() > cmax {
                cmax = rj.abs();
                cp = j;
            }
        }
        if cmax < 1e-300 {
            break;
        }
        let pivot = r[cp];
        let v: Vec<f64> = r.iter().map(|x| x / pivot).collect();
        // Residual column at cp.
        let mut c = vec![0.0; m];
        green.coefficient_col_into(&panels[cols[cp]], panels, rows, &mut c);
        for (u, vv) in us.iter().zip(&vs) {
            let s = vv[cp];
            kernels::axpy_f64(-s, u, &mut c);
        }
        let unorm: f64 = kernels::norm2_sq_f64(&c).sqrt();
        let vnorm: f64 = kernels::norm2_sq_f64(&v).sqrt();
        approx_norm2 += (unorm * vnorm).powi(2);
        us.push(c.clone());
        vs.push(v);
        if unorm * vnorm <= tol * approx_norm2.sqrt() {
            break;
        }
        // Next row pivot: largest |c| among unused rows.
        let mut best = 0.0;
        let mut next = usize::MAX;
        for (i, &ci) in c.iter().enumerate() {
            if !used_rows[i] && ci.abs() > best {
                best = ci.abs();
                next = i;
            }
        }
        if next == usize::MAX {
            break;
        }
        row_pivot = next;
    }
    let r = us.len().max(1);
    let mut u = Mat::zeros(m, r);
    let mut vt = Mat::zeros(r, n);
    for (k, (uk, vk)) in us.iter().zip(&vs).enumerate() {
        for i in 0..m {
            u[(i, k)] = uk[i];
        }
        for j in 0..n {
            vt[(k, j)] = vk[j];
        }
    }
    if us.is_empty() {
        return (u, vt); // zero block
    }
    svd_recompress(u, vt, tol)
}

/// Recompression: `U·Vᵀ = (Qu·Ru)(Rv·Qvᵀ)ᵀ`-style reduction via QR + SVD of
/// the small core, truncating at `tol` relative to σ₁.
fn svd_recompress(u: Mat<f64>, vt: Mat<f64>, tol: f64) -> (Mat<f64>, Mat<f64>) {
    let r = u.cols();
    if r <= 1 {
        return (u, vt);
    }
    let qu = match Qr::new(&u) {
        Ok(q) => q,
        Err(_) => return (u, vt),
    };
    let v = vt.transpose();
    let qv = match Qr::new(&v) {
        Ok(q) => q,
        Err(_) => return (u, vt),
    };
    let core = qu.r.matmul(&qv.r.transpose());
    let svd = match Svd::new(&core) {
        Ok(s) => s,
        Err(_) => return (u, vt),
    };
    let keep = svd.rank(tol).max(1);
    let (us, vt_core) = svd.truncate(keep);
    // U' = Qu·(U_core·Σ), Vᵀ' = Vᵀ_core·Qvᵀ.
    let u_new = qu.q.matmul(&us);
    let vt_new = vt_core.matmul(&qv.q.transpose());
    (u_new, vt_new)
}

impl CompressedMatrix {
    /// Builds the compressed matrix for a panel set and kernel.
    ///
    /// # Errors
    /// [`Error::Geometry`] for an empty panel set.
    pub fn build(panels: &[Panel], green: &GreenFn, opts: &Ies3Options) -> Result<Self> {
        if panels.is_empty() {
            return Err(Error::Geometry("no panels".into()));
        }
        let _span = telemetry::span("ies3.build");
        kernels::note_dispatch(1);
        let n = panels.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let (clusters, root) = build_tree(panels, &mut perm, opts.leaf_size);
        // Phase 1 (serial): recursive block partition of (row cluster,
        // col cluster) into a flat job list. The enumeration order fixes the
        // block order — and therefore the matvec accumulation order — so the
        // parallel phase below cannot perturb results.
        enum Job {
            LowRank { ci: usize, cj: usize },
            Dense { ci: usize, cj: usize },
        }
        let mut jobs = Vec::new();
        let mut stack = vec![(root, root)];
        while let Some((ci, cj)) = stack.pop() {
            let (a, b) = (&clusters[ci], &clusters[cj]);
            let dist = a.distance(b);
            let admissible = dist > 0.0 && a.diameter().max(b.diameter()) <= opts.eta * dist;
            if admissible {
                jobs.push(Job::LowRank { ci, cj });
            } else {
                match (a.children, b.children) {
                    (None, None) => jobs.push(Job::Dense { ci, cj }),
                    (Some((l, r)), None) => {
                        stack.push((l, cj));
                        stack.push((r, cj));
                    }
                    (None, Some((l, r))) => {
                        stack.push((ci, l));
                        stack.push((ci, r));
                    }
                    (Some((al, ar)), Some((bl, br))) => {
                        stack.push((al, bl));
                        stack.push((al, br));
                        stack.push((ar, bl));
                        stack.push((ar, br));
                    }
                }
            }
        }
        // Phase 2 (parallel): each block compresses independently; results
        // land back in job order.
        let perm_ref = &perm;
        let blocks = parallel::par_map_indexed(jobs.len(), |k| match jobs[k] {
            Job::LowRank { ci, cj } => {
                let (a, b) = (&clusters[ci], &clusters[cj]);
                let rows: Vec<usize> = perm_ref[a.lo..a.hi].to_vec();
                let cols: Vec<usize> = perm_ref[b.lo..b.hi].to_vec();
                let (u, vt) = aca_block(panels, green, &rows, &cols, opts.tol, opts.max_rank);
                Block::LowRank { row0: a.lo, col0: b.lo, u, vt }
            }
            Job::Dense { ci, cj } => {
                let (a, b) = (&clusters[ci], &clusters[cj]);
                let cols: Vec<usize> = perm_ref[b.lo..b.hi].to_vec();
                let mut m = Mat::zeros(a.len(), b.len());
                for i in 0..a.len() {
                    green.coefficient_row_into(
                        &panels[perm_ref[a.lo + i]],
                        panels,
                        &cols,
                        m.row_mut(i),
                    );
                }
                Block::Dense { row0: a.lo, col0: b.lo, m }
            }
        });
        let cm = CompressedMatrix {
            n,
            perm,
            blocks,
            scratch: std::sync::Mutex::new(MatvecScratch::default()),
        };
        if telemetry::enabled() {
            let lr = cm.low_rank_blocks();
            let bytes = cm.memory_bytes();
            telemetry::counter_add("ies3.builds", 1);
            telemetry::counter_add("ies3.low_rank_blocks", lr as u64);
            telemetry::counter_add("ies3.dense_blocks", (cm.blocks.len() - lr) as u64);
            telemetry::gauge_set("ies3.compressed_bytes", bytes as f64);
            telemetry::gauge_set("ies3.dense_bytes", (n * n * 8) as f64);
            telemetry::gauge_set("ies3.compression_ratio", bytes as f64 / (n * n * 8) as f64);
            // NaN/Inf tripwire: a poisoned kernel evaluation (degenerate
            // panel, bad Green's-function parameters) would otherwise
            // surface only as mysterious GMRES stagnation downstream.
            for (k, block) in cm.blocks.iter().enumerate() {
                let finite = match block {
                    Block::LowRank { u, vt, .. } => {
                        u.as_slice().iter().all(|v| v.is_finite())
                            && vt.as_slice().iter().all(|v| v.is_finite())
                    }
                    Block::Dense { m, .. } => m.as_slice().iter().all(|v| v.is_finite()),
                };
                if !finite {
                    telemetry::record_health(
                        "nonfinite",
                        "ies3.build",
                        &format!("block {k} of {} contains NaN/Inf entries", cm.blocks.len()),
                        f64::NAN,
                        k,
                    );
                    break;
                }
            }
        }
        Ok(cm)
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the (impossible) empty matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bytes used by the compressed representation.
    pub fn memory_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| match b {
                Block::Dense { m, .. } => m.rows() * m.cols() * 8,
                Block::LowRank { u, vt, .. } => (u.rows() * u.cols() + vt.rows() * vt.cols()) * 8,
            })
            .sum::<usize>()
            + self.perm.len() * 8
    }

    /// Number of low-rank blocks (diagnostics).
    pub fn low_rank_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| matches!(b, Block::LowRank { .. })).count()
    }

    /// Compressed matvec in the **original** panel ordering.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec_into(x, &mut y);
        y
    }

    /// Compressed matvec into a caller-provided buffer. On one thread
    /// this allocates nothing after warmup (buffers persist in an
    /// internal scratch), so a GMRES solve over the compressed operator
    /// runs allocation-free like the HB hot path. With multiple workers
    /// the per-block contributions compute in parallel and accumulate
    /// serially in block order, so the result bits are identical to the
    /// serial path for any thread count.
    ///
    /// # Panics
    /// Panics if `x` or `y` are not `len()` long.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "matvec: length mismatch");
        assert_eq!(y.len(), self.n, "matvec_into: output length mismatch");
        kernels::note_dispatch(1);
        if parallel::thread_count() <= 1 {
            self.matvec_serial(x, y);
            return;
        }
        // Permute input.
        let xp: Vec<f64> = self.perm.iter().map(|&o| x[o]).collect();
        let xp_ref = &xp;
        let contribs: Vec<(usize, Vec<f64>)> =
            parallel::par_map_indexed(self.blocks.len(), |k| match &self.blocks[k] {
                Block::Dense { row0, col0, m } => {
                    let xs = &xp_ref[*col0..col0 + m.cols()];
                    (*row0, m.matvec(xs))
                }
                Block::LowRank { row0, col0, u, vt } => {
                    let xs = &xp_ref[*col0..col0 + vt.cols()];
                    let t = vt.matvec(xs);
                    (*row0, u.matvec(&t))
                }
            });
        let mut yp = vec![0.0; self.n];
        for (row0, ys) in contribs {
            for (i, v) in ys.into_iter().enumerate() {
                yp[row0 + i] += v;
            }
        }
        // Un-permute output.
        for (p, &o) in self.perm.iter().enumerate() {
            y[o] = yp[p];
        }
    }

    /// Serial matvec through the persistent scratch: zero allocations
    /// after the first call, bitwise identical to the parallel path
    /// (same per-block arithmetic, same block-order accumulation).
    fn matvec_serial(&self, x: &[f64], y: &mut [f64]) {
        let mut guard = self.scratch.lock().expect("ies3 scratch poisoned");
        let MatvecScratch { xp, yp, buf, t } = &mut *guard;
        xp.clear();
        xp.extend(self.perm.iter().map(|&o| x[o]));
        yp.clear();
        yp.resize(self.n, 0.0);
        for block in &self.blocks {
            match block {
                Block::Dense { row0, col0, m } => {
                    let xs = &xp[*col0..col0 + m.cols()];
                    buf.resize(m.rows(), 0.0);
                    m.matvec_into(xs, buf);
                    for (i, v) in buf.iter().enumerate() {
                        yp[row0 + i] += *v;
                    }
                }
                Block::LowRank { row0, col0, u, vt } => {
                    let xs = &xp[*col0..col0 + vt.cols()];
                    t.resize(vt.rows(), 0.0);
                    vt.matvec_into(xs, t);
                    buf.resize(u.rows(), 0.0);
                    u.matvec_into(t, buf);
                    for (i, v) in buf.iter().enumerate() {
                        yp[row0 + i] += *v;
                    }
                }
            }
        }
        for (p, &o) in self.perm.iter().enumerate() {
            y[o] = yp[p];
        }
    }

    /// Applies the operator to `p` vectors at once, amortizing the
    /// permutation and block-tree traversal and parallelizing over
    /// `blocks × columns` jointly — the work unit block GMRES drives
    /// when it solves every conductor excitation against one shared
    /// operator. Accumulation stays in block order per column, so each
    /// column is bitwise identical to a standalone [`Self::matvec`].
    fn matvec_block(&self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) {
        let p = xs.len();
        if p == 0 {
            return;
        }
        // Permute every input once.
        let xps: Vec<Vec<f64>> =
            xs.iter().map(|x| self.perm.iter().map(|&o| x[o]).collect()).collect();
        let xps_ref = &xps;
        let contribs: Vec<(usize, Vec<f64>)> =
            parallel::par_map_indexed(self.blocks.len() * p, |k| {
                let (bi, j) = (k / p, k % p);
                let xp = &xps_ref[j];
                match &self.blocks[bi] {
                    Block::Dense { row0, col0, m } => {
                        let xs = &xp[*col0..col0 + m.cols()];
                        (*row0, m.matvec(xs))
                    }
                    Block::LowRank { row0, col0, u, vt } => {
                        let xs = &xp[*col0..col0 + vt.cols()];
                        let t = vt.matvec(xs);
                        (*row0, u.matvec(&t))
                    }
                }
            });
        // Job index order is (block, column), so walking contributions in
        // order accumulates each column in block order — the same order as
        // the single-vector paths.
        let mut yps = vec![vec![0.0; self.n]; p];
        for (k, (row0, contrib)) in contribs.into_iter().enumerate() {
            let yp = &mut yps[k % p];
            for (i, v) in contrib.into_iter().enumerate() {
                yp[row0 + i] += v;
            }
        }
        for (yp, y) in yps.iter().zip(ys.iter_mut()) {
            for (pos, &o) in self.perm.iter().enumerate() {
                y[o] = yp[pos];
            }
        }
    }
}

impl LinearOperator<f64> for CompressedMatrix {
    fn dim(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
    fn apply_block(&self, xs: &[Vec<f64>], ys: &mut [Vec<f64>]) {
        self.matvec_block(xs, ys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{mesh_parallel_plates, mesh_plate};
    use crate::mom::MomProblem;
    use rfsim_numerics::krylov::KrylovOptions;

    fn plate_problem(n: usize) -> MomProblem {
        let panels = mesh_plate(0.0, 0.0, 0.0, 1e-3, 1e-3, n, n, 0);
        MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap()
    }

    #[test]
    fn compressed_matvec_matches_dense() {
        let p = plate_problem(12); // 144 panels
        let dense = p.assemble_dense();
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let x: Vec<f64> = (0..p.len()).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let yd = dense.matvec(&x);
        let yc = cm.matvec(&x);
        let scale = yd.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (a, b) in yd.iter().zip(&yc) {
            assert!((a - b).abs() < 1e-4 * scale, "{a} vs {b}");
        }
        assert!(cm.low_rank_blocks() > 0, "compression actually happened");
    }

    #[test]
    fn compression_saves_memory() {
        let p = plate_problem(20); // 400 panels
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let dense_bytes = p.len() * p.len() * 8;
        assert!(
            cm.memory_bytes() < dense_bytes,
            "compressed {} !< dense {}",
            cm.memory_bytes(),
            dense_bytes
        );
    }

    #[test]
    fn scaling_is_subquadratic() {
        // Memory ratio between n=256 and n=1024 panels should be well
        // below the 16x of dense storage.
        let small = plate_problem(16); // 256
        let large = plate_problem(32); // 1024
        let opts = Ies3Options::default();
        let cs = CompressedMatrix::build(&small.panels, &small.green, &opts).unwrap();
        let cl = CompressedMatrix::build(&large.panels, &large.green, &opts).unwrap();
        let ratio = cl.memory_bytes() as f64 / cs.memory_bytes() as f64;
        assert!(ratio < 10.0, "memory grew {ratio:.1}x for 4x panels");
    }

    #[test]
    fn gmres_solution_through_compression() {
        let panels = mesh_parallel_plates(1e-3, 5e-5, 8); // 128 panels
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let volts = [1.0, 0.0];
        let qd = p.solve_dense(&volts).unwrap();
        let (qc, stats) = p
            .solve_iterative(&cm, &volts, &KrylovOptions { tol: 1e-9, ..Default::default() })
            .unwrap();
        assert!(stats.iterations < 200);
        let qscale = qd.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (a, b) in qd.iter().zip(&qc) {
            assert!((a - b).abs() < 1e-3 * qscale, "{a} vs {b}");
        }
        // Extracted capacitance agrees.
        let cd: f64 = p.conductor_charges(&qd)[0];
        let cc: f64 = p.conductor_charges(&qc)[0];
        assert!((cd - cc).abs() / cd.abs() < 1e-3);
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let p = plate_problem(12);
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let x: Vec<f64> = (0..p.len()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let y1 = cm.matvec(&x);
        let mut y2 = vec![0.0; p.len()];
        cm.matvec_into(&x, &mut y2);
        assert_eq!(y1, y2);
        // And again through the already-warm scratch.
        cm.matvec_into(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn apply_block_matches_per_column_bitwise() {
        use rfsim_numerics::krylov::LinearOperator;
        let p = plate_problem(12);
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let xs: Vec<Vec<f64>> = (0..3)
            .map(|j| (0..p.len()).map(|i| ((i * 7 + j * 3) % 5) as f64 - 2.0).collect())
            .collect();
        let mut ys = vec![vec![0.0; p.len()]; 3];
        cm.apply_block(&xs, &mut ys);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(&cm.matvec(x), y);
        }
    }

    #[test]
    fn kernel_independence_halfspace() {
        // The same machinery compresses the image-augmented kernel (not a
        // pure 1/r dependence) — the IES³ selling point vs FastCap.
        let panels = mesh_plate(0.0, 0.0, 2e-5, 1e-3, 1e-3, 12, 12, 0);
        let green = GreenFn::HalfSpace { eps_r: 3.9, z0: 0.0, k: 0.7 };
        let p = MomProblem::new(panels, green).unwrap();
        let dense = p.assemble_dense();
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let x = vec![1.0; p.len()];
        let yd = dense.matvec(&x);
        let yc = cm.matvec(&x);
        let scale = yd.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (a, b) in yd.iter().zip(&yc) {
            assert!((a - b).abs() < 1e-4 * scale);
        }
    }
}
