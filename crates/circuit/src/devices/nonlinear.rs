//! Nonlinear semiconductor devices: Shockley diode, Ebers–Moll BJT and a
//! level-1 MOSFET, each with shot/thermal/flicker noise generators.
//!
//! "Sophisticated semiconductor device equations require nonlinear modeling
//! of the majority of components" in RF ICs (paper, §2.1) — these models
//! supply that nonlinear population for the HB and MPDE studies.

use super::{limited_exp, GMIN};
use crate::dae::{LoadCtx, NoiseCtx, NoiseSource, Psd, Var};
use crate::netlist::{Device, NodeId};
use crate::{BOLTZMANN, Q_ELECTRON, VT_300K};

/// Shockley diode `i = Is·(exp(v/(n·Vt)) − 1) + gmin·v` from anode to
/// cathode, with shot noise `2qI` and an optional 1/f corner.
#[derive(Debug, Clone)]
pub struct Diode {
    name: String,
    anode: NodeId,
    cathode: NodeId,
    is: f64,
    n: f64,
    flicker_corner: f64,
}

impl Diode {
    /// Creates a diode with saturation current `is` (A) and ideality 1.
    pub fn new(name: &str, anode: NodeId, cathode: NodeId, is: f64) -> Self {
        assert!(is > 0.0, "diode {name}: saturation current must be positive");
        Diode { name: name.into(), anode, cathode, is, n: 1.0, flicker_corner: 0.0 }
    }

    /// Sets the ideality factor.
    pub fn with_ideality(mut self, n: f64) -> Self {
        self.n = n;
        self
    }

    /// Adds a 1/f noise corner frequency (Hz).
    pub fn with_flicker_corner(mut self, corner: f64) -> Self {
        self.flicker_corner = corner;
        self
    }

    /// Current and conductance at junction voltage `v`.
    pub fn iv(&self, v: f64) -> (f64, f64) {
        let nvt = self.n * VT_300K;
        let (e, de) = limited_exp(v / nvt);
        let i = self.is * (e - 1.0) + GMIN * v;
        let g = self.is * de / nvt + GMIN;
        (i, g)
    }
}

impl Device for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let v = ctx.v(self.anode) - ctx.v(self.cathode);
        let (i, g) = self.iv(v);
        ctx.add_f(Var::Node(self.anode), i);
        ctx.add_f(Var::Node(self.cathode), -i);
        ctx.add_g(Var::Node(self.anode), Var::Node(self.anode), g);
        ctx.add_g(Var::Node(self.anode), Var::Node(self.cathode), -g);
        ctx.add_g(Var::Node(self.cathode), Var::Node(self.anode), -g);
        ctx.add_g(Var::Node(self.cathode), Var::Node(self.cathode), g);
    }

    fn noise(&self, x_op: &[f64], ctx: &NoiseCtx<'_>) -> Vec<NoiseSource> {
        let va = ctx.index(Var::Node(self.anode)).map_or(0.0, |i| x_op[i]);
        let vc = ctx.index(Var::Node(self.cathode)).map_or(0.0, |i| x_op[i]);
        let (i, _) = self.iv(va - vc);
        let shot = 2.0 * Q_ELECTRON * i.abs();
        let psd = if self.flicker_corner > 0.0 {
            Psd::Flicker { white: shot, corner: self.flicker_corner }
        } else {
            Psd::White(shot)
        };
        vec![NoiseSource {
            label: format!("{} shot", self.name),
            from: ctx.index(Var::Node(self.anode)),
            to: ctx.index(Var::Node(self.cathode)),
            psd,
        }]
    }
}

/// BJT polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BjtPolarity {
    /// NPN transistor.
    #[default]
    Npn,
    /// PNP transistor.
    Pnp,
}

/// Ebers–Moll (transport form) bipolar junction transistor.
///
/// Terminal currents for an NPN (into the device):
///
/// ```text
/// Icc = Is·(exp(v_be/Vt) − exp(v_bc/Vt))
/// Ic  = Icc − (Is/βr)·(exp(v_bc/Vt) − 1)
/// Ib  = (Is/βf)·(exp(v_be/Vt) − 1) + (Is/βr)·(exp(v_bc/Vt) − 1)
/// Ie  = −(Ic + Ib)
/// ```
#[derive(Debug, Clone)]
pub struct Bjt {
    name: String,
    collector: NodeId,
    base: NodeId,
    emitter: NodeId,
    is: f64,
    beta_f: f64,
    beta_r: f64,
    polarity: BjtPolarity,
    flicker_corner: f64,
}

impl Bjt {
    /// Creates an NPN transistor with saturation current `is` and forward
    /// beta `beta_f` (reverse beta defaults to 1).
    pub fn npn(
        name: &str,
        collector: NodeId,
        base: NodeId,
        emitter: NodeId,
        is: f64,
        beta_f: f64,
    ) -> Self {
        Bjt {
            name: name.into(),
            collector,
            base,
            emitter,
            is,
            beta_f,
            beta_r: 1.0,
            polarity: BjtPolarity::Npn,
            flicker_corner: 0.0,
        }
    }

    /// Creates a PNP transistor.
    pub fn pnp(
        name: &str,
        collector: NodeId,
        base: NodeId,
        emitter: NodeId,
        is: f64,
        beta_f: f64,
    ) -> Self {
        Bjt { polarity: BjtPolarity::Pnp, ..Self::npn(name, collector, base, emitter, is, beta_f) }
    }

    /// Sets the reverse beta.
    pub fn with_beta_r(mut self, beta_r: f64) -> Self {
        self.beta_r = beta_r;
        self
    }

    /// Adds a base-current 1/f noise corner (Hz).
    pub fn with_flicker_corner(mut self, corner: f64) -> Self {
        self.flicker_corner = corner;
        self
    }

    /// Computes `(ic, ib, and partial derivatives)` at junction voltages
    /// `(v_be, v_bc)` in polarity-normalized coordinates.
    fn currents(&self, vbe: f64, vbc: f64) -> BjtOp {
        let vt = VT_300K;
        let (ebe, debe) = limited_exp(vbe / vt);
        let (ebc, debc) = limited_exp(vbc / vt);
        let icc = self.is * (ebe - ebc);
        let ic = icc - (self.is / self.beta_r) * (ebc - 1.0) + GMIN * (vbe - vbc);
        let ib = (self.is / self.beta_f) * (ebe - 1.0)
            + (self.is / self.beta_r) * (ebc - 1.0)
            + GMIN * vbe;
        BjtOp {
            ic,
            ib,
            dic_dvbe: self.is * debe / vt + GMIN,
            dic_dvbc: -self.is * debc / vt - (self.is / self.beta_r) * debc / vt - GMIN,
            dib_dvbe: (self.is / self.beta_f) * debe / vt + GMIN,
            dib_dvbc: (self.is / self.beta_r) * debc / vt,
        }
    }
}

struct BjtOp {
    ic: f64,
    ib: f64,
    dic_dvbe: f64,
    dic_dvbc: f64,
    dib_dvbe: f64,
    dib_dvbc: f64,
}

impl Device for Bjt {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let sgn = match self.polarity {
            BjtPolarity::Npn => 1.0,
            BjtPolarity::Pnp => -1.0,
        };
        let vb = ctx.v(self.base);
        let vc = ctx.v(self.collector);
        let ve = ctx.v(self.emitter);
        let op = self.currents(sgn * (vb - ve), sgn * (vb - vc));
        let ic = sgn * op.ic;
        let ib = sgn * op.ib;
        let ie = -(ic + ib);
        ctx.add_f(Var::Node(self.collector), ic);
        ctx.add_f(Var::Node(self.base), ib);
        ctx.add_f(Var::Node(self.emitter), ie);
        // Chain rule: v_be = sgn(vb−ve), v_bc = sgn(vb−vc); derivative of a
        // polarity-flipped current w.r.t. raw node voltage picks up sgn².
        // d ic / d vb = dic_dvbe + dic_dvbc, etc. (sgn² = 1).
        let dic_db = op.dic_dvbe + op.dic_dvbc;
        let dic_de = -op.dic_dvbe;
        let dic_dc = -op.dic_dvbc;
        let dib_db = op.dib_dvbe + op.dib_dvbc;
        let dib_de = -op.dib_dvbe;
        let dib_dc = -op.dib_dvbc;
        let stamps = [
            (self.collector, dic_dc, dic_db, dic_de),
            (self.base, dib_dc, dib_db, dib_de),
            (self.emitter, -(dic_dc + dib_dc), -(dic_db + dib_db), -(dic_de + dib_de)),
        ];
        for (eq, dc, db, de) in stamps {
            ctx.add_g(Var::Node(eq), Var::Node(self.collector), dc);
            ctx.add_g(Var::Node(eq), Var::Node(self.base), db);
            ctx.add_g(Var::Node(eq), Var::Node(self.emitter), de);
        }
    }

    fn noise(&self, x_op: &[f64], ctx: &NoiseCtx<'_>) -> Vec<NoiseSource> {
        let v_of = |n: NodeId| ctx.index(Var::Node(n)).map_or(0.0, |i| x_op[i]);
        let sgn = match self.polarity {
            BjtPolarity::Npn => 1.0,
            BjtPolarity::Pnp => -1.0,
        };
        let op = self.currents(
            sgn * (v_of(self.base) - v_of(self.emitter)),
            sgn * (v_of(self.base) - v_of(self.collector)),
        );
        let base_psd = {
            let shot = 2.0 * Q_ELECTRON * op.ib.abs();
            if self.flicker_corner > 0.0 {
                Psd::Flicker { white: shot, corner: self.flicker_corner }
            } else {
                Psd::White(shot)
            }
        };
        vec![
            NoiseSource {
                label: format!("{} collector shot", self.name),
                from: ctx.index(Var::Node(self.collector)),
                to: ctx.index(Var::Node(self.emitter)),
                psd: Psd::White(2.0 * Q_ELECTRON * op.ic.abs()),
            },
            NoiseSource {
                label: format!("{} base shot", self.name),
                from: ctx.index(Var::Node(self.base)),
                to: ctx.index(Var::Node(self.emitter)),
                psd: base_psd,
            },
        ]
    }
}

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MosPolarity {
    /// N-channel.
    #[default]
    Nmos,
    /// P-channel.
    Pmos,
}

/// Level-1 (square-law) MOSFET with channel-length modulation.
///
/// ```text
/// triode:     id = kp·((v_gs − Vt)·v_ds − v_ds²/2)·(1 + λ·v_ds)
/// saturation: id = (kp/2)·(v_gs − Vt)²·(1 + λ·v_ds)
/// ```
///
/// Drain/source are swapped internally for `v_ds < 0` so the model is
/// symmetric.
#[derive(Debug, Clone)]
pub struct Mosfet {
    name: String,
    drain: NodeId,
    gate: NodeId,
    source: NodeId,
    vto: f64,
    kp: f64,
    lambda: f64,
    polarity: MosPolarity,
    flicker_corner: f64,
}

impl Mosfet {
    /// Creates an NMOS with threshold `vto` (V) and transconductance factor
    /// `kp = μCox·W/L` (A/V²).
    pub fn nmos(
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        vto: f64,
        kp: f64,
    ) -> Self {
        Mosfet {
            name: name.into(),
            drain,
            gate,
            source,
            vto,
            kp,
            lambda: 0.0,
            polarity: MosPolarity::Nmos,
            flicker_corner: 0.0,
        }
    }

    /// Creates a PMOS. The model normalizes polarity internally, so pass
    /// the threshold magnitude (e.g. `0.7` for a −0.7 V PMOS threshold).
    pub fn pmos(
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        vto: f64,
        kp: f64,
    ) -> Self {
        Mosfet { polarity: MosPolarity::Pmos, ..Self::nmos(name, drain, gate, source, vto, kp) }
    }

    /// Sets channel-length modulation λ (1/V).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Adds a drain-current 1/f noise corner (Hz).
    pub fn with_flicker_corner(mut self, corner: f64) -> Self {
        self.flicker_corner = corner;
        self
    }

    /// Normalized (NMOS, v_ds ≥ 0) drain current and derivatives
    /// `(id, gm, gds)`.
    fn id_normalized(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        let vov = vgs - self.vto;
        if vov <= 0.0 {
            // Cut-off: leakage only.
            return (GMIN * vds, 0.0, GMIN);
        }
        let clm = 1.0 + self.lambda * vds;
        if vds < vov {
            // Triode.
            let id = self.kp * (vov * vds - 0.5 * vds * vds) * clm;
            let gm = self.kp * vds * clm;
            let gds =
                self.kp * (vov - vds) * clm + self.kp * (vov * vds - 0.5 * vds * vds) * self.lambda;
            (id + GMIN * vds, gm, gds + GMIN)
        } else {
            // Saturation.
            let id = 0.5 * self.kp * vov * vov * clm;
            let gm = self.kp * vov * clm;
            let gds = 0.5 * self.kp * vov * vov * self.lambda;
            (id + GMIN * vds, gm, gds + GMIN)
        }
    }

    /// Full signed operating point `(id, gm, gds)` in raw node coordinates,
    /// with drain/source swap and polarity handled. `id` flows drain →
    /// source for positive values.
    pub fn op(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64) {
        let sgn = match self.polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        let (vd_n, vg_n, vs_n) = (sgn * vd, sgn * vg, sgn * vs);
        if vd_n >= vs_n {
            let (id, gm, gds) = self.id_normalized(vg_n - vs_n, vd_n - vs_n);
            (sgn * id, gm, gds)
        } else {
            // Swap roles of drain and source.
            let (id, gm, gds) = self.id_normalized(vg_n - vd_n, vs_n - vd_n);
            (-sgn * id, gm, gds)
        }
    }
}

impl Device for Mosfet {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let vd = ctx.v(self.drain);
        let vg = ctx.v(self.gate);
        let vs = ctx.v(self.source);
        // Compute current by finite structure: we need derivatives w.r.t.
        // raw node voltages; handle the swap case by re-deriving.
        let sgn = match self.polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        let (vd_n, vg_n, vs_n) = (sgn * vd, sgn * vg, sgn * vs);
        let swapped = vd_n < vs_n;
        let (deff, seff) = if swapped { (vs_n, vd_n) } else { (vd_n, vs_n) };
        let (id_n, gm, gds) = self.id_normalized(vg_n - seff, deff - seff);
        // In normalized/swapped coordinates, current flows deff → seff.
        // Map back: d(id)/d(vg_raw) = sgn·gm·sgn = gm, etc. — polarity signs
        // cancel for conductances; only current direction flips.
        let id = if swapped { -sgn * id_n } else { sgn * id_n };
        let (dnode, snode) =
            if swapped { (self.source, self.drain) } else { (self.drain, self.source) };
        // id_n depends on (vg_n − v_seff) and (v_deff − v_seff):
        //   ∂id_n/∂vg_n = gm, ∂id_n/∂v_deff = gds, ∂id_n/∂v_seff = −gm − gds.
        // f at raw drain node = ±id; work in effective nodes then assign.
        ctx.add_f(Var::Node(self.drain), id);
        ctx.add_f(Var::Node(self.source), -id);
        // Conductance stamps in effective (normalized) orientation: current
        // i_eff = id_n flows dnode → snode; its derivatives w.r.t. raw
        // voltages: chain through sgn twice → net sgn·sgn = 1, except the
        // current itself is re-signed, giving:
        let s_eff = if swapped { -sgn } else { sgn }; // d(id)/d(id_n)
        let dg = s_eff * sgn; // derivative of id w.r.t. raw voltage of each terminal
        let stamps = [(self.gate, gm), (dnode, gds), (snode, -gm - gds)];
        for (var, val) in stamps {
            ctx.add_g(Var::Node(self.drain), Var::Node(var), dg * val);
            ctx.add_g(Var::Node(self.source), Var::Node(var), -dg * val);
        }
    }

    fn noise(&self, x_op: &[f64], ctx: &NoiseCtx<'_>) -> Vec<NoiseSource> {
        let v_of = |n: NodeId| ctx.index(Var::Node(n)).map_or(0.0, |i| x_op[i]);
        let (_, gm, _) = self.op(v_of(self.drain), v_of(self.gate), v_of(self.source));
        // Channel thermal noise 4kT·(2/3)·gm.
        let white = 4.0 * BOLTZMANN * 300.0 * (2.0 / 3.0) * gm.abs();
        let psd = if self.flicker_corner > 0.0 {
            Psd::Flicker { white, corner: self.flicker_corner }
        } else {
            Psd::White(white)
        };
        vec![NoiseSource {
            label: format!("{} channel", self.name),
            from: ctx.index(Var::Node(self.drain)),
            to: ctx.index(Var::Node(self.source)),
            psd,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diode_iv_monotone_and_limited() {
        let mut c = crate::Circuit::new();
        let a = c.node("a");
        let d = Diode::new("D1", a, crate::Circuit::GROUND, 1e-14);
        let (i1, g1) = d.iv(0.6);
        let (i2, _) = d.iv(0.7);
        assert!(i2 > i1 && i1 > 0.0 && g1 > 0.0);
        let (i_huge, g_huge) = d.iv(100.0);
        assert!(i_huge.is_finite() && g_huge.is_finite());
        // Reverse bias saturates at −Is.
        let (ir, _) = d.iv(-5.0);
        assert!((ir + 1e-14 + GMIN * 5.0).abs() < 1e-13);
    }

    #[test]
    fn mosfet_regions() {
        let mut c = crate::Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        let s = c.node("s");
        let m = Mosfet::nmos("M1", d, g, s, 0.7, 2e-3);
        // Cut-off.
        let (id, gm, _) = m.op(1.0, 0.0, 0.0);
        assert!(id.abs() < 1e-9 && gm == 0.0);
        // Saturation: vgs=1.7, vds=2 > vov=1.
        let (id_sat, gm_sat, _) = m.op(2.0, 1.7, 0.0);
        assert!((id_sat - 0.5 * 2e-3).abs() < 1e-6);
        assert!((gm_sat - 2e-3).abs() < 1e-9);
        // Triode: vds=0.2 < vov=1.
        let (id_tri, _, gds_tri) = m.op(0.2, 1.7, 0.0);
        assert!(id_tri < id_sat);
        assert!(gds_tri > 0.0);
        // Symmetry: swapping drain/source flips the current sign.
        let (id_fwd, _, _) = m.op(0.2, 1.7, 0.0);
        let (id_rev, _, _) = m.op(0.0, 1.7, 0.2);
        assert!((id_fwd + id_rev).abs() < 1e-12);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let mut c = crate::Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        let s = c.node("s");
        let n = Mosfet::nmos("MN", d, g, s, 0.7, 1e-3);
        let p = Mosfet::pmos("MP", d, g, s, 0.7, 1e-3);
        let (idn, _, _) = n.op(2.0, 1.7, 0.0);
        let (idp, _, _) = p.op(-2.0, -1.7, 0.0);
        assert!((idn + idp).abs() < 1e-12);
    }
}
