//! `rfsim-top` — a one-screen live view of a running `rfsim-serve`.
//!
//! Polls the `stats` and `metrics` ops on an interval and renders
//! throughput (rps over the last interval), latency quantiles (p50/p99
//! of the interval, recovered from the daemon-side cumulative
//! histograms via `Histogram::delta`), queue depth, in-flight jobs,
//! warm-hit ratio, and cache residency. No extra server support is
//! needed beyond the two ops, so it works against any live daemon.

use rfsim_serve::Client;
use rfsim_telemetry::{Histogram, Json};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: rfsim-top [--addr HOST:PORT] [--interval SECS] \
                     [--count N] [--once]";

struct Options {
    addr: String,
    interval: f64,
    /// Number of screens to draw; `None` runs until the connection
    /// drops or the process is killed.
    count: Option<u64>,
    /// Plain single-shot output (no ANSI clear), for scripts.
    once: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opt =
        Options { addr: "127.0.0.1:4668".to_string(), interval: 2.0, count: None, once: false };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{flag} needs {what}\n{USAGE}"));
        match flag.as_str() {
            "--addr" => opt.addr = value("HOST:PORT")?,
            "--interval" => {
                opt.interval = value("SECS")?.parse().map_err(|e| format!("--interval: {e}"))?;
                if opt.interval <= 0.0 || opt.interval.is_nan() {
                    return Err("--interval must be positive".to_string());
                }
            }
            "--count" => {
                opt.count = Some(value("N")?.parse().map_err(|e| format!("--count: {e}"))?);
            }
            "--once" => {
                opt.once = true;
                opt.count = Some(1);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(opt)
}

/// The counters/histogram state one poll extracts; deltas between two
/// polls give the windowed view.
struct Sample {
    at: Instant,
    completed: f64,
    cache_hits: f64,
    cache_lookups: f64,
    /// Cumulative `surrogate.{hits,true_solves,fits,rejected}` counters.
    surrogate: [f64; 4],
    total_ms: Histogram,
}

fn num(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(0.0)
}

fn poll(client: &mut Client) -> Result<(Json, Sample), String> {
    let stats = client
        .call(&Json::obj([("op", Json::Str("stats".to_string()))]))
        .map_err(|e| format!("stats: {e}"))?;
    let metrics = client
        .call(&Json::obj([("op", Json::Str("metrics".to_string()))]))
        .map_err(|e| format!("metrics: {e}"))?;
    let sr = stats.get("result").cloned().unwrap_or(Json::Null);
    let mr = metrics.get("result").cloned().unwrap_or(Json::Null);
    let counters = mr.get("counters").cloned().unwrap_or(Json::Null);
    let hits = num(counters.get("serve.cache.hb.hits")) + num(counters.get("serve.cache.em.hits"));
    let lookups = hits
        + num(counters.get("serve.cache.hb.misses"))
        + num(counters.get("serve.cache.em.misses"));
    let total_ms = mr
        .get("histograms")
        .and_then(|h| h.get("serve.latency.total_ms"))
        .and_then(Histogram::from_json)
        .unwrap_or_default();
    let surrogate = ["hits", "true_solves", "fits", "rejected"]
        .map(|k| num(counters.get(&format!("surrogate.{k}"))));
    let sample = Sample {
        at: Instant::now(),
        completed: num(sr.get("queue").and_then(|q| q.get("completed"))),
        cache_hits: hits,
        cache_lookups: lookups,
        surrogate,
        total_ms,
    };
    Ok((sr, sample))
}

fn render(addr: &str, stats: &Json, now: &Sample, prev: Option<&Sample>) -> String {
    use std::fmt::Write as _;
    let q = stats.get("queue").cloned().unwrap_or(Json::Null);
    let cache = stats.get("cache").cloned().unwrap_or(Json::Null);
    let (rps, window, hit_pct) = match prev {
        Some(p) => {
            let dt = now.at.duration_since(p.at).as_secs_f64().max(1e-9);
            let jobs = (now.completed - p.completed).max(0.0);
            let lookups = (now.cache_lookups - p.cache_lookups).max(0.0);
            let hits = (now.cache_hits - p.cache_hits).max(0.0);
            let pct = if lookups > 0.0 { 100.0 * hits / lookups } else { 0.0 };
            (jobs / dt, now.total_ms.delta(&p.total_ms), pct)
        }
        // First screen: cumulative since the daemon started.
        None => {
            let pct = if now.cache_lookups > 0.0 {
                100.0 * now.cache_hits / now.cache_lookups
            } else {
                0.0
            };
            (0.0, now.total_ms.clone(), pct)
        }
    };
    let (p50, p99) = if window.count > 0 {
        (window.p50(), window.p99())
    } else {
        (now.total_ms.p50(), now.total_ms.p99())
    };
    let mut out = String::new();
    let _ = writeln!(out, "rfsim-top — {addr}");
    let _ = writeln!(
        out,
        "jobs     {rps:8.1} rps   p50 {p50:9.3} ms   p99 {p99:9.3} ms   ({} in window)",
        window.count,
    );
    let _ = writeln!(
        out,
        "queue    depth {:>5}   inflight {:>4}   accepted {:>8}   rejected {:>6}   workers {:>3}",
        num(q.get("depth")),
        num(q.get("active")),
        num(q.get("accepted")),
        num(q.get("rejected")),
        num(q.get("workers")),
    );
    let _ = writeln!(out, "warm     hit ratio {hit_pct:5.1}%");
    for kind in ["hb", "em"] {
        let c = cache.get(kind).cloned().unwrap_or(Json::Null);
        let _ = writeln!(
            out,
            "cache/{kind} entries {:>4}   resident {:>9.0} B   hits {:>7}   misses {:>7}   \
             evictions {:>5}",
            num(c.get("entries")),
            num(c.get("resident_bytes")),
            num(c.get("hits")),
            num(c.get("misses")),
            num(c.get("evictions")),
        );
    }
    let s = cache.get("surrogate").cloned().unwrap_or(Json::Null);
    let [hits, solves, fits, rejected] = now.surrogate;
    let _ = writeln!(
        out,
        "surrogate entries {:>2}   resident {:>9.0} B   hits {:>7}   true-solves {:>5}   \
         fits {:>5}   rejected {:>5}",
        num(s.get("entries")),
        num(s.get("resident_bytes")),
        hits,
        solves,
        fits,
        rejected,
    );
    out
}

fn main() -> ExitCode {
    let opt = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match Client::connect(&opt.addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rfsim-top: connect {}: {e}", opt.addr);
            return ExitCode::FAILURE;
        }
    };
    let mut prev: Option<Sample> = None;
    let mut drawn = 0u64;
    loop {
        let (stats, sample) = match poll(&mut client) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("rfsim-top: {e}");
                return ExitCode::FAILURE;
            }
        };
        let screen = render(&opt.addr, &stats, &sample, prev.as_ref());
        if opt.once {
            print!("{screen}");
        } else {
            // ANSI clear + home, then the fresh screen.
            print!("\x1b[2J\x1b[H{screen}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        prev = Some(sample);
        drawn += 1;
        if opt.count.is_some_and(|n| drawn >= n) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(opt.interval));
    }
}
