#![warn(missing_docs)]
// Index-based loops are deliberate throughout: they mirror the
// subscripted linear-algebra notation of the algorithms implemented.
#![allow(clippy::needless_range_loop)]
//! Phase noise in oscillators (paper, Section 3): the unifying nonlinear
//! perturbation theory of Demir, Mehrotra and Roychowdhury \[5\], with
//! numerical methods that "require only a knowledge of the steady state of
//! the unperturbed oscillator and the values of the noise generators".
//!
//! The pipeline:
//!
//! 1. [`pss`]: autonomous shooting finds the orbit `x_s(t)` **and** the
//!    period `T` (the period is an unknown — oscillators supply no external
//!    time reference);
//! 2. [`ppv`]: Floquet analysis of the monodromy matrix yields the
//!    perturbation projection vector `v₁(t)` — the left Floquet
//!    eigenvector for the characteristic multiplier 1, normalized so that
//!    `v₁ᵀ(t)·ẋ_s(t) = 1`;
//! 3. [`spectrum`]: the scalar diffusion constant
//!    `c = (1/T)∫₀ᵀ v₁ᵀB·Bᵀv₁ dt` gives linearly growing jitter
//!    `σ²(t) = c·t`, a **Lorentzian** spectrum with finite power at the
//!    carrier, and total carrier power preserved — where LTI/LTV analyses
//!    "erroneously predict infinite noise power density at the carrier";
//! 4. [`montecarlo`]: Euler–Maruyama ensemble simulation of the noisy
//!    oscillator SDE is the measurement surrogate the theory is validated
//!    against.
//!
//! The oscillator library ([`oscillator`]) provides van der Pol,
//! negative-resistance LC, and ring oscillators as analytic ODE systems
//! implementing the circuit [`Dae`](rfsim_circuit::dae::Dae) trait.

pub mod circuit_osc;
pub mod montecarlo;
pub mod oscillator;
pub mod ppv;
pub mod pss;
pub mod spectrum;

pub use circuit_osc::{circuit_diffusion_constant, lc_oscillator_circuit, CircuitOscillator};
pub use montecarlo::{monte_carlo_ensemble, McOptions, McResult};
pub use oscillator::{LcOscillator, RingOscillator, VanDerPol};
pub use ppv::{compute_ppv, Ppv};
pub use pss::{oscillator_pss, PssOptions, PssResult};
pub use spectrum::{
    jitter_variance, lorentzian_psd, ltv_psd, phase_noise_dbc, total_sideband_power,
    PhaseNoiseAnalysis,
};

/// Errors from phase-noise analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Autonomous shooting failed to converge to an orbit.
    NoConvergence {
        /// Newton iterations performed.
        iterations: usize,
        /// Final boundary residual.
        residual: f64,
    },
    /// The monodromy matrix has no Floquet multiplier near 1 (the system
    /// is not an orbitally stable oscillator at the found solution).
    NotAnOscillator {
        /// Magnitude of the Floquet multiplier nearest to 1.
        closest_multiplier: f64,
    },
    /// Underlying numerical failure.
    Numerics(rfsim_numerics::Error),
    /// Underlying circuit failure.
    Circuit(rfsim_circuit::Error),
    /// Bad options (zero ensemble, non-positive period guess, …).
    InvalidSetup(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NoConvergence { iterations, residual } => write!(
                f,
                "oscillator shooting failed after {iterations} iterations (residual {residual:.3e})"
            ),
            Error::NotAnOscillator { closest_multiplier } => {
                write!(f, "no unit floquet multiplier (closest |mu| = {closest_multiplier:.6})")
            }
            Error::Numerics(e) => write!(f, "numerics error: {e}"),
            Error::Circuit(e) => write!(f, "circuit error: {e}"),
            Error::InvalidSetup(msg) => write!(f, "invalid setup: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerics(e) => Some(e),
            Error::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfsim_numerics::Error> for Error {
    fn from(e: rfsim_numerics::Error) -> Self {
        Error::Numerics(e)
    }
}

impl From<rfsim_circuit::Error> for Error {
    fn from(e: rfsim_circuit::Error) -> Self {
        Error::Circuit(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
