//! Backpressure and shutdown battery (ISSUE 7 satellite): flood the
//! server past its admission limit from many client threads and
//! assert bounded queue depth, explicit `overloaded` rejections (no
//! hangs), zero lost accepted jobs, and a clean drain on shutdown.
//! CI runs this file under both RFSIM_THREADS=1 and =4; the servers
//! here pin their own worker counts so the assertions stay exact
//! either way.

use rfsim_serve::{Client, Server, ServerConfig};
use rfsim_telemetry::Json;
use std::time::{Duration, Instant};

fn call(client: &mut Client, req: &str) -> Json {
    client.call(&Json::parse(req).expect("test request JSON")).expect("call")
}

fn is_ok(reply: &Json) -> bool {
    reply.get("ok") == Some(&Json::Bool(true))
}

fn error_kind(reply: &Json) -> Option<String> {
    reply.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str).map(String::from)
}

/// Occupies the single worker and fills the queue, then verifies that
/// further submissions are refused immediately and that every accepted
/// job still completes.
#[test]
fn flood_is_rejected_without_hanging_or_losing_jobs() {
    const CAPACITY: usize = 4;
    let server =
        Server::spawn(ServerConfig { workers: 1, queue_capacity: CAPACITY, ..Default::default() })
            .expect("spawn server");
    let addr = server.addr();

    // One long job pins the single worker; once it is running, short
    // jobs fill every queue slot. Each job rides its own connection.
    let mut sleepers = vec![std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let reply = call(&mut c, r#"{"op":"sleep","id":0,"ms":1500}"#);
        is_ok(&reply)
    })];
    let t0 = Instant::now();
    while server.scheduler_stats().active < 1 {
        assert!(t0.elapsed() < Duration::from_secs(10), "long job never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    for i in 1..=CAPACITY {
        sleepers.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let reply = call(&mut c, &format!(r#"{{"op":"sleep","id":{i},"ms":50}}"#));
            is_ok(&reply)
        }));
    }
    while server.scheduler_stats().depth < CAPACITY {
        assert!(t0.elapsed() < Duration::from_secs(10), "sleepers never filled the queue");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Flood from several client threads: every extra job must be
    // rejected explicitly and quickly — no hangs, no silent drops.
    let floods: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut rejected = 0;
                for i in 0..3 {
                    let t1 = Instant::now();
                    let reply = call(&mut c, &format!(r#"{{"op":"sleep","id":{t}{i},"ms":1}}"#));
                    assert!(
                        t1.elapsed() < Duration::from_secs(2),
                        "reject must be immediate, not queued behind sleepers"
                    );
                    assert!(!is_ok(&reply));
                    assert_eq!(error_kind(&reply).as_deref(), Some("overloaded"));
                    rejected += 1;
                }
                rejected
            })
        })
        .collect();
    let rejected: usize = floods.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(rejected, 12, "every flood request must get an explicit rejection");

    // Queue depth stayed bounded the whole time.
    let stats = server.scheduler_stats();
    assert!(stats.peak_depth <= CAPACITY, "queue depth exceeded the admission limit");
    assert_eq!(stats.accepted, (1 + CAPACITY) as u64);
    assert!(stats.rejected >= 12);

    // Every accepted sleeper completes and reports success.
    for h in sleepers {
        assert!(h.join().unwrap(), "an accepted job was lost");
    }
    // The reply reaches the client just before the scheduler marks the
    // job completed; give the counter a bounded moment to catch up.
    let t1 = Instant::now();
    let stats = loop {
        let stats = server.scheduler_stats();
        if stats.completed == stats.accepted || t1.elapsed() > Duration::from_secs(2) {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(stats.completed, stats.accepted, "accepted and completed must match");
    server.shutdown();
}

/// Shutdown with work still in flight: the accepted job finishes and
/// its client gets the response before the server tears down.
#[test]
fn shutdown_drains_in_flight_jobs() {
    let server =
        Server::spawn(ServerConfig { workers: 1, queue_capacity: 4, ..Default::default() })
            .expect("spawn server");
    let addr = server.addr();

    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let reply = call(&mut c, r#"{"op":"sleep","id":1,"ms":300}"#);
        is_ok(&reply)
    });
    while server.scheduler_stats().active == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() >= Duration::from_millis(100),
        "shutdown must wait for the in-flight job, not abandon it"
    );
    assert!(in_flight.join().unwrap(), "the drained job's response was lost");
}

/// After a shutdown request over the wire, the daemon loop stops and
/// new jobs on still-open connections are refused while the drain runs.
#[test]
fn wire_shutdown_request_stops_the_server() {
    let server =
        Server::spawn(ServerConfig { workers: 2, queue_capacity: 4, ..Default::default() })
            .expect("spawn server");
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    let reply = call(&mut client, r#"{"op":"shutdown","id":1}"#);
    assert!(is_ok(&reply));
    assert!(server.shutdown_requested());
    server.shutdown();
    // The listener is gone: new connections are refused (or reset).
    let mut dead = match Client::connect(addr) {
        Err(_) => return,
        Ok(c) => c,
    };
    assert!(
        dead.call(&Json::parse(r#"{"op":"ping"}"#).unwrap()).is_err(),
        "server must be unreachable after shutdown"
    );
}

/// The determinism matrix: identical requests produce identical bytes
/// regardless of the worker-pool width (RFSIM_THREADS is the ambient
/// matrix; worker counts here exercise intra-server concurrency).
#[test]
fn results_are_identical_across_worker_counts() {
    let hb = r#"{"op":"hb","id":1,"circuit":"clipper","f0":1e6,"harmonics":5,"amp":1.0}"#;
    let mut answers = Vec::new();
    for workers in [1, 4] {
        let server =
            Server::spawn(ServerConfig { workers, ..Default::default() }).expect("spawn server");
        let mut client = Client::connect(server.addr()).unwrap();
        let reply = call(&mut client, hb);
        assert!(is_ok(&reply));
        let v = reply.get("result").and_then(|r| r.get("vout_dc")).and_then(Json::as_f64).unwrap();
        answers.push(v);
        server.shutdown();
    }
    assert_eq!(answers[0].to_bits(), answers[1].to_bits(), "bitwise determinism across pools");
}
