//! Interpolation utilities: linear, natural cubic spline, and periodic
//! bivariate grid evaluation.
//!
//! The MPDE post-processing step reconstructs the univariate waveform from
//! bivariate samples via `x(t) = x̂(t, t)` using the periodicity of `x̂` in
//! each argument (paper, Section 2.2); [`bilinear_periodic`] implements that
//! evaluation.

/// Piecewise-linear interpolation of `(xs, ys)` at `x`. Extrapolates with
/// the end segments.
///
/// # Panics
/// Panics if `xs` and `ys` differ in length, are empty, or `xs` is not
/// strictly increasing (debug builds).
pub fn lerp(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "lerp: length mismatch");
    assert!(!xs.is_empty(), "lerp: empty input");
    debug_assert!(xs.windows(2).all(|w| w[0] < w[1]), "lerp: xs not increasing");
    if xs.len() == 1 {
        return ys[0];
    }
    let i = match xs.partition_point(|&v| v <= x) {
        0 => 0,
        p if p >= xs.len() => xs.len() - 2,
        p => p - 1,
    };
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    ys[i] + t * (ys[i + 1] - ys[i])
}

/// Natural cubic spline through `(xs, ys)`.
///
/// ```
/// use rfsim_numerics::interp::CubicSpline;
///
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [0.0, 1.0, 8.0, 27.0];
/// let s = CubicSpline::new(&xs, &ys);
/// // Interpolates the knots exactly.
/// assert!((s.eval(2.0) - 8.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural spline (zero second derivative at the ends).
    ///
    /// # Panics
    /// Panics if fewer than 2 points or lengths mismatch or `xs` is not
    /// strictly increasing.
    pub fn new(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "spline: length mismatch");
        assert!(xs.len() >= 2, "spline: need at least 2 points");
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "spline: xs not increasing");
        let n = xs.len();
        let mut m = vec![0.0; n];
        if n > 2 {
            // Tridiagonal system for interior second derivatives (Thomas).
            let mut sub = vec![0.0; n];
            let mut diag = vec![0.0; n];
            let mut sup = vec![0.0; n];
            let mut rhs = vec![0.0; n];
            for i in 1..n - 1 {
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                sub[i] = h0;
                diag[i] = 2.0 * (h0 + h1);
                sup[i] = h1;
                rhs[i] = 6.0 * ((ys[i + 1] - ys[i]) / h1 - (ys[i] - ys[i - 1]) / h0);
            }
            for i in 2..n - 1 {
                let w = sub[i] / diag[i - 1];
                diag[i] -= w * sup[i - 1];
                rhs[i] -= w * rhs[i - 1];
            }
            m[n - 2] = rhs[n - 2] / diag[n - 2];
            for i in (1..n - 2).rev() {
                m[i] = (rhs[i] - sup[i] * m[i + 1]) / diag[i];
            }
        }
        CubicSpline { xs: xs.to_vec(), ys: ys.to_vec(), m }
    }

    /// Evaluates the spline (clamped extrapolation outside the knot range).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        let i = match self.xs.partition_point(|&v| v <= x) {
            0 => 0,
            p if p >= n => n - 2,
            p => p - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        a * self.ys[i]
            + b * self.ys[i + 1]
            + ((a * a * a - a) * self.m[i] + (b * b * b - b) * self.m[i + 1]) * h * h / 6.0
    }
}

/// Evaluates a biperiodic grid `g` (`rows × cols`, row-major; row `i` is
/// coordinate `t1 = i/rows·T1`, column `j` is `t2 = j/cols·T2`) at an
/// arbitrary `(t1, t2)` by bilinear interpolation with periodic wrap.
///
/// This is the `x(t) = x̂(t mod T1, t mod T2)` evaluation of the MPDE
/// formulation.
pub fn bilinear_periodic(g: &[f64], rows: usize, cols: usize, t1: f64, t2: f64) -> f64 {
    assert_eq!(g.len(), rows * cols, "bilinear_periodic: size mismatch");
    let fx = (t1.rem_euclid(1.0)) * rows as f64;
    let fy = (t2.rem_euclid(1.0)) * cols as f64;
    let i0 = fx.floor() as usize % rows;
    let j0 = fy.floor() as usize % cols;
    let i1 = (i0 + 1) % rows;
    let j1 = (j0 + 1) % cols;
    let a = fx - fx.floor();
    let b = fy - fy.floor();
    g[i0 * cols + j0] * (1.0 - a) * (1.0 - b)
        + g[i1 * cols + j0] * a * (1.0 - b)
        + g[i0 * cols + j1] * (1.0 - a) * b
        + g[i1 * cols + j1] * a * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_recovers_lines() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.0, 3.0, 5.0];
        assert!((lerp(&xs, &ys, 0.5) - 2.0).abs() < 1e-15);
        assert!((lerp(&xs, &ys, 1.75) - 4.5).abs() < 1e-15);
        // Extrapolation continues the end segments.
        assert!((lerp(&xs, &ys, 3.0) - 7.0).abs() < 1e-15);
        assert!((lerp(&xs, &ys, -1.0) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn spline_exact_on_cubic_interior() {
        // Natural spline reproduces knots and is C² smooth; check knots and
        // midpoint accuracy on a smooth function.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x).sin()).collect();
        let s = CubicSpline::new(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            assert!((s.eval(*x) - y).abs() < 1e-12);
        }
        let x = 2.45;
        assert!((s.eval(x) - x.sin()).abs() < 1e-3);
    }

    #[test]
    fn spline_two_points_is_linear() {
        let s = CubicSpline::new(&[0.0, 2.0], &[0.0, 4.0]);
        assert!((s.eval(1.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn bilinear_periodic_wraps() {
        // 2x2 grid; value at (0,0)=1 else 0.
        let g = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(bilinear_periodic(&g, 2, 2, 0.0, 0.0), 1.0);
        // Exactly periodic: (1.0, 1.0) ≡ (0,0).
        assert_eq!(bilinear_periodic(&g, 2, 2, 1.0, 1.0), 1.0);
        // Halfway in both directions mixes all four corners equally.
        let v = bilinear_periodic(&g, 2, 2, 0.25, 0.25);
        assert!((v - 0.25).abs() < 1e-15);
    }

    #[test]
    fn bilinear_reproduces_separable_product() {
        // Smooth separable function sampled on a fine grid should be
        // reproduced to second order.
        let (r, c) = (64, 64);
        let mut g = vec![0.0; r * c];
        let f = |t1: f64, t2: f64| {
            (2.0 * std::f64::consts::PI * t1).sin() * (2.0 * std::f64::consts::PI * t2).cos()
        };
        for i in 0..r {
            for j in 0..c {
                g[i * c + j] = f(i as f64 / r as f64, j as f64 / c as f64);
            }
        }
        let (t1, t2) = (0.3137, 0.7211);
        assert!((bilinear_periodic(&g, r, c, t1, t2) - f(t1, t2)).abs() < 5e-3);
    }
}
