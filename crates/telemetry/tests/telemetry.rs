//! Integration tests against the real process-global telemetry state.
//!
//! The registry is deliberately global, so tests that touch it serialize
//! on a local mutex (the cargo test harness runs tests concurrently).

use rfsim_telemetry as telemetry;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn with_clean_state<T>(f: impl FnOnce() -> T) -> T {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Report);
    telemetry::reset();
    let out = f();
    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();
    out
}

#[test]
fn concurrent_spans_and_counters_aggregate() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;
    with_clean_state(|| {
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let _outer = telemetry::span("test.outer");
                        let _inner = telemetry::span("test.inner");
                        telemetry::counter_add("test.counter", 1);
                        telemetry::histogram_record("test.histogram", (t * i) as f64);
                    }
                    telemetry::gauge_set("test.gauge", t as f64);
                });
            }
        });
        let snap = telemetry::snapshot();
        assert_eq!(snap.counters["test.counter"], (THREADS * PER_THREAD) as u64);
        let outer = snap.spans.descend(&["test.outer"]).expect("outer span");
        assert_eq!(outer.count, (THREADS * PER_THREAD) as u64);
        // Nesting is per-thread: every inner span sits under the outer.
        let inner = snap.spans.descend(&["test.outer", "test.inner"]).expect("nested span");
        assert_eq!(inner.count, (THREADS * PER_THREAD) as u64);
        assert!(snap.spans.descend(&["test.inner"]).is_none(), "inner must not appear at root");
        assert_eq!(snap.histograms["test.histogram"].count, (THREADS * PER_THREAD) as u64);
        assert!(snap.gauges["test.gauge"] < THREADS as f64);
    });
}

#[test]
fn convergence_trace_round_trips_through_json() {
    with_clean_state(|| {
        let residuals = [1.0, 0.25, 3.1e-4, 7.7e-9, 2.0e-13];
        telemetry::record_trace("hb.newton", "roundtrip circuit", &residuals, true);
        telemetry::record_trace("krylov.gmres", "stalled", &[0.9, 0.8, 0.79], false);

        let snap = telemetry::snapshot();
        let text = snap.to_json().to_string_pretty();
        let parsed = telemetry::Json::parse(&text).expect("valid JSON");
        let traces = telemetry::Snapshot::traces_from_json(&parsed).expect("traces section");
        assert_eq!(traces, snap.traces);
        assert_eq!(traces[0].solver, "hb.newton");
        assert_eq!(traces[0].residuals, residuals);
        assert!(traces[0].converged);
        assert!(!traces[1].converged);
    });
}

#[test]
fn trace_cap_counts_dropped() {
    with_clean_state(|| {
        for i in 0..telemetry::MAX_TRACES + 5 {
            telemetry::record_trace("t", &format!("{i}"), &[1.0], true);
        }
        let snap = telemetry::snapshot();
        assert_eq!(snap.traces.len(), telemetry::MAX_TRACES);
        assert_eq!(snap.dropped_traces, 5);
    });
}

#[test]
fn off_mode_records_nothing() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();
    {
        let _span = telemetry::span("off.span");
        telemetry::counter_add("off.counter", 3);
        telemetry::gauge_set("off.gauge", 1.0);
        telemetry::histogram_record("off.histogram", 1.0);
        let mut t = telemetry::TraceBuf::new("off.newton");
        assert!(!t.is_active());
        t.push(1.0);
        assert!(t.is_empty());
        t.commit(true);
        telemetry::record_trace("off.trace", "", &[1.0], true);
        // Health monitors follow the same contract: enabled() is sampled
        // once at construction, every observe() is a single branch, and
        // nothing is recorded — not even for NaN residuals.
        let mut m = telemetry::ResidualMonitor::new("off.monitor");
        assert!(!m.is_active());
        assert_eq!(m.observe(f64::NAN), telemetry::HealthStatus::Ok);
        assert_eq!(m.observe(1e6), telemetry::HealthStatus::Ok);
        telemetry::record_health("stagnation", "off.solver", "ignored", 1.0, 1);
    }
    let snap = telemetry::snapshot();
    assert!(snap.spans.children.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
    assert!(snap.traces.is_empty());
    assert!(snap.health.is_empty());
}

#[test]
fn flush_honors_explicit_json_path() {
    with_clean_state(|| {
        telemetry::counter_add("flush.counter", 11);
        let path = std::env::temp_dir().join("rfsim-telemetry-flush-test.json");
        telemetry::set_mode(telemetry::Mode::Json {
            path: Some(path.to_string_lossy().into_owned()),
        });
        let written = telemetry::flush(Some("ignored-default.json")).expect("flush");
        assert_eq!(written.as_deref(), Some(path.as_path()));
        let text = std::fs::read_to_string(&path).expect("artifact exists");
        let parsed = telemetry::Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("flush.counter")).and_then(|v| v.as_f64()),
            Some(11.0)
        );
        let _ = std::fs::remove_file(&path);
    });
}
