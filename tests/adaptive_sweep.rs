//! Adaptive-sweep acceptance battery (ISSUE 10): the surrogate-driven
//! sweep must reproduce the dense fixed-grid extraction on the e09
//! inductor — across its substrate-relaxation band — within the
//! experiment's existing tolerance, from at most a third of the true
//! EM solves; and the per-frequency image coefficient `k(f)` must be
//! evaluated exactly once per solved point (the loop-invariant hoist in
//! `SweptExtractor::solve_c_total`).

use rfsim::em::adaptive::AdaptiveSweep;
use rfsim::em::inductor::{SpiralInductor, SweptExtractor};
use rfsim::telemetry;

/// The e09 bench sweep grid: 16 log-spaced points, 0.5–20 GHz, across
/// the substrate's dielectric-relaxation knee.
fn e09_grid() -> Vec<f64> {
    (0..16).map(|i| 0.5e9 * (20e9f64 / 0.5e9).powf(i as f64 / 15.0)).collect()
}

fn counter(name: &str) -> u64 {
    telemetry::snapshot().counters.get(name).copied().unwrap_or(0)
}

// One sequential test: the telemetry counters it measures are
// process-global, so the two phases must not run on parallel test
// threads.
#[test]
fn adaptive_agreement_solve_budget_and_k_hoist() {
    adaptive_matches_dense_grid_with_three_times_fewer_solves();
    image_coefficient_is_evaluated_once_per_solved_point();
}

fn adaptive_matches_dense_grid_with_three_times_fewer_solves() {
    telemetry::set_mode(telemetry::Mode::Report);
    let spiral = SpiralInductor::default();
    let freqs = e09_grid();
    // Production-grade e09 settings are mesh 6 / nq 6; the test drops
    // the mesh one notch to keep the dense reference affordable while
    // preserving the same k(f) response the surrogate has to learn.
    let (mesh, nq) = (2, 6);

    // Dense reference: one true solve per grid point.
    let dense = spiral.extract_swept(mesh, nq, &freqs).expect("dense sweep");

    // Adaptive: same engine configuration behind the surrogate.
    let before = counter("em.true_solves");
    let mut sweep = AdaptiveSweep::new(&spiral, mesh, nq).expect("adaptive build");
    let models = sweep.sweep(&freqs).expect("adaptive sweep");
    let spent = counter("em.true_solves") - before;

    // Counter-proof: the engine's own tally and the telemetry counter
    // agree, and the budget is at most a third of the fixed grid.
    assert_eq!(spent, sweep.true_solves());
    assert!(
        3 * spent <= freqs.len() as u64,
        "adaptive spent {spent} true solves on a {}-point grid (need ≤ 1/3)",
        freqs.len()
    );

    // Accuracy everywhere: c_ox (the swept quantity), and the L(f)/Q(f)
    // answers derived from it, inside e09's existing 1e-4 agreement.
    for (f, (d, m)) in freqs.iter().zip(dense.iter().zip(&models)) {
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(f64::MIN_POSITIVE);
        assert!(rel(m.c_ox, d.c_ox) <= 1e-4, "c_ox drift at {f:.3e} Hz");
        assert!(rel(m.l_eff(*f), d.l_eff(*f)) <= 1e-4, "L(f) drift at {f:.3e} Hz");
        assert!(rel(m.q(*f), d.q(*f)) <= 1e-4, "Q(f) drift at {f:.3e} Hz");
    }

    // Model queries off the solved grid stay free and finite.
    let solved = sweep.true_solves();
    for i in 0..8 {
        let f = 0.7e9 * (18e9f64 / 0.7e9).powf(i as f64 / 7.0);
        let m = sweep.model_at(f).expect("in-band model query");
        assert!(m.c_ox.is_finite() && m.c_ox > 0.0);
    }
    assert_eq!(sweep.true_solves(), solved, "model queries must not solve");
}

fn image_coefficient_is_evaluated_once_per_solved_point() {
    telemetry::set_mode(telemetry::Mode::Report);
    let spiral = SpiralInductor::default();
    let freqs: Vec<f64> = (0..6).map(|i| 1e9 * (1.0 + i as f64)).collect();
    let mut engine = SweptExtractor::new(&spiral, 1, 4).expect("build");
    let (k0, s0) = (counter("em.inductor.k_evals"), counter("em.true_solves"));
    for &f in &freqs {
        engine.extract_at(f).expect("solve");
    }
    let k = counter("em.inductor.k_evals") - k0;
    let solves = counter("em.true_solves") - s0;
    assert_eq!(solves, freqs.len() as u64);
    // The regression this guards: k(f) is loop-invariant inside one
    // point's GMRES iteration, so it must be computed exactly once per
    // point — not once per matvec or preconditioner application.
    assert_eq!(k, solves, "k(f) must be hoisted out of the per-point solver loop");
}
