//! Device library: passives, independent sources, controlled sources, and
//! nonlinear semiconductor devices with their noise models.
//!
//! Every device implements [`Device`](crate::netlist::Device) and stamps
//! itself into the MNA system via [`LoadCtx`](crate::dae::LoadCtx) /
//! [`SrcCtx`](crate::dae::SrcCtx). The set mirrors what the paper's RF IC
//! studies require: linear passives and mutual coupling for matching
//! networks and extracted parasitics, behavioral multipliers and switches
//! for modulator/mixer chains, and diodes/BJTs/MOSFETs for the "majority
//! nonlinear" device population of integrated RF designs.

mod controlled;
mod extra;
mod nonlinear;
mod passive;
mod sources;

pub use controlled::{Multiplier, Vccs, Vcvs};
pub use extra::{Cccs, Ccvs, NonlinearConductance, Varactor};
pub use nonlinear::{Bjt, BjtPolarity, Diode, MosPolarity, Mosfet};
pub use passive::{Capacitor, CoupledInductors, CurrentProbe, Inductor, Resistor};
pub use sources::{ISource, VSource};

/// Minimum conductance added across semiconductor junctions to keep the
/// Jacobian nonsingular when devices are off.
pub const GMIN: f64 = 1e-12;

/// Exponential with linear extension beyond `x = EXP_LIM` — the standard
/// SPICE trick preventing overflow during Newton excursions. Returns
/// `(value, derivative)`.
pub(crate) fn limited_exp(x: f64) -> (f64, f64) {
    const EXP_LIM: f64 = 80.0;
    if x <= EXP_LIM {
        let e = x.exp();
        (e, e)
    } else {
        let e = EXP_LIM.exp();
        (e * (1.0 + (x - EXP_LIM)), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limited_exp_continuous_at_boundary() {
        let (v1, d1) = limited_exp(79.999_999);
        let (v2, d2) = limited_exp(80.000_001);
        assert!((v1 - v2).abs() / v1 < 1e-5);
        assert!((d1 - d2).abs() / d1 < 1e-5);
    }

    #[test]
    fn limited_exp_no_overflow() {
        let (v, d) = limited_exp(1e6);
        assert!(v.is_finite());
        assert!(d.is_finite());
    }
}
