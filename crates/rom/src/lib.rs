#![warn(missing_docs)]
//! Reduced-order modeling of large linear sub-blocks (paper, Section 5).
//!
//! RF ICs "often contain large linear sub-blocks" — extracted parasitics,
//! packages, distribution networks — whose size makes direct simulation
//! infeasible and whose frequency-domain models only harmonic balance can
//! consume natively. Padé-type approximation of the transfer function
//! solves both the size and the mixed-domain problem; the numerically sound
//! way to compute the Padé approximant is through Krylov subspaces:
//!
//! - [`awe`]: explicit moment matching (AWE) — included deliberately as the
//!   paper's negative example ("the direct computation of Padé
//!   approximations is numerically unstable");
//! - [`pvl`]: Padé via Lanczos — matches `2q` moments with `q` iterations,
//!   "the most efficient approximations";
//! - [`arnoldi`]: the Arnoldi alternative — `q` moments for the same work,
//!   half PVL's efficiency (the comparison quantified in refs [6, 34, 42]);
//! - [`prima`]: congruence-transform projection that **preserves
//!   passivity** by construction, where "Lanczos-based methods may produce
//!   non-passive reduced-order models" ([`passivity`] detects and
//!   post-processes those);
//! - [`noise_rom`]: the Padé-accelerated wideband noise evaluation of
//!   Feldmann & Freund \[7\];
//! - [`aaa`] + [`surrogate`]: data-driven barycentric rational fitting
//!   with a cross-validated error estimator — the model layer of the
//!   adaptive sweep drivers in `rfsim-em` and `rfsim-steady`, which
//!   issue true solves only where the surrogate is uncertain.

pub mod aaa;
pub mod arnoldi;
pub mod awe;
pub mod macromodel;
pub mod noise_rom;
pub mod passivity;
pub mod prima;
pub mod pvl;
pub mod statespace;
pub mod surrogate;

pub use aaa::{AaaFit, AaaOptions};
pub use arnoldi::arnoldi_rom;
pub use awe::awe_rom;
pub use macromodel::RomImpedance;
pub use passivity::{enforce_passivity, is_passive, PassivityReport};
pub use prima::prima_rom;
pub use pvl::pvl_rom;
pub use statespace::{DescriptorSystem, ReducedModel};
pub use surrogate::{fit_adaptive, AdaptiveReport, RationalSurrogate, SurrogateOptions};

/// Errors from the model-reduction algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Krylov process breakdown (Lanczos deflation etc.).
    Breakdown(&'static str),
    /// Underlying numerical failure.
    Numerics(rfsim_numerics::Error),
    /// Invalid setup (zero order, order beyond dimension, …).
    InvalidSetup(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Breakdown(what) => write!(f, "krylov breakdown: {what}"),
            Error::Numerics(e) => write!(f, "numerics error: {e}"),
            Error::InvalidSetup(msg) => write!(f, "invalid setup: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfsim_numerics::Error> for Error {
    fn from(e: rfsim_numerics::Error) -> Self {
        Error::Numerics(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
