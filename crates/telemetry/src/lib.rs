#![warn(missing_docs)]
//! `rfsim-telemetry` — the observability substrate for the rfsim
//! workspace: hierarchical spans, solver metrics, and convergence
//! traces, exported as a human-readable report or machine-readable
//! JSON.
//!
//! The RF CAD algorithms in this workspace win or lose on a handful of
//! internal quantities — HB Newton residual trajectories, GMRES inner
//! iteration counts and matvecs, IES³ compression ratios, Padé moment
//! counts. This crate makes those observable with near-zero cost:
//!
//! - **Spans** ([`span`]): RAII wall-clock scopes aggregated into a
//!   process-global tree (`solve_hb` → `newton` → `gmres`).
//! - **Metrics** ([`counter_add`], [`gauge_set`], [`histogram_record`]):
//!   named solver counters and distributions.
//! - **Convergence traces** ([`TraceBuf`], [`record_trace`]): per-
//!   iteration residual trajectories of every Newton/Krylov engine.
//! - **Health monitors** ([`health`]): stagnation / divergence /
//!   NaN-Inf detectors emitting structured [`HealthEvent`]s.
//! - **Sinks**: `RFSIM_TELEMETRY=off|report|json[:path]|chrome[:path]`
//!   selects no output (default), a report on stderr, a JSON artifact,
//!   or a Chrome trace-event timeline (Perfetto / `chrome://tracing`).
//!
//! When telemetry is off every instrumentation call is a single branch
//! on a relaxed atomic — no clock reads, no locks, no allocation — so
//! instrumented hot loops cost nothing in production runs.
//!
//! # Example
//!
//! ```
//! use rfsim_telemetry as telemetry;
//!
//! telemetry::set_mode(telemetry::Mode::Report);
//! {
//!     let _solve = telemetry::span("demo.solve");
//!     telemetry::counter_add("demo.iterations", 12);
//!     let mut t = telemetry::TraceBuf::new("demo.newton");
//!     for k in 0..4 {
//!         t.push(10f64.powi(-k));
//!     }
//!     t.commit(true);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counters["demo.iterations"], 12);
//! assert_eq!(snap.traces[0].residuals.len(), 4);
//! telemetry::set_mode(telemetry::Mode::Off);
//! telemetry::reset();
//! ```

pub mod chrome;
pub mod health;
pub mod json;
mod metrics;
mod span;
mod trace;

pub use health::{record_health, HealthEvent, HealthStatus, ResidualMonitor, MAX_HEALTH_EVENTS};
pub use json::Json;
pub use metrics::{counter_add, gauge_set, histogram_record, Histogram, NUM_BUCKETS, SUB_BUCKETS};
pub use span::{span, span_dyn, SpanGuard, SpanNode};
pub use trace::{record_trace, ConvergenceTrace, TraceBuf, MAX_TRACES};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, Once};

/// Telemetry operating mode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Mode {
    /// No recording; all instrumentation is a single branch.
    #[default]
    Off,
    /// Record, and [`flush`] prints a human-readable report to stderr.
    Report,
    /// Record, and [`flush`] writes a JSON artifact.
    Json {
        /// Output path; `None` uses the flusher's default.
        path: Option<String>,
    },
    /// Record, and [`flush`] writes a Chrome trace-event timeline
    /// (loadable by Perfetto or `chrome://tracing`).
    Chrome {
        /// Output path; `None` uses `rfsim-trace.json`.
        path: Option<String>,
    },
}

const MODE_OFF: u8 = 0;
const MODE_REPORT: u8 = 1;
const MODE_JSON: u8 = 2;
const MODE_CHROME: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_OFF);
static JSON_PATH: Mutex<Option<String>> = Mutex::new(None);
static INIT: Once = Once::new();

/// Environment variable selecting the mode: `off` (default), `report`,
/// `json`, `json:/some/path.json`, `chrome`, or `chrome:/trace.json`.
pub const ENV_VAR: &str = "RFSIM_TELEMETRY";

fn ensure_init() {
    INIT.call_once(|| {
        let Ok(value) = std::env::var(ENV_VAR) else { return };
        match parse_mode(&value) {
            Some(mode) => apply_mode(mode),
            None => eprintln!(
                "rfsim-telemetry: ignoring unrecognized {ENV_VAR}={value:?} \
                 (expected off | report | json[:path] | chrome[:path])"
            ),
        }
    });
}

/// Parses an `RFSIM_TELEMETRY` value. Returns `None` for unrecognized
/// input.
pub fn parse_mode(value: &str) -> Option<Mode> {
    match value {
        "" | "off" | "0" | "none" => Some(Mode::Off),
        "report" => Some(Mode::Report),
        "json" => Some(Mode::Json { path: None }),
        "chrome" => Some(Mode::Chrome { path: None }),
        _ => {
            if let Some(p) = value.strip_prefix("json:").filter(|p| !p.is_empty()) {
                Some(Mode::Json { path: Some(p.to_string()) })
            } else {
                value
                    .strip_prefix("chrome:")
                    .filter(|p| !p.is_empty())
                    .map(|p| Mode::Chrome { path: Some(p.to_string()) })
            }
        }
    }
}

fn apply_mode(mode: Mode) {
    let (tag, path) = match mode {
        Mode::Off => (MODE_OFF, None),
        Mode::Report => (MODE_REPORT, None),
        Mode::Json { path } => (MODE_JSON, path),
        Mode::Chrome { path } => {
            // Anchor the trace epoch before any span starts recording.
            let _ = chrome::epoch();
            (MODE_CHROME, path)
        }
    };
    *JSON_PATH.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = path;
    MODE.store(tag, Ordering::Release);
}

/// Overrides the mode programmatically (wins over the environment).
pub fn set_mode(mode: Mode) {
    // Mark the env as consumed so a later lazy init cannot undo this.
    INIT.call_once(|| {});
    apply_mode(mode);
}

/// The current mode.
pub fn mode() -> Mode {
    ensure_init();
    match MODE.load(Ordering::Acquire) {
        MODE_REPORT => Mode::Report,
        MODE_JSON => Mode::Json {
            path: JSON_PATH.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone(),
        },
        MODE_CHROME => Mode::Chrome {
            path: JSON_PATH.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone(),
        },
        _ => Mode::Off,
    }
}

/// Fast check used by every instrumentation point.
#[inline]
pub fn enabled() -> bool {
    ensure_init();
    MODE.load(Ordering::Relaxed) != MODE_OFF
}

/// Whether the Chrome trace exporter is active (checked on span drop).
#[inline]
pub(crate) fn chrome_enabled() -> bool {
    MODE.load(Ordering::Relaxed) == MODE_CHROME
}

/// A point-in-time copy of everything recorded so far.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Aggregated span tree (the root is an unnamed container).
    pub spans: SpanNode,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Value distributions.
    pub histograms: BTreeMap<String, Histogram>,
    /// Recorded convergence traces, in recording order.
    pub traces: Vec<ConvergenceTrace>,
    /// Traces discarded after [`MAX_TRACES`] was reached.
    pub dropped_traces: u64,
    /// Structured health events, in recording order.
    pub health: Vec<HealthEvent>,
    /// Health events discarded after [`MAX_HEALTH_EVENTS`] was reached.
    pub dropped_health: u64,
}

/// Captures a snapshot of all recorded telemetry.
pub fn snapshot() -> Snapshot {
    Snapshot {
        spans: span::tree(),
        counters: metrics::counters(),
        gauges: metrics::gauges(),
        histograms: metrics::histograms(),
        traces: trace::traces(),
        dropped_traces: trace::dropped(),
        health: health::events(),
        dropped_health: health::dropped(),
    }
}

/// Clears all recorded telemetry (mode is unchanged).
pub fn reset() {
    span::reset();
    metrics::reset();
    trace::reset();
    health::reset();
    chrome::reset();
}

impl Snapshot {
    /// Serializes the snapshot as a JSON value.
    pub fn to_json(&self) -> Json {
        fn span_json(node: &SpanNode) -> Json {
            Json::obj([
                ("count", Json::Num(node.count as f64)),
                ("total_seconds", Json::Num(node.seconds())),
                (
                    "children",
                    Json::Obj(
                        node.children.iter().map(|(k, v)| (k.clone(), span_json(v))).collect(),
                    ),
                ),
            ])
        }
        let histograms = self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect();
        let traces = self
            .traces
            .iter()
            .map(|t| {
                Json::obj([
                    ("solver", Json::Str(t.solver.clone())),
                    ("label", Json::Str(t.label.clone())),
                    ("converged", Json::Bool(t.converged)),
                    ("iterations", Json::Num(t.residuals.len() as f64)),
                    ("residuals", Json::nums(t.residuals.iter().copied())),
                ])
            })
            .collect();
        Json::obj([
            ("spans", span_json(&self.spans)),
            (
                "counters",
                Json::Obj(
                    self.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
            ),
            ("histograms", Json::Obj(histograms)),
            ("traces", Json::Arr(traces)),
            ("dropped_traces", Json::Num(self.dropped_traces as f64)),
            (
                "health",
                Json::Arr(
                    self.health
                        .iter()
                        .map(|h| {
                            Json::obj([
                                ("monitor", Json::Str(h.monitor.clone())),
                                ("solver", Json::Str(h.solver.clone())),
                                ("detail", Json::Str(h.detail.clone())),
                                ("value", Json::Num(h.value)),
                                ("iteration", Json::Num(h.iteration as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("dropped_health", Json::Num(self.dropped_health as f64)),
        ])
    }

    /// Rebuilds the health events of a snapshot from its JSON
    /// serialization.
    pub fn health_from_json(value: &Json) -> Option<Vec<HealthEvent>> {
        let arr = value.get("health")?.as_arr()?;
        let mut out = Vec::with_capacity(arr.len());
        for h in arr {
            out.push(HealthEvent {
                monitor: h.get("monitor")?.as_str()?.to_string(),
                solver: h.get("solver")?.as_str()?.to_string(),
                detail: h.get("detail")?.as_str()?.to_string(),
                value: h.get("value")?.as_f64().unwrap_or(f64::NAN),
                iteration: h.get("iteration")?.as_f64()? as usize,
            });
        }
        Some(out)
    }

    /// Rebuilds the histograms of a snapshot from its JSON
    /// serialization. Tolerates both the current bucketed shape and the
    /// pre-quantile moments-only shape (see [`Histogram::from_json`]).
    pub fn histograms_from_json(value: &Json) -> Option<BTreeMap<String, Histogram>> {
        let Json::Obj(m) = value.get("histograms")? else { return None };
        m.iter().map(|(k, h)| Some((k.clone(), Histogram::from_json(h)?))).collect()
    }

    /// Rebuilds the traces of a snapshot from its JSON serialization
    /// (spans/metrics are aggregate-only and not reconstructed).
    pub fn traces_from_json(value: &Json) -> Option<Vec<ConvergenceTrace>> {
        let arr = value.get("traces")?.as_arr()?;
        let mut out = Vec::with_capacity(arr.len());
        for t in arr {
            out.push(ConvergenceTrace {
                solver: t.get("solver")?.as_str()?.to_string(),
                label: t.get("label")?.as_str()?.to_string(),
                converged: matches!(t.get("converged")?, Json::Bool(true)),
                residuals: t
                    .get("residuals")?
                    .as_arr()?
                    .iter()
                    .map(|r| r.as_f64())
                    .collect::<Option<Vec<f64>>>()?,
            });
        }
        Some(out)
    }

    /// Renders the metrics sections (counters, gauges, histograms) in
    /// the Prometheus text exposition format. Dots and other
    /// non-identifier characters become underscores under an `rfsim_`
    /// prefix; histograms render as summaries with
    /// `quantile="0.5|0.9|0.99|0.999"` series plus `_sum`/`_count`.
    /// Spans, traces, and health events have no Prometheus equivalent
    /// and are omitted.
    pub fn render_prometheus(&self) -> String {
        fn prom_name(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 6);
            out.push_str("rfsim_");
            out.extend(name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }));
            out
        }
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, v) in &self.gauges {
            let n = prom_name(k);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (k, h) in &self.histograms {
            let n = prom_name(k);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)] {
                let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }

    /// Renders the human-readable report.
    pub fn render_report(&self) -> String {
        fn walk(out: &mut String, name: &str, node: &SpanNode, depth: usize) {
            let _ = writeln!(
                out,
                "  {:indent$}{name:<w$} {:>8}x {:>12.6}s",
                "",
                node.count,
                node.seconds(),
                indent = depth * 2,
                w = 36usize.saturating_sub(depth * 2),
            );
            for (child, sub) in &node.children {
                walk(out, child, sub, depth + 1);
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== rfsim telemetry ==");
        if self.spans.children.is_empty() {
            let _ = writeln!(out, "spans: (none)");
        } else {
            let _ = writeln!(out, "spans (count, total):");
            for (name, node) in &self.spans.children {
                walk(&mut out, name, node, 0);
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<44} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in &self.gauges {
                // Fixed-point truncates tiny values (oscillator periods in
                // ns) to 0.000000; fall back to scientific below 1e-3.
                let _ = if *v == 0.0 || v.abs() >= 1e-3 {
                    writeln!(out, "  {k:<44} {v:>12.6}")
                } else {
                    writeln!(out, "  {k:<44} {v:>12.6e}")
                };
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms (count / mean / p50 / p95 / p99 / min / max):");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<44} {:>8} / {:.3} / {:.3} / {:.3} / {:.3} / {:.3} / {:.3}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.min,
                    h.max
                );
            }
        }
        if !self.traces.is_empty() {
            let _ = writeln!(out, "convergence traces:");
            for t in &self.traces {
                let first = t.residuals.first().copied().unwrap_or(f64::NAN);
                let last = t.residuals.last().copied().unwrap_or(f64::NAN);
                let _ = writeln!(
                    out,
                    "  {:<28} {:<24} {:>4} iters  {first:.3e} -> {last:.3e}  {}",
                    t.solver,
                    t.label,
                    t.residuals.len(),
                    if t.converged { "converged" } else { "FAILED" },
                );
            }
        }
        if self.dropped_traces > 0 {
            let _ = writeln!(
                out,
                "note: {} trace(s) dropped after the {MAX_TRACES}-trace cap",
                self.dropped_traces
            );
        }
        if !self.health.is_empty() {
            let _ = writeln!(out, "health events:");
            for h in &self.health {
                let _ = writeln!(
                    out,
                    "  {:<16} {:<28} iter {:>4}  {}",
                    h.monitor, h.solver, h.iteration, h.detail,
                );
            }
        }
        if self.dropped_health > 0 {
            let _ = writeln!(
                out,
                "note: {} health event(s) dropped after the {MAX_HEALTH_EVENTS}-event cap",
                self.dropped_health
            );
        }
        out
    }
}

/// Flushes recorded telemetry according to the current mode.
///
/// - `Off`: does nothing.
/// - `Report`: prints [`Snapshot::render_report`] to stderr.
/// - `Json { path }`: writes pretty-printed JSON to `path`, falling
///   back to `default_json_path`, then `rfsim-telemetry.json`.
/// - `Chrome { path }`: writes the trace-event timeline to `path`,
///   falling back to `rfsim-trace.json`.
///
/// Returns the path written in JSON or Chrome mode.
///
/// # Errors
/// Propagates I/O failures from the file write.
pub fn flush(default_json_path: Option<&str>) -> std::io::Result<Option<std::path::PathBuf>> {
    match mode() {
        Mode::Off => Ok(None),
        Mode::Report => {
            eprint!("{}", snapshot().render_report());
            Ok(None)
        }
        Mode::Json { path } => {
            let path = std::path::PathBuf::from(
                path.as_deref().or(default_json_path).unwrap_or("rfsim-telemetry.json"),
            );
            std::fs::write(&path, snapshot().to_json().to_string_pretty())?;
            Ok(Some(path))
        }
        Mode::Chrome { path } => {
            let path = std::path::PathBuf::from(path.as_deref().unwrap_or("rfsim-trace.json"));
            std::fs::write(&path, chrome::to_json().to_string_compact())?;
            Ok(Some(path))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_mode_grammar() {
        assert_eq!(parse_mode("off"), Some(Mode::Off));
        assert_eq!(parse_mode(""), Some(Mode::Off));
        assert_eq!(parse_mode("report"), Some(Mode::Report));
        assert_eq!(parse_mode("json"), Some(Mode::Json { path: None }));
        assert_eq!(
            parse_mode("json:/tmp/x.json"),
            Some(Mode::Json { path: Some("/tmp/x.json".into()) })
        );
        assert_eq!(parse_mode("json:"), None);
        assert_eq!(parse_mode("chrome"), Some(Mode::Chrome { path: None }));
        assert_eq!(
            parse_mode("chrome:trace.json"),
            Some(Mode::Chrome { path: Some("trace.json".into()) })
        );
        assert_eq!(parse_mode("chrome:"), None);
        assert_eq!(parse_mode("bogus"), None);
    }

    #[test]
    fn snapshot_json_has_sections() {
        let snap = Snapshot {
            spans: SpanNode::default(),
            counters: [("a.b".to_string(), 3u64)].into_iter().collect(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            traces: vec![ConvergenceTrace {
                solver: "s".into(),
                label: "l".into(),
                residuals: vec![1.0, 0.1],
                converged: true,
            }],
            dropped_traces: 0,
            health: vec![HealthEvent {
                monitor: "stagnation".into(),
                solver: "krylov.gmres".into(),
                detail: "stalled".into(),
                value: 0.5,
                iteration: 30,
            }],
            dropped_health: 0,
        };
        let j = snap.to_json();
        assert_eq!(j.get("counters").unwrap().get("a.b").unwrap().as_f64(), Some(3.0));
        let traces = Snapshot::traces_from_json(&j).unwrap();
        assert_eq!(traces, snap.traces);
        let health = Snapshot::health_from_json(&j).unwrap();
        assert_eq!(health, snap.health);
        let report = snap.render_report();
        assert!(report.contains("health events:"));
        assert!(report.contains("stagnation"));
    }
}
