//! Property-based tests for the EM layer: the IES³-compressed operator
//! must behave like the dense potential matrix it replaces, on randomly
//! generated panel clouds — not just the hand-picked meshes of the unit
//! tests.

use proptest::prelude::*;
use rfsim_em::geom::{mesh_plate, Panel};
use rfsim_em::ies3::{CompressedMatrix, Ies3Options};
use rfsim_em::kernel::GreenFn;
use rfsim_em::mom::MomProblem;

/// A random but well-posed panel cloud: one or two jittered plate meshes
/// (panels never overlap, so the collocation matrix stays well
/// conditioned).
fn panel_cloud() -> impl Strategy<Value = Vec<Panel>> {
    (4usize..9, 4usize..9, 3e-4f64..2e-3, 0.0f64..1e-3, 0usize..2, 3e-5f64..3e-4).prop_map(
        |(nx, ny, size, x0, extra_layer, gap)| {
            let mut panels = mesh_plate(x0, 0.0, 0.0, size, size, nx, ny, 0);
            if extra_layer > 0 {
                panels.extend(mesh_plate(x0, 0.0, gap, size, size, nx, ny, 1));
            }
            panels
        },
    )
}

proptest! {
    /// IES³ matvec agrees with the dense assembly on the same cloud.
    #[test]
    fn ies3_matvec_matches_dense(panels in panel_cloud(), seed in 0u64..1000) {
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let dense = p.assemble_dense();
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let x: Vec<f64> =
            (0..p.len()).map(|i| (((i as u64).wrapping_mul(seed + 7) % 17) as f64) - 8.0).collect();
        let yd = dense.matvec(&x);
        let yc = cm.matvec(&x);
        let scale = yd.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-300);
        for (a, b) in yd.iter().zip(&yc) {
            prop_assert!((a - b).abs() < 1e-3 * scale, "{a} vs {b} (scale {scale:.3e})");
        }
    }

    /// The compressed operator is linear: A(αx + y) = αAx + Ay.
    #[test]
    fn ies3_matvec_is_linear(panels in panel_cloud(), alpha in -3.0f64..3.0) {
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
        let n = p.len();
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 7) as f64 - 3.0).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 13) % 5) as f64 - 2.0).collect();
        let combined: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let lhs = cm.matvec(&combined);
        let ax = cm.matvec(&x);
        let ay = cm.matvec(&y);
        let scale = lhs.iter().map(|v| v.abs()).fold(0.0, f64::max).max(1e-300);
        for i in 0..n {
            let rhs = alpha * ax[i] + ay[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-9 * scale);
        }
    }

    /// Dense assembly has a dominant positive diagonal (self-potential
    /// exceeds any mutual term) on every cloud — the property Jacobi
    /// preconditioning and the iterative solve rely on.
    #[test]
    fn dense_diagonal_dominates(panels in panel_cloud()) {
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let a = p.assemble_dense();
        for i in 0..p.len() {
            prop_assert!(a[(i, i)] > 0.0);
            for j in 0..p.len() {
                if i != j {
                    prop_assert!(a[(i, i)] > a[(i, j)].abs(), "({i},{j})");
                }
            }
        }
    }
}
