//! Allocation regression test for the EM hot path: after warmup, ten
//! consecutive IES³ compressed matvecs through [`CompressedMatrix::
//! matvec_into`] must perform zero heap allocations — the inner GMRES
//! loop of every extraction calls it once per iteration.
//!
//! This lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`. Telemetry stays inactive and the
//! thread count is pinned to 1 so the serial, scratch-backed path runs —
//! the parallel path spawns scoped threads, which allocate by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rfsim_em::geom::mesh_parallel_plates;
use rfsim_em::ies3::{CompressedMatrix, Ies3Options};
use rfsim_em::kernel::GreenFn;
use rfsim_em::mom::MomProblem;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn compressed_matvec_is_alloc_free_after_warmup() {
    rfsim_parallel::set_thread_count(1);
    let panels = mesh_parallel_plates(1e-3, 5e-5, 10);
    let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
    let cm = CompressedMatrix::build(&p.panels, &p.green, &Ies3Options::default()).unwrap();
    let n = p.len();

    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin()).collect();
    let mut y = vec![0.0; n];

    // Warmup: the first applications grow the scratch buffers to size.
    for _ in 0..2 {
        cm.matvec_into(&x, &mut y);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        cm.matvec_into(&x, &mut y);
    }
    let delta = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(delta, 0, "IES³ matvec_into made {delta} heap allocations across 10 applications");
}
