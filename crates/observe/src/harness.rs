//! The shared bench harness: wraps one experiment run, times its
//! phases and sweep points, and writes the `BENCH_<id>.json` artifact
//! on exit — whatever `RFSIM_TELEMETRY` says. The env var still picks
//! an *additional* sink (stderr report, raw snapshot JSON, Chrome
//! trace); the artifact is unconditional so the perf trajectory is
//! always captured.

use crate::artifact::{git_sha, BenchArtifact, Phase, SweepPoint, SCHEMA_VERSION};
use rfsim_telemetry as telemetry;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

/// Directory override for the artifact (default: current directory,
/// i.e. the repo root under `cargo run`).
pub const BENCH_DIR_VAR: &str = "RFSIM_BENCH_DIR";

/// Metric recorder handed to a sweep-point closure.
#[derive(Debug, Default)]
pub struct PointMetrics {
    metrics: BTreeMap<String, f64>,
}

impl PointMetrics {
    /// Records one measured output of the point.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }
}

/// Per-run harness used by every `e01`–`e12` bin.
///
/// Construction isolates the run: telemetry is [`telemetry::reset`] so
/// counters, spans, traces, and health events belong to this run alone,
/// and recording is forced on (silently, in [`telemetry::Mode::Report`])
/// when the environment selected no sink, so the artifact always has a
/// populated snapshot.
#[derive(Debug)]
pub struct Harness {
    id: String,
    t0: Instant,
    env_sink: bool,
    failure: Option<String>,
    phases: Vec<Phase>,
    sweep: Vec<SweepPoint>,
}

impl Harness {
    /// Starts a run for experiment `id` (e.g. `"e08"`).
    pub fn new(id: &str) -> Self {
        let env_sink = telemetry::mode() != telemetry::Mode::Off;
        if !env_sink {
            telemetry::set_mode(telemetry::Mode::Report);
        }
        telemetry::reset();
        telemetry::gauge_set("pool.threads", rfsim_parallel::thread_count() as f64);
        Harness {
            id: id.to_string(),
            t0: Instant::now(),
            env_sink,
            failure: None,
            phases: Vec::new(),
            sweep: Vec::new(),
        }
    }

    /// Runs and times one named top-level phase.
    pub fn phase<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let span = telemetry::span_dyn(format!("bench.phase.{name}"));
        let t0 = Instant::now();
        let out = f();
        let wall_seconds = t0.elapsed().as_secs_f64();
        drop(span);
        self.phases.push(Phase { name: name.to_string(), wall_seconds });
        out
    }

    /// Runs one sweep point, capturing its wall clock and the telemetry
    /// counter deltas it alone produced. The closure records further
    /// metrics through the [`PointMetrics`] handle.
    pub fn sweep_point<T>(
        &mut self,
        label: &str,
        params: &[(&str, f64)],
        f: impl FnOnce(&mut PointMetrics) -> T,
    ) -> T {
        let before = telemetry::snapshot().counters;
        let span = telemetry::span_dyn(format!("bench.sweep.{label}"));
        let t0 = Instant::now();
        let mut pm = PointMetrics::default();
        let out = f(&mut pm);
        let wall_seconds = t0.elapsed().as_secs_f64();
        drop(span);
        let after = telemetry::snapshot().counters;
        let counters = after
            .into_iter()
            .filter_map(|(k, v)| {
                let delta = v - before.get(&k).copied().unwrap_or(0);
                (delta > 0).then_some((k, delta))
            })
            .collect();
        pm.metrics.insert("wall_seconds".to_string(), wall_seconds);
        self.sweep.push(SweepPoint {
            label: label.to_string(),
            params: params.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            metrics: pm.metrics,
            counters,
        });
        out
    }

    /// Marks the run failed without ending it (the artifact is still
    /// written by [`Harness::finish`], which then exits nonzero).
    pub fn fail(&mut self, msg: impl Into<String>) {
        let msg = msg.into();
        eprintln!("{}: FAILED: {msg}", self.id);
        self.failure.get_or_insert(msg);
    }

    /// Ends a failed run: records the error, writes the artifact, exits
    /// nonzero.
    pub fn abort(mut self, err: &str) -> ExitCode {
        self.fail(err);
        self.finish()
    }

    /// Ends the run: flushes the env-selected sink (if any), writes
    /// `BENCH_<id>.json`, and returns the process exit code — nonzero
    /// if any failure was recorded.
    pub fn finish(self) -> ExitCode {
        let wall_seconds = self.t0.elapsed().as_secs_f64();
        if self.env_sink {
            let default = format!("{}.telemetry.json", self.id);
            match telemetry::flush(Some(&default)) {
                Ok(Some(path)) => eprintln!("telemetry: wrote {}", path.display()),
                Ok(None) => {}
                Err(e) => {
                    let target = match telemetry::mode() {
                        telemetry::Mode::Json { path } => path.unwrap_or(default),
                        telemetry::Mode::Chrome { path } => {
                            path.unwrap_or_else(|| "rfsim-trace.json".into())
                        }
                        _ => default,
                    };
                    eprintln!("telemetry: flush to {target} failed: {e}");
                }
            }
        }
        let artifact = BenchArtifact {
            schema_version: SCHEMA_VERSION,
            id: self.id.clone(),
            git_sha: git_sha(),
            threads: rfsim_parallel::thread_count(),
            wall_seconds,
            failure: self.failure.clone(),
            phases: self.phases,
            sweep: self.sweep,
            telemetry: telemetry::snapshot().to_json(),
        };
        let dir = std::env::var(BENCH_DIR_VAR).unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(BenchArtifact::file_name(&self.id));
        match std::fs::write(&path, artifact.to_json().to_string_pretty()) {
            Ok(()) => eprintln!("bench: wrote {}", path.display()),
            Err(e) => eprintln!("bench: failed to write {}: {e}", path.display()),
        }
        if self.failure.is_some() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
