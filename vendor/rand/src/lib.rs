//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small slice of `rand` it actually uses: a
//! deterministic seedable generator (`rngs::StdRng`), the `RngCore` /
//! `SeedableRng` traits, and `Rng::gen_range` / `Rng::gen` over the
//! primitive numeric types. The generator is xoshiro256** seeded via
//! splitmix64 — statistically solid for Monte-Carlo workloads, *not*
//! cryptographic (neither is upstream `StdRng`'s contract for our uses).

use std::ops::Range;

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = SplitMix64 { state };
        for chunk in bytes.chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + u * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, &range)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&x));
            let k: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn gen_uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
