//! Numerical-health monitors: structured events for residual
//! stagnation, divergence, and non-finite values in the iterative
//! engines, plus the [`ResidualMonitor`] state machine the solvers
//! embed next to their [`crate::TraceBuf`].
//!
//! Monitors follow the same zero-cost contract as the rest of the
//! crate: [`ResidualMonitor::new`] samples [`crate::enabled`] once
//! (one relaxed atomic load) and every subsequent
//! [`ResidualMonitor::observe`] is a single branch on the captured
//! flag when telemetry is off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hard cap on stored health events.
pub const MAX_HEALTH_EVENTS: usize = 1024;

/// One structured health event.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Detector kind: `stagnation`, `divergence`, `nonfinite`, or
    /// `precond_degraded`.
    pub monitor: String,
    /// Emitting solver, e.g. `krylov.gmres` or `hb.newton`.
    pub solver: String,
    /// Human-readable detail.
    pub detail: String,
    /// The offending value (residual, ratio, ...).
    pub value: f64,
    /// Iteration at which the condition was detected (1-based).
    pub iteration: usize,
}

static EVENTS: Mutex<Vec<HealthEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Records a health event (no-op when telemetry is off).
pub fn record_health(monitor: &str, solver: &str, detail: &str, value: f64, iteration: usize) {
    if !crate::enabled() {
        return;
    }
    let mut events = EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if events.len() >= MAX_HEALTH_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(HealthEvent {
        monitor: monitor.to_string(),
        solver: solver.to_string(),
        detail: detail.to_string(),
        value,
        iteration,
    });
}

pub(crate) fn events() -> Vec<HealthEvent> {
    EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

pub(crate) fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn reset() {
    EVENTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Outcome of one [`ResidualMonitor::observe`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Nothing noteworthy (or telemetry off).
    Ok,
    /// The residual is NaN or infinite.
    NonFinite,
    /// No meaningful improvement for a full stagnation window.
    Stagnating,
    /// The residual blew up well past its best value.
    Diverging,
}

/// Streaming residual-health detector; one per solve, fed each
/// iteration's residual norm alongside the convergence trace.
///
/// Detection rules (thresholds documented in DESIGN §10):
/// - **nonfinite** — residual is NaN/±Inf.
/// - **stagnation** — `window` consecutive iterations without improving
///   the running best residual by at least a factor of
///   `1 - REL_IMPROVEMENT`.
/// - **divergence** — residual exceeds `divergence_factor ×` the
///   running best (after the first iteration established a baseline).
///
/// Each condition fires at most one event per monitor.
#[derive(Debug)]
pub struct ResidualMonitor {
    solver: &'static str,
    active: bool,
    iter: usize,
    best: f64,
    best_iter: usize,
    window: usize,
    divergence_factor: f64,
    flagged_stagnation: bool,
    flagged_divergence: bool,
    flagged_nonfinite: bool,
}

/// Minimum relative improvement per window for progress to count.
const REL_IMPROVEMENT: f64 = 1e-3;

impl ResidualMonitor {
    /// Krylov-flavored monitor: stagnation window of 25 inner
    /// iterations, divergence at 1e4× the best residual.
    pub fn new(solver: &'static str) -> Self {
        Self::with(solver, 25, 1e4)
    }

    /// Newton-flavored monitor: outer loops run tens of iterations, so
    /// the stagnation window shrinks to 8 and divergence trips at 1e3×.
    pub fn newton(solver: &'static str) -> Self {
        Self::with(solver, 8, 1e3)
    }

    /// Monitor with explicit thresholds.
    pub fn with(solver: &'static str, window: usize, divergence_factor: f64) -> Self {
        ResidualMonitor {
            solver,
            active: crate::enabled(),
            iter: 0,
            best: f64::INFINITY,
            best_iter: 0,
            window,
            divergence_factor,
            flagged_stagnation: false,
            flagged_divergence: false,
            flagged_nonfinite: false,
        }
    }

    /// Whether this monitor records anything (telemetry was on at
    /// construction).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Feeds one iteration's residual norm. Single branch when
    /// inactive.
    #[inline]
    pub fn observe(&mut self, residual: f64) -> HealthStatus {
        if !self.active {
            return HealthStatus::Ok;
        }
        self.observe_slow(residual)
    }

    fn observe_slow(&mut self, residual: f64) -> HealthStatus {
        self.iter += 1;
        if !residual.is_finite() {
            if !self.flagged_nonfinite {
                self.flagged_nonfinite = true;
                record_health(
                    "nonfinite",
                    self.solver,
                    &format!("residual became {residual} at iteration {}", self.iter),
                    residual,
                    self.iter,
                );
            }
            return HealthStatus::NonFinite;
        }
        if residual < self.best * (1.0 - REL_IMPROVEMENT) {
            self.best = residual;
            self.best_iter = self.iter;
            return HealthStatus::Ok;
        }
        if !self.flagged_divergence
            && self.best.is_finite()
            && residual > self.best * self.divergence_factor
        {
            self.flagged_divergence = true;
            record_health(
                "divergence",
                self.solver,
                &format!(
                    "residual {residual:.3e} exceeds {:.0e}x the best seen ({:.3e})",
                    self.divergence_factor, self.best
                ),
                residual,
                self.iter,
            );
            return HealthStatus::Diverging;
        }
        if !self.flagged_stagnation && self.iter - self.best_iter >= self.window {
            self.flagged_stagnation = true;
            record_health(
                "stagnation",
                self.solver,
                &format!(
                    "no {REL_IMPROVEMENT:.0e} relative improvement in {} iterations (best {:.3e} at iteration {})",
                    self.window, self.best, self.best_iter
                ),
                residual,
                self.iter,
            );
            return HealthStatus::Stagnating;
        }
        HealthStatus::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_telemetry<T>(f: impl FnOnce() -> T) -> T {
        crate::set_mode(crate::Mode::Report);
        crate::reset();
        let out = f();
        crate::set_mode(crate::Mode::Off);
        crate::reset();
        out
    }

    #[test]
    fn inactive_monitor_records_nothing() {
        crate::set_mode(crate::Mode::Off);
        crate::reset();
        let mut m = ResidualMonitor::new("test.off");
        for _ in 0..100 {
            assert_eq!(m.observe(f64::NAN), HealthStatus::Ok);
        }
        assert!(events().is_empty());
    }

    #[test]
    fn nonfinite_fires_once() {
        with_telemetry(|| {
            let mut m = ResidualMonitor::new("test.nan");
            assert_eq!(m.observe(1.0), HealthStatus::Ok);
            assert_eq!(m.observe(f64::NAN), HealthStatus::NonFinite);
            assert_eq!(m.observe(f64::NAN), HealthStatus::NonFinite);
            let evs = events();
            assert_eq!(evs.len(), 1);
            assert_eq!(evs[0].monitor, "nonfinite");
            assert_eq!(evs[0].solver, "test.nan");
            assert_eq!(evs[0].iteration, 2);
        });
    }

    #[test]
    fn stagnation_after_window() {
        with_telemetry(|| {
            let mut m = ResidualMonitor::with("test.stall", 10, 1e4);
            assert_eq!(m.observe(1.0), HealthStatus::Ok);
            for _ in 0..9 {
                assert_eq!(m.observe(0.9999), HealthStatus::Ok);
            }
            assert_eq!(m.observe(0.9999), HealthStatus::Stagnating);
            // Fires only once.
            assert_eq!(m.observe(0.9999), HealthStatus::Ok);
            let evs = events();
            assert_eq!(evs.len(), 1);
            assert_eq!(evs[0].monitor, "stagnation");
        });
    }

    #[test]
    fn divergence_on_blowup() {
        with_telemetry(|| {
            let mut m = ResidualMonitor::with("test.blowup", 25, 1e3);
            assert_eq!(m.observe(1e-6), HealthStatus::Ok);
            assert_eq!(m.observe(1e-2), HealthStatus::Diverging);
            let evs = events();
            assert_eq!(evs.len(), 1);
            assert_eq!(evs[0].monitor, "divergence");
        });
    }

    #[test]
    fn steady_progress_stays_healthy() {
        with_telemetry(|| {
            let mut m = ResidualMonitor::new("test.good");
            let mut r = 1.0;
            for _ in 0..200 {
                assert_eq!(m.observe(r), HealthStatus::Ok);
                r *= 0.9;
            }
            assert!(events().is_empty());
        });
    }
}
