//! Autonomous periodic steady state: shooting with the period as an
//! unknown.
//!
//! Forced-circuit shooting fixes the period from the drive; an oscillator
//! has no drive, so the boundary-value problem is
//!
//! ```text
//!   φ_T(x₀) − x₀ = 0            (n equations)
//!   g_p(x₀)      = 0            (phase condition: component p at an extremum)
//! ```
//!
//! in the `n+1` unknowns `(x₀, T)`. The trajectory and monodromy are
//! integrated with RK4 on the oscillator ODE and its variational equation.

use crate::oscillator::{state_jacobian, vector_field};
use crate::{Error, Result};
use rfsim_circuit::dae::Dae;
use rfsim_numerics::dense::Mat;
use rfsim_numerics::{norm2, norm_inf};
use rfsim_telemetry as telemetry;

/// Options for [`oscillator_pss`].
#[derive(Debug, Clone)]
pub struct PssOptions {
    /// RK4 steps per period.
    pub steps_per_period: usize,
    /// Newton tolerance on the boundary residual.
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_newton: usize,
    /// State component used for the phase condition (`ẋ_p(0) = 0`).
    pub phase_index: usize,
}

impl Default for PssOptions {
    fn default() -> Self {
        PssOptions { steps_per_period: 400, tol: 1e-10, max_newton: 60, phase_index: 0 }
    }
}

/// A converged oscillator orbit.
#[derive(Debug, Clone)]
pub struct PssResult {
    /// Oscillation period `T` (s) — found by the solver, not assumed.
    pub period: f64,
    /// Initial state on the orbit.
    pub x0: Vec<f64>,
    /// Time samples over one period (length `steps + 1`).
    pub times: Vec<f64>,
    /// States along the orbit.
    pub states: Vec<Vec<f64>>,
    /// Monodromy matrix `Φ(T, 0)`.
    pub monodromy: Mat<f64>,
    /// Newton iterations used.
    pub newton_iterations: usize,
}

impl PssResult {
    /// Oscillation frequency (Hz).
    pub fn freq(&self) -> f64 {
        1.0 / self.period
    }

    /// Waveform of state `i` (without the duplicated endpoint).
    pub fn waveform(&self, i: usize) -> Vec<f64> {
        self.states[..self.states.len() - 1].iter().map(|s| s[i]).collect()
    }

    /// Peak amplitude of harmonic `k` of state `i`.
    pub fn amplitude(&self, i: usize, k: i32) -> f64 {
        let w = self.waveform(i);
        let ns = w.len();
        let spec = rfsim_numerics::fft::dft_real(&w);
        let bin = if k >= 0 { k as usize } else { (ns as i32 + k) as usize };
        let c = spec[bin].scale(1.0 / ns as f64).abs();
        if k == 0 {
            c
        } else {
            2.0 * c
        }
    }
}

/// One RK4 step of the state and the variational (monodromy) equation.
fn rk4_step(dae: &dyn Dae, x: &mut [f64], m: &mut Mat<f64>, h: f64) {
    let n = x.len();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let j1 = state_jacobian(dae, x);
    vector_field(dae, x, &mut k1);
    let x2: Vec<f64> = (0..n).map(|i| x[i] + 0.5 * h * k1[i]).collect();
    let j2 = state_jacobian(dae, &x2);
    vector_field(dae, &x2, &mut k2);
    let x3: Vec<f64> = (0..n).map(|i| x[i] + 0.5 * h * k2[i]).collect();
    let j3 = state_jacobian(dae, &x3);
    vector_field(dae, &x3, &mut k3);
    let x4: Vec<f64> = (0..n).map(|i| x[i] + h * k3[i]).collect();
    let j4 = state_jacobian(dae, &x4);
    vector_field(dae, &x4, &mut k4);
    for i in 0..n {
        x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    // Variational: Ṁ = J(x(t))·M, RK4 with the same stage Jacobians.
    let m1 = j1.matmul(m);
    let mut tmp = m.clone();
    add_scaled(&mut tmp, &m1, 0.5 * h);
    let m2 = j2.matmul(&tmp);
    let mut tmp = m.clone();
    add_scaled(&mut tmp, &m2, 0.5 * h);
    let m3 = j3.matmul(&tmp);
    let mut tmp = m.clone();
    add_scaled(&mut tmp, &m3, h);
    let m4 = j4.matmul(&tmp);
    let mut acc = m1;
    add_scaled(&mut acc, &m2, 2.0);
    add_scaled(&mut acc, &m3, 2.0);
    add_scaled(&mut acc, &m4, 1.0);
    add_scaled(m, &acc, h / 6.0);
}

/// Crate-visible RK4 step (used by the PPV propagation).
pub(crate) fn rk4_step_pub(dae: &dyn Dae, x: &mut [f64], m: &mut Mat<f64>, h: f64) {
    rk4_step(dae, x, m, h);
}

fn add_scaled(dst: &mut Mat<f64>, src: &Mat<f64>, s: f64) {
    for (d, v) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d += s * v;
    }
}

/// Integrates one period, returning the trajectory and monodromy.
pub(crate) fn integrate_period(
    dae: &dyn Dae,
    x0: &[f64],
    period: f64,
    steps: usize,
) -> (Vec<Vec<f64>>, Vec<f64>, Mat<f64>) {
    let n = x0.len();
    let h = period / steps as f64;
    let mut x = x0.to_vec();
    let mut m: Mat<f64> = Mat::identity(n);
    let mut states = Vec::with_capacity(steps + 1);
    let mut times = Vec::with_capacity(steps + 1);
    states.push(x.clone());
    times.push(0.0);
    for k in 0..steps {
        rk4_step(dae, &mut x, &mut m, h);
        states.push(x.clone());
        times.push((k + 1) as f64 * h);
    }
    (states, times, m)
}

/// Finds the periodic orbit and period of an autonomous oscillator.
///
/// `guess` is `(x0, period)`; the oscillator models in
/// [`oscillator`](crate::oscillator) provide `initial_guess()`.
///
/// # Errors
/// [`Error::NoConvergence`] if Newton stalls;
/// [`Error::InvalidSetup`] for a non-positive period guess.
pub fn oscillator_pss(
    dae: &dyn Dae,
    guess: (Vec<f64>, f64),
    opts: &PssOptions,
) -> Result<PssResult> {
    let n = dae.dim();
    let (mut x0, mut period) = guess;
    if period <= 0.0 {
        return Err(Error::InvalidSetup("period guess must be positive".into()));
    }
    let _span = telemetry::span("pss.oscillator");
    let mut trace = telemetry::TraceBuf::new("pss.newton");
    // Settle transient: integrate a number of periods so x0 is near the
    // limit cycle before Newton, and refine the period guess from the
    // observed upward zero-crossings of the phase component (the user's
    // period guess only needs to be order-of-magnitude correct).
    {
        let settle_steps = 20 * opts.steps_per_period;
        let (states, times, _) = integrate_period(dae, &x0, 20.0 * period, settle_steps);
        x0 = states.last().expect("nonempty").clone();
        let p = opts.phase_index;
        let mean: f64 = states.iter().map(|s| s[p]).sum::<f64>() / states.len() as f64;
        let mut crossings = Vec::new();
        for k in 1..states.len() {
            let (a, b) = (states[k - 1][p] - mean, states[k][p] - mean);
            if a <= 0.0 && b > 0.0 {
                let frac = a / (a - b);
                crossings.push(times[k - 1] + frac * (times[k] - times[k - 1]));
            }
        }
        if crossings.len() >= 3 {
            // Average the last few whole-cycle intervals.
            let tail = &crossings[crossings.len().saturating_sub(4)..];
            let mut acc = 0.0;
            for w in tail.windows(2) {
                acc += w[1] - w[0];
            }
            let est = acc / (tail.len() - 1) as f64;
            if est.is_finite() && est > 0.0 {
                period = est;
            }
        }
    }
    let mut last_res = f64::INFINITY;
    for it in 0..opts.max_newton {
        let (states, times, m) = integrate_period(dae, &x0, period, opts.steps_per_period);
        let x_end = states.last().expect("nonempty");
        // Residual: periodicity plus phase anchor ẋ_p(0) = 0.
        let mut g0 = vec![0.0; n];
        vector_field(dae, &x0, &mut g0);
        let mut r = vec![0.0; n + 1];
        for i in 0..n {
            r[i] = x_end[i] - x0[i];
        }
        r[n] = g0[opts.phase_index];
        let res = norm_inf(&r);
        last_res = res;
        trace.push(res);
        let scale = norm2(&x0).max(1.0);
        if res < opts.tol * scale {
            // Reject the trivial equilibrium "orbit" (ẋ ≈ 0 everywhere):
            // every period satisfies periodicity there, but it is not an
            // oscillation.
            let flow = norm2(&g0);
            if flow < 1e-9 * scale / period {
                return Err(Error::NotAnOscillator { closest_multiplier: 1.0 });
            }
            trace.commit(true);
            telemetry::counter_add("pss.newton.iterations", it as u64);
            telemetry::gauge_set("pss.period_seconds", period);
            return Ok(PssResult {
                period,
                x0,
                times,
                states,
                monodromy: m,
                newton_iterations: it,
            });
        }
        // Jacobian: [[M − I, g(x_T)], [∂g_p/∂x(x₀), 0]].
        let mut g_end = vec![0.0; n];
        vector_field(dae, x_end, &mut g_end);
        let jp = state_jacobian(dae, &x0);
        let mut jac = Mat::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                jac[(i, j)] = m[(i, j)] - if i == j { 1.0 } else { 0.0 };
            }
            jac[(i, n)] = g_end[i];
            jac[(n, i)] = jp[(opts.phase_index, i)];
        }
        let dx = jac.solve(&r).map_err(Error::Numerics)?;
        // Damped update (period especially must not go negative).
        let mut alpha = 1.0f64;
        while alpha > 1e-4 && period - alpha * dx[n] <= 0.0 {
            alpha *= 0.5;
        }
        for i in 0..n {
            x0[i] -= alpha * dx[i];
        }
        period -= alpha * dx[n];
    }
    trace.commit(false);
    telemetry::counter_add("pss.newton.iterations", opts.max_newton as u64);
    Err(Error::NoConvergence { iterations: opts.max_newton, residual: last_res })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oscillator::{LcOscillator, RingOscillator, VanDerPol};

    #[test]
    fn vdp_small_mu_period_near_2pi() {
        let osc = VanDerPol::new(0.1, 0.0);
        let res = oscillator_pss(&osc, osc.initial_guess(), &PssOptions::default()).unwrap();
        assert!((res.period - 2.0 * std::f64::consts::PI).abs() < 0.01, "period {}", res.period);
        // Amplitude close to the classical 2.0.
        assert!((res.amplitude(0, 1) - 2.0).abs() < 0.05);
        // Orbit closes.
        let first = &res.states[0];
        let last = res.states.last().unwrap();
        for (a, b) in first.iter().zip(last) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn vdp_monodromy_has_unit_multiplier() {
        let osc = VanDerPol::new(1.0, 0.0);
        let res = oscillator_pss(&osc, osc.initial_guess(), &PssOptions::default()).unwrap();
        let eigs = rfsim_numerics::eig::eigenvalues(&res.monodromy).unwrap();
        let closest = eigs.iter().map(|z| (z.re - 1.0).hypot(z.im)).fold(f64::INFINITY, f64::min);
        assert!(closest < 1e-5, "distance from 1: {closest}");
        // The other multiplier is inside the unit circle (orbital
        // stability).
        let inner = eigs.iter().map(|z| z.abs()).fold(f64::INFINITY, f64::min);
        assert!(inner < 0.9, "second multiplier {inner}");
    }

    #[test]
    fn lc_oscillator_frequency() {
        // 1 GHz-class LC tank.
        let osc = LcOscillator::new(5e-9, 5e-12, 2e-3, 2e-4, 0.0);
        let res = oscillator_pss(&osc, osc.initial_guess(), &PssOptions::default()).unwrap();
        let f_natural = osc.natural_freq();
        assert!(
            (res.freq() - f_natural).abs() / f_natural < 0.02,
            "freq {} vs natural {}",
            res.freq(),
            f_natural
        );
        // Amplitude near the describing-function estimate.
        let est = osc.amplitude_estimate();
        assert!((res.amplitude(0, 1) - est).abs() / est < 0.1);
    }

    #[test]
    fn ring_oscillator_runs() {
        let osc = RingOscillator::new(3, 3.0, 1e-9, 0.0);
        let res = oscillator_pss(&osc, osc.initial_guess(), &PssOptions::default()).unwrap();
        assert!(res.period > 1e-10 && res.period < 1e-7, "period {}", res.period);
        // All three stages swing with the same amplitude (symmetry).
        let a0 = res.amplitude(0, 1);
        let a1 = res.amplitude(1, 1);
        let a2 = res.amplitude(2, 1);
        assert!((a0 - a1).abs() < 0.02 * a0);
        assert!((a0 - a2).abs() < 0.02 * a0);
    }
}
