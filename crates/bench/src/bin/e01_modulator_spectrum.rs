//! E1 — Fig 1: modulator in-band spectrum by harmonic balance.
//!
//! Reproduces the spectrum structure of the paper's dual-conversion
//! quadrature modulator run: the wanted sideband, the −35 dBc image from
//! layout (gain) imbalance, and the −78 dBc LO feedthrough that
//! "the numerical dynamic range of the transient simulation was
//! insufficient to pick up". The transient comparison quantifies that
//! noise floor.
//!
//! Default frequencies are scaled (1 MHz / 100 MHz) so the harness runs in
//! seconds; pass `--paper-scale` for the 80 kHz / 1.62 GHz original (HB
//! cost is unchanged — that is the point — but the transient comparison
//! becomes very slow, which is also the point).

use rfsim::circuit::transient::{transient, TranOptions};
use rfsim::numerics::fft::{amplitude_spectrum, dbc, hann_window};
use rfsim::steady::{solve_hb, HbOptions, SpectralGrid, ToneAxis};
use rfsim_bench::{fmt_dbc, heading, paper_scale, quadrature_modulator, ModulatorSpec};
use rfsim_observe::Harness;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut h = Harness::new("e01");
    match run(&mut h) {
        Ok(()) => h.finish(),
        Err(e) => h.abort(&e),
    }
}

fn run(h: &mut Harness) -> Result<(), String> {
    // The default baseband is deliberately incommensurate with the
    // carrier: HB is "particularly natural in the case of incommensurate
    // multi-tone drive" (§2.1), while no transient FFT window is then
    // exactly periodic — which is where its dynamic-range floor comes from.
    let spec = if paper_scale() {
        ModulatorSpec::default()
    } else {
        ModulatorSpec { f_bb: 1.0001237e6, f_lo: 100e6, ..Default::default() }
    };
    println!("E1: modulator in-band spectrum (Fig 1)");
    println!("baseband {:.3e} Hz, carrier {:.3e} Hz", spec.f_bb, spec.f_lo);

    let (dae, out) = quadrature_modulator(&spec);
    let oi = dae.node_index(out).ok_or("modulator output node missing")?;
    let grid = SpectralGrid::two_tone(ToneAxis::new(spec.f_bb, 3), ToneAxis::new(spec.f_lo, 3))
        .map_err(|e| format!("spectral grid: {e}"))?;

    let sol = h.sweep_point("hb", &[("f_bb", spec.f_bb), ("f_lo", spec.f_lo)], |pm| {
        let sol = solve_hb(&dae, &grid, &HbOptions::default())
            .map_err(|e| format!("harmonic balance: {e}"))?;
        pm.metric("unknowns", sol.stats.unknowns as f64);
        pm.metric("newton_iterations", sol.stats.newton_iterations as f64);
        Ok::<_, String>(sol)
    })?;
    let carrier = sol.amplitude(oi, &[-1, 1]); // wanted (lower) sideband

    heading("harmonic-balance spectrum (mixes around the carrier)");
    println!("{:>10} {:>14} {:>12} {:>9}", "mix(k,m)", "freq (Hz)", "amp (V)", "dBc");
    let mut rows: Vec<([i32; 2], f64)> = Vec::new();
    for k in -3i32..=3 {
        rows.push(([k, 1], sol.amplitude(oi, &[k, 1])));
    }
    rows.sort_by(|a, b| {
        sol.grid.mix_freq(&a.0).partial_cmp(&sol.grid.mix_freq(&b.0)).expect("finite freq")
    });
    for (mix, amp) in &rows {
        println!(
            "{:>10} {:>14.4e} {:>12.4e} {}",
            format!("({},{})", mix[0], mix[1]),
            sol.grid.mix_freq(mix),
            amp,
            fmt_dbc(dbc(*amp, carrier))
        );
    }
    let image_dbc = dbc(sol.amplitude(oi, &[1, 1]), carrier);
    let leak_dbc = dbc(sol.amplitude(oi, &[0, 1]), carrier);
    println!("\nimage sideband: {} dBc (paper: −35 dBc, out of spec)", fmt_dbc(image_dbc));
    println!("LO feedthrough: {} dBc (paper: −78 dBc spurious response)", fmt_dbc(leak_dbc));
    println!("HB unknowns: {}", sol.stats.unknowns);

    // Transient comparison: simulate the slow periods (1 settle + the
    // analysis window), FFT with a Hann window, and try to read the
    // −78 dBc LO leak off the spectrum.
    heading("conventional transient comparison (dynamic-range floor)");
    let periods = 8.0;
    let steps_per_lo = 40.0;
    let dt = 1.0 / (spec.f_lo * steps_per_lo);
    let t_end = (periods + 1.0) / spec.f_bb;
    let tran = h.phase("transient", || {
        transient(&dae, 0.0, t_end, &TranOptions { dt, ..Default::default() })
            .map_err(|e| format!("transient: {e}"))
    })?;
    let n_fft = 1 << 17;
    let y = tran.resample(oi, 1.0 / spec.f_bb, t_end, n_fft);
    let w = hann_window(n_fft);
    let yw: Vec<f64> = y.iter().zip(&w).map(|(a, b)| a * b).collect();
    let amp = amplitude_spectrum(&yw);
    let df = spec.f_bb / periods;
    let bin_of = |f: f64| (f / df).round() as usize;
    let b_car = bin_of(spec.f_lo);
    let b_want = bin_of(spec.f_lo - spec.f_bb);
    let b_img = bin_of(spec.f_lo + spec.f_bb);
    let carrier_tr = amp[b_want];
    println!("transient run: {} steps", tran.times.len());
    let img_tr = dbc(amp[b_img], carrier_tr);
    let leak_tr = dbc(amp[b_car], carrier_tr);
    println!(
        "detected: image {} dBc (true −35.0); LO leak {} dBc (true −78.1)",
        fmt_dbc(img_tr),
        fmt_dbc(leak_tr),
    );
    // The effective floor near the carrier: Hann sidelobe leakage from the
    // 0 dBc sideband plus integration error; measured as the median level
    // of the signal-free bins within ±50 bins of the carrier.
    let mut floor: Vec<f64> = (b_img.saturating_sub(50)..b_want + 50)
        .filter(|i| {
            let d = |b: usize| (*i as i64 - b as i64).unsigned_abs();
            d(b_car) > 3 && d(b_want) > 3 && d(b_img) > 3
        })
        .map(|i| amp[i])
        .collect();
    floor.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_floor = dbc(floor.get(floor.len() / 2).copied().unwrap_or(0.0), carrier_tr);
    println!("leakage/error floor near the carrier: {} dBc", fmt_dbc(median_floor));
    println!(
        "LO-leak estimate error vs truth: {:.1} dB{}",
        (leak_tr - (-78.1)).abs(),
        if median_floor > -78.0 {
            " — floor sits ABOVE the −78 dBc spur: transient cannot resolve it"
        } else {
            ""
        }
    );
    println!(
        "\nconclusion: HB reads the −78 dBc spur directly from its harmonic\n\
         amplitudes; the transient estimate is at the mercy of windowing\n\
         leakage and integration error — the paper's §2.1 dynamic-range claim."
    );
    Ok(())
}
