#![warn(missing_docs)]
//! `rfsim-observe` — machine-readable benchmark artifacts and
//! regression reporting on top of `rfsim-telemetry`.
//!
//! Every experiment bin (`e01`–`e12`) wraps its run in a [`Harness`],
//! which times phases and problem-size sweep points, captures per-point
//! telemetry counter deltas, and writes a schema-versioned
//! `BENCH_<id>.json` artifact at exit — including the full telemetry
//! snapshot (span tree, counters, convergence traces, health events),
//! thread count, and git SHA. The `rfsim-report` bin diffs two artifact
//! sets and fails past configurable regression thresholds, which is how
//! CI turns the paper's scaling claims into tracked numbers.
//!
//! # Example
//!
//! ```no_run
//! use rfsim_observe::Harness;
//!
//! fn run(h: &mut Harness) -> Result<(), String> {
//!     h.phase("warmup", || { /* ... */ });
//!     for n in [64usize, 256, 1024] {
//!         h.sweep_point(&format!("n={n}"), &[("n", n as f64)], |pm| {
//!             pm.metric("memory_bytes", (n * n) as f64);
//!         });
//!     }
//!     Ok(())
//! }
//!
//! fn main() -> std::process::ExitCode {
//!     let mut h = Harness::new("e99");
//!     match run(&mut h) {
//!         Ok(()) => h.finish(),
//!         Err(e) => h.abort(&e),
//!     }
//! }
//! ```

pub mod artifact;
pub mod harness;
pub mod report;

pub use artifact::{git_sha, BenchArtifact, Phase, SweepPoint, SCHEMA_VERSION};
pub use harness::{Harness, PointMetrics, BENCH_DIR_VAR};
pub use report::{
    compare, compare_sets, load_set, Comparison, CountRatioGate, MetricDelta, SpeedupGate,
    Thresholds,
};
