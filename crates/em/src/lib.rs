#![warn(missing_docs)]
// Index-based loops are deliberate throughout: they mirror the
// subscripted linear-algebra notation of the algorithms implemented.
#![allow(clippy::needless_range_loop)]
//! Electromagnetic extraction of passive structures (paper, Section 4).
//!
//! "Extracting compact, accurate linear models for packages, interconnect,
//! and components plays a significant role in modern RF designs." This
//! crate implements both classes of Table 1:
//!
//! | | differential ([`fd`]) | integral ([`mom`]) |
//! |---|---|---|
//! | matrix | sparse | dense |
//! | discretization | volume | surface |
//! | conditioning | poor | good |
//!
//! plus the paper's own contribution, **IES³** ([`ies3`]): a
//! kernel-independent compression of the dense integral-equation matrix —
//! "the matrix is recursively decomposed and compressed using the singular
//! value decomposition; the interaction between well-separated groups of
//! discretization elements is represented using a low-rank outer product" —
//! giving near-linear storage and matvec, solved with Krylov iteration.
//!
//! [`inductor`] builds quasi-static spiral-inductor models on a lossy
//! substrate (Fig 7), [`sparams`] converts extracted impedances to
//! S-parameters, and [`adaptive`] drives frequency sweeps through a
//! rational surrogate so true solves are only issued where the model is
//! uncertain.

pub mod adaptive;
pub mod fd;
pub mod geom;
pub mod ies3;
pub mod inductor;
pub mod kernel;
pub mod mom;
pub mod sparams;

pub use adaptive::AdaptiveSweep;
pub use geom::{Panel, Point3};
pub use ies3::{CompressedMatrix, Ies3Options};
pub use kernel::GreenFn;
pub use mom::{capacitance_matrix, capacitance_matrix_iterative, MomProblem};

/// Vacuum permittivity (F/m).
pub const EPS0: f64 = 8.8541878128e-12;
/// Vacuum permeability (H/m).
pub const MU0: f64 = 1.25663706212e-6;

/// Errors from the extraction engines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Underlying linear-algebra failure.
    Numerics(rfsim_numerics::Error),
    /// Geometry problem (empty mesh, degenerate panel, …).
    Geometry(String),
    /// Invalid options.
    InvalidSetup(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Numerics(e) => write!(f, "numerics error: {e}"),
            Error::Geometry(msg) => write!(f, "geometry error: {msg}"),
            Error::InvalidSetup(msg) => write!(f, "invalid setup: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfsim_numerics::Error> for Error {
    fn from(e: rfsim_numerics::Error) -> Self {
        Error::Numerics(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
