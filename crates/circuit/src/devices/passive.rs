//! Linear passive devices: resistor, capacitor, inductor, coupled inductors
//! and the zero-volt current probe.

use crate::dae::{LoadCtx, NoiseCtx, NoiseSource, Psd, SrcCtx, Var};
use crate::netlist::{Device, NodeId};
use crate::BOLTZMANN;

/// A linear resistor between two nodes, with thermal (Johnson) noise
/// `S_i = 4kT/R`.
#[derive(Debug, Clone)]
pub struct Resistor {
    name: String,
    a: NodeId,
    b: NodeId,
    resistance: f64,
    temperature: f64,
    noiseless: bool,
}

impl Resistor {
    /// Creates a resistor of `resistance` ohms at 300 K.
    ///
    /// # Panics
    /// Panics if `resistance` is not positive and finite.
    pub fn new(name: &str, a: NodeId, b: NodeId, resistance: f64) -> Self {
        assert!(
            resistance.is_finite() && resistance > 0.0,
            "resistor {name}: resistance must be positive"
        );
        Resistor { name: name.into(), a, b, resistance, temperature: 300.0, noiseless: false }
    }

    /// Sets the device temperature in kelvin (affects thermal noise only).
    pub fn with_temperature(mut self, kelvin: f64) -> Self {
        self.temperature = kelvin;
        self
    }

    /// Disables the thermal noise generator (ideal resistor).
    pub fn noiseless(mut self) -> Self {
        self.noiseless = true;
        self
    }

    /// Resistance in ohms.
    pub fn resistance(&self) -> f64 {
        self.resistance
    }
}

impl Device for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let g = 1.0 / self.resistance;
        let v = ctx.v(self.a) - ctx.v(self.b);
        ctx.add_f(Var::Node(self.a), g * v);
        ctx.add_f(Var::Node(self.b), -g * v);
        ctx.add_g(Var::Node(self.a), Var::Node(self.a), g);
        ctx.add_g(Var::Node(self.a), Var::Node(self.b), -g);
        ctx.add_g(Var::Node(self.b), Var::Node(self.a), -g);
        ctx.add_g(Var::Node(self.b), Var::Node(self.b), g);
    }

    fn noise(&self, _x_op: &[f64], ctx: &NoiseCtx<'_>) -> Vec<NoiseSource> {
        if self.noiseless {
            return Vec::new();
        }
        vec![NoiseSource {
            label: format!("{} thermal", self.name),
            from: ctx.index(Var::Node(self.a)),
            to: ctx.index(Var::Node(self.b)),
            psd: Psd::White(4.0 * BOLTZMANN * self.temperature / self.resistance),
        }]
    }
}

/// A linear capacitor between two nodes.
#[derive(Debug, Clone)]
pub struct Capacitor {
    name: String,
    a: NodeId,
    b: NodeId,
    capacitance: f64,
}

impl Capacitor {
    /// Creates a capacitor of `capacitance` farads.
    ///
    /// # Panics
    /// Panics if `capacitance` is not positive and finite.
    pub fn new(name: &str, a: NodeId, b: NodeId, capacitance: f64) -> Self {
        assert!(
            capacitance.is_finite() && capacitance > 0.0,
            "capacitor {name}: capacitance must be positive"
        );
        Capacitor { name: name.into(), a, b, capacitance }
    }

    /// Capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }
}

impl Device for Capacitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let v = ctx.v(self.a) - ctx.v(self.b);
        let qv = self.capacitance * v;
        ctx.add_q(Var::Node(self.a), qv);
        ctx.add_q(Var::Node(self.b), -qv);
        ctx.add_c(Var::Node(self.a), Var::Node(self.a), self.capacitance);
        ctx.add_c(Var::Node(self.a), Var::Node(self.b), -self.capacitance);
        ctx.add_c(Var::Node(self.b), Var::Node(self.a), -self.capacitance);
        ctx.add_c(Var::Node(self.b), Var::Node(self.b), self.capacitance);
    }
}

/// A linear inductor between two nodes (one branch-current unknown).
///
/// Branch equation: `L·di/dt + (v_b − v_a) = 0`; KCL sees the branch
/// current flowing `a → b`.
#[derive(Debug, Clone)]
pub struct Inductor {
    name: String,
    a: NodeId,
    b: NodeId,
    inductance: f64,
}

impl Inductor {
    /// Creates an inductor of `inductance` henries.
    ///
    /// # Panics
    /// Panics if `inductance` is not positive and finite.
    pub fn new(name: &str, a: NodeId, b: NodeId, inductance: f64) -> Self {
        assert!(
            inductance.is_finite() && inductance > 0.0,
            "inductor {name}: inductance must be positive"
        );
        Inductor { name: name.into(), a, b, inductance }
    }

    /// Inductance in henries.
    pub fn inductance(&self) -> f64 {
        self.inductance
    }
}

impl Device for Inductor {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let i = ctx.branch_current(0);
        // KCL: current i leaves a, enters b.
        ctx.add_f(Var::Node(self.a), i);
        ctx.add_f(Var::Node(self.b), -i);
        ctx.add_g(Var::Node(self.a), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.b), Var::Branch(0), -1.0);
        // Branch: L·di/dt = v_a − v_b  ⇒  q_br = L·i, f_br = v_b − v_a.
        ctx.add_q(Var::Branch(0), self.inductance * i);
        ctx.add_c(Var::Branch(0), Var::Branch(0), self.inductance);
        ctx.add_f(Var::Branch(0), ctx.v(self.b) - ctx.v(self.a));
        ctx.add_g(Var::Branch(0), Var::Node(self.b), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.a), -1.0);
    }
}

/// Two magnetically coupled inductors (a 1:n transformer model).
///
/// Branch 0 carries the primary current (`a1 → b1`), branch 1 the secondary
/// (`a2 → b2`). Flux equations:
///
/// ```text
/// λ₁ = L₁·i₁ + M·i₂,   λ₂ = M·i₁ + L₂·i₂,   M = k·√(L₁L₂)
/// ```
#[derive(Debug, Clone)]
pub struct CoupledInductors {
    name: String,
    a1: NodeId,
    b1: NodeId,
    a2: NodeId,
    b2: NodeId,
    l1: f64,
    l2: f64,
    k: f64,
}

impl CoupledInductors {
    /// Creates a coupled pair with coupling coefficient `k ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics for non-positive inductances or `|k| ≥ 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        a1: NodeId,
        b1: NodeId,
        a2: NodeId,
        b2: NodeId,
        l1: f64,
        l2: f64,
        k: f64,
    ) -> Self {
        assert!(l1 > 0.0 && l2 > 0.0, "coupled inductors {name}: inductances must be positive");
        assert!(k.abs() < 1.0, "coupled inductors {name}: |k| must be < 1");
        CoupledInductors { name: name.into(), a1, b1, a2, b2, l1, l2, k }
    }

    /// Mutual inductance `M = k·√(L₁L₂)`.
    pub fn mutual(&self) -> f64 {
        self.k * (self.l1 * self.l2).sqrt()
    }
}

impl Device for CoupledInductors {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        2
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let m = self.mutual();
        let i1 = ctx.branch_current(0);
        let i2 = ctx.branch_current(1);
        // KCL.
        ctx.add_f(Var::Node(self.a1), i1);
        ctx.add_f(Var::Node(self.b1), -i1);
        ctx.add_g(Var::Node(self.a1), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.b1), Var::Branch(0), -1.0);
        ctx.add_f(Var::Node(self.a2), i2);
        ctx.add_f(Var::Node(self.b2), -i2);
        ctx.add_g(Var::Node(self.a2), Var::Branch(1), 1.0);
        ctx.add_g(Var::Node(self.b2), Var::Branch(1), -1.0);
        // Flux equations.
        ctx.add_q(Var::Branch(0), self.l1 * i1 + m * i2);
        ctx.add_c(Var::Branch(0), Var::Branch(0), self.l1);
        ctx.add_c(Var::Branch(0), Var::Branch(1), m);
        ctx.add_f(Var::Branch(0), ctx.v(self.b1) - ctx.v(self.a1));
        ctx.add_g(Var::Branch(0), Var::Node(self.b1), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.a1), -1.0);
        ctx.add_q(Var::Branch(1), m * i1 + self.l2 * i2);
        ctx.add_c(Var::Branch(1), Var::Branch(0), m);
        ctx.add_c(Var::Branch(1), Var::Branch(1), self.l2);
        ctx.add_f(Var::Branch(1), ctx.v(self.b2) - ctx.v(self.a2));
        ctx.add_g(Var::Branch(1), Var::Node(self.b2), 1.0);
        ctx.add_g(Var::Branch(1), Var::Node(self.a2), -1.0);
    }
}

/// A zero-volt source used to measure a branch current (ammeter). Its
/// single branch unknown carries the current flowing `a → b`.
#[derive(Debug, Clone)]
pub struct CurrentProbe {
    name: String,
    a: NodeId,
    b: NodeId,
}

impl CurrentProbe {
    /// Creates a probe between `a` and `b`.
    pub fn new(name: &str, a: NodeId, b: NodeId) -> Self {
        CurrentProbe { name: name.into(), a, b }
    }
}

impl Device for CurrentProbe {
    fn name(&self) -> &str {
        &self.name
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn load(&self, ctx: &mut LoadCtx<'_>) {
        let i = ctx.branch_current(0);
        ctx.add_f(Var::Node(self.a), i);
        ctx.add_f(Var::Node(self.b), -i);
        ctx.add_g(Var::Node(self.a), Var::Branch(0), 1.0);
        ctx.add_g(Var::Node(self.b), Var::Branch(0), -1.0);
        // Branch equation: v_a − v_b = 0.
        ctx.add_f(Var::Branch(0), ctx.v(self.a) - ctx.v(self.b));
        ctx.add_g(Var::Branch(0), Var::Node(self.a), 1.0);
        ctx.add_g(Var::Branch(0), Var::Node(self.b), -1.0);
    }

    fn source(&self, _ctx: &mut SrcCtx<'_>) {}
}
