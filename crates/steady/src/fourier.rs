//! Spectral grids for harmonic balance: collocation samples along one or
//! more periodic time axes, spectral differentiation, and harmonic
//! extraction.
//!
//! A [`SpectralGrid`] with one axis underlies single-tone HB; two axes give
//! the multi-tone (quasi-periodic) analysis, equivalent to representing the
//! waveforms in their bivariate MPDE form (paper, §2.2) and applying the
//! `∂/∂t₁ + ∂/∂t₂` operator spectrally. Axis sizes are odd so the sample
//! count per axis is `2·H + 1` for `H` harmonics, with no ambiguous Nyquist
//! term.

use crate::{Error, Result};
use rfsim_circuit::dae::TwoTime;
use rfsim_numerics::fft::{self, FftPlan, FftScratch};
use rfsim_numerics::Complex;
use std::cell::RefCell;
use std::sync::Arc;

/// One periodic analysis axis: a fundamental frequency and a harmonic
/// count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToneAxis {
    /// Fundamental frequency in Hz.
    pub freq: f64,
    /// Number of harmonics `H` retained (`2H + 1` samples).
    pub harmonics: usize,
}

impl ToneAxis {
    /// Creates an axis.
    pub fn new(freq: f64, harmonics: usize) -> Self {
        ToneAxis { freq, harmonics }
    }

    /// Samples along this axis.
    pub fn samples(&self) -> usize {
        2 * self.harmonics + 1
    }

    /// Period in seconds.
    pub fn period(&self) -> f64 {
        1.0 / self.freq
    }
}

/// A collocation grid over one or two periodic time axes.
///
/// Sample layout is row-major over axes (axis 0 slowest), with the DAE's
/// `n` unknowns contiguous at each sample: `x[s·n + i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralGrid {
    axes: Vec<ToneAxis>,
}

impl SpectralGrid {
    /// Single-tone grid: `harmonics` harmonics of `freq`.
    ///
    /// # Errors
    /// Returns [`Error::InvalidSetup`] for a non-positive frequency.
    pub fn single_tone(freq: f64, harmonics: usize) -> Result<Self> {
        if freq <= 0.0 {
            return Err(Error::InvalidSetup("tone frequency must be positive".into()));
        }
        Ok(SpectralGrid { axes: vec![ToneAxis::new(freq, harmonics)] })
    }

    /// Two-tone quasi-periodic grid. Axis 0 is the slow tone (`t₁`), axis 1
    /// the fast tone (`t₂`).
    ///
    /// # Errors
    /// Returns [`Error::InvalidSetup`] for non-positive frequencies.
    pub fn two_tone(slow: ToneAxis, fast: ToneAxis) -> Result<Self> {
        if slow.freq <= 0.0 || fast.freq <= 0.0 {
            return Err(Error::InvalidSetup("tone frequencies must be positive".into()));
        }
        Ok(SpectralGrid { axes: vec![slow, fast] })
    }

    /// The analysis axes.
    pub fn axes(&self) -> &[ToneAxis] {
        &self.axes
    }

    /// Total collocation samples (product over axes).
    pub fn samples(&self) -> usize {
        self.axes.iter().map(ToneAxis::samples).product()
    }

    /// Total HB unknowns for a DAE of dimension `n`.
    pub fn unknowns(&self, n: usize) -> usize {
        self.samples() * n
    }

    /// The (possibly bivariate) evaluation time of sample `s`.
    pub fn time(&self, s: usize) -> TwoTime {
        match self.axes.len() {
            1 => {
                let ax = &self.axes[0];
                TwoTime::uni(s as f64 * ax.period() / ax.samples() as f64)
            }
            2 => {
                let n1 = self.axes[1].samples();
                let i0 = s / n1;
                let i1 = s % n1;
                TwoTime::new(
                    i0 as f64 * self.axes[0].period() / self.axes[0].samples() as f64,
                    i1 as f64 * self.axes[1].period() / n1 as f64,
                )
            }
            _ => unreachable!("grids have 1 or 2 axes"),
        }
    }

    /// Builds a reusable [`GridWorkspace`] for repeated spectral
    /// operations on this grid (see [`SpectralGrid::add_dt_with`]).
    pub fn workspace(&self) -> GridWorkspace {
        GridWorkspace {
            samples: self.samples(),
            plans: self.axes.iter().map(|ax| fft::plan(ax.samples())).collect(),
            cfield: Vec::new(),
            scratch: FftScratch::new(),
        }
    }

    /// Applies the spectral time-derivative operator to a sample-major
    /// field of `n` unknowns: `out[s·n+i] += Σ_axes (∂/∂t_axis field)`.
    ///
    /// Convenience wrapper over [`SpectralGrid::add_dt_with`] that builds
    /// a throwaway workspace.
    ///
    /// # Panics
    /// Panics if the slice lengths do not equal `samples()·n`.
    pub fn add_dt(&self, field: &[f64], out: &mut [f64], n: usize) {
        let mut ws = self.workspace();
        self.add_dt_with(field, out, n, &mut ws);
    }

    /// [`SpectralGrid::add_dt`] against a caller-owned workspace: all
    /// lines of an axis go through one batched strided transform over the
    /// workspace's complex field, so a warm workspace performs zero heap
    /// allocation. Results are bitwise identical to the per-line path.
    ///
    /// # Panics
    /// Panics if the slice lengths do not equal `samples()·n` or the
    /// workspace was built for a different grid shape.
    pub fn add_dt_with(&self, field: &[f64], out: &mut [f64], n: usize, ws: &mut GridWorkspace) {
        let total = self.samples();
        assert_eq!(field.len(), total * n, "add_dt: field length");
        assert_eq!(out.len(), total * n, "add_dt: out length");
        assert_eq!(ws.samples, total, "add_dt: workspace grid mismatch");
        let GridWorkspace { plans, cfield, scratch, .. } = ws;
        match self.axes.len() {
            1 => {
                let ax = self.axes[0];
                let ns = ax.samples();
                let omega = 2.0 * std::f64::consts::PI * ax.freq;
                complexify(field, cfield);
                plans[0].forward_strided(cfield, n, n, scratch);
                scale_bins(cfield, ns, n, omega);
                plans[0].inverse_strided(cfield, n, n, scratch);
                accumulate_re(cfield, out);
            }
            2 => {
                let (a0, a1) = (self.axes[0], self.axes[1]);
                let (n0, n1) = (a0.samples(), a1.samples());
                let w0 = 2.0 * std::f64::consts::PI * a0.freq;
                let w1 = 2.0 * std::f64::consts::PI * a1.freq;
                // Axis 1 (fast): per-i0 blocks of n1 contiguous samples.
                complexify(field, cfield);
                for i0 in 0..n0 {
                    let block = &mut cfield[i0 * n1 * n..(i0 + 1) * n1 * n];
                    plans[1].forward_strided(block, n, n, scratch);
                    scale_bins(block, n1, n, w1);
                    plans[1].inverse_strided(block, n, n, scratch);
                }
                accumulate_re(cfield, out);
                // Axis 0 (slow): strided lines over the whole field, read
                // from the original samples again.
                complexify(field, cfield);
                plans[0].forward_strided(cfield, n1 * n, n1 * n, scratch);
                scale_bins(cfield, n0, n1 * n, w0);
                plans[0].inverse_strided(cfield, n1 * n, n1 * n, scratch);
                accumulate_re(cfield, out);
            }
            _ => unreachable!(),
        }
    }

    /// Fourier coefficient of one unknown's waveform at the mix index
    /// `k` (one entry per axis, each in `-H..=H`). For a real waveform the
    /// coefficient at `-k` is the conjugate.
    ///
    /// The returned value is the complex amplitude `c_k` in
    /// `x(t) = Σ c_k·e^{j2π(k·f)·t}`; a real cosine of amplitude `A` at a
    /// nonzero mix has `|c_k| = A/2`.
    ///
    /// # Panics
    /// Panics if `field.len() != samples()·n`, `i ≥ n`, or `k` is out of
    /// range.
    pub fn coefficient(&self, field: &[f64], n: usize, i: usize, k: &[i32]) -> Complex {
        assert_eq!(field.len(), self.samples() * n, "coefficient: field length");
        assert_eq!(k.len(), self.axes.len(), "coefficient: mix index arity");
        assert!(i < n, "coefficient: unknown index");
        COEFF_SCRATCH.with(|cell| {
            let (buf, scratch) = &mut *cell.borrow_mut();
            match self.axes.len() {
                1 => {
                    let ns = self.axes[0].samples();
                    buf.clear();
                    buf.extend((0..ns).map(|s| Complex::from_re(field[s * n + i])));
                    fft::plan(ns).forward(buf, scratch);
                    pick_bin(buf, k[0], ns)
                }
                2 => {
                    let (n0, n1) = (self.axes[0].samples(), self.axes[1].samples());
                    // 2-D DFT of this unknown's grid.
                    buf.clear();
                    buf.extend((0..n0 * n1).map(|s| Complex::from_re(field[s * n + i])));
                    fft::dft2_inplace(buf, n0, n1, &fft::plan(n1), &fft::plan(n0), scratch);
                    let b0 = bin_of(k[0], n0);
                    let b1 = bin_of(k[1], n1);
                    buf[b0 * n1 + b1].scale(1.0 / (n0 * n1) as f64)
                }
                _ => unreachable!(),
            }
        })
    }

    /// Amplitude (peak, not RMS) of the real sinusoid at mix index `k`:
    /// `2·|c_k|` for nonzero mixes, `|c_0|` for DC.
    pub fn amplitude(&self, field: &[f64], n: usize, i: usize, k: &[i32]) -> f64 {
        let c = self.coefficient(field, n, i, k);
        if k.iter().all(|&x| x == 0) {
            c.abs()
        } else {
            2.0 * c.abs()
        }
    }

    /// The frequency (Hz) of mix index `k`.
    pub fn mix_freq(&self, k: &[i32]) -> f64 {
        k.iter().zip(&self.axes).map(|(&ki, ax)| ki as f64 * ax.freq).sum()
    }
}

/// Reusable planned-transform workspace for one grid shape: the per-axis
/// [`FftPlan`]s, the complexified field buffer, and the transform
/// scratch. Build once via [`SpectralGrid::workspace`] and reuse across
/// [`SpectralGrid::add_dt_with`] calls; the buffers are sized on first
/// use and never reallocated afterwards.
#[derive(Debug)]
pub struct GridWorkspace {
    samples: usize,
    /// One plan per axis, axis 0 first.
    plans: Vec<Arc<FftPlan>>,
    cfield: Vec<Complex>,
    scratch: FftScratch,
}

/// Fills `cfield` with the complexification of `field`, reusing its
/// allocation.
fn complexify(field: &[f64], cfield: &mut Vec<Complex>) {
    cfield.clear();
    cfield.extend(field.iter().map(|&x| Complex::from_re(x)));
}

/// Multiplies each harmonic bin of a bin-major spectrum by `jkω`: chunk
/// `b` of length `chunk` holds every line's bin `b`, and bin `b` maps to
/// harmonic `k = b` for `b ≤ H`, else `b − ns` (odd `ns`, no Nyquist
/// term).
fn scale_bins(data: &mut [Complex], ns: usize, chunk: usize, omega: f64) {
    let h = ns / 2;
    for b in 0..ns {
        let k = if b <= h { b as i64 } else { b as i64 - ns as i64 };
        let jkw = Complex::new(0.0, k as f64 * omega);
        for c in &mut data[b * chunk..(b + 1) * chunk] {
            *c *= jkw;
        }
    }
}

/// Accumulates the real parts of `cfield` into `out`.
fn accumulate_re(cfield: &[Complex], out: &mut [f64]) {
    for (o, c) in out.iter_mut().zip(cfield) {
        *o += c.re;
    }
}

thread_local! {
    /// Gather buffer + transform scratch for [`SpectralGrid::coefficient`],
    /// so harmonic extraction after a solve allocates nothing in steady
    /// state.
    static COEFF_SCRATCH: RefCell<(Vec<Complex>, FftScratch)> =
        RefCell::new((Vec::new(), FftScratch::default()));
}

fn bin_of(k: i32, ns: usize) -> usize {
    if k >= 0 {
        k as usize
    } else {
        (ns as i32 + k) as usize
    }
}

fn pick_bin(spec: &[Complex], k: i32, ns: usize) -> Complex {
    spec[bin_of(k, ns)].scale(1.0 / ns as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tone_sample_times() {
        let g = SpectralGrid::single_tone(100.0, 2).unwrap();
        assert_eq!(g.samples(), 5);
        let t1 = g.time(1);
        assert!((t1.t1 - 0.01 / 5.0).abs() < 1e-15);
        assert_eq!(t1.t1, t1.t2);
    }

    #[test]
    fn spectral_derivative_of_sine_is_cosine() {
        let f0 = 50.0;
        let g = SpectralGrid::single_tone(f0, 4).unwrap();
        let ns = g.samples();
        let omega = 2.0 * std::f64::consts::PI * f0;
        // Field with n = 1 unknown: sin(ωt).
        let field: Vec<f64> = (0..ns).map(|s| (omega * g.time(s).t1).sin()).collect();
        let mut out = vec![0.0; ns];
        g.add_dt(&field, &mut out, 1);
        for s in 0..ns {
            let expect = omega * (omega * g.time(s).t1).cos();
            assert!((out[s] - expect).abs() < 1e-6 * omega, "s={s}: {} vs {expect}", out[s]);
        }
    }

    #[test]
    fn coefficient_extraction_single() {
        let f0 = 10.0;
        let g = SpectralGrid::single_tone(f0, 3).unwrap();
        let ns = g.samples();
        // x(t) = 0.5 + 2cos(ωt) + 0.3 sin(2ωt)
        let field: Vec<f64> = (0..ns)
            .map(|s| {
                let t = g.time(s).t1;
                let w = 2.0 * std::f64::consts::PI * f0;
                0.5 + 2.0 * (w * t).cos() + 0.3 * (2.0 * w * t).sin()
            })
            .collect();
        assert!((g.amplitude(&field, 1, 0, &[0]) - 0.5).abs() < 1e-12);
        assert!((g.amplitude(&field, 1, 0, &[1]) - 2.0).abs() < 1e-12);
        assert!((g.amplitude(&field, 1, 0, &[2]) - 0.3).abs() < 1e-12);
        assert!(g.amplitude(&field, 1, 0, &[3]) < 1e-12);
        assert!((g.mix_freq(&[2]) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn two_tone_grid_and_mixes() {
        let slow = ToneAxis::new(1.0, 2);
        let fast = ToneAxis::new(100.0, 3);
        let g = SpectralGrid::two_tone(slow, fast).unwrap();
        assert_eq!(g.samples(), 5 * 7);
        // Product waveform sin(2πt₁)·cos(2π·100·t₂) has mixes (±1, ±1)
        // with |c| = 1/4 each.
        let field: Vec<f64> = (0..g.samples())
            .map(|s| {
                let t = g.time(s);
                (2.0 * std::f64::consts::PI * t.t1).sin()
                    * (2.0 * std::f64::consts::PI * 100.0 * t.t2).cos()
            })
            .collect();
        let c11 = g.coefficient(&field, 1, 0, &[1, 1]);
        assert!((c11.abs() - 0.25).abs() < 1e-10, "c11 = {c11}");
        assert!((g.mix_freq(&[1, 1]) - 101.0).abs() < 1e-12);
        assert!((g.mix_freq(&[-1, 1]) - 99.0).abs() < 1e-12);
        // No energy at (2, 1).
        assert!(g.coefficient(&field, 1, 0, &[2, 1]).abs() < 1e-10);
    }

    #[test]
    fn two_tone_derivative_matches_analytic() {
        // x̂(t1,t2) = sin(2πf1·t1)·sin(2πf2·t2):
        // (∂1+∂2)x̂ = 2πf1 cos(·)sin(·) + 2πf2 sin(·)cos(·).
        let (f1, f2) = (2.0, 30.0);
        let g = SpectralGrid::two_tone(ToneAxis::new(f1, 3), ToneAxis::new(f2, 3)).unwrap();
        let w1 = 2.0 * std::f64::consts::PI * f1;
        let w2 = 2.0 * std::f64::consts::PI * f2;
        let field: Vec<f64> = (0..g.samples())
            .map(|s| {
                let t = g.time(s);
                (w1 * t.t1).sin() * (w2 * t.t2).sin()
            })
            .collect();
        let mut out = vec![0.0; g.samples()];
        g.add_dt(&field, &mut out, 1);
        for s in 0..g.samples() {
            let t = g.time(s);
            let expect = w1 * (w1 * t.t1).cos() * (w2 * t.t2).sin()
                + w2 * (w1 * t.t1).sin() * (w2 * t.t2).cos();
            assert!((out[s] - expect).abs() < 1e-6 * w2, "s={s}");
        }
    }

    #[test]
    fn invalid_setup_rejected() {
        assert!(SpectralGrid::single_tone(0.0, 3).is_err());
        assert!(SpectralGrid::two_tone(ToneAxis::new(1.0, 1), ToneAxis::new(-1.0, 1)).is_err());
    }
}
