//! Hierarchical wall-clock spans with an RAII guard API.
//!
//! Each thread keeps a stack of active span names; completed spans are
//! aggregated into a process-global tree keyed by the name path, so
//! repeated solves fold into one node with a call count and total time.
//! When telemetry is off, [`span`] returns an inert guard: no clock
//! read, no allocation, no lock.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregated timing node: one per distinct span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Completed spans at this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub total_ns: u64,
    /// Child spans keyed by name.
    pub children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    const fn empty() -> Self {
        SpanNode { count: 0, total_ns: 0, children: BTreeMap::new() }
    }

    /// Total seconds at this node.
    pub fn seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Looks up a descendant by path segments.
    pub fn descend(&self, path: &[&str]) -> Option<&SpanNode> {
        let mut cur = self;
        for seg in path {
            cur = cur.children.get(*seg)?;
        }
        Some(cur)
    }
}

impl Default for SpanNode {
    fn default() -> Self {
        SpanNode::empty()
    }
}

static ROOT: Mutex<SpanNode> = Mutex::new(SpanNode::empty());

thread_local! {
    static STACK: RefCell<Vec<Cow<'static, str>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard: the span runs from construction to drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Opens a span named `name` under the innermost open span of this
/// thread. Returns an inert guard when telemetry is off.
pub fn span(name: &'static str) -> SpanGuard {
    open(Cow::Borrowed(name))
}

/// Opens a span with a runtime-constructed name.
pub fn span_dyn(name: String) -> SpanGuard {
    open(Cow::Owned(name))
}

fn open(name: Cow<'static, str>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard { start: Some(Instant::now()) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let ns = end.saturating_duration_since(start).as_nanos().min(u64::MAX as u128) as u64;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if crate::chrome_enabled() {
                if let Some(name) = stack.last() {
                    crate::chrome::record(name, start, end);
                }
            }
            record(&stack, ns);
            stack.pop();
        });
    }
}

/// Folds one completed span (the last element of `path`) into the tree.
fn record(path: &[Cow<'static, str>], ns: u64) {
    let mut root = ROOT.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut cur = &mut *root;
    for seg in path {
        cur = cur.children.entry(seg.to_string()).or_default();
    }
    cur.count += 1;
    cur.total_ns += ns;
}

/// Clones the aggregated span tree.
pub(crate) fn tree() -> SpanNode {
    ROOT.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Clears the aggregated span tree.
pub(crate) fn reset() {
    *ROOT.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = SpanNode::empty();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_guard_when_off() {
        crate::set_mode(crate::Mode::Off);
        let g = span("should-not-record");
        drop(g);
        assert!(tree().children.is_empty() || !tree().children.contains_key("should-not-record"));
    }
}
