//! Asymptotic Waveform Evaluation: the **explicit** moment-matching Padé
//! construction [35, 36].
//!
//! Included as the paper's negative example: "the direct computation of
//! Padé approximations is numerically unstable. Therefore, the preferred
//! methods … are Krylov-subspace techniques." The instability is
//! structural — successive moments align with the dominant eigendirection,
//! so the Hankel moment matrix loses rank in floating point around order
//! 8–10. The E11 experiment measures exactly where this breaks down
//! relative to [`pvl`](crate::pvl).

use crate::statespace::{check_order, DescriptorSystem, PoleResidueModel};
use crate::Result;
use rfsim_numerics::dense::Mat;
use rfsim_numerics::Complex;

/// Builds an order-`q` AWE model about `s0` by explicit moment matching:
/// solve the `q×q` Hankel system for the denominator, root it for the
/// poles, then fit residues.
///
/// # Errors
/// [`crate::Error::Numerics`] (singular Hankel matrix) once the moments have
/// numerically collapsed — this *is* the phenomenon under study — plus
/// order validation errors.
pub fn awe_rom(sys: &DescriptorSystem, s0: f64, q: usize) -> Result<PoleResidueModel> {
    check_order(q, sys.order())?;
    let m_raw = sys.moments(s0, 2 * q)?;
    // Frequency scaling (standard AWE practice): the raw moments decay
    // geometrically with the circuit time constant, so the Hankel matrix
    // underflows immediately. Scale m̂_j = m_j·αʲ with α ≈ |m₀/m₁| to make
    // the sequence O(1); the recurrence roots scale back by 1/α.
    let alpha = if m_raw.len() > 1 && m_raw[1].abs() > 0.0 {
        (m_raw[0] / m_raw[1]).abs().max(1e-300)
    } else {
        1.0
    };
    let mut pw = 1.0;
    let m: Vec<f64> = m_raw
        .iter()
        .map(|&v| {
            let out = v * pw;
            pw *= alpha;
            out
        })
        .collect();
    // Denominator: Σ_{i=0..q-1} a_i·m_{j+i} = −m_{j+q},  j = 0..q−1.
    let hank = Mat::from_fn(q, q, |j, i| m[j + i]);
    let rhs: Vec<f64> = (0..q).map(|j| -m[j + q]).collect();
    let a = hank.solve(&rhs)?;
    // Characteristic polynomial λ^q + a_{q−1}λ^{q−1} + … + a_0 with roots
    // λ_i: the moment recurrence gives m_k = Σ c_i λ_i^k. Build the
    // companion matrix to find the λ.
    let mut comp = Mat::zeros(q, q);
    for i in 0..q {
        comp[(0, i)] = -a[q - 1 - i];
    }
    for i in 1..q {
        comp[(i, i - 1)] = 1.0;
    }
    // Roots of the scaled recurrence; un-scale back to the true λ.
    let lambdas: Vec<Complex> =
        rfsim_numerics::eig::eigenvalues(&comp)?.into_iter().map(|z| z / alpha).collect();
    // Residues: Vandermonde fit to the first q scaled moments,
    // m̂_k = Σ_i k_i·(λ_i·α)^k (residues are scale-invariant).
    let vand = Mat::from_fn(q, q, |k, i| {
        let mut p = Complex::ONE;
        for _ in 0..k {
            p *= lambdas[i].scale(alpha);
        }
        p
    });
    let rhs_c: Vec<Complex> = m[..q].iter().map(|&v| Complex::from_re(v)).collect();
    let residues = vand.solve(&rhs_c)?;
    Ok(PoleResidueModel { lambdas, residues, direct: 0.0, s0 })
}

/// Finds the largest AWE order (up to `q_max`) at which the construction
/// still succeeds *and* improves accuracy on the given band; returns
/// `(best_order, errors_per_order)`. Orders that fail numerically are
/// recorded as `f64::INFINITY` — this is the breakdown curve of E11.
pub fn awe_breakdown_study(
    sys: &DescriptorSystem,
    s0: f64,
    q_max: usize,
    freqs: &[f64],
) -> (usize, Vec<f64>) {
    use crate::statespace::{relative_error, TransferFunction as _};
    let mut errors = Vec::with_capacity(q_max);
    let mut best = 1;
    let mut best_err = f64::INFINITY;
    for q in 1..=q_max {
        let err = match awe_rom(sys, s0, q) {
            Ok(model) => {
                let e = relative_error(sys, &model, freqs);
                // NaN (evaluation blow-up) counts as failure.
                if e.is_finite() {
                    e
                } else {
                    f64::INFINITY
                }
            }
            Err(_) => f64::INFINITY,
        };
        if err < best_err {
            best_err = err;
            best = q;
        }
        errors.push(err);
        let _ = &sys.eval(Complex::ZERO); // keep trait import used
    }
    (best, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statespace::{log_freqs, rc_line, relative_error, TransferFunction};

    #[test]
    fn low_order_awe_is_accurate() {
        let sys = rc_line(40, 100.0, 1e-12);
        let model = awe_rom(&sys, 0.0, 3).unwrap();
        let freqs = log_freqs(1e3, 1e9, 40);
        let err = relative_error(&sys, &model, &freqs);
        assert!(err < 0.05, "err = {err}");
        // Matches the DC value.
        let h0 = sys.eval(Complex::ZERO);
        let m0 = model.eval(Complex::ZERO);
        assert!((h0 - m0).abs() < 1e-6 * h0.abs());
    }

    #[test]
    fn awe_poles_stable_at_low_order() {
        let sys = rc_line(40, 100.0, 1e-12);
        let model = awe_rom(&sys, 0.0, 4).unwrap();
        for p in model.poles() {
            assert!(p.re < 0.0, "unstable pole {p}");
        }
    }

    #[test]
    fn awe_stagnates_while_pvl_converges() {
        // The headline instability: in floating point the explicit
        // moments carry no information beyond the first handful of
        // orders, so AWE's error *stagnates* (around 1e-4 here) no matter
        // how many moments are matched — while PVL at the same order
        // keeps converging. (This is the precise sense in which "direct
        // computation of Padé approximations is numerically unstable".)
        let sys = rc_line(120, 50.0, 1e-12);
        let freqs = log_freqs(1e3, 1e10, 50);
        let (_best, errors) = awe_breakdown_study(&sys, 0.0, 20, &freqs);
        let awe_floor = errors[5..].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            awe_floor > 1e-5,
            "AWE kept converging past order 6 (floor {awe_floor:.2e}) — no stagnation?"
        );
        let pvl = crate::pvl::pvl_rom(&sys, 0.0, 14).unwrap();
        let pvl_err = relative_error(&sys, &pvl, &freqs);
        assert!(pvl_err < awe_floor / 100.0, "pvl {pvl_err:.2e} not ≪ awe floor {awe_floor:.2e}");
    }
}
