//! Solver-level counters, gauges, and histograms.
//!
//! Names are dot-separated and lowercase by convention
//! (`krylov.gmres.iterations`, `serve.latency.total_ms`). All update
//! functions are single-branch no-ops when telemetry is off.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Log-spaced sub-buckets per octave (power of two). 16 gives a bucket
/// width of 2^(1/16) ≈ 4.4%, so quantile estimates (taken at the
/// geometric bucket midpoint) carry a relative error of at most
/// 2^(1/32) − 1 ≈ 2.2% — the bound the property tests assert.
pub const SUB_BUCKETS: usize = 16;
/// Smallest resolvable exponent: values below 2^-32 land in the
/// underflow bucket (index 0), alongside zero and negatives.
const MIN_EXP: i32 = -32;
/// Largest resolvable exponent: values at or above 2^32 land in the
/// open-ended overflow bucket.
const MAX_EXP: i32 = 32;
/// Total bucket count: underflow + 64 octaves × [`SUB_BUCKETS`] +
/// overflow.
pub const NUM_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUB_BUCKETS + 2;

/// Log-bucketed (HDR-style) histogram with exact count/sum/min/max and
/// bounded-relative-error quantiles.
///
/// Values are assigned to geometrically spaced buckets ([`SUB_BUCKETS`]
/// per octave over 2^-32..2^32, plus underflow/overflow), so p50/p99
/// estimates are within ~2.2% of the exact sorted-sample quantile at a
/// fixed 8 KiB of state — no sample retention, O(1) record, mergeable
/// across threads and subtractable across snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0; // zero, negative, NaN: underflow bucket
    }
    let e = v.log2();
    if e < f64::from(MIN_EXP) {
        return 0;
    }
    if e >= f64::from(MAX_EXP) {
        return NUM_BUCKETS - 1;
    }
    let off = ((e - f64::from(MIN_EXP)) * SUB_BUCKETS as f64).floor() as usize;
    (1 + off).min(NUM_BUCKETS - 2)
}

/// `[lo, hi)` value range of a bucket.
fn bucket_bounds(idx: usize) -> (f64, f64) {
    if idx == 0 {
        return (0.0, f64::from(MIN_EXP).exp2());
    }
    if idx == NUM_BUCKETS - 1 {
        return (f64::from(MAX_EXP).exp2(), f64::INFINITY);
    }
    let lo = (f64::from(MIN_EXP) + (idx - 1) as f64 / SUB_BUCKETS as f64).exp2();
    (lo, lo * (1.0 / SUB_BUCKETS as f64).exp2())
}

/// Representative value reported for a bucket: the geometric midpoint
/// (midpoint of the log-spaced range), clamped by the caller to the
/// exact observed min/max.
fn bucket_mid(idx: usize) -> f64 {
    let (lo, hi) = bucket_bounds(idx);
    if idx == 0 {
        hi * 0.5
    } else if idx == NUM_BUCKETS - 1 {
        lo * 2.0
    } else {
        (lo * hi).sqrt()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]`. The estimate is
    /// the geometric midpoint of the bucket holding the q-th ranked
    /// sample, clamped to the exact `[min, max]`, so its relative error
    /// is bounded by the bucket width (≈2.2% at [`SUB_BUCKETS`] = 16).
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are tracked exactly; no need to estimate.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        // Bucket data absent (a histogram re-read from an old-shape
        // artifact): the max is the only honest upper estimate left.
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Folds `other` into `self`. Bucket counts, count, min, and max
    /// merge exactly; the sum is a floating-point accumulation.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// The observations recorded after `earlier` was snapshotted:
    /// bucket counts and count subtract exactly, so interval quantiles
    /// (e.g. "p99 over the last 2 s" in `rfsim-top`) are as accurate as
    /// cumulative ones. Interval min/max are not recoverable from
    /// cumulative extremes; they are approximated by the outermost
    /// nonzero delta buckets.
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        d.count = self.count.saturating_sub(earlier.count);
        if d.count == 0 {
            return d;
        }
        d.sum = self.sum - earlier.sum;
        for (i, (now, was)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            let n = now.saturating_sub(*was);
            d.buckets[i] = n;
            if n > 0 {
                let (lo, hi) = bucket_bounds(i);
                d.min = d.min.min(lo.max(self.min));
                d.max = d.max.max(hi.min(self.max));
            }
        }
        d
    }

    /// Nonzero buckets as `(index, count)` pairs (the sparse form the
    /// JSON serialization uses).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, n)| **n > 0).map(|(i, n)| (i, *n))
    }

    /// Serializes as a JSON object: the legacy `count/sum/min/max/mean`
    /// fields (unchanged layout, so old readers keep working), plus
    /// quantile estimates and the sparse bucket array new readers use.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .nonzero_buckets()
            .map(|(i, n)| Json::Arr(vec![Json::Num(i as f64), Json::Num(n as f64)]))
            .collect();
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum)),
            ("min", Json::Num(self.min)),
            ("max", Json::Num(self.max)),
            ("mean", Json::Num(self.mean())),
            ("p50", Json::Num(self.p50())),
            ("p90", Json::Num(self.p90())),
            ("p95", Json::Num(self.p95())),
            ("p99", Json::Num(self.p99())),
            ("p999", Json::Num(self.p999())),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Rebuilds a histogram from its JSON form. Accepts both the
    /// current shape (with `buckets`) and the pre-quantile shape
    /// (count/sum/min/max/mean only) — old-shape histograms keep their
    /// exact moments but degrade quantiles to the max (see
    /// [`Histogram::quantile`]).
    pub fn from_json(v: &Json) -> Option<Histogram> {
        let count = v.get("count")?.as_f64()? as u64;
        let mut h = Histogram::new();
        if count == 0 {
            return Some(h);
        }
        h.count = count;
        h.sum = v.get("sum")?.as_f64()?;
        // Empty-histogram extremes serialize as null (JSON has no
        // infinities); nonempty ones are finite numbers.
        h.min = v.get("min")?.as_f64()?;
        h.max = v.get("max")?.as_f64()?;
        if let Some(buckets) = v.get("buckets").and_then(Json::as_arr) {
            for pair in buckets {
                let pair = pair.as_arr()?;
                let [idx, n] = pair else { return None };
                let idx = idx.as_f64()? as usize;
                if idx >= NUM_BUCKETS {
                    return None;
                }
                h.buckets[idx] = n.as_f64()? as u64;
            }
        }
        Some(h)
    }
}

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());

fn lock<T>(m: &'static Mutex<T>) -> std::sync::MutexGuard<'static, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() || delta == 0 {
        return;
    }
    *lock(&COUNTERS).entry(name.to_string()).or_insert(0) += delta;
}

/// Sets the named gauge to its latest observed value.
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    lock(&GAUGES).insert(name.to_string(), value);
}

/// Records one observation into the named histogram.
pub fn histogram_record(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    lock(&HISTOGRAMS).entry(name.to_string()).or_default().record(value);
}

pub(crate) fn counters() -> BTreeMap<String, u64> {
    lock(&COUNTERS).clone()
}

pub(crate) fn gauges() -> BTreeMap<String, f64> {
    lock(&GAUGES).clone()
}

pub(crate) fn histograms() -> BTreeMap<String, Histogram> {
    lock(&HISTOGRAMS).clone()
}

pub(crate) fn reset() {
    lock(&COUNTERS).clear();
    lock(&GAUGES).clear();
    lock(&HISTOGRAMS).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_moments_are_exact() {
        let mut h = Histogram::new();
        for v in [0.5, 1.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 21.7).abs() < 1e-12);
    }

    #[test]
    fn quantiles_track_sorted_samples() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0), (0.999, 999.0)] {
            let est = h.quantile(q);
            let rel = (est / exact).ln().abs();
            assert!(rel <= (1.0f64 / SUB_BUCKETS as f64).exp2().ln() + 1e-9, "q={q}: {est}");
        }
        // Extremes are exact thanks to the min/max clamp.
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn underflow_and_overflow_are_absorbed() {
        let mut h = Histogram::new();
        for v in [0.0, -3.0, 1e-200, 1e200, f64::NAN] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.nonzero_buckets().map(|(_, n)| n).sum::<u64>(), 5);
        let (first, _) = h.nonzero_buckets().next().unwrap();
        assert_eq!(first, 0);
        let (last, _) = h.nonzero_buckets().last().unwrap();
        assert_eq!(last, NUM_BUCKETS - 1);
    }

    #[test]
    fn merge_is_exact_on_buckets() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..100 {
            let v = 1.5f64.powi(i % 17) * 0.01;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, all.count);
        assert_eq!(a.min, all.min);
        assert_eq!(a.max, all.max);
        assert!(a.nonzero_buckets().eq(all.nonzero_buckets()));
    }

    #[test]
    fn delta_recovers_interval_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(1.0);
        }
        let snap = h.clone();
        for _ in 0..50 {
            h.record(1000.0);
        }
        let d = h.delta(&snap);
        assert_eq!(d.count, 50);
        let p50 = d.p50();
        assert!((p50 / 1000.0).ln().abs() < 0.05, "interval p50 = {p50}");
        // The cumulative p50 straddles both phases instead.
        assert!(h.p50() < 2.0);
    }

    #[test]
    fn json_round_trips_and_tolerates_old_shape() {
        let mut h = Histogram::new();
        for v in [0.25, 3.0, 3.1, 700.0] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
        // Old artifacts carry only the moment fields.
        let old = Json::obj([
            ("count", Json::Num(4.0)),
            ("sum", Json::Num(706.35)),
            ("min", Json::Num(0.25)),
            ("max", Json::Num(700.0)),
            ("mean", Json::Num(176.5875)),
        ]);
        let h = Histogram::from_json(&old).unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 700.0);
        // No bucket data: quantiles degrade to the max, not a panic.
        assert_eq!(h.p99(), 700.0);
    }
}
