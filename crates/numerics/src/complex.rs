//! Double-precision complex arithmetic.
//!
//! The workspace deliberately avoids external numerics crates, so this module
//! provides the `Complex` type used throughout harmonic balance, AC analysis,
//! S-parameter conversion, and reduced-order modeling.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// ```
/// use rfsim_numerics::Complex;
///
/// let j = Complex::I;
/// assert_eq!(j * j, Complex::new(-1.0, 0.0));
/// ```
// repr(C) pins the (re, im) field order: the SIMD kernels view
// `&[Complex]` as interleaved f64 pairs.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    ///
    /// ```
    /// use rfsim_numerics::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness against
    /// overflow/underflow.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (no square root).
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns infinities when `z == 0`, mirroring `1.0 / 0.0` semantics.
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    ///
    /// ```
    /// use rfsim_numerics::Complex;
    /// let z = Complex::new(-4.0, 0.0).sqrt();
    /// assert!((z - Complex::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), 0.5 * self.arg())
    }

    /// Natural logarithm (principal branch).
    pub fn ln(self) -> Self {
        Complex::new(self.abs().ln(), self.arg())
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns `true` if either part is NaN.
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm avoids overflow for widely scaled operands.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

/// Euclidean norm of a complex vector (SIMD-dispatched; the scalar path
/// keeps the historical `Σ |z|²` accumulation bitwise).
pub fn cnorm2(v: &[Complex]) -> f64 {
    crate::kernels::cnorm2_sq(v).sqrt()
}

/// Conjugated dot product `⟨a, b⟩ = Σ āᵢ bᵢ` (conjugate-linear in `a`).
/// SIMD-dispatched; the scalar path keeps the historical accumulation
/// order bitwise.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn cdot(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "cdot: length mismatch");
    crate::kernels::cdot(a, b)
}

/// `y ← y + alpha·x` for complex vectors (SIMD-dispatched; the scalar
/// path keeps the historical loop bitwise).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn caxpy(alpha: Complex, x: &[Complex], y: &mut [Complex]) {
    assert_eq!(x.len(), y.len(), "caxpy: length mismatch");
    crate::kernels::caxpy(alpha, x, y);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z * z.recip(), Complex::ONE));
        assert!(close(z / z, Complex::ONE));
        assert!(close(-(-z), z));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
    }

    #[test]
    fn conjugate_properties() {
        let a = Complex::new(1.5, 2.5);
        let b = Complex::new(-0.5, 3.0);
        assert!(close((a * b).conj(), a.conj() * b.conj()));
        assert!(close(a * a.conj(), Complex::from_re(a.abs_sq())));
    }

    #[test]
    fn division_widely_scaled() {
        // Smith's algorithm should survive component magnitudes near overflow.
        let a = Complex::new(1e300, 1e300);
        let b = Complex::new(1e300, 1e-300);
        let q = a / b;
        assert!(q.is_finite());
        assert!((q.re - 1.0).abs() < 1e-10);
    }

    #[test]
    fn exp_ln_sqrt_roundtrip() {
        let z = Complex::new(0.3, 1.2);
        assert!(close(z.ln().exp(), z));
        assert!(close(z.sqrt() * z.sqrt(), z));
        // Euler's identity.
        let e = Complex::new(0.0, std::f64::consts::PI).exp();
        assert!((e + Complex::ONE).abs() < 1e-15);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-15);
        assert!((z.arg() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn vector_helpers() {
        let a = [Complex::new(1.0, 1.0), Complex::new(0.0, -1.0)];
        let b = [Complex::ONE, Complex::I];
        // ⟨a,b⟩ = conj(1+j)*1 + conj(-j)*j = (1-j) + (j*j) = -j... compute:
        // conj(0,-1) = (0,1); (0,1)*(0,1) = (-1,0). total = (1,-1)+(-1,0) = (0,-1)
        let d = cdot(&a, &b);
        assert!(close(d, Complex::new(0.0, -1.0)));
        assert!((cnorm2(&b) - 2f64.sqrt()).abs() < 1e-15);
        let mut y = [Complex::ZERO, Complex::ZERO];
        caxpy(Complex::I, &b, &mut y);
        assert!(close(y[0], Complex::I));
        assert!(close(y[1], Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
