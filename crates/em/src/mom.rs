//! Method-of-moments electrostatic solver: dense potential-coefficient
//! assembly, direct or iterative solution, and multi-conductor capacitance
//! extraction.
//!
//! "Methods from the second class use integral equations … `A` is a dense
//! matrix. However, an integral equation formulation … only involves
//! surfaces … the integral formulation often reduces the problem size by
//! orders of magnitude" (paper, §4). The dense matrix here is also the
//! input to the [`ies3`](crate::ies3) compression.

use std::sync::{Arc, OnceLock};

use crate::geom::Panel;
use crate::kernel::GreenFn;
use crate::{Error, Result};
use rfsim_numerics::dense::{Lu, Mat};
use rfsim_numerics::krylov::{block_gmres, gmres, IterStats, JacobiPrecond, KrylovOptions};
use rfsim_parallel as parallel;

/// An assembled MoM problem: panels plus kernel.
///
/// `panels` and `green` are treated as immutable once constructed: the
/// dense LU and the Jacobi diagonal are factored/extracted lazily on
/// first use and cached for every later solve (mutating the public
/// fields after a solve would leave the caches stale — rebuild with
/// [`MomProblem::new`] instead).
#[derive(Debug, Clone)]
pub struct MomProblem {
    /// The discretization panels.
    pub panels: Vec<Panel>,
    /// The Green's function.
    pub green: GreenFn,
    /// Factored dense matrix, shared by every [`MomProblem::solve_dense`]
    /// call after the first.
    lu: OnceLock<Arc<Lu<f64>>>,
    /// Analytic self-term Jacobi preconditioner for the iterative path.
    jacobi: OnceLock<Arc<JacobiPrecond<f64>>>,
}

impl MomProblem {
    /// Creates a problem.
    ///
    /// # Errors
    /// [`Error::Geometry`] for an empty panel list.
    pub fn new(panels: Vec<Panel>, green: GreenFn) -> Result<Self> {
        if panels.is_empty() {
            return Err(Error::Geometry("no panels".into()));
        }
        Ok(MomProblem { panels, green, lu: OnceLock::new(), jacobi: OnceLock::new() })
    }

    /// Number of panels (matrix dimension).
    pub fn len(&self) -> usize {
        self.panels.len()
    }

    /// Returns `true` if there are no panels.
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty()
    }

    /// Number of distinct conductors.
    pub fn conductor_count(&self) -> usize {
        self.panels.iter().map(|p| p.conductor).max().map_or(0, |m| m + 1)
    }

    /// Assembles the dense potential-coefficient matrix (O(n²) storage —
    /// the "traditional" representation IES³ compresses away).
    pub fn assemble_dense(&self) -> Mat<f64> {
        let n = self.panels.len();
        rfsim_numerics::kernels::note_dispatch(1);
        let mut a = Mat::zeros(n, n);
        // Row-parallel fill: the matrix is row-major, so each chunk of `n`
        // entries is one row and rows are disjoint. Each row batches its
        // quadrature through the vectorized kernels when SIMD dispatch is
        // active (per-row batching keeps the result independent of the
        // thread count either way).
        parallel::par_chunks_mut(a.as_mut_slice(), n, |i, row| {
            self.green.coefficient_row_full(&self.panels[i], &self.panels, row);
        });
        a
    }

    /// The factored dense matrix, assembled and LU-decomposed on first
    /// use and cached thereafter.
    ///
    /// # Errors
    /// Propagates singular-matrix errors (the failure is not cached —
    /// retried on the next call).
    pub fn factored(&self) -> Result<Arc<Lu<f64>>> {
        if let Some(lu) = self.lu.get() {
            return Ok(Arc::clone(lu));
        }
        let lu = Arc::new(self.assemble_dense().lu()?);
        Ok(Arc::clone(self.lu.get_or_init(|| lu)))
    }

    /// The analytic self-term Jacobi preconditioner for the iterative
    /// path, extracted once and reused by every solve.
    pub fn jacobi(&self) -> Arc<JacobiPrecond<f64>> {
        Arc::clone(self.jacobi.get_or_init(|| {
            let diag: Vec<f64> = (0..self.panels.len())
                .map(|i| self.green.coefficient(&self.panels[i], &self.panels[i], i, i))
                .collect();
            Arc::new(JacobiPrecond::from_diagonal(&diag))
        }))
    }

    /// Solves for panel charges given conductor potentials (dense LU,
    /// factored once via [`MomProblem::factored`] and reused).
    ///
    /// # Errors
    /// Propagates singular-matrix errors.
    pub fn solve_dense(&self, conductor_volts: &[f64]) -> Result<Vec<f64>> {
        let lu = self.factored()?;
        let v: Vec<f64> = self.panels.iter().map(|p| conductor_volts[p.conductor]).collect();
        Ok(lu.solve(&v)?)
    }

    /// Solves with GMRES against any operator representation of the same
    /// matrix (dense or IES³-compressed), Jacobi-preconditioned with the
    /// analytic self terms (cached via [`MomProblem::jacobi`]).
    ///
    /// # Errors
    /// Propagates GMRES convergence failures.
    pub fn solve_iterative(
        &self,
        op: &dyn rfsim_numerics::krylov::LinearOperator<f64>,
        conductor_volts: &[f64],
        opts: &KrylovOptions,
    ) -> Result<(Vec<f64>, IterStats)> {
        let v: Vec<f64> = self.panels.iter().map(|p| conductor_volts[p.conductor]).collect();
        let pc = self.jacobi();
        Ok(gmres(op, &v, None, pc.as_ref(), opts)?)
    }

    /// Sums panel charges per conductor.
    pub fn conductor_charges(&self, q: &[f64]) -> Vec<f64> {
        let nc = self.conductor_count();
        let mut out = vec![0.0; nc];
        for (p, &qi) in self.panels.iter().zip(q) {
            out[p.conductor] += qi;
        }
        out
    }
}

/// Extracts the Maxwell capacitance matrix: column `j` is the conductor
/// charges with conductor `j` at 1 V and the rest grounded.
///
/// # Errors
/// Propagates dense-solve errors.
pub fn capacitance_matrix(problem: &MomProblem) -> Result<Mat<f64>> {
    let nc = problem.conductor_count();
    let lu = problem.factored()?;
    let mut c = Mat::zeros(nc, nc);
    for j in 0..nc {
        let volts: Vec<f64> = (0..nc).map(|k| if k == j { 1.0 } else { 0.0 }).collect();
        let v: Vec<f64> = problem.panels.iter().map(|p| volts[p.conductor]).collect();
        let q = lu.solve(&v)?;
        let charges = problem.conductor_charges(&q);
        for i in 0..nc {
            c[(i, j)] = charges[i];
        }
    }
    Ok(c)
}

/// Extracts the Maxwell capacitance matrix iteratively: **all** conductor
/// excitations solve together as one block GMRES against a single shared
/// operator (typically the IES³-compressed matrix), so the Krylov space —
/// and the per-application traversal cost of the operator — is amortized
/// across every column instead of rebuilt per conductor.
///
/// Returns the capacitance matrix plus the iteration statistics of the
/// one block solve ([`IterStats::iterations`] counts basis columns across
/// all right-hand sides).
///
/// # Errors
/// Propagates block-GMRES convergence failures.
pub fn capacitance_matrix_iterative(
    problem: &MomProblem,
    op: &dyn rfsim_numerics::krylov::LinearOperator<f64>,
    opts: &KrylovOptions,
) -> Result<(Mat<f64>, IterStats)> {
    let nc = problem.conductor_count();
    let bs: Vec<Vec<f64>> = (0..nc)
        .map(|j| problem.panels.iter().map(|p| if p.conductor == j { 1.0 } else { 0.0 }).collect())
        .collect();
    let pc = problem.jacobi();
    let (qs, stats) = block_gmres(op, &bs, None, pc.as_ref(), opts)?;
    let mut c = Mat::zeros(nc, nc);
    for (j, q) in qs.iter().enumerate() {
        let charges = problem.conductor_charges(q);
        for i in 0..nc {
            c[(i, j)] = charges[i];
        }
    }
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{mesh_parallel_plates, mesh_plate};
    use crate::EPS0;

    #[test]
    fn isolated_plate_capacitance() {
        // Square plate side L: C ≈ 0.367·4πε·L ≈ 40.8 pF/m·L (known
        // numerical result for the unit square is ≈ 0.3667·4πε₀L).
        let l = 1.0;
        let panels = mesh_plate(0.0, 0.0, 0.0, l, l, 12, 12, 0);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let c = capacitance_matrix(&p).unwrap();
        let analytic = 0.3667 * 4.0 * std::f64::consts::PI * EPS0 * l;
        assert!(
            (c[(0, 0)] - analytic).abs() / analytic < 0.05,
            "C = {}, expect ≈ {}",
            c[(0, 0)],
            analytic
        );
    }

    #[test]
    fn parallel_plates_approach_ideal() {
        // side ≫ gap: C → ε·A/d (with fringing making it larger).
        let (side, gap) = (1e-3, 2e-5);
        let panels = mesh_parallel_plates(side, gap, 10);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let c = capacitance_matrix(&p).unwrap();
        let ideal = EPS0 * side * side / gap;
        // Mutual term C12 is negative, magnitude ≈ ideal (within fringing).
        let c12 = -c[(0, 1)];
        assert!(c12 > ideal * 0.95 && c12 < ideal * 1.4, "C12 = {c12}, ideal = {ideal}");
        // Symmetry of the Maxwell matrix.
        assert!((c[(0, 1)] - c[(1, 0)]).abs() / c12 < 1e-6);
        // Diagonal dominance: C11 ≥ |C12|.
        assert!(c[(0, 0)] >= c12);
    }

    #[test]
    fn ground_plane_increases_capacitance() {
        let l = 1e-3;
        let mk = |green| {
            let panels = mesh_plate(0.0, 0.0, 5e-5, l, l, 8, 8, 0);
            let p = MomProblem::new(panels, green).unwrap();
            capacitance_matrix(&p).unwrap()[(0, 0)]
        };
        let c_free = mk(GreenFn::FreeSpace { eps_r: 1.0 });
        let c_gnd = mk(GreenFn::GroundPlane { eps_r: 1.0, z0: 0.0 });
        let c_half = mk(GreenFn::HalfSpace { eps_r: 1.0, z0: 0.0, k: 0.5 });
        assert!(c_gnd > c_half && c_half > c_free, "{c_gnd} > {c_half} > {c_free}");
    }

    #[test]
    fn iterative_matches_direct() {
        let panels = mesh_parallel_plates(1e-3, 5e-5, 6);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let volts = [1.0, 0.0];
        let qd = p.solve_dense(&volts).unwrap();
        let dense = p.assemble_dense();
        let (qi, stats) = p.solve_iterative(&dense, &volts, &KrylovOptions::default()).unwrap();
        assert!(stats.iterations < 100);
        for (a, b) in qd.iter().zip(&qi) {
            assert!((a - b).abs() < 1e-8 * qd.iter().map(|x| x.abs()).fold(0.0, f64::max));
        }
    }

    #[test]
    fn solve_dense_factors_once() {
        // Two solves through the cached LU agree with a fresh problem's
        // answer — the cache returns the same factorization object.
        let panels = mesh_parallel_plates(1e-3, 5e-5, 6);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let q1 = p.solve_dense(&[1.0, 0.0]).unwrap();
        let q2 = p.solve_dense(&[0.0, 1.0]).unwrap();
        assert!(Arc::ptr_eq(&p.factored().unwrap(), &p.factored().unwrap()));
        let fresh = MomProblem::new(p.panels.clone(), p.green).unwrap();
        for (a, b) in q1.iter().zip(&fresh.solve_dense(&[1.0, 0.0]).unwrap()) {
            assert_eq!(a, b);
        }
        for (a, b) in q2.iter().zip(&fresh.solve_dense(&[0.0, 1.0]).unwrap()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn block_capacitance_matches_direct() {
        let panels = mesh_parallel_plates(1e-3, 5e-5, 6);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let c_direct = capacitance_matrix(&p).unwrap();
        let dense = p.assemble_dense();
        let (c_blk, stats) = capacitance_matrix_iterative(
            &p,
            &dense,
            &KrylovOptions { tol: 1e-10, ..Default::default() },
        )
        .unwrap();
        assert!(stats.iterations > 0);
        let scale = c_direct[(0, 0)].abs();
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (c_direct[(i, j)] - c_blk[(i, j)]).abs() < 1e-6 * scale,
                    "({i},{j}): {} vs {}",
                    c_direct[(i, j)],
                    c_blk[(i, j)]
                );
            }
        }
    }

    #[test]
    fn dense_matrix_well_conditioned() {
        // Integral-equation matrices are well conditioned (Table 1 row 3).
        let panels = mesh_plate(0.0, 0.0, 0.0, 1e-3, 1e-3, 8, 8, 0);
        let p = MomProblem::new(panels, GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let a = p.assemble_dense();
        let svd = rfsim_numerics::svd::Svd::new(&a).unwrap();
        assert!(svd.cond2() < 100.0, "cond = {}", svd.cond2());
    }
}
