//! Finite-difference Laplace solver: the differential-equation class of
//! Table 1 — sparse matrix, **volume** discretization, poorer conditioning.
//!
//! A uniform 3-D grid discretizes the Laplacian with the 7-point stencil;
//! conductor cells carry Dirichlet potentials and the outer boundary is
//! grounded (truncated open domain). Capacitance is extracted from the
//! field energy: `C = 2·W` for a 1 V excitation.

use crate::{Error, Result};
use rfsim_numerics::sparse::{Csr, Triplets};

/// A rectangular conductor region on the FD grid (cell index ranges,
/// inclusive lo, exclusive hi).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdConductor {
    /// x cell range.
    pub x: (usize, usize),
    /// y cell range.
    pub y: (usize, usize),
    /// z cell range.
    pub z: (usize, usize),
}

/// A finite-difference electrostatics problem on an
/// `nx × ny × nz` grid of spacing `h`.
#[derive(Debug, Clone)]
pub struct FdProblem {
    /// Cells per axis.
    pub nx: usize,
    /// Cells per axis.
    pub ny: usize,
    /// Cells per axis.
    pub nz: usize,
    /// Grid spacing (m).
    pub h: f64,
    /// Relative permittivity of the medium.
    pub eps_r: f64,
    /// Conductor regions.
    pub conductors: Vec<FdConductor>,
}

/// Result of an FD solve.
#[derive(Debug, Clone)]
pub struct FdSolution {
    /// Potential at every grid cell (row-major x, y, z).
    pub phi: Vec<f64>,
    /// The assembled system matrix (for conditioning studies).
    pub matrix: Csr<f64>,
    /// Number of volume unknowns.
    pub unknowns: usize,
}

impl FdProblem {
    fn index(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.ny + j) * self.nz + k
    }

    fn conductor_of(&self, i: usize, j: usize, k: usize) -> Option<usize> {
        self.conductors.iter().position(|c| {
            i >= c.x.0 && i < c.x.1 && j >= c.y.0 && j < c.y.1 && k >= c.z.0 && k < c.z.1
        })
    }

    /// Solves the Laplace problem with the given conductor potentials.
    ///
    /// # Errors
    /// [`Error::InvalidSetup`] if potentials don't match conductor count;
    /// propagates sparse-LU failures.
    pub fn solve(&self, volts: &[f64]) -> Result<FdSolution> {
        if volts.len() != self.conductors.len() {
            return Err(Error::InvalidSetup("potentials/conductors mismatch".into()));
        }
        let n = self.nx * self.ny * self.nz;
        let mut t = Triplets::new(n, n);
        let mut rhs = vec![0.0; n];
        for i in 0..self.nx {
            for j in 0..self.ny {
                for k in 0..self.nz {
                    let row = self.index(i, j, k);
                    if let Some(c) = self.conductor_of(i, j, k) {
                        t.push(row, row, 1.0);
                        rhs[row] = volts[c];
                        continue;
                    }
                    // 7-point Laplacian; outer boundary cells couple to an
                    // implicit grounded halo (term simply dropped, which is
                    // a Dirichlet-0 boundary).
                    t.push(row, row, 6.0);
                    let neighbors = [
                        (i.wrapping_sub(1), j, k, i > 0),
                        (i + 1, j, k, i + 1 < self.nx),
                        (i, j.wrapping_sub(1), k, j > 0),
                        (i, j + 1, k, j + 1 < self.ny),
                        (i, j, k.wrapping_sub(1), k > 0),
                        (i, j, k + 1, k + 1 < self.nz),
                    ];
                    for (ni, nj, nk, ok) in neighbors {
                        if ok {
                            t.push(row, self.index(ni, nj, nk), -1.0);
                        }
                    }
                }
            }
        }
        let a = t.to_csr();
        let phi = a.solve(&rhs)?;
        Ok(FdSolution { phi, matrix: a, unknowns: n })
    }

    /// Field energy `W = (ε/2)·Σ|∇φ|²·h³`; for a single conductor at 1 V
    /// against ground, `C = 2W`.
    pub fn field_energy(&self, phi: &[f64]) -> f64 {
        let eps = crate::EPS0 * self.eps_r;
        let mut acc = 0.0;
        for i in 0..self.nx.saturating_sub(1) {
            for j in 0..self.ny.saturating_sub(1) {
                for k in 0..self.nz.saturating_sub(1) {
                    let p = phi[self.index(i, j, k)];
                    let ex = (phi[self.index(i + 1, j, k)] - p) / self.h;
                    let ey = (phi[self.index(i, j + 1, k)] - p) / self.h;
                    let ez = (phi[self.index(i, j, k + 1)] - p) / self.h;
                    acc += ex * ex + ey * ey + ez * ez;
                }
            }
        }
        0.5 * eps * acc * self.h.powi(3)
    }

    /// Convenience: capacitance of conductor 0 at 1 V (others grounded),
    /// via field energy.
    ///
    /// # Errors
    /// Propagates solve failures.
    pub fn capacitance(&self) -> Result<f64> {
        let mut volts = vec![0.0; self.conductors.len()];
        volts[0] = 1.0;
        let sol = self.solve(&volts)?;
        Ok(2.0 * self.field_energy(&sol.phi))
    }
}

/// 2-norm condition estimate of a sparse matrix by power iteration on
/// `AᵀA` (for σ₁) and inverse power iteration through a sparse LU (for
/// σₙ). Much cheaper than a dense SVD for grid-sized matrices.
///
/// # Errors
/// Propagates LU failure for singular matrices.
pub fn cond2_estimate(a: &Csr<f64>, iters: usize) -> Result<f64> {
    let n = a.rows();
    let lu = a.lu()?;
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let mut sigma_max = 0.0;
    for _ in 0..iters {
        let av = a.matvec(&v);
        let atav = a.matvec_transposed(&av);
        let nrm = rfsim_numerics::norm2(&atav);
        if nrm == 0.0 {
            break;
        }
        sigma_max = rfsim_numerics::norm2(&av);
        for (x, y) in v.iter_mut().zip(&atav) {
            *x = y / nrm;
        }
    }
    // Inverse power iteration on AᵀA: z = A⁻¹·A⁻ᵀ·w converges to the
    // right singular direction of σ_min; the growth per step is 1/σ_min².
    let lu_t = a.transpose().lu()?;
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 - (i as f64 * 0.3).cos()).collect();
    {
        let nrm = rfsim_numerics::norm2(&w);
        for x in &mut w {
            *x /= nrm;
        }
    }
    let mut sigma_min = f64::INFINITY;
    for _ in 0..iters {
        let y = lu_t.solve(&w)?;
        let z = lu.solve(&y)?;
        let nrm = rfsim_numerics::norm2(&z);
        if nrm == 0.0 {
            break;
        }
        sigma_min = (1.0 / nrm).sqrt();
        for (x, v) in w.iter_mut().zip(&z) {
            *x = v / nrm;
        }
    }
    Ok(sigma_max / sigma_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EPS0;

    /// Parallel plates inside the FD domain: C ≈ εA/d.
    #[test]
    fn fd_parallel_plate_capacitance() {
        let n = 16;
        let h = 1e-4 / n as f64; // 100 µm domain
        let prob = FdProblem {
            nx: n,
            ny: n,
            nz: n,
            h,
            eps_r: 1.0,
            conductors: vec![
                FdConductor { x: (3, 13), y: (3, 13), z: (6, 7) },
                FdConductor { x: (3, 13), y: (3, 13), z: (9, 10) },
            ],
        };
        let mut volts = vec![1.0, 0.0];
        let sol = prob.solve(&volts).unwrap();
        // Energy method with both excitations for the mutual term:
        // C ≈ εA/d with A = (12h)², d = 3h (plate separation gap cells
        // 9..12).
        volts[1] = 0.0;
        let c = 2.0 * prob.field_energy(&sol.phi);
        let ideal = EPS0 * (10.0 * h) * (10.0 * h) / (2.0 * h);
        // FD with fringing and the grounded box: within 2x but same order
        // (the grounded boundary adds plate-to-wall capacitance).
        assert!(c > ideal && c < 4.0 * ideal, "C = {c:.3e}, ideal = {ideal:.3e}");
    }

    #[test]
    fn matrix_is_sparse_and_worse_conditioned_than_mom() {
        // Table 1's contrast on our own implementations.
        let n = 12;
        let prob = FdProblem {
            nx: n,
            ny: n,
            nz: n,
            h: 1e-5,
            eps_r: 1.0,
            conductors: vec![FdConductor { x: (3, 5), y: (3, 5), z: (3, 5) }],
        };
        let sol = prob.solve(&[1.0]).unwrap();
        // Sparse: ~7 entries per row.
        let density = sol.matrix.density();
        assert!(density < 0.02, "density {density}");
        let cond_fd = cond2_estimate(&sol.matrix, 60).unwrap();
        // MoM matrix for a comparable-size problem.
        let panels = crate::geom::mesh_plate(0.0, 0.0, 0.0, 1e-3, 1e-3, 8, 8, 0);
        let p =
            crate::mom::MomProblem::new(panels, crate::GreenFn::FreeSpace { eps_r: 1.0 }).unwrap();
        let cond_mom = rfsim_numerics::svd::Svd::new(&p.assemble_dense()).unwrap().cond2();
        assert!(cond_fd > 2.0 * cond_mom, "cond FD {cond_fd:.1} vs MoM {cond_mom:.1}");
    }

    #[test]
    fn fd_condition_number_grows_with_refinement() {
        // Poor conditioning worsens as the volume grid refines (h → 0) in
        // all three dimensions, unlike the integral formulation.
        let cond_of = |n: usize| {
            let prob = FdProblem {
                nx: n,
                ny: n,
                nz: n,
                h: 1e-5,
                eps_r: 1.0,
                conductors: vec![FdConductor { x: (0, 1), y: (0, 1), z: (0, 1) }],
            };
            let sol = prob.solve(&[1.0]).unwrap();
            cond2_estimate(&sol.matrix, 60).unwrap()
        };
        let c1 = cond_of(6);
        let c2 = cond_of(12);
        assert!(c2 > 2.0 * c1, "cond {c1:.1} → {c2:.1}");
    }

    #[test]
    fn cond_estimate_tracks_dense_svd() {
        // Cross-check the power-iteration estimator against the exact SVD
        // condition number on a small grid.
        let prob = FdProblem {
            nx: 5,
            ny: 5,
            nz: 5,
            h: 1e-5,
            eps_r: 1.0,
            conductors: vec![FdConductor { x: (2, 3), y: (2, 3), z: (2, 3) }],
        };
        let sol = prob.solve(&[1.0]).unwrap();
        let est = cond2_estimate(&sol.matrix, 120).unwrap();
        let exact = rfsim_numerics::svd::Svd::new(&sol.matrix.to_dense()).unwrap().cond2();
        assert!((est / exact - 1.0).abs() < 0.3, "estimate {est:.1} vs exact {exact:.1}");
    }

    #[test]
    fn potentials_bounded_by_excitation() {
        // Discrete maximum principle.
        let prob = FdProblem {
            nx: 10,
            ny: 10,
            nz: 10,
            h: 1e-5,
            eps_r: 1.0,
            conductors: vec![FdConductor { x: (4, 6), y: (4, 6), z: (4, 6) }],
        };
        let sol = prob.solve(&[1.0]).unwrap();
        for &p in &sol.phi {
            assert!((-1e-12..=1.0 + 1e-12).contains(&p), "phi = {p}");
        }
    }
}
