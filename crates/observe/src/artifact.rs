//! The schema-versioned `BENCH_<id>.json` artifact each experiment
//! harness emits: per-phase wall clocks, problem-size sweep points with
//! counter deltas, thread count, git SHA, and the full telemetry
//! snapshot (span tree, counters, convergence traces, health events).

use rfsim_telemetry::Json;
use std::collections::BTreeMap;

/// Version stamped into every artifact; bump on breaking layout change.
pub const SCHEMA_VERSION: u64 = 1;

/// One timed top-level phase of a benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name, e.g. `size sweep` or `ablation`.
    pub name: String,
    /// Wall-clock duration of the phase.
    pub wall_seconds: f64,
}

/// One problem-size (or parameter) point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Point label, e.g. `n=1024`.
    pub label: String,
    /// Input parameters (problem size, tolerance, ...).
    pub params: BTreeMap<String, f64>,
    /// Measured outputs; always includes `wall_seconds`.
    pub metrics: BTreeMap<String, f64>,
    /// Telemetry counter deltas attributable to this point alone.
    pub counters: BTreeMap<String, u64>,
}

/// A complete benchmark artifact (`BENCH_<id>.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Artifact layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Experiment id, e.g. `e08`.
    pub id: String,
    /// Git commit the binary was built from (`unknown` outside a repo).
    pub git_sha: String,
    /// Worker-pool width the run used (`RFSIM_THREADS` resolution).
    pub threads: usize,
    /// End-to-end wall clock of the run.
    pub wall_seconds: f64,
    /// Error message if the run failed (solver divergence, bad setup).
    pub failure: Option<String>,
    /// Timed phases, in execution order.
    pub phases: Vec<Phase>,
    /// Sweep points, in execution order.
    pub sweep: Vec<SweepPoint>,
    /// Full telemetry snapshot (`Snapshot::to_json` layout).
    pub telemetry: Json,
}

fn num_map(m: &BTreeMap<String, f64>) -> Json {
    Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect())
}

fn count_map(m: &BTreeMap<String, u64>) -> Json {
    Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect())
}

fn parse_num_map(v: Option<&Json>) -> Option<BTreeMap<String, f64>> {
    let Json::Obj(m) = v? else { return None };
    m.iter().map(|(k, v)| Some((k.clone(), v.as_f64()?))).collect()
}

impl BenchArtifact {
    /// Conventional file name for an experiment id.
    pub fn file_name(id: &str) -> String {
        format!("BENCH_{id}.json")
    }

    /// Number of health events recorded in the embedded telemetry.
    pub fn health_events(&self) -> usize {
        self.telemetry.get("health").and_then(Json::as_arr).map_or(0, <[Json]>::len)
    }

    /// Serializes as a JSON value.
    pub fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::obj([
                    ("name", Json::Str(p.name.clone())),
                    ("wall_seconds", Json::Num(p.wall_seconds)),
                ])
            })
            .collect();
        let sweep = self
            .sweep
            .iter()
            .map(|s| {
                Json::obj([
                    ("label", Json::Str(s.label.clone())),
                    ("params", num_map(&s.params)),
                    ("metrics", num_map(&s.metrics)),
                    ("counters", count_map(&s.counters)),
                ])
            })
            .collect();
        Json::obj([
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("id", Json::Str(self.id.clone())),
            ("git_sha", Json::Str(self.git_sha.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("failure", self.failure.as_ref().map_or(Json::Null, |f| Json::Str(f.clone()))),
            ("phases", Json::Arr(phases)),
            ("sweep", Json::Arr(sweep)),
            ("telemetry", self.telemetry.clone()),
        ])
    }

    /// Rebuilds an artifact from its JSON value.
    pub fn from_json(v: &Json) -> Option<Self> {
        let schema_version = v.get("schema_version")?.as_f64()? as u64;
        let mut phases = Vec::new();
        for p in v.get("phases")?.as_arr()? {
            phases.push(Phase {
                name: p.get("name")?.as_str()?.to_string(),
                wall_seconds: p.get("wall_seconds")?.as_f64()?,
            });
        }
        let mut sweep = Vec::new();
        for s in v.get("sweep")?.as_arr()? {
            let counters = match s.get("counters")? {
                Json::Obj(m) => m
                    .iter()
                    .map(|(k, v)| Some((k.clone(), v.as_f64()? as u64)))
                    .collect::<Option<_>>()?,
                _ => return None,
            };
            sweep.push(SweepPoint {
                label: s.get("label")?.as_str()?.to_string(),
                params: parse_num_map(s.get("params"))?,
                metrics: parse_num_map(s.get("metrics"))?,
                counters,
            });
        }
        Some(BenchArtifact {
            schema_version,
            id: v.get("id")?.as_str()?.to_string(),
            git_sha: v.get("git_sha")?.as_str()?.to_string(),
            threads: v.get("threads")?.as_f64()? as usize,
            wall_seconds: v.get("wall_seconds")?.as_f64()?,
            failure: v.get("failure").and_then(|f| f.as_str().map(String::from)),
            phases,
            sweep,
            telemetry: v.get("telemetry")?.clone(),
        })
    }

    /// Parses an artifact from JSON text.
    ///
    /// # Errors
    /// Malformed JSON, missing fields, or an unsupported schema version.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let artifact = Self::from_json(&v).ok_or("not a BENCH artifact (missing fields)")?;
        if artifact.schema_version > SCHEMA_VERSION {
            return Err(format!(
                "artifact schema v{} is newer than supported v{SCHEMA_VERSION}",
                artifact.schema_version
            ));
        }
        Ok(artifact)
    }
}

/// Best-effort current git commit: walks up from the working directory
/// to `.git/HEAD`, dereferencing one level of `ref:` indirection.
/// Returns `"unknown"` outside a repository.
pub fn git_sha() -> String {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        let head = dir.join(".git/HEAD");
        if let Ok(content) = std::fs::read_to_string(&head) {
            let content = content.trim();
            let sha = match content.strip_prefix("ref: ") {
                Some(r) => std::fs::read_to_string(dir.join(".git").join(r))
                    .map(|s| s.trim().to_string())
                    .unwrap_or_else(|_| content.to_string()),
                None => content.to_string(),
            };
            return sha;
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    }
}
