//! Job execution against the resident warm state (DESIGN.md §13.3).
//!
//! The engine owns the two warm caches — harmonic-balance sweeps keyed
//! by circuit/grid identity, extraction operators keyed by geometry
//! hash — and turns each queued request into a result plus a per-job
//! telemetry artifact in the `rfsim-observe` schema. The process-wide
//! `FftPlan` cache is the third reuse layer; it needs no entry here
//! because `rfsim_numerics::fft::plan` already shares plans globally,
//! and its `fft.plan_hits` counter lands in every job's artifact.

use crate::cache::{CacheStats, CacheWeight, WarmCache};
use crate::protocol::{ErrorKind, ExtractJob, HbJob, Request};
use rfsim_circuit::prelude::*;
use rfsim_em::adaptive::{AdaptiveSweep, SurrogateOptions, EXTRACT_SURROGATE_TOL};
use rfsim_em::inductor::SweptExtractor;
use rfsim_observe::{git_sha, BenchArtifact, SweepPoint, SCHEMA_VERSION};
use rfsim_steady::{HbOptions, HbSweep, SpectralGrid};
use rfsim_telemetry::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// Environment variable that, when set to `cold`, bypasses the warm
/// caches — every job rebuilds from scratch. The e13 bench uses it for
/// the cold leg of the warm-vs-cold comparison, mirroring the
/// `RFSIM_SWEEP_MODE` convention of the sweep benches.
pub const COLD_ENV: &str = "RFSIM_SWEEP_MODE";

struct HbEntry {
    sweep: HbSweep,
}

impl CacheWeight for HbEntry {
    fn weight_bytes(&self) -> usize {
        // A not-yet-warm sweep reports zero resident bytes; floor it so
        // bookkeeping never divides by or evicts on zero.
        self.sweep.state_bytes().max(1024)
    }
}

/// A resident extraction sweep: the warm operators plus the fitted
/// rational surrogate, so repeat queries on a known geometry are
/// answered from the model with zero true solves (DESIGN.md §16).
struct ExtractEntry {
    sweep: AdaptiveSweep,
}

impl CacheWeight for ExtractEntry {
    fn weight_bytes(&self) -> usize {
        self.sweep.memory_bytes().max(1024)
    }
}

/// What one executed job produced.
pub struct JobOutcome {
    /// Result payload, or a structured error.
    pub result: Result<Json, (ErrorKind, String)>,
    /// Whether resident warm state served this job.
    pub warm: bool,
    /// Wall-clock execution time on the worker.
    pub exec_seconds: f64,
    /// Per-job `rfsim-observe` artifact (JSON form).
    pub artifact: Json,
}

/// The warm-state holder and job runner. One per server; shared by all
/// workers.
pub struct Engine {
    hb: WarmCache<HbEntry>,
    extract: WarmCache<ExtractEntry>,
    cold: bool,
}

impl Engine {
    /// An engine whose two caches share `cache_budget_bytes` evenly.
    /// `cold` disables both caches (see [`COLD_ENV`]).
    pub fn new(cache_budget_bytes: usize, cold: bool) -> Self {
        let half = (cache_budget_bytes / 2).max(1);
        Engine {
            hb: WarmCache::new(
                ["serve.cache.hb.hits", "serve.cache.hb.misses", "serve.cache.hb.evictions"],
                ["serve.cache.hb.bytes", "serve.cache.hb.entries"],
                half,
            ),
            extract: WarmCache::new(
                ["serve.cache.em.hits", "serve.cache.em.misses", "serve.cache.em.evictions"],
                ["serve.cache.em.bytes", "serve.cache.em.entries"],
                half,
            ),
            cold,
        }
    }

    /// Cache statistics: (harmonic balance, extraction).
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        (self.hb.stats(), self.extract.stats())
    }

    /// Surrogate residency across the resident extraction entries:
    /// `(entries holding at least one fitted sample, summed surrogate
    /// bytes)`.
    pub fn surrogate_stats(&self) -> (usize, usize) {
        self.extract.aggregate(|e| {
            let s = e.sweep.surrogate();
            (!s.is_empty()).then(|| s.memory_bytes())
        })
    }

    /// Runs one queued job, timing it and attributing telemetry counter
    /// deltas to it. Deltas are exact when jobs run one at a time (the
    /// integration tests pin `workers = 1`); under concurrency they are
    /// a superposition across workers — still monotone evidence of
    /// warm-state reuse, just not per-job-exact.
    pub fn execute(&self, req: &Request) -> JobOutcome {
        let before = rfsim_telemetry::snapshot().counters;
        let start = Instant::now();
        let (op, params, outcome) = match req {
            Request::Sleep { ms } => {
                let _span = rfsim_telemetry::span("serve.exec.sleep");
                std::thread::sleep(std::time::Duration::from_millis(*ms));
                (
                    "sleep",
                    vec![("ms".to_string(), *ms as f64)],
                    Ok((Json::Obj(BTreeMap::new()), false)),
                )
            }
            Request::Hb(job) => {
                let _span = rfsim_telemetry::span("serve.exec.hb");
                ("hb", hb_params(job), self.run_hb(job))
            }
            Request::Extract(job) => {
                let _span = rfsim_telemetry::span("serve.exec.extract");
                ("extract", extract_params(job), self.run_extract(job))
            }
            // The crash-test op: the server's worker harness catches
            // this, dumps the flight recorder, and answers `solver`.
            Request::Panic => panic!("deliberate panic requested by op:\"panic\""),
            // Ping/stats/metrics/dump/shutdown are answered inline by
            // the server and never reach a worker.
            _ => ("noop", Vec::new(), Ok((Json::Obj(BTreeMap::new()), false))),
        };
        let wall = start.elapsed().as_secs_f64();
        let mut counters = counter_deltas(&before, &rfsim_telemetry::snapshot().counters);
        let (result, warm) = match outcome {
            Ok((json, warm)) => (Ok(json), warm),
            Err(e) => (Err(e), false),
        };
        counters.insert("serve.job.warm".to_string(), u64::from(warm));
        let artifact = job_artifact(op, params, wall, &result, counters);
        JobOutcome { result, warm, exec_seconds: wall, artifact }
    }

    fn run_hb(&self, job: &HbJob) -> Result<(Json, bool), (ErrorKind, String)> {
        let grid = SpectralGrid::single_tone(job.f0, job.harmonics)
            .map_err(|e| (ErrorKind::BadRequest, e.to_string()))?;
        let (dae, out) =
            build_circuit(&job.circuit, job.f0, job.amp).map_err(|e| (ErrorKind::BadRequest, e))?;
        let key = job.cache_key();
        let mut entry = if self.cold { None } else { self.hb.checkout(&key) };
        let warm = entry.as_ref().is_some_and(|e| e.sweep.is_warm());
        let mut entry = entry
            .take()
            .unwrap_or_else(|| HbEntry { sweep: HbSweep::new(&grid, &HbOptions::default()) });
        let sol = entry.sweep.solve(&dae).map_err(|e| (ErrorKind::Solver, e.to_string()))?;
        if !self.cold {
            self.hb.checkin(key, entry);
        }
        let result = Json::obj([
            ("vout_dc", Json::Num(sol.amplitude(out, &[0]))),
            ("vout_h1", Json::Num(sol.amplitude(out, &[1]))),
            ("vout_h2", Json::Num(sol.amplitude(out, &[2]))),
            ("newton_iterations", Json::Num(sol.stats.newton_iterations as f64)),
            ("linear_iterations", Json::Num(sol.stats.linear_iterations as f64)),
            ("unknowns", Json::Num(sol.stats.unknowns as f64)),
        ]);
        Ok((result, warm))
    }

    fn run_extract(&self, job: &ExtractJob) -> Result<(Json, bool), (ErrorKind, String)> {
        let key = job.cache_key();
        let entry = if self.cold { None } else { self.extract.checkout(&key) };
        let warm = entry.as_ref().is_some_and(|e| e.sweep.is_warm());
        let mut entry = match entry {
            Some(e) => e,
            None => ExtractEntry {
                sweep: AdaptiveSweep::from_extractor(
                    SweptExtractor::with_tolerance(
                        &job.geometry,
                        job.panels_per_seg,
                        job.nq,
                        job.tol,
                    )
                    .map_err(|e| (ErrorKind::Solver, e.to_string()))?,
                    SurrogateOptions { rel_tol: EXTRACT_SURROGATE_TOL, ..Default::default() },
                ),
            },
        };
        // Model-first: a repeat frequency on a resident geometry is
        // answered bit-for-bit from the surrogate's stored solve and a
        // trusted fit answers any in-band frequency — only genuinely
        // new queries reach the EM solver (`surrogate.{hits,rejected}`
        // and `em.true_solves` record the split per job).
        let model =
            entry.sweep.extract_at(job.freq).map_err(|e| (ErrorKind::Solver, e.to_string()))?;
        let panels = entry.sweep.engine().panels();
        if !self.cold {
            self.extract.checkin(key, entry);
            let (entries, bytes) = self.surrogate_stats();
            rfsim_telemetry::gauge_set("serve.cache.surrogate.entries", entries as f64);
            rfsim_telemetry::gauge_set("serve.cache.surrogate.bytes", bytes as f64);
        }
        let result = Json::obj([
            ("l_series", Json::Num(model.l_series)),
            ("r_dc", Json::Num(model.r_dc)),
            ("f_skin", Json::Num(model.f_skin)),
            ("c_ox", Json::Num(model.c_ox)),
            ("r_sub", Json::Num(model.r_sub)),
            ("segments", Json::Num(model.segments as f64)),
            ("panels", Json::Num(panels as f64)),
        ]);
        Ok((result, warm))
    }
}

/// The built-in circuit registry served by `op:"hb"`: small nonlinear
/// (and one linear) one-source circuits exercising the HB path.
pub const CIRCUITS: [&str; 3] = ["rectifier", "clipper", "lowpass"];

fn build_circuit(name: &str, f0: f64, amp: f64) -> Result<(CircuitDae, usize), String> {
    let mut ckt = Circuit::new();
    let inp = ckt.node("in");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", inp, Circuit::GROUND, 0.0, amp, f0));
    ckt.add(Resistor::new("R1", inp, out, 1e3));
    match name {
        "rectifier" => {
            ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
        }
        "clipper" => {
            ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
            ckt.add(Diode::new("D2", Circuit::GROUND, out, 1e-14));
        }
        "lowpass" => {
            // First-order RC with the corner at the drive fundamental.
            let c = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * f0);
            ckt.add(Capacitor::new("C1", out, Circuit::GROUND, c));
        }
        other => {
            return Err(format!("unknown circuit {other:?} (have {CIRCUITS:?})"));
        }
    }
    let dae = ckt.into_dae().map_err(|e| e.to_string())?;
    let out = dae.node_index(out).ok_or("output node is ground")?;
    Ok((dae, out))
}

fn hb_params(job: &HbJob) -> Vec<(String, f64)> {
    vec![
        ("f0".to_string(), job.f0),
        ("harmonics".to_string(), job.harmonics as f64),
        ("amp".to_string(), job.amp),
    ]
}

fn extract_params(job: &ExtractJob) -> Vec<(String, f64)> {
    vec![
        ("freq".to_string(), job.freq),
        ("panels_per_seg".to_string(), job.panels_per_seg as f64),
        ("nq".to_string(), job.nq as f64),
        ("tol".to_string(), job.tol),
    ]
}

fn counter_deltas(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> BTreeMap<String, u64> {
    after
        .iter()
        .filter_map(|(k, v)| {
            let d = v.saturating_sub(before.get(k).copied().unwrap_or(0));
            (d > 0).then(|| (k.clone(), d))
        })
        .collect()
}

/// Builds the per-job artifact: one sweep point, the job's counter
/// deltas, no embedded full snapshot (jobs are too frequent for that).
fn job_artifact(
    op: &str,
    params: Vec<(String, f64)>,
    wall: f64,
    result: &Result<Json, (ErrorKind, String)>,
    counters: BTreeMap<String, u64>,
) -> Json {
    let mut metrics = BTreeMap::new();
    metrics.insert("wall_seconds".to_string(), wall);
    let artifact = BenchArtifact {
        schema_version: SCHEMA_VERSION,
        id: format!("serve-{op}"),
        git_sha: git_sha(),
        threads: rfsim_parallel::thread_count(),
        wall_seconds: wall,
        failure: result.as_ref().err().map(|(k, m)| format!("{}: {m}", k.as_str())),
        phases: Vec::new(),
        sweep: vec![SweepPoint {
            label: format!("serve:{op}"),
            params: params.into_iter().collect(),
            metrics,
            counters,
        }],
        telemetry: Json::Null,
    };
    artifact.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn hb_req() -> Request {
        Request::Hb(HbJob { circuit: "rectifier".to_string(), f0: 1e6, harmonics: 5, amp: 1.0 })
    }

    #[test]
    fn repeat_hb_job_reports_warm() {
        rfsim_telemetry::set_mode(rfsim_telemetry::Mode::Report);
        let engine = Engine::new(64 << 20, false);
        let cold = engine.execute(&hb_req());
        assert!(cold.result.is_ok());
        assert!(!cold.warm);
        let warm = engine.execute(&hb_req());
        assert!(warm.warm, "second identical job must find the resident sweep");
        // Bitwise-identical answers: the warm start is already converged.
        let v = |o: &JobOutcome| o.result.as_ref().unwrap().get("vout_dc").unwrap().as_f64();
        assert_eq!(v(&cold), v(&warm));
    }

    #[test]
    fn cold_mode_never_reuses() {
        rfsim_telemetry::set_mode(rfsim_telemetry::Mode::Report);
        let engine = Engine::new(64 << 20, true);
        engine.execute(&hb_req());
        let second = engine.execute(&hb_req());
        assert!(!second.warm);
        assert_eq!(engine.cache_stats().0.entries, 0);
    }

    #[test]
    fn artifact_is_schema_parseable() {
        rfsim_telemetry::set_mode(rfsim_telemetry::Mode::Report);
        let engine = Engine::new(64 << 20, false);
        let out = engine.execute(&Request::Sleep { ms: 0 });
        let parsed = BenchArtifact::parse(&out.artifact.to_string_compact()).unwrap();
        assert_eq!(parsed.sweep.len(), 1);
        assert_eq!(parsed.sweep[0].label, "serve:sleep");
    }

    #[test]
    fn unknown_circuit_is_a_bad_request() {
        let engine = Engine::new(1 << 20, false);
        let req = Request::Hb(HbJob {
            circuit: "warp-core".to_string(),
            f0: 1e6,
            harmonics: 3,
            amp: 1.0,
        });
        let out = engine.execute(&req);
        let (kind, _) = out.result.unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
    }
}
