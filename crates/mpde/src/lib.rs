#![warn(missing_docs)]
// Index-based loops are deliberate throughout: they mirror the
// subscripted linear-algebra notation of the algorithms implemented.
#![allow(clippy::needless_range_loop)]
//! Multi-rate partial differential equation (MPDE) methods
//! (paper, Section 2.2).
//!
//! The MPDE replaces the circuit DAE `q̇(x) + f(x) = b(t)` (Eq. 3) with its
//! bivariate generalization
//!
//! ```text
//!     ∂q(x̂)/∂t₁ + ∂q(x̂)/∂t₂ + f(x̂) = b̂(t₁, t₂)          (Eq. 4)
//! ```
//!
//! and solves for the bivariate waveform `x̂` directly — "the key to
//! efficiency is to solve for these waveforms directly, without involving
//! the numerically inefficient one-dimensional forms at any point". The
//! univariate solution is recovered as `x(t) = x̂(t, t)`.
//!
//! Four solution strategies from the paper are implemented:
//!
//! - [`mfdtd`]: Multivariate Finite-Difference Time Domain — backward
//!   differences on a biperiodic `t₁×t₂` grid (strongly nonlinear circuits,
//!   no sinusoidal assumption, e.g. power converters);
//! - [`hshoot`]: Hierarchical Shooting — shooting along the fast axis
//!   nested inside a relaxation over the slow axis;
//! - [`mmft`]: Multivariate Mixed Frequency–Time — a short Fourier series
//!   along the nearly-linear slow axis combined with time-domain stepping
//!   along the strongly nonlinear fast axis (switching mixers,
//!   switched-capacitor filters);
//! - [`envelope`]: TD-ENV — mixed initial/periodic conditions: transient
//!   envelope integration along `t₁` of per-slice fast periodic steady
//!   states.

pub mod bivariate;
pub mod envelope;
mod grid;
pub mod hshoot;
pub mod mfdtd;
pub mod mmft;

pub use bivariate::BivariateWaveform;
pub use envelope::{envelope_follow, EnvelopeOptions, EnvelopeResult};
pub use hshoot::{hierarchical_shooting, HsOptions};
pub use mfdtd::{solve_mfdtd, MfdtdOptions};
pub use mmft::{solve_mmft, MmftOptions, MmftSolution};

/// Errors from the MPDE engines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Newton/relaxation failed to converge.
    NoConvergence {
        /// Iterations/sweeps performed.
        iterations: usize,
        /// Final residual infinity-norm.
        residual: f64,
    },
    /// Underlying steady-state engine failure.
    Steady(rfsim_steady::Error),
    /// Underlying circuit failure.
    Circuit(rfsim_circuit::Error),
    /// Underlying numerical failure.
    Numerics(rfsim_numerics::Error),
    /// Invalid grid or option combination.
    InvalidSetup(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NoConvergence { iterations, residual } => {
                write!(
                    f,
                    "mpde solver failed after {iterations} iterations (residual {residual:.3e})"
                )
            }
            Error::Steady(e) => write!(f, "steady-state error: {e}"),
            Error::Circuit(e) => write!(f, "circuit error: {e}"),
            Error::Numerics(e) => write!(f, "numerics error: {e}"),
            Error::InvalidSetup(msg) => write!(f, "invalid setup: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Steady(e) => Some(e),
            Error::Circuit(e) => Some(e),
            Error::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfsim_steady::Error> for Error {
    fn from(e: rfsim_steady::Error) -> Self {
        Error::Steady(e)
    }
}

impl From<rfsim_circuit::Error> for Error {
    fn from(e: rfsim_circuit::Error) -> Self {
        Error::Circuit(e)
    }
}

impl From<rfsim_numerics::Error> for Error {
    fn from(e: rfsim_numerics::Error) -> Self {
        Error::Numerics(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;
