#![warn(missing_docs)]
// Index-based loops are deliberate throughout: they mirror the
// subscripted linear-algebra notation of the algorithms implemented.
#![allow(clippy::needless_range_loop)]
//! Numerical foundation for the `rfsim` RF IC design toolkit.
//!
//! The RF CAD algorithms reproduced from the DAC'98 Bell Labs paper —
//! harmonic balance, multi-rate PDE methods, phase-noise characterisation,
//! method-of-moments extraction with IES³ compression, and Krylov-subspace
//! reduced-order modeling — all sit on the same small set of numerical
//! kernels. This crate provides those kernels from scratch:
//!
//! - [`Complex`] arithmetic ([`complex`]),
//! - dense real/complex matrices with LU, QR, SVD and eigenvalue
//!   decompositions ([`dense`], [`svd`], [`eig`]),
//! - sparse matrices (triplet/CSR) with a Gilbert–Peierls sparse LU
//!   ([`sparse`]),
//! - Krylov-subspace iterative solvers (GMRES, BiCGStab) with pluggable
//!   preconditioners ([`krylov`]),
//! - FFT/DFT (radix-2 + Bluestein) and spectrum utilities ([`fft`]),
//! - interpolation and quadrature helpers ([`interp`], [`quad`]).
//!
//! # Example
//!
//! ```
//! use rfsim_numerics::dense::Mat;
//!
//! # fn main() -> Result<(), rfsim_numerics::Error> {
//! let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = a.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod aligned;
pub mod complex;
pub mod dense;
pub mod eig;
pub mod fft;
pub mod interp;
pub mod kernels;
pub mod krylov;
pub mod quad;
pub mod scalar;
pub mod sparse;
pub mod svd;

pub use aligned::AlignedVec;
pub use complex::Complex;
pub use dense::Mat;
pub use scalar::Scalar;

/// Errors produced by the numerical kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A factorization encountered an (numerically) singular matrix.
    /// Carries the pivot index at which breakdown occurred.
    Singular(usize),
    /// Dimensions of the operands do not agree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension found.
        found: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    /// Carries the final residual norm achieved and the tail of the
    /// residual history for post-mortem diagnosis.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
        /// Last few residual norms (at most [`RESIDUAL_TAIL_LEN`]),
        /// oldest first, ending with `residual`. Empty when the solver
        /// does not track a history.
        residual_tail: Vec<f64>,
    },
    /// A Krylov process broke down (e.g. Lanczos serious breakdown).
    Breakdown(&'static str),
    /// Invalid argument (empty matrix, non-square where square required, …).
    InvalidArgument(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Singular(k) => write!(f, "matrix is singular at pivot {k}"),
            Error::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::NoConvergence { iterations, residual, residual_tail } => {
                write!(f, "no convergence after {iterations} iterations (residual {residual:.3e}")?;
                if !residual_tail.is_empty() {
                    write!(f, ", tail")?;
                    for r in residual_tail {
                        write!(f, " {r:.3e}")?;
                    }
                }
                write!(f, ")")
            }
            Error::Breakdown(what) => write!(f, "numerical breakdown: {what}"),
            Error::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Maximum number of trailing residuals kept in
/// [`Error::NoConvergence::residual_tail`].
pub const RESIDUAL_TAIL_LEN: usize = 8;

/// Clips a residual history to its last [`RESIDUAL_TAIL_LEN`] entries
/// for embedding in a [`Error::NoConvergence`].
pub fn residual_tail(history: &[f64]) -> Vec<f64> {
    history[history.len().saturating_sub(RESIDUAL_TAIL_LEN)..].to_vec()
}

/// Fixed-capacity ring buffer holding the last [`RESIDUAL_TAIL_LEN`]
/// residual norms of an iteration, for embedding in
/// [`Error::NoConvergence`] without allocating in the solver loop.
#[derive(Debug, Clone)]
pub struct ResidualTail {
    buf: [f64; RESIDUAL_TAIL_LEN],
    len: usize,
    head: usize,
}

impl ResidualTail {
    /// An empty tail.
    pub const fn new() -> Self {
        ResidualTail { buf: [0.0; RESIDUAL_TAIL_LEN], len: 0, head: 0 }
    }

    /// Appends a residual, evicting the oldest once full.
    #[inline]
    pub fn push(&mut self, r: f64) {
        self.buf[self.head] = r;
        self.head = (self.head + 1) % RESIDUAL_TAIL_LEN;
        self.len = (self.len + 1).min(RESIDUAL_TAIL_LEN);
    }

    /// The recorded residuals, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        let start = (self.head + RESIDUAL_TAIL_LEN - self.len) % RESIDUAL_TAIL_LEN;
        (0..self.len).map(|i| self.buf[(start + i) % RESIDUAL_TAIL_LEN]).collect()
    }
}

impl Default for ResidualTail {
    fn default() -> Self {
        ResidualTail::new()
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Euclidean norm of a real vector.
///
/// ```
/// assert_eq!(rfsim_numerics::norm2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm2(v: &[f64]) -> f64 {
    kernels::norm2_sq_f64(v).sqrt()
}

/// Infinity norm of a real vector (0 for the empty vector).
///
/// NaN entries propagate: `f64::max` would silently drop them, which
/// let a poisoned residual report a finite norm and hid divergence from
/// the convergence checks.
pub fn norm_inf(v: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for x in v {
        let a = x.abs();
        if a > m || a.is_nan() {
            m = a;
        }
    }
    m
}

/// Dot product of two real vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    kernels::dot_f64(a, b)
}

/// `y ← y + alpha * x` for real vectors.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    kernels::axpy_f64(alpha, x, y);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_and_dot() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm_inf(&[-2.0, 1.0]), 2.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn residual_tail_keeps_last_entries() {
        let hist: Vec<f64> = (0..12).map(f64::from).collect();
        assert_eq!(residual_tail(&hist), (4..12).map(f64::from).collect::<Vec<_>>());
        assert_eq!(residual_tail(&hist[..3]), vec![0.0, 1.0, 2.0]);

        let mut ring = ResidualTail::new();
        assert!(ring.to_vec().is_empty());
        for v in &hist {
            ring.push(*v);
        }
        assert_eq!(ring.to_vec(), residual_tail(&hist));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            Error::Singular(3),
            Error::DimensionMismatch { expected: 2, found: 5 },
            Error::NoConvergence { iterations: 7, residual: 1e-3, residual_tail: vec![1e-2, 1e-3] },
            Error::Breakdown("lanczos"),
            Error::InvalidArgument("empty"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
