//! Dense matrices over [`Scalar`] (both `f64` and [`Complex`](crate::Complex))
//! with LU and QR factorizations.
//!
//! Row-major storage. These kernels back the small/medium dense problems in
//! the toolkit: MNA Jacobians for modest circuits, HB Jacobians in the
//! "traditional direct" mode, MoM matrices before compression, ROM reduced
//! matrices, and monodromy matrices.

use crate::scalar::Scalar;
use crate::{Error, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Panel width for the blocked LU factorization. Sized so a panel row
/// segment plus the pivot row stay L1-resident; factors of order ≤ 32
/// (the HB per-bin blocks) degenerate to the classic unblocked sweep.
pub const LU_PANEL: usize = 32;

/// A dense row-major matrix over scalar type `T`.
///
/// ```
/// use rfsim_numerics::dense::Mat;
///
/// let a: Mat<f64> = Mat::identity(3);
/// assert_eq!(a[(1, 1)], 1.0);
/// assert_eq!(a[(0, 1)], 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Mat<T> {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Mat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(d: &[T]) -> Self {
        let mut m = Mat::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<T> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Sets column `j` from a slice.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn set_col(&mut self, j: usize, v: &[T]) {
        assert_eq!(v.len(), self.rows, "set_col: length mismatch");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Mat<T> {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose (Hermitian adjoint). For real matrices this is
    /// the ordinary transpose.
    pub fn adjoint(&self) -> Mat<T> {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::ZERO; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer (no
    /// allocation). Identical arithmetic order to [`Mat::matvec`].
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        assert_eq!(y.len(), self.rows, "matvec_into: output length mismatch");
        for i in 0..self.rows {
            // Unconjugated row·x kernel; its scalar fallback matches the
            // historical accumulation loop bitwise.
            y[i] = T::slice_dotu(self.row(i), x);
        }
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, b: &Mat<T>) -> Mat<T> {
        assert_eq!(self.cols, b.rows, "matmul: inner dimension mismatch");
        let mut c = Mat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            let ci = c.row_mut(i);
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == T::ZERO {
                    continue;
                }
                // ikj update c_i ← c_i + a_ik·b_k as a row axpy; the
                // scalar fallback matches the historical loop bitwise.
                T::slice_axpy(aik, b.row(k), ci);
            }
        }
        c
    }

    /// Scales every entry by a real factor, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v = v.scale_by(s);
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v.modulus() * v.modulus()).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.modulus()))
    }

    /// Splits out row `k` (shared) and row `i` (mutable). Requires `k < i`.
    fn row_pair_mut(&mut self, k: usize, i: usize) -> (&[T], &mut [T]) {
        debug_assert!(k < i, "row_pair_mut: need k < i");
        let c = self.cols;
        let (top, bottom) = self.data.split_at_mut(i * c);
        (&top[k * c..(k + 1) * c], &mut bottom[..c])
    }

    /// LU factorization with partial pivoting, organized as a blocked
    /// right-looking panel sweep (panel width [`LU_PANEL`]).
    ///
    /// Within a panel, rank-1 updates touch only the panel's own columns;
    /// the update of the trailing block is deferred to one pass of long
    /// row axpys per panel, which both streams cache lines and feeds the
    /// SIMD axpy kernel. Every element still receives its updates in
    /// ascending-`k` order with the same multiplier values, so the
    /// factorization (pivot choices included) is bitwise-identical to the
    /// classic unblocked loop whenever the scalar kernels are active.
    ///
    /// # Errors
    /// Returns [`Error::Singular`] if a pivot is exactly zero, and
    /// [`Error::InvalidArgument`] if the matrix is not square.
    pub fn lu(&self) -> Result<Lu<T>> {
        if !self.is_square() {
            return Err(Error::InvalidArgument("lu: matrix must be square"));
        }
        rfsim_telemetry::counter_add("lu.dense.factorizations", 1);
        crate::kernels::note_dispatch(1);
        let n = self.rows;
        let mut a = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign_swaps = 0usize;
        let mut kb = 0usize;
        while kb < n {
            let pe = (kb + LU_PANEL).min(n);
            for k in kb..pe {
                // Partial pivot: largest modulus in column k at or below
                // row k.
                let mut p = k;
                let mut pmax = a[(k, k)].modulus();
                for i in k + 1..n {
                    let m = a[(i, k)].modulus();
                    if m > pmax {
                        pmax = m;
                        p = i;
                    }
                }
                if pmax == 0.0 {
                    return Err(Error::Singular(k));
                }
                if p != k {
                    for j in 0..n {
                        let tmp = a[(k, j)];
                        a[(k, j)] = a[(p, j)];
                        a[(p, j)] = tmp;
                    }
                    perm.swap(k, p);
                    sign_swaps += 1;
                }
                let pivot = a[(k, k)];
                for i in k + 1..n {
                    let l = a[(i, k)] / pivot;
                    a[(i, k)] = l;
                    if l == T::ZERO {
                        continue;
                    }
                    // In-panel rank-1 update: panel columns only.
                    let (rk, ri) = a.row_pair_mut(k, i);
                    T::slice_axpy(-l, &rk[k + 1..pe], &mut ri[k + 1..pe]);
                }
            }
            // Deferred trailing update: columns pe..n catch up on every
            // elimination step of this panel, in ascending-k order.
            if pe < n {
                for i in kb + 1..n {
                    for k in kb..pe.min(i) {
                        let l = a[(i, k)];
                        if l == T::ZERO {
                            continue;
                        }
                        let (rk, ri) = a.row_pair_mut(k, i);
                        T::slice_axpy(-l, &rk[pe..], &mut ri[pe..]);
                    }
                }
            }
            kb = pe;
        }
        Ok(Lu { lu: a, perm, sign_swaps })
    }

    /// Solves `A·x = b` by LU factorization.
    ///
    /// # Errors
    /// Propagates [`Error::Singular`] from [`Mat::lu`], and returns
    /// [`Error::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        self.lu()?.solve(b)
    }

    /// Matrix inverse via LU.
    ///
    /// # Errors
    /// Returns [`Error::Singular`] for singular matrices.
    pub fn inverse(&self) -> Result<Mat<T>> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut inv = Mat::zeros(n, n);
        let mut e = vec![T::ZERO; n];
        for j in 0..n {
            e[j] = T::ONE;
            let x = lu.solve(&e)?;
            inv.set_col(j, &x);
            e[j] = T::ZERO;
        }
        Ok(inv)
    }

    /// Determinant via LU; zero for singular matrices.
    pub fn det(&self) -> T {
        match self.lu() {
            Ok(lu) => lu.det(),
            Err(_) => T::ZERO,
        }
    }

    /// 1-norm condition number estimate `‖A‖₁ · ‖A⁻¹‖₁` (exact inverse,
    /// intended for the modest matrix sizes in Table 1 style studies).
    ///
    /// # Errors
    /// Returns [`Error::Singular`] for singular matrices.
    pub fn cond1(&self) -> Result<f64> {
        let inv = self.inverse()?;
        Ok(self.norm1() * inv.norm1())
    }

    /// 1-norm (maximum absolute column sum).
    pub fn norm1(&self) -> f64 {
        (0..self.cols)
            .map(|j| (0..self.rows).map(|i| self[(i, j)].modulus()).sum::<f64>())
            .fold(0.0, f64::max)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Mat<T> {
    type Output = T;
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Mat<T> {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl<T: Scalar> Add for &Mat<T> {
    type Output = Mat<T>;
    fn add(self, rhs: &Mat<T>) -> Mat<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add: shape mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += *r;
        }
        out
    }
}

impl<T: Scalar> Sub for &Mat<T> {
    type Output = Mat<T>;
    fn sub(self, rhs: &Mat<T>) -> Mat<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub: shape mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= *r;
        }
        out
    }
}

impl<T: Scalar> Mul for &Mat<T> {
    type Output = Mat<T>;
    fn mul(self, rhs: &Mat<T>) -> Mat<T> {
        self.matmul(rhs)
    }
}

/// LU factorization with partial pivoting, `P·A = L·U`.
///
/// Produced by [`Mat::lu`]; reusable across multiple right-hand sides, which
/// the transient and shooting engines rely on.
#[derive(Clone)]
pub struct Lu<T> {
    lu: Mat<T>,
    perm: Vec<usize>,
    sign_swaps: usize,
}

impl<T: Scalar> fmt::Debug for Lu<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lu(order = {}, swaps = {})", self.lu.rows(), self.sign_swaps)
    }
}

impl<T: Scalar> Lu<T> {
    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>> {
        let mut x = vec![T::ZERO; self.lu.rows];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-provided buffer — the
    /// allocation-free form of [`Lu::solve`] for hot loops that reuse
    /// `x`.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] when `b` or `x` has the wrong
    /// length.
    pub fn solve_into(&self, b: &[T], x: &mut [T]) -> Result<()> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(Error::DimensionMismatch { expected: n, found: b.len() });
        }
        if x.len() != n {
            return Err(Error::DimensionMismatch { expected: n, found: x.len() });
        }
        // Apply permutation.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        if crate::kernels::simd_active() {
            // Row-dot substitution: one fused reduction per row. The
            // reduction reassociates relative to the sequential loop, so
            // this arm only runs under the tolerance-gated SIMD dispatch.
            for i in 1..n {
                let (head, tail) = x.split_at_mut(i);
                tail[0] -= T::slice_dotu(&self.lu.row(i)[..i], head);
            }
            for i in (0..n).rev() {
                let (head, tail) = x.split_at_mut(i + 1);
                let acc = head[i] - T::slice_dotu(&self.lu.row(i)[i + 1..], tail);
                head[i] = acc / self.lu[(i, i)];
            }
            return Ok(());
        }
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `Aᵀ·x = b` (plain transpose, no conjugation), used by adjoint
    /// sensitivity computations such as the phase-noise PPV.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve_transposed(&self, b: &[T]) -> Result<Vec<T>> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(Error::DimensionMismatch { expected: n, found: b.len() });
        }
        // A = Pᵀ L U  ⇒  Aᵀ = Uᵀ Lᵀ P. Solve Uᵀ z = b, then Lᵀ w = z, then
        // x = Pᵀ w (i.e. x[perm[i]] = w[i]).
        let mut z = b.to_vec();
        for i in 0..n {
            let mut acc = z[i];
            for j in 0..i {
                acc -= self.lu[(j, i)] * z[j];
            }
            z[i] = acc / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut acc = z[i];
            for j in i + 1..n {
                acc -= self.lu[(j, i)] * z[j];
            }
            z[i] = acc;
        }
        let mut x = vec![T::ZERO; n];
        for i in 0..n {
            x[self.perm[i]] = z[i];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> T {
        let n = self.lu.rows;
        let mut d = T::ONE;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        if self.sign_swaps % 2 == 1 {
            d = -d;
        }
        d
    }
}

/// Single-precision shadow of a factored complex [`Lu`]: the factors are
/// stored row-major as interleaved re/im `f32` pairs, halving the memory
/// traffic of every triangular solve, while the substitution itself
/// accumulates in f64 (see [`kernels::cdotu_widen`]).
///
/// Intended for preconditioner application — the outer iteration
/// converges on the true f64 residual, so ~7 significant digits in the
/// *preconditioning operator* cost nothing in final accuracy. Built with
/// [`Lu::to_single`], which refuses factors that do not survive the
/// narrowing (overflow or a diagonal that underflows to zero).
///
/// [`kernels::cdotu_widen`]: crate::kernels::cdotu_widen
pub struct LuSingle {
    /// Row-major interleaved re/im factors (`2·n·n` values).
    lu: Vec<f32>,
    perm: Vec<usize>,
    n: usize,
}

impl Lu<crate::Complex> {
    /// Narrows the factors to an f32 [`LuSingle`], or `None` when any
    /// entry overflows f32 or a pivot underflows to zero — callers fall
    /// back to the full-precision solve in that case.
    pub fn to_single(&self) -> Option<LuSingle> {
        let n = self.lu.rows;
        let mut data = Vec::with_capacity(2 * n * n);
        for i in 0..n {
            for z in self.lu.row(i) {
                let (re, im) = (z.re as f32, z.im as f32);
                if !re.is_finite() || !im.is_finite() {
                    return None;
                }
                data.push(re);
                data.push(im);
            }
        }
        for i in 0..n {
            if data[2 * i * n + 2 * i] == 0.0 && data[2 * i * n + 2 * i + 1] == 0.0 {
                return None;
            }
        }
        Some(LuSingle { lu: data, perm: self.perm.clone(), n })
    }
}

impl LuSingle {
    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Resident bytes of the narrowed factors.
    pub fn bytes(&self) -> usize {
        self.lu.len() * 4 + self.perm.len() * 8
    }

    /// Solves `A·x ≈ b` against the narrowed factors (forward + back
    /// substitution with f64 accumulation). Relative accuracy is limited
    /// by the f32 factor storage, roughly `1e-6·κ(A)`.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] when `b` or `x` has the
    /// wrong length.
    pub fn solve_into(&self, b: &[crate::Complex], x: &mut [crate::Complex]) -> Result<()> {
        let n = self.n;
        if b.len() != n {
            return Err(Error::DimensionMismatch { expected: n, found: b.len() });
        }
        if x.len() != n {
            return Err(Error::DimensionMismatch { expected: n, found: x.len() });
        }
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        // Row-dot substitution, same shape as the f64 SIMD arm of
        // `Lu::solve_into`: one fused reduction per row.
        for i in 1..n {
            let row = &self.lu[2 * i * n..2 * i * n + 2 * i];
            let (head, tail) = x.split_at_mut(i);
            tail[0] -= crate::kernels::cdotu_widen(row, head);
        }
        for i in (0..n).rev() {
            let row = &self.lu[2 * i * n + 2 * (i + 1)..2 * (i + 1) * n];
            let diag = crate::Complex::new(
                self.lu[2 * i * n + 2 * i] as f64,
                self.lu[2 * i * n + 2 * i + 1] as f64,
            );
            let (head, tail) = x.split_at_mut(i + 1);
            let acc = head[i] - crate::kernels::cdotu_widen(row, tail);
            head[i] = acc / diag;
        }
        Ok(())
    }

    /// Allocating form of [`LuSingle::solve_into`].
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[crate::Complex]) -> Result<Vec<crate::Complex>> {
        let mut x = vec![crate::Complex::ZERO; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }
}

/// Householder QR factorization of a real or complex matrix, `A = Q·R`.
///
/// Used by the Arnoldi ROM and by least-squares fits in the extraction crate.
#[derive(Clone)]
pub struct Qr<T> {
    /// Orthonormal factor, `m×n` (thin).
    pub q: Mat<T>,
    /// Upper triangular factor, `n×n`.
    pub r: Mat<T>,
}

impl<T: Scalar> fmt::Debug for Qr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Qr({}x{})", self.q.rows(), self.q.cols())
    }
}

impl<T: Scalar> Qr<T> {
    /// Computes a thin QR of `a` (requires `rows ≥ cols`) by modified
    /// Gram–Schmidt with one reorthogonalization pass — adequate and robust
    /// for the moderately sized, well-scaled matrices the toolkit feeds it.
    ///
    /// # Errors
    /// Returns [`Error::InvalidArgument`] when `rows < cols`, and
    /// [`Error::Breakdown`] when a column is numerically linearly dependent.
    pub fn new(a: &Mat<T>) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(Error::InvalidArgument("qr: need rows >= cols"));
        }
        let mut q = Mat::zeros(m, n);
        let mut r = Mat::zeros(n, n);
        for j in 0..n {
            let mut v = a.col(j);
            // Two passes of MGS for numerical orthogonality.
            for _pass in 0..2 {
                for i in 0..j {
                    let qi = q.col(i);
                    let h = crate::scalar::gdot(&qi, &v);
                    r[(i, j)] += h;
                    T::slice_axpy(-h, &qi, &mut v);
                }
            }
            let nrm = crate::scalar::gnorm2(&v);
            if nrm < 1e-300 {
                return Err(Error::Breakdown("qr: linearly dependent column"));
            }
            r[(j, j)] = T::from_f64(nrm);
            T::slice_scale(&mut v, 1.0 / nrm);
            q.set_col(j, &v);
        }
        Ok(Qr { q, r })
    }

    /// Least-squares solve `min ‖A·x − b‖₂` via `R·x = Qᴴ·b`.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve_ls(&self, b: &[T]) -> Result<Vec<T>> {
        let m = self.q.rows();
        if b.len() != m {
            return Err(Error::DimensionMismatch { expected: m, found: b.len() });
        }
        let n = self.r.rows();
        let qh = self.q.adjoint();
        let rhs = qh.matvec(b);
        // Back substitution on R.
        let mut x = rhs;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.r[(i, j)] * x[j];
            }
            x[i] = acc / self.r[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;

    #[test]
    fn identity_solve_roundtrip() {
        let a: Mat<f64> = Mat::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn lu_solves_general_real() {
        let a = Mat::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]);
        let xref = [1.0, -2.0, 3.0];
        let b = a.matvec(&xref);
        let x = a.solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero leading entry forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_reports_error() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(a.lu(), Err(Error::Singular(_))));
        assert_eq!(a.det(), 0.0);
    }

    #[test]
    fn det_and_inverse() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((a.det() - (-2.0)).abs() < 1e-14);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        let id: Mat<f64> = Mat::identity(2);
        assert!((&prod - &id).norm_fro() < 1e-12);
    }

    #[test]
    fn complex_solve() {
        let j = Complex::I;
        let a = Mat::from_rows(&[&[Complex::ONE, j], &[-j, Complex::new(2.0, 0.0)]]);
        let xref = vec![Complex::new(1.0, 1.0), Complex::new(-0.5, 2.0)];
        let b = a.matvec(&xref);
        let x = a.solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((*xi - *ri).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_solve_matches() {
        let a = Mat::from_rows(&[&[3.0, 1.0, 0.5], &[-1.0, 2.0, 0.0], &[0.0, 1.0, 4.0]]);
        let b = [1.0, 2.0, 3.0];
        let lu = a.lu().unwrap();
        let x = lu.solve_transposed(&b).unwrap();
        let at = a.transpose();
        let xref = at.solve(&b).unwrap();
        for (xi, ri) in x.iter().zip(&xref) {
            assert!((xi - ri).abs() < 1e-12);
        }
    }

    #[test]
    fn qr_orthogonality_and_ls() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let qr = Qr::new(&a).unwrap();
        let qtq = qr.q.adjoint().matmul(&qr.q);
        let id: Mat<f64> = Mat::identity(2);
        assert!((&qtq - &id).norm_fro() < 1e-12);
        // Least squares fit of y = 1 + 2x through exact data.
        let b = [1.0, 3.0, 5.0];
        let x = qr.solve_ls(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let id: Mat<f64> = Mat::identity(5);
        assert!((id.cond1().unwrap() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn matmul_associativity_small() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let c = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!((&left - &right).norm_fro() < 1e-14);
    }

    #[test]
    fn ops_add_sub() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, -1.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 1.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, 3.0]);
    }
}
