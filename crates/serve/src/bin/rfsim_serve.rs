//! The `rfsim-serve` daemon: binds, prints the address, and serves
//! until a client sends `{"op":"shutdown"}` (or the process is
//! killed). See DESIGN.md §13 and the README "Serving" section.

use rfsim_serve::{Server, ServerConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: rfsim-serve [--addr HOST:PORT] [--workers N] \
                     [--queue N] [--cache-mb N] [--artifacts DIR] \
                     [--access-log PATH] [--flight N]";

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig { addr: "127.0.0.1:4668".to_string(), ..Default::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{flag} needs {what}\n{USAGE}"));
        match flag.as_str() {
            "--addr" => config.addr = value("HOST:PORT")?,
            "--workers" => {
                config.workers = value("N")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                config.queue_capacity = value("N")?.parse().map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache-mb" => {
                let mb: usize = value("N")?.parse().map_err(|e| format!("--cache-mb: {e}"))?;
                config.cache_budget_bytes = mb << 20;
            }
            "--artifacts" => config.artifact_dir = Some(value("DIR")?.into()),
            "--access-log" => config.access_log = Some(value("PATH")?.into()),
            "--flight" => {
                config.flight_capacity =
                    value("N")?.parse().map_err(|e| format!("--flight: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &config.artifact_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("rfsim-serve: creating {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let server = match Server::spawn(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rfsim-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("rfsim-serve listening on {}", server.addr());
    server.run_until_shutdown();
    println!("rfsim-serve: drained and stopped");
    ExitCode::SUCCESS
}
