//! Warm-cache integration battery (ISSUE 7 satellite): an in-process
//! server, the same jobs submitted repeatedly, and the returned
//! per-job telemetry counters as the proof of reuse — `fft.plan_hits`
//! and `hb.sweep.warm_starts` for harmonic balance; `surrogate.hits`
//! (and a zero `em.true_solves` delta), `krylov.warm_starts`, and the
//! `serve.cache.em.*` counters for extraction — plus numerical
//! agreement between warm and cold answers to 1e-10.
//!
//! Every server here runs `workers: 1` so jobs execute one at a time
//! and the counter deltas in each response are exactly that job's.

use rfsim_serve::{Client, Server, ServerConfig};
use rfsim_telemetry::Json;

fn one_worker_server() -> Server {
    Server::spawn(ServerConfig { workers: 1, ..Default::default() }).expect("spawn server")
}

fn call(client: &mut Client, req: &str) -> Json {
    let reply = client.call(&Json::parse(req).expect("test request JSON")).expect("call");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "request failed: {req} -> {reply:?}");
    reply
}

fn warm(reply: &Json) -> bool {
    reply.get("warm") == Some(&Json::Bool(true))
}

fn counter(reply: &Json, name: &str) -> u64 {
    reply
        .get("telemetry")
        .and_then(|t| t.get("sweep"))
        .and_then(Json::as_arr)
        .and_then(|s| s.first())
        .and_then(|p| p.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64
}

fn result_num(reply: &Json, name: &str) -> f64 {
    reply
        .get("result")
        .and_then(|r| r.get(name))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing result.{name} in {reply:?}"))
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
}

const EXTRACT: &str = r#"{"op":"extract","id":1,"freq":2.4e9,"panels_per_seg":2,"nq":4}"#;
const EXTRACT_NEARBY: &str = r#"{"op":"extract","id":2,"freq":2.5e9,"panels_per_seg":2,"nq":4}"#;

#[test]
fn extraction_repeats_hit_recycle_space_and_agree_with_cold() {
    let server = one_worker_server();
    let mut client = Client::connect(server.addr()).unwrap();

    // Cold first job: builds the IES³ operators, no reuse possible.
    let cold = call(&mut client, EXTRACT);
    assert!(!warm(&cold), "first job cannot be warm");
    assert!(counter(&cold, "serve.cache.em.misses") > 0);

    // Same job again: the resident surrogate answers it from the
    // stored solve — zero true EM solves (DESIGN.md §16).
    let repeat = call(&mut client, EXTRACT);
    assert!(warm(&repeat), "identical repeat must find the resident extractor");
    assert!(counter(&repeat, "serve.cache.em.hits") > 0);
    assert!(
        counter(&repeat, "surrogate.hits") > 0,
        "repeat extraction must be served by the surrogate: {repeat:?}"
    );
    assert_eq!(
        counter(&repeat, "em.true_solves"),
        0,
        "surrogate-served repeat must not touch the EM solver: {repeat:?}"
    );

    // Nearby frequency: one stored sample cannot be a trusted model, so
    // the surrogate declines and a true solve runs — warm-started and
    // Krylov-recycled off the previous frequency's solution.
    let nearby = call(&mut client, EXTRACT_NEARBY);
    assert!(warm(&nearby), "nearby frequency must reuse the extractor");
    assert!(counter(&nearby, "surrogate.rejected") > 0);
    assert!(counter(&nearby, "em.true_solves") > 0);
    assert!(counter(&nearby, "krylov.warm_starts") > 0);

    // Numerical agreement with a cold server answering the same jobs.
    let cold_server = one_worker_server();
    let mut cold_client = Client::connect(cold_server.addr()).unwrap();
    let cold_repeat = call(&mut cold_client, EXTRACT);
    let cold_server2 = one_worker_server();
    let mut cold_client2 = Client::connect(cold_server2.addr()).unwrap();
    let cold_nearby = call(&mut cold_client2, EXTRACT_NEARBY);
    for name in ["c_ox", "l_series", "r_sub"] {
        assert!(
            rel_diff(result_num(&repeat, name), result_num(&cold_repeat, name)) <= 1e-10,
            "warm repeat {name} drifted from cold"
        );
        assert!(
            rel_diff(result_num(&nearby, name), result_num(&cold_nearby, name)) <= 1e-10,
            "warm nearby-frequency {name} drifted from cold"
        );
    }

    cold_server2.shutdown();
    cold_server.shutdown();
    server.shutdown();
}

const HB: &str = r#"{"op":"hb","id":3,"circuit":"rectifier","f0":1e6,"harmonics":7,"amp":1.0}"#;

#[test]
fn hb_repeats_hit_plan_cache_and_sweep_state() {
    let server = one_worker_server();
    let mut client = Client::connect(server.addr()).unwrap();

    let cold = call(&mut client, HB);
    assert!(!warm(&cold));

    let repeat = call(&mut client, HB);
    assert!(warm(&repeat), "identical repeat must find the resident sweep");
    assert!(
        counter(&repeat, "fft.plan_hits") > 0,
        "repeat HB must hit the process-wide FFT plan cache: {repeat:?}"
    );
    assert!(counter(&repeat, "hb.sweep.warm_starts") > 0);
    assert!(counter(&repeat, "serve.cache.hb.hits") > 0);

    // The warm start is already converged, so the repeat answer is
    // bitwise identical, which is stronger than the 1e-10 requirement.
    for name in ["vout_dc", "vout_h1", "vout_h2"] {
        assert_eq!(
            result_num(&cold, name),
            result_num(&repeat, name),
            "{name} must be bitwise equal"
        );
    }

    // A nearby amplitude reuses the sweep state (warm Newton start) and
    // agrees with a cold server to 1e-10.
    let nearby = r#"{"op":"hb","id":4,"circuit":"rectifier","f0":1e6,"harmonics":7,"amp":1.02}"#;
    let warm_nearby = call(&mut client, nearby);
    assert!(warm(&warm_nearby), "nearby amplitude must reuse the resident sweep");

    let cold_server = one_worker_server();
    let mut cold_client = Client::connect(cold_server.addr()).unwrap();
    let cold_nearby = call(&mut cold_client, nearby);
    for name in ["vout_dc", "vout_h1", "vout_h2"] {
        assert!(
            rel_diff(result_num(&warm_nearby, name), result_num(&cold_nearby, name)) <= 1e-10,
            "warm nearby-amplitude {name} drifted from cold"
        );
    }

    cold_server.shutdown();
    server.shutdown();
}

#[test]
fn stats_reports_resident_state_and_fft_plans() {
    let server = one_worker_server();
    let mut client = Client::connect(server.addr()).unwrap();
    call(&mut client, HB);
    call(&mut client, HB);
    call(&mut client, EXTRACT);
    let stats = call(&mut client, r#"{"op":"stats"}"#);
    let get = |path: &[&str]| {
        let mut v = stats.get("result").unwrap();
        for p in path {
            v = v.get(p).unwrap_or(&Json::Null);
        }
        v.as_f64().unwrap_or(0.0)
    };
    assert!(get(&["cache", "hb", "hits"]) >= 1.0);
    assert!(get(&["cache", "hb", "entries"]) >= 1.0);
    assert!(get(&["cache", "hb", "resident_bytes"]) > 0.0);
    assert!(get(&["fft", "plans"]) >= 1.0, "FFT plan cache must hold plans: {stats:?}");
    assert!(
        get(&["cache", "surrogate", "entries"]) >= 1.0,
        "extraction must leave a fitted surrogate resident: {stats:?}"
    );
    assert!(get(&["cache", "surrogate", "resident_bytes"]) > 0.0);
    assert_eq!(get(&["queue", "workers"]), 1.0);
    server.shutdown();
}
