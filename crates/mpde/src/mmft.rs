//! Multivariate Mixed Frequency–Time (MMFT): a short Fourier series along
//! the nearly-linear slow axis combined with time-domain collocation along
//! the strongly nonlinear fast axis.
//!
//! "In some circuits, the slow-scale signal path is often almost linear,
//! while the fast-scale action is highly nonlinear. The linearity of the
//! signal path can be exploited by expressing the slow scale components in
//! a short Fourier series" — so a switching mixer needs only `2K+1` slow
//! samples for `K` RF harmonics (the paper's Fig. 4 run used `K = 3`),
//! while the square-wave LO axis keeps a robust backward-difference
//! discretization.
//!
//! The method's natural output is the set of **time-varying harmonics**
//! `X_k(t₂)` — periodic in the fast time — from which any mix product
//! `k·f₁ + m·f₂` is read off directly ([`MmftSolution::mix_amplitude`]).

use crate::bivariate::BivariateWaveform;
use crate::grid::{spectral_diff_matrix, GridProblem, GridStats, SlowOp};
use crate::Result;
use rfsim_circuit::dae::Dae;
use rfsim_circuit::dc::DcOptions;
use rfsim_numerics::Complex;

/// Options for [`solve_mmft`].
#[derive(Debug, Clone)]
pub struct MmftOptions {
    /// Slow-axis harmonics `K` (`2K+1` collocation samples).
    pub slow_harmonics: usize,
    /// Fast-axis time steps per period.
    pub n2: usize,
    /// Newton residual tolerance.
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_newton: usize,
    /// DC options for the initial guess.
    pub dc: DcOptions,
}

impl Default for MmftOptions {
    fn default() -> Self {
        MmftOptions {
            slow_harmonics: 3,
            n2: 50,
            tol: 1e-8,
            max_newton: 40,
            dc: DcOptions::default(),
        }
    }
}

/// A converged MMFT solution.
#[derive(Debug, Clone)]
pub struct MmftSolution {
    /// The bivariate waveform on the collocation grid.
    pub wave: BivariateWaveform,
    /// Solver statistics.
    pub stats: GridStats,
    /// Slow fundamental `f₁` (Hz).
    pub f1: f64,
    /// Fast fundamental `f₂` (Hz).
    pub f2: f64,
}

impl MmftSolution {
    /// The time-varying slow-harmonic waveform `X_k(t₂)` of unknown `i`:
    /// one complex sample per fast-axis grid point. `k = 1` is the
    /// waveform plotted in the paper's Fig. 4(a), `k = 3` Fig. 4(b).
    pub fn harmonic_waveform(&self, i: usize, k: i32) -> Vec<Complex> {
        let n1 = self.wave.n1;
        let n2 = self.wave.n2;
        (0..n2)
            .map(|j| {
                let mut acc = Complex::ZERO;
                for s in 0..n1 {
                    let phase = -2.0 * std::f64::consts::PI * k as f64 * s as f64 / n1 as f64;
                    acc += Complex::from_polar(1.0, phase).scale(self.wave.at(s, j, i));
                }
                acc.scale(1.0 / n1 as f64)
            })
            .collect()
    }

    /// Peak amplitude of the real mix product at `k·f₁ + m·f₂` for unknown
    /// `i`. The paper reads "the main mix component … is found by taking
    /// the fundamental component of the waveform in Figure 4(a)": this is
    /// exactly the `m`-th fast-axis Fourier coefficient of `X_k(t₂)`.
    pub fn mix_amplitude(&self, i: usize, k: i32, m: i32) -> f64 {
        let mut xk = self.harmonic_waveform(i, k);
        let n2 = xk.len();
        let mut scratch = rfsim_numerics::fft::FftScratch::new();
        rfsim_numerics::fft::plan(n2).forward(&mut xk, &mut scratch);
        let bin = if m >= 0 { m as usize } else { (n2 as i32 + m) as usize };
        let c = xk[bin].scale(1.0 / n2 as f64);
        if k == 0 && m == 0 {
            c.abs()
        } else {
            2.0 * c.abs()
        }
    }

    /// The frequency (Hz) of mix `(k, m)`.
    pub fn mix_freq(&self, k: i32, m: i32) -> f64 {
        k as f64 * self.f1 + m as f64 * self.f2
    }

    /// Evaluates the bivariate waveform using MMFT's native representation:
    /// **trigonometric** interpolation along the slow axis (the solution
    /// *is* a short Fourier series there — a handful of collocation
    /// samples represent the slow sinusoids exactly) and periodic linear
    /// interpolation along the fast time-stepping axis.
    pub fn eval(&self, t1: f64, t2: f64, i: usize) -> f64 {
        let n1 = self.wave.n1;
        let n2 = self.wave.n2;
        let h = n1 / 2; // n1 = 2K+1
                        // Fast-axis interpolation weights.
        let pos = (t2 * self.f2).rem_euclid(1.0) * n2 as f64;
        let j0 = (pos.floor() as usize) % n2;
        let j1 = (j0 + 1) % n2;
        let w = pos - pos.floor();
        // Σ_k X_k(t2)·e^{j2πk·f1·t1}, exploiting conjugate symmetry.
        let mut acc = 0.0;
        for k in 0..=h as i32 {
            // X_k at the two bracketing fast samples.
            let xk_at = |j: usize| -> Complex {
                let mut c = Complex::ZERO;
                for s in 0..n1 {
                    let phase = -2.0 * std::f64::consts::PI * k as f64 * s as f64 / n1 as f64;
                    c += Complex::from_polar(1.0, phase).scale(self.wave.at(s, j, i));
                }
                c.scale(1.0 / n1 as f64)
            };
            let xk = xk_at(j0).scale(1.0 - w) + xk_at(j1).scale(w);
            let e = Complex::from_polar(1.0, 2.0 * std::f64::consts::PI * k as f64 * self.f1 * t1);
            let term = xk * e;
            acc += if k == 0 { term.re } else { 2.0 * term.re };
        }
        acc
    }
}

/// Solves the MPDE with a spectral slow axis and a backward-difference
/// fast axis.
///
/// # Errors
/// [`crate::Error::NoConvergence`] if the Newton iteration stalls.
pub fn solve_mmft(dae: &dyn Dae, f1: f64, f2: f64, opts: &MmftOptions) -> Result<MmftSolution> {
    let _span = rfsim_telemetry::span("mpde.mmft");
    let n1 = 2 * opts.slow_harmonics + 1;
    let d = spectral_diff_matrix(n1, 1.0 / f1);
    let problem = GridProblem {
        dae,
        t1_period: 1.0 / f1,
        t2_period: 1.0 / f2,
        n1,
        n2: opts.n2,
        slow: SlowOp::Spectral(d),
    };
    let (wave, stats) = problem.solve(opts.tol, opts.max_newton, &opts.dc)?;
    Ok(MmftSolution { wave, stats, f1, f2 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::prelude::*;
    use rfsim_circuit::Circuit;

    /// Linear two-tone RC: MMFT with K=1 must reproduce the AC answer for
    /// both tones.
    #[test]
    fn linear_two_tone_matches_ac() {
        let (f1, f2) = (1e4, 1e7);
        let (r, c) = (1e3, 2e-12);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::multi_tone(
            "V1",
            a,
            Circuit::GROUND,
            0.0,
            vec![(Tone::new(1.0, f1), TimeScale::Slow), (Tone::new(0.5, f2), TimeScale::Fast)],
        ));
        ckt.add(Resistor::new("R1", a, out, r));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, c));
        let dae = ckt.into_dae().unwrap();
        let opts = MmftOptions { slow_harmonics: 1, n2: 64, ..Default::default() };
        let sol = solve_mmft(&dae, f1, f2, &opts).unwrap();
        let oi = dae.node_index(out).unwrap();
        let gain = |f: f64| 1.0 / (1.0 + (2.0 * std::f64::consts::PI * f * r * c).powi(2)).sqrt();
        let a_slow = sol.mix_amplitude(oi, 1, 0);
        let a_fast = sol.mix_amplitude(oi, 0, 1);
        assert!((a_slow - gain(f1)).abs() < 1e-3, "slow {a_slow} vs {}", gain(f1));
        // Fast axis is first-order BE: allow a few percent.
        assert!((a_fast - 0.5 * gain(f2)).abs() < 0.03, "fast {a_fast} vs {}", 0.5 * gain(f2));
        // No intermodulation in a linear circuit.
        assert!(sol.mix_amplitude(oi, 1, 1) < 1e-6);
    }

    /// The paper's Fig. 4 setup, scaled: double-balanced switching mixer
    /// with a mild RF nonlinearity. The desired mix at f₂+f₁ dominates and
    /// the third-harmonic mix (3f₁+f₂) sits tens of dB down.
    #[test]
    fn switching_mixer_mix_components() {
        let (f1, f2) = (1e5, 9e8); // 100 kHz RF, 900 MHz LO (paper values)
        let mut ckt = Circuit::new();
        let rf = ckt.node("rf");
        let lo = ckt.node("lo");
        let out = ckt.node("out");
        ckt.add(VSource::sine("VRF", rf, Circuit::GROUND, 0.0, 0.1, f1));
        ckt.add(VSource::square_lo("VLO", lo, Circuit::GROUND, 1.0, f2));
        // Mildly nonlinear RF path: cubic via a diode pair would be heavy;
        // compose multiplier (RF×LO) plus a small RF³ contribution through
        // cascaded multipliers.
        let rfsq = ckt.node("rfsq");
        ckt.add(Multiplier::new(
            "SQ",
            rfsq,
            Circuit::GROUND,
            rf,
            Circuit::GROUND,
            rf,
            Circuit::GROUND,
            1e-3,
        ));
        ckt.add(Resistor::new("RSQ", rfsq, Circuit::GROUND, 1e3).noiseless());
        let rf3 = ckt.node("rf3");
        ckt.add(Multiplier::new(
            "CUBE",
            rf3,
            Circuit::GROUND,
            rfsq,
            Circuit::GROUND,
            rf,
            Circuit::GROUND,
            1e-3,
        ));
        ckt.add(Resistor::new("RC3", rf3, Circuit::GROUND, 1e3).noiseless());
        // Mixer drive: current-sum RF and ε·RF³ into a load resistor, so
        // v(drive) = v_rf + 7.2·v_rf³ (a mildly nonlinear RF path giving
        // ≈35 dB HD3 at 100 mV drive, the paper's Fig. 4 numbers).
        let drive = ckt.node("drive");
        ckt.add(Resistor::new("RDRV", drive, Circuit::GROUND, 1e3).noiseless());
        ckt.add(Vccs::new("V2I", drive, Circuit::GROUND, rf, Circuit::GROUND, -1e-3));
        ckt.add(Vccs::new("ADD3", drive, Circuit::GROUND, rf3, Circuit::GROUND, -7.2e-3));
        let mixed = ckt.node("mixed");
        ckt.add(Multiplier::new(
            "MIX",
            mixed,
            Circuit::GROUND,
            drive,
            Circuit::GROUND,
            lo,
            Circuit::GROUND,
            1.2e-3,
        ));
        ckt.add(Resistor::new("RMIX", mixed, Circuit::GROUND, 1e3).noiseless());
        // Output RC filter.
        ckt.add(Resistor::new("RF1", mixed, out, 100.0).noiseless());
        ckt.add(Capacitor::new("CF1", out, Circuit::GROUND, 1e-13));
        let dae = ckt.into_dae().unwrap();
        let opts = MmftOptions { slow_harmonics: 3, n2: 50, ..Default::default() };
        let sol = solve_mmft(&dae, f1, f2, &opts).unwrap();
        let oi = dae.node_index(out).unwrap();
        let main = sol.mix_amplitude(oi, 1, 1); // f2 + f1
        let hd3 = sol.mix_amplitude(oi, 3, 1); // f2 + 3f1
        assert!(main > 0.01, "main mix {main}");
        let ratio_db = 20.0 * (main / hd3.max(1e-30)).log10();
        // Distortion well below the main component (paper: ~35 dB).
        assert!(ratio_db > 20.0 && ratio_db < 60.0, "ratio {ratio_db} dB");
        // Frequencies reported correctly.
        assert!((sol.mix_freq(1, 1) - 900.1e6).abs() < 1.0);
        assert!((sol.mix_freq(3, 1) - 900.3e6).abs() < 1.0);
    }

    /// Time-varying harmonic extraction: a pure product signal has all its
    /// slow-harmonic-1 energy in the fast fundamental.
    #[test]
    fn harmonic_waveform_shape() {
        let (f1, f2) = (1e4, 1e6);
        let mut ckt = Circuit::new();
        let rf = ckt.node("rf");
        let lo = ckt.node("lo");
        let out = ckt.node("out");
        ckt.add(VSource::sine("VRF", rf, Circuit::GROUND, 0.0, 1.0, f1));
        ckt.add(VSource::sine_fast("VLO", lo, Circuit::GROUND, 0.0, 1.0, f2));
        ckt.add(Multiplier::new(
            "MIX",
            out,
            Circuit::GROUND,
            rf,
            Circuit::GROUND,
            lo,
            Circuit::GROUND,
            1e-3,
        ));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3).noiseless());
        let dae = ckt.into_dae().unwrap();
        let opts = MmftOptions { slow_harmonics: 2, n2: 64, ..Default::default() };
        let sol = solve_mmft(&dae, f1, f2, &opts).unwrap();
        let oi = dae.node_index(out).unwrap();
        let x1 = sol.harmonic_waveform(oi, 1);
        // X₁(t₂) for out = sin(ω₁t₁)·sin(ω₂t₂): the k=1 coefficient of
        // sin(ω₁t₁) is 1/(2j), so X₁(t₂) = sin(ω₂t₂)/(2j) — oscillates at
        // the fast rate with peak 0.5·(mixer gain·R)=0.5.
        let peak = x1.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        assert!((peak - 0.5).abs() < 0.05, "peak {peak}");
        // And k=2 empty (no second slow harmonic in a bilinear mixer).
        let x2 = sol.harmonic_waveform(oi, 2);
        let peak2 = x2.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        assert!(peak2 < 1e-6, "peak2 {peak2}");
    }
}
