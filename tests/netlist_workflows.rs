//! Text-netlist-driven workflows: the SPICE-like parser front end feeding
//! each analysis engine, as a downstream user would.

#![allow(clippy::needless_range_loop)]

use rfsim::circuit::ac::{ac_sweep, log_sweep};
use rfsim::circuit::dc::{dc_operating_point, DcOptions};
use rfsim::circuit::noise::noise_sweep;
use rfsim::circuit::parser::parse_netlist;
use rfsim::circuit::transient::{transient, TranOptions};
use rfsim::steady::{solve_hb, HbOptions, SpectralGrid};

#[test]
fn parsed_amplifier_dc_ac_noise() {
    let ckt = parse_netlist(
        "* one-transistor amplifier\n\
         VCC vcc 0 DC 5\n\
         VIN in 0 DC 0.75\n\
         RC vcc out 2k\n\
         RB in b 5k\n\
         Q1 out b 0 IS=1e-16 BF=120\n\
         CL out 0 1p\n\
         .end",
    )
    .expect("parse");
    let out = ckt.find_node("out").expect("out node");
    let inp = ckt.find_node("in").expect("in node");
    let _ = inp;
    let dae = ckt.into_dae().expect("netlist");
    let op = dc_operating_point(&dae, &DcOptions::default()).expect("dc");
    let vout = op.voltage(out);
    // Biased into the active region.
    assert!(vout > 0.5 && vout < 4.8, "vout = {vout}");
    // AC gain from the input source.
    let mut b_ac = vec![0.0; rfsim::circuit::dae::Dae::dim(&dae)];
    b_ac[dae.branch_index("VIN", 0).expect("vin")] = 1.0;
    let freqs = log_sweep(1e3, 1e9, 7);
    let ac = ac_sweep(&dae, &op.x, &b_ac, &freqs).expect("ac");
    let g = ac.gain_db(out);
    // Midband gain > 20 dB, rolling off at high frequency.
    assert!(g[0] > 20.0, "midband gain {} dB", g[0]);
    assert!(g[6] < g[0] - 10.0, "no rolloff: {g:?}");
    // Noise: collector shot + resistors present.
    let noise = noise_sweep(&dae, &op.x, out, &[1e6]).expect("noise");
    assert!(noise.total[0] > 0.0);
    assert!(noise.labels.iter().any(|l| l.contains("shot")));
    assert!(noise.labels.iter().any(|l| l.contains("thermal")));
}

#[test]
fn parsed_rectifier_transient_vs_hb() {
    let ckt = parse_netlist(
        "V1 in 0 SIN(0 1 1meg)\n\
         R1 in out 1k\n\
         D1 out 0 IS=1e-14\n\
         C1 out 0 0.2n",
    )
    .expect("parse");
    let out = ckt.find_node("out").expect("out");
    let dae = ckt.into_dae().expect("netlist");
    let oi = dae.node_index(out).expect("index");
    let f0 = 1e6;
    let hb = solve_hb(
        &dae,
        &SpectralGrid::single_tone(f0, 10).expect("grid"),
        &HbOptions { source_steps: 3, ..Default::default() },
    )
    .expect("hb");
    let tr = transient(
        &dae,
        0.0,
        15.0 / f0,
        &TranOptions { dt: 1.0 / (f0 * 300.0), ..Default::default() },
    )
    .expect("tran");
    let samples = tr.resample(oi, 14.0 / f0, 15.0 / f0, 128);
    let spec = rfsim::numerics::fft::amplitude_spectrum(&samples);
    for k in 0..3usize {
        assert!(
            (hb.amplitude(oi, &[k as i32]) - spec[k]).abs() < 2e-2,
            "harmonic {k}: hb {} vs tran {}",
            hb.amplitude(oi, &[k as i32]),
            spec[k]
        );
    }
}

#[test]
fn parsed_lc_filter_resonance() {
    let ckt = parse_netlist(
        "V1 in 0 DC 0\n\
         RS in m 50\n\
         L1 m x 100n\n\
         C1 x 0 10p\n\
         RL x 0 10k",
    )
    .expect("parse");
    let x = ckt.find_node("x").expect("x");
    let dae = ckt.into_dae().expect("netlist");
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (100e-9f64 * 10e-12).sqrt());
    let mut b_ac = vec![0.0; rfsim::circuit::dae::Dae::dim(&dae)];
    b_ac[dae.branch_index("V1", 0).expect("v1")] = 1.0;
    let res = ac_sweep(
        &dae,
        &vec![0.0; rfsim::circuit::dae::Dae::dim(&dae)],
        &b_ac,
        &[f0 / 5.0, f0, f0 * 5.0],
    )
    .expect("ac");
    let mags: Vec<f64> = (0..3).map(|k| res.voltage(k, x).abs()).collect();
    assert!(mags[1] > mags[0] && mags[1] > mags[2], "no resonance peak: {mags:?}");
    // Q of the series-R-loaded tank boosts the peak above the drive.
    assert!(mags[1] > 1.5, "peak {mags:?}");
}
