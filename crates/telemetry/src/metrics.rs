//! Solver-level counters, gauges, and histograms.
//!
//! Names are dot-separated and lowercase by convention
//! (`krylov.gmres.iterations`, `ies3.compression_ratio`). All update
//! functions are single-branch no-ops when telemetry is off.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Log₂-bucketed histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// `buckets[i]` counts values `v` with `2^(i-1) <= v < 2^i`
    /// (bucket 0 holds `v < 1`; the last bucket is open-ended).
    pub buckets: [u64; 32],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 32],
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx =
            if v < 1.0 { 0 } else { (v.log2().floor() as usize + 1).min(self.buckets.len() - 1) };
        self.buckets[idx] += 1;
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, f64>> = Mutex::new(BTreeMap::new());
static HISTOGRAMS: Mutex<BTreeMap<String, Histogram>> = Mutex::new(BTreeMap::new());

fn lock<T>(m: &'static Mutex<T>) -> std::sync::MutexGuard<'static, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Adds `delta` to the named monotonic counter.
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() || delta == 0 {
        return;
    }
    *lock(&COUNTERS).entry(name.to_string()).or_insert(0) += delta;
}

/// Sets the named gauge to its latest observed value.
pub fn gauge_set(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    lock(&GAUGES).insert(name.to_string(), value);
}

/// Records one observation into the named histogram.
pub fn histogram_record(name: &'static str, value: f64) {
    if !crate::enabled() {
        return;
    }
    lock(&HISTOGRAMS).entry(name.to_string()).or_insert_with(Histogram::new).record(value);
}

pub(crate) fn counters() -> BTreeMap<String, u64> {
    lock(&COUNTERS).clone()
}

pub(crate) fn gauges() -> BTreeMap<String, f64> {
    lock(&GAUGES).clone()
}

pub(crate) fn histograms() -> BTreeMap<String, Histogram> {
    lock(&HISTOGRAMS).clone()
}

pub(crate) fn reset() {
    lock(&COUNTERS).clear();
    lock(&GAUGES).clear();
    lock(&HISTOGRAMS).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [0.5, 1.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 21.7).abs() < 1e-12);
        assert_eq!(h.buckets[0], 1); // 0.5
        assert_eq!(h.buckets[1], 1); // 1.0 ∈ [1, 2)
        assert_eq!(h.buckets[2], 1); // 3.0 ∈ [2, 4)
        assert_eq!(h.buckets[3], 1); // 4.0 ∈ [4, 8)
        assert_eq!(h.buckets[7], 1); // 100.0 ∈ [64, 128)
    }
}
