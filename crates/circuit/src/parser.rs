//! A SPICE-like netlist text parser.
//!
//! Supported card subset (case-insensitive, `*`/`;` comments, `.end`):
//!
//! ```text
//! R<name> n+ n- <value>
//! C<name> n+ n- <value>
//! L<name> n+ n- <value>
//! V<name> n+ n- DC <v> | SIN(<off> <amp> <freq>) | SINFAST(<off> <amp> <freq>)
//!                      | SQUARE(<amp> <freq>) | PULSE(<lo> <hi> <td> <tr> <tf> <pw> <per>)
//! I<name> n+ n- DC <v> | SIN(<off> <amp> <freq>)
//! D<name> a c [IS=<v>] [N=<v>]
//! Q<name> c b e [IS=<v>] [BF=<v>] [PNP]
//! M<name> d g s [VTO=<v>] [KP=<v>] [LAMBDA=<v>] [PMOS]
//! G<name> out+ out- in+ in- <gm>
//! E<name> out+ out- in+ in- <gain>
//! F<name> out+ out- sense+ sense- <gain>      (CCCS, internal 0 V sense)
//! H<name> out+ out- sense+ sense- <r_trans>   (CCVS, internal 0 V sense)
//! ```
//!
//! Values accept the usual engineering suffixes (`f p n u m k meg g t`).

use crate::devices::{
    Bjt, Capacitor, Cccs, Ccvs, Diode, ISource, Inductor, Mosfet, Resistor, VSource, Vccs, Vcvs,
};
use crate::netlist::Circuit;
use crate::waveform::{Stimulus, TimeScale, Tone};
use crate::{Error, Result};

/// Parses an engineering-notation value such as `1k`, `2.2u`, `3meg`.
///
/// # Errors
/// Returns a message naming the offending token.
pub fn parse_value(tok: &str) -> std::result::Result<f64, String> {
    let t = tok.trim().to_ascii_lowercase();
    let (mult, stripped) = if let Some(s) = t.strip_suffix("meg") {
        (1e6, s)
    } else if let Some(s) = t.strip_suffix('f') {
        (1e-15, s)
    } else if let Some(s) = t.strip_suffix('p') {
        (1e-12, s)
    } else if let Some(s) = t.strip_suffix('n') {
        (1e-9, s)
    } else if let Some(s) = t.strip_suffix('u') {
        (1e-6, s)
    } else if let Some(s) = t.strip_suffix('m') {
        (1e-3, s)
    } else if let Some(s) = t.strip_suffix('k') {
        (1e3, s)
    } else if let Some(s) = t.strip_suffix('g') {
        (1e9, s)
    } else if let Some(s) = t.strip_suffix('t') {
        (1e12, s)
    } else {
        (1.0, t.as_str())
    };
    stripped.parse::<f64>().map(|v| v * mult).map_err(|_| format!("cannot parse value `{tok}`"))
}

/// Splits `KEY=VAL` parameter tokens into a lookup, ignoring bare flags
/// which are returned separately.
fn split_params(tokens: &[&str]) -> (Vec<(String, f64)>, Vec<String>) {
    let mut params = Vec::new();
    let mut flags = Vec::new();
    for t in tokens {
        if let Some((k, v)) = t.split_once('=') {
            if let Ok(val) = parse_value(v) {
                params.push((k.to_ascii_lowercase(), val));
            }
        } else {
            flags.push(t.to_ascii_lowercase());
        }
    }
    (params, flags)
}

fn get_param(params: &[(String, f64)], key: &str, default: f64) -> f64 {
    params.iter().find(|(k, _)| k == key).map_or(default, |(_, v)| *v)
}

/// Parses a source specification (the tokens after the two node names).
fn parse_stimulus(tokens: &[&str], line: usize) -> Result<Stimulus> {
    let joined = tokens.join(" ");
    let upper = joined.to_ascii_uppercase();
    let args_of = |s: &str| -> Result<Vec<f64>> {
        let open = s.find('(').ok_or(Error::Parse { line, message: "missing (".into() })?;
        let close = s.rfind(')').ok_or(Error::Parse { line, message: "missing )".into() })?;
        s[open + 1..close]
            .split_whitespace()
            .map(|t| parse_value(t).map_err(|message| Error::Parse { line, message }))
            .collect()
    };
    if upper.starts_with("DC") {
        let v = tokens.get(1).ok_or(Error::Parse { line, message: "DC needs a value".into() })?;
        let v = parse_value(v).map_err(|message| Error::Parse { line, message })?;
        Ok(Stimulus::Dc(v))
    } else if upper.starts_with("SINFAST") {
        let a = args_of(&joined)?;
        if a.len() != 3 {
            return Err(Error::Parse { line, message: "SINFAST(off amp freq)".into() });
        }
        Ok(Stimulus::sine_fast(a[0], a[1], a[2]))
    } else if upper.starts_with("SIN") {
        let a = args_of(&joined)?;
        if a.len() != 3 {
            return Err(Error::Parse { line, message: "SIN(off amp freq)".into() });
        }
        Ok(Stimulus::sine(a[0], a[1], a[2]))
    } else if upper.starts_with("SQUARE") {
        let a = args_of(&joined)?;
        if a.len() != 2 {
            return Err(Error::Parse { line, message: "SQUARE(amp freq)".into() });
        }
        Ok(Stimulus::square_fast(a[0], a[1]))
    } else if upper.starts_with("PULSE") {
        let a = args_of(&joined)?;
        if a.len() != 7 {
            return Err(Error::Parse { line, message: "PULSE(lo hi td tr tf pw per)".into() });
        }
        Ok(Stimulus::Pulse {
            low: a[0],
            high: a[1],
            delay: a[2],
            rise: a[3],
            fall: a[4],
            width: a[5],
            period: a[6],
            scale: TimeScale::Slow,
        })
    } else {
        // Bare value → DC.
        let v = parse_value(tokens[0]).map_err(|message| Error::Parse { line, message })?;
        Ok(Stimulus::Dc(v))
    }
}

/// Parses a netlist text into a [`Circuit`].
///
/// # Errors
/// Returns [`Error::Parse`] with a line number on malformed input.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), rfsim_circuit::Error> {
/// let ckt = rfsim_circuit::parser::parse_netlist(
///     "* divider\n\
///      V1 in 0 DC 10\n\
///      R1 in out 3k\n\
///      R2 out 0 1k\n\
///      .end",
/// )?;
/// assert_eq!(ckt.device_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse_netlist(text: &str) -> Result<Circuit> {
    let mut ckt = Circuit::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') || trimmed.starts_with(';') {
            continue;
        }
        if trimmed.to_ascii_lowercase().starts_with(".end") {
            break;
        }
        if trimmed.starts_with('.') {
            // Other dot-cards ignored (analyses are driven from code).
            continue;
        }
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        if tokens.len() < 3 {
            return Err(Error::Parse { line, message: "too few tokens".into() });
        }
        let name = tokens[0];
        let kind = name
            .chars()
            .next()
            .map(|c| c.to_ascii_uppercase())
            .ok_or(Error::Parse { line, message: "empty device name".into() })?;
        match kind {
            'R' | 'C' | 'L' => {
                if tokens.len() < 4 {
                    return Err(Error::Parse { line, message: "need: name n+ n- value".into() });
                }
                let a = ckt.node(tokens[1]);
                let b = ckt.node(tokens[2]);
                let v = parse_value(tokens[3]).map_err(|message| Error::Parse { line, message })?;
                match kind {
                    'R' => ckt.add(Resistor::new(name, a, b, v)),
                    'C' => ckt.add(Capacitor::new(name, a, b, v)),
                    _ => ckt.add(Inductor::new(name, a, b, v)),
                }
            }
            'V' | 'I' => {
                let a = ckt.node(tokens[1]);
                let b = ckt.node(tokens[2]);
                let stim = parse_stimulus(&tokens[3..], line)?;
                if kind == 'V' {
                    ckt.add(VSource::new(name, a, b, stim));
                } else {
                    ckt.add(ISource::new(name, a, b, stim));
                }
            }
            'D' => {
                let a = ckt.node(tokens[1]);
                let c = ckt.node(tokens[2]);
                let (params, _) = split_params(&tokens[3..]);
                let is = get_param(&params, "is", 1e-14);
                let n = get_param(&params, "n", 1.0);
                ckt.add(Diode::new(name, a, c, is).with_ideality(n));
            }
            'Q' => {
                if tokens.len() < 4 {
                    return Err(Error::Parse { line, message: "need: name c b e".into() });
                }
                let c = ckt.node(tokens[1]);
                let b = ckt.node(tokens[2]);
                let e = ckt.node(tokens[3]);
                let (params, flags) = split_params(&tokens[4..]);
                let is = get_param(&params, "is", 1e-16);
                let bf = get_param(&params, "bf", 100.0);
                let q = if flags.iter().any(|f| f == "pnp") {
                    Bjt::pnp(name, c, b, e, is, bf)
                } else {
                    Bjt::npn(name, c, b, e, is, bf)
                };
                ckt.add(q);
            }
            'M' => {
                if tokens.len() < 4 {
                    return Err(Error::Parse { line, message: "need: name d g s".into() });
                }
                let d = ckt.node(tokens[1]);
                let g = ckt.node(tokens[2]);
                let s = ckt.node(tokens[3]);
                let (params, flags) = split_params(&tokens[4..]);
                let vto = get_param(&params, "vto", 0.7);
                let kp = get_param(&params, "kp", 1e-3);
                let lambda = get_param(&params, "lambda", 0.0);
                let m = if flags.iter().any(|f| f == "pmos") {
                    Mosfet::pmos(name, d, g, s, vto, kp)
                } else {
                    Mosfet::nmos(name, d, g, s, vto, kp)
                }
                .with_lambda(lambda);
                ckt.add(m);
            }
            'G' | 'E' | 'F' | 'H' => {
                if tokens.len() < 6 {
                    return Err(Error::Parse {
                        line,
                        message: "need: name out+ out- ctl+ ctl- value".into(),
                    });
                }
                let op = ckt.node(tokens[1]);
                let on = ckt.node(tokens[2]);
                let ip = ckt.node(tokens[3]);
                let inn = ckt.node(tokens[4]);
                let v = parse_value(tokens[5]).map_err(|message| Error::Parse { line, message })?;
                match kind {
                    'G' => ckt.add(Vccs::new(name, op, on, ip, inn, v)),
                    'E' => ckt.add(Vcvs::new(name, op, on, ip, inn, v)),
                    'F' => ckt.add(Cccs::new(name, op, on, ip, inn, v)),
                    _ => ckt.add(Ccvs::new(name, op, on, ip, inn, v)),
                }
            }
            other => {
                return Err(Error::Parse {
                    line,
                    message: format!("unknown device type `{other}`"),
                });
            }
        }
    }
    Ok(ckt)
}

/// Parses tones like `1.0@1k` used by example CLIs: amplitude at frequency.
///
/// # Errors
/// Returns a message for malformed specs.
pub fn parse_tone(spec: &str) -> std::result::Result<Tone, String> {
    let (a, f) = spec.split_once('@').ok_or_else(|| format!("tone `{spec}`: expected amp@freq"))?;
    Ok(Tone::new(parse_value(a)?, parse_value(f)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn engineering_values() {
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert!((parse_value("2.5u").unwrap() - 2.5e-6).abs() < 1e-18);
        assert_eq!(parse_value("3meg").unwrap(), 3e6);
        assert_eq!(parse_value("100").unwrap(), 100.0);
        assert_eq!(parse_value("1.5p").unwrap(), 1.5e-12);
        assert!(parse_value("abc").is_err());
    }

    #[test]
    fn divider_parses_and_solves() {
        let ckt = parse_netlist(
            "* comment line\n\
             V1 in 0 DC 10\n\
             R1 in out 3k\n\
             R2 out 0 1k\n\
             .end\n\
             R3 ignored 0 1k",
        )
        .unwrap();
        let out = ckt.find_node("out").unwrap();
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        assert!((op.voltage(out) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn sin_source_and_devices() {
        let ckt = parse_netlist(
            "V1 a 0 SIN(0 1 1meg)\n\
             VLO b 0 SINFAST(0 1 1g)\n\
             D1 a d IS=1e-15\n\
             Q1 c b2 e IS=1e-16 BF=50\n\
             M1 dd gg ss VTO=0.5 KP=2m\n\
             G1 o 0 a 0 1m\n\
             E1 p 0 a 0 2\n\
             F1 q 0 a 0 3\n\
             H1 r 0 a 0 50\n\
             C1 d 0 1p\n\
             L1 e 0 1n",
        )
        .unwrap();
        assert_eq!(ckt.device_count(), 11);
    }

    #[test]
    fn current_controlled_sources_parse_and_solve() {
        let ckt = parse_netlist(
            "I1 0 s DC 1m\n\
             F1 0 o s 0 2\n\
             RL o 0 1k",
        )
        .unwrap();
        let o = ckt.find_node("o").unwrap();
        let dae = ckt.into_dae().unwrap();
        let op = dc_operating_point(&dae, &DcOptions::default()).unwrap();
        assert!((op.voltage(o) - 2.0).abs() < 1e-9, "v_o = {}", op.voltage(o));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_netlist("V1 a 0 DC 1\nXBAD a b c").unwrap_err();
        match err {
            Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn tone_spec() {
        let t = parse_tone("0.1@900meg").unwrap();
        assert_eq!(t.amplitude, 0.1);
        assert_eq!(t.freq, 900e6);
        assert!(parse_tone("nope").is_err());
    }
}
