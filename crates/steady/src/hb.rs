//! Harmonic balance: Newton iteration on the spectral collocation system
//!
//! ```text
//!     R(X) = D·q(X) + f(X) − B = 0
//! ```
//!
//! where `D` is the (multi-axis) spectral differentiation operator of a
//! [`SpectralGrid`]. Two linear-solver backends reproduce the paper's
//! contrast:
//!
//! - [`HbSolver::Direct`]: assemble the full HB Jacobian densely and LU it —
//!   the "traditional implementation" whose memory/time explodes with
//!   circuit size and tone count;
//! - [`HbSolver::Gmres`]: matrix-implicit Krylov solution with a
//!   per-harmonic block-diagonal preconditioner — the approach of
//!   refs [10, 31] that scales to full RF chips.

use crate::fourier::{GridWorkspace, SpectralGrid};
use crate::{Error, Result};
use rfsim_circuit::dae::Dae;
use rfsim_circuit::dc::{dc_operating_point, DcOptions};
use rfsim_numerics::dense::{LuSingle, Mat};
use rfsim_numerics::fft::{self, FftPlan, FftScratch};
use rfsim_numerics::krylov::{
    gmres_recycled, gmres_with, FnOperator, GmresWorkspace, IdentityPrecond, KrylovOptions,
    Preconditioner, RecycleSpace,
};
use rfsim_numerics::sparse::{Csr, Triplets};
use rfsim_numerics::{norm_inf, AlignedVec, Complex, ResidualTail};
use rfsim_parallel as parallel;
use rfsim_telemetry as telemetry;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, PoisonError};

/// Linear solver used for the Newton corrections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HbSolver {
    /// Dense assembly + LU (traditional; O((nN)²) memory, O((nN)³) time).
    Direct,
    /// Matrix-free GMRES; `precondition` enables the per-harmonic
    /// block-diagonal preconditioner.
    Gmres {
        /// Apply the averaged-Jacobian block preconditioner.
        precondition: bool,
    },
}

/// When the harmonic block preconditioner is re-factored during a
/// Newton iteration (Gmres backend with `precondition: true`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecondRefresh {
    /// Re-factor on every Newton iteration: `samples()` complex LU
    /// factorizations per step. Always tracks the current linearization.
    EveryIteration,
    /// Keep the factored blocks across Newton iterations and re-factor
    /// only when the `precond_degraded` signal fires: the inner GMRES
    /// iteration count grows past `growth ×` the count observed right
    /// after the last refresh (floored at 4 iterations, so noise on
    /// near-instant solves never triggers). A refresh also happens as a
    /// rescue when GMRES fails outright under a kept factor.
    Adaptive {
        /// Inner-iteration growth factor that triggers a re-factor.
        growth: f64,
    },
}

impl Default for PrecondRefresh {
    fn default() -> Self {
        PrecondRefresh::Adaptive { growth: 3.0 }
    }
}

/// Options for [`solve_hb`].
#[derive(Debug, Clone)]
pub struct HbOptions {
    /// Residual infinity-norm tolerance.
    pub tol: f64,
    /// Maximum Newton iterations (per continuation step).
    pub max_newton: usize,
    /// Linear solver backend.
    pub solver: HbSolver,
    /// Krylov options (GMRES backend).
    pub krylov: KrylovOptions,
    /// Preconditioner refresh policy (GMRES backend).
    pub precond_refresh: PrecondRefresh,
    /// Source-stepping continuation steps (1 = no continuation).
    pub source_steps: usize,
    /// Options for the initial DC operating point.
    pub dc: DcOptions,
}

impl Default for HbOptions {
    fn default() -> Self {
        HbOptions {
            tol: 1e-9,
            max_newton: 50,
            solver: HbSolver::Gmres { precondition: true },
            krylov: KrylovOptions { tol: 1e-10, max_iters: 4000, restart: 80 },
            precond_refresh: PrecondRefresh::default(),
            source_steps: 1,
            dc: DcOptions::default(),
        }
    }
}

/// Work/memory accounting for the HB run (feeds the paper's cost studies).
#[derive(Debug, Clone, Default)]
pub struct HbStats {
    /// Total Newton iterations.
    pub newton_iterations: usize,
    /// Total inner linear-solver iterations.
    pub linear_iterations: usize,
    /// Jacobian-vector products performed.
    pub matvecs: usize,
    /// HB unknowns `n·N`.
    pub unknowns: usize,
    /// Estimated peak bytes for the linear solver
    /// (dense Jacobian vs Krylov basis + preconditioner factors).
    pub solver_bytes: usize,
    /// Harmonic-block preconditioner factorizations performed (each one
    /// is `samples()` complex LU factorizations).
    pub precond_factorizations: usize,
}

/// A converged harmonic-balance solution.
#[derive(Debug, Clone)]
pub struct HbSolution {
    /// The analysis grid.
    pub grid: SpectralGrid,
    /// DAE dimension.
    pub n: usize,
    /// Sample-major solution (`x[s·n + i]`).
    pub x: Vec<f64>,
    /// Run statistics.
    pub stats: HbStats,
}

impl HbSolution {
    /// Time samples of unknown `i` over the collocation grid.
    pub fn waveform(&self, i: usize) -> Vec<f64> {
        (0..self.grid.samples()).map(|s| self.x[s * self.n + i]).collect()
    }

    /// Complex Fourier coefficient of unknown `i` at mix index `k`.
    pub fn coefficient(&self, i: usize, k: &[i32]) -> Complex {
        self.grid.coefficient(&self.x, self.n, i, k)
    }

    /// Peak amplitude of the sinusoid at mix `k` (DC returns `|c₀|`).
    pub fn amplitude(&self, i: usize, k: &[i32]) -> f64 {
        self.grid.amplitude(&self.x, self.n, i, k)
    }

    /// Amplitude in dB relative to a carrier amplitude.
    pub fn dbc(&self, i: usize, k: &[i32], carrier_amplitude: f64) -> f64 {
        rfsim_numerics::fft::dbc(self.amplitude(i, k), carrier_amplitude)
    }
}

/// Per-sample circuit linearization cached during a Newton iteration.
struct SampleLin {
    g: Csr<f64>,
    c: Csr<f64>,
}

/// Sparsity pattern plus stamp map shared by every sample whose raw
/// stamp sequence matches: `proto` holds the position-complete CSR
/// (explicit zeros retained) and `slots` routes each raw triplet to its
/// value slot, so restamping is a zero + scatter-add instead of a
/// per-row sort with fresh allocations.
struct PatternMap {
    proto: Csr<f64>,
    slots: Vec<usize>,
    /// Raw stamp count the map was built from — a mismatch (a device
    /// changing its stamp footprint) falls back to a rebuild.
    stamps: usize,
}

/// Reused buffers for [`assemble`]: the triplet builders and the cached
/// per-matrix stamp maps. Owned by the solve so the pattern survives
/// across Newton iterations and source-stepping levels.
#[derive(Default)]
struct StampCache {
    g: Option<PatternMap>,
    c: Option<PatternMap>,
}

fn stamp_csr(t: &Triplets, pm: &mut Option<PatternMap>) -> Csr<f64> {
    if pm.as_ref().is_none_or(|p| p.stamps != t.len()) {
        let (proto, slots) = t.to_pattern();
        *pm = Some(PatternMap { proto: proto.clone(), slots, stamps: t.len() });
        return proto;
    }
    let p = pm.as_ref().expect("checked above");
    let mut csr = p.proto.clone();
    t.scatter_into(&p.slots, csr.vals_mut());
    csr
}

/// Evaluates residual and per-sample linearizations at `x`.
fn assemble(
    dae: &dyn Dae,
    grid: &SpectralGrid,
    x: &[f64],
    b: &[f64],
    cache: &mut StampCache,
) -> (Vec<f64>, Vec<SampleLin>) {
    let _span = telemetry::span("hb.assemble");
    let n = dae.dim();
    let total = grid.samples();
    let mut fall = vec![0.0; total * n];
    let mut qall = vec![0.0; total * n];
    let mut lins = Vec::with_capacity(total);
    let mut f = vec![0.0; n];
    let mut q = vec![0.0; n];
    let mut gt = Triplets::new(n, n);
    let mut ct = Triplets::new(n, n);
    for s in 0..total {
        dae.eval(&x[s * n..(s + 1) * n], &mut f, &mut q, &mut gt, &mut ct);
        fall[s * n..(s + 1) * n].copy_from_slice(&f);
        qall[s * n..(s + 1) * n].copy_from_slice(&q);
        lins.push(SampleLin { g: stamp_csr(&gt, &mut cache.g), c: stamp_csr(&ct, &mut cache.c) });
    }
    // R = D·q + f − b.
    let mut r = fall;
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri -= bi;
    }
    grid.add_dt(&qall, &mut r, n);
    (r, lins)
}

/// Preallocated per-matvec buffers for the HB hot path: the `C·v`
/// samples and the spectral-derivative workspace. One instance lives for
/// the whole [`solve_hb`] run, so every Jacobian application after the
/// first performs zero heap allocation.
#[derive(Debug)]
struct HbWorkspace {
    /// 32-byte aligned so the SIMD axpy/matvec kernels see aligned rows.
    cv: AlignedVec<f64>,
    grid_ws: GridWorkspace,
}

impl HbWorkspace {
    fn new(grid: &SpectralGrid, n: usize) -> Self {
        let mut cv = AlignedVec::new();
        cv.resize(grid.samples() * n, 0.0);
        HbWorkspace { cv, grid_ws: grid.workspace() }
    }
}

/// Matrix-free HB Jacobian application: `y = D·(C·v) + G·v`.
fn apply_jacobian(
    grid: &SpectralGrid,
    lins: &[SampleLin],
    n: usize,
    v: &[f64],
    y: &mut [f64],
    ws: &mut HbWorkspace,
) {
    let _span = telemetry::span("hb.matvec");
    for (s, lin) in lins.iter().enumerate() {
        let vs = &v[s * n..(s + 1) * n];
        lin.c.matvec_into(vs, &mut ws.cv[s * n..(s + 1) * n]);
        lin.g.matvec_into(vs, &mut y[s * n..(s + 1) * n]);
    }
    grid.add_dt_with(&ws.cv, y, n, &mut ws.grid_ws);
}

/// Per-harmonic block-diagonal preconditioner: solves
/// `(Ḡ + jω_k·C̄)·ẑ_k = r̂_k` in the frequency domain using the
/// sample-averaged linearizations.
struct HarmonicBlockPrecond {
    grid: SpectralGrid,
    n: usize,
    /// Factored complex blocks, one per frequency bin (row-major over axes).
    blocks: Vec<rfsim_numerics::dense::Lu<Complex>>,
    /// Single-precision shadows of `blocks`, present (for every bin, or
    /// none) only under SIMD dispatch. The per-bin triangular solves are
    /// memory-traffic-bound once the factor set outgrows L2, so halving
    /// the stored bytes is worth more than wider arithmetic; the
    /// substitution still accumulates in f64 and the outer Newton/GMRES
    /// iterations converge on the true residual, so the narrowing never
    /// shows up in final accuracy. Empty under `RFSIM_SIMD=off`, keeping
    /// the scalar path bitwise-identical to the historical solver.
    blocks_f32: Vec<rfsim_numerics::dense::LuSingle>,
    /// Reusable apply buffers for the serial path. `Preconditioner::apply`
    /// takes `&self`, so interior mutability is required; a `Mutex` (not a
    /// `RefCell`) keeps the type `Sync` for the parallel path's scoped
    /// closures. The lock is uncontended: the serial path is chosen
    /// exactly when no worker threads are running.
    scratch: Mutex<PrecondScratch>,
}

/// Buffers for the allocation-free serial [`HarmonicBlockPrecond::apply`]
/// path: the frequency-domain field (bin-major, `samples()·n`), one bin's
/// solve output, the transform scratch, and the cached per-axis plans.
#[derive(Debug)]
struct PrecondScratch {
    spec: AlignedVec<Complex>,
    sol: AlignedVec<Complex>,
    fft: FftScratch,
    plans: Vec<Arc<FftPlan>>,
}

impl PrecondScratch {
    fn new(grid: &SpectralGrid) -> Self {
        PrecondScratch {
            spec: AlignedVec::new(),
            sol: AlignedVec::new(),
            fft: FftScratch::new(),
            plans: grid.axes().iter().map(|ax| fft::plan(ax.samples())).collect(),
        }
    }
}

/// Below this many HB unknowns the batched serial apply path wins even
/// with worker threads available: spawning a parallel region per GMRES
/// iteration costs more than the transforms themselves.
const PRECOND_PAR_MIN_UNKNOWNS: usize = 4096;

impl HarmonicBlockPrecond {
    fn new(grid: &SpectralGrid, lins: &[SampleLin], n: usize) -> Result<Self> {
        let total = grid.samples();
        // Average G and C over the samples (the DC Fourier component of the
        // time-varying linearization).
        let mut gbar: Mat<f64> = Mat::zeros(n, n);
        let mut cbar: Mat<f64> = Mat::zeros(n, n);
        for lin in lins {
            for (i, j, v) in lin.g.iter() {
                gbar[(i, j)] += v;
            }
            for (i, j, v) in lin.c.iter() {
                cbar[(i, j)] += v;
            }
        }
        gbar.scale_mut(1.0 / total as f64);
        cbar.scale_mut(1.0 / total as f64);
        // Each bin's complex block (Ḡ + jω_k·C̄) factors independently.
        let lus = parallel::par_map_indexed(total, |bin| {
            let omega = 2.0 * std::f64::consts::PI * bin_mix_freq(grid, bin);
            let m = Mat::from_fn(n, n, |i, j| Complex::new(gbar[(i, j)], omega * cbar[(i, j)]));
            m.lu()
        });
        let mut blocks = Vec::with_capacity(total);
        for lu in lus {
            blocks.push(lu.map_err(Error::Numerics)?);
        }
        // Narrow the factors for the SIMD apply path; all-or-nothing so a
        // single overflowing block falls the whole preconditioner back to
        // full precision rather than mixing per-bin accuracy.
        let mut blocks_f32 = Vec::new();
        if rfsim_numerics::kernels::simd_active() {
            blocks_f32.reserve(total);
            for lu in &blocks {
                match lu.to_single() {
                    Some(s) => blocks_f32.push(s),
                    None => {
                        blocks_f32.clear();
                        break;
                    }
                }
            }
        }
        telemetry::counter_add("hb.precond.factorizations", 1);
        Ok(HarmonicBlockPrecond {
            grid: grid.clone(),
            n,
            blocks,
            blocks_f32,
            scratch: Mutex::new(PrecondScratch::new(grid)),
        })
    }

    fn bytes(&self) -> usize {
        self.blocks.len() * self.n * self.n * 16
            + self.blocks_f32.iter().map(LuSingle::bytes).sum::<usize>()
    }

    /// Allocation-free apply: batched strided transforms over the scratch
    /// field, per-bin `solve_into`, inverse transforms. Under scalar
    /// dispatch this is bitwise identical to [`Self::apply_parallel`]
    /// (both execute the same planned per-line transform and f64 block
    /// solve for every unknown and bin); under SIMD dispatch the
    /// transforms run batched across the field and the bin solves hit the
    /// narrowed [`LuSingle`] factors, with `par_bins` fanning the solves
    /// out over the worker pool (index-ordered, so the result is the
    /// same for every thread count).
    fn apply_serial(
        &self,
        r: &[f64],
        z: &mut [f64],
        ws: &mut PrecondScratch,
        par_bins: bool,
    ) -> rfsim_numerics::Result<()> {
        let n = self.n;
        let total = self.grid.samples();
        let axes = self.grid.axes();
        ws.spec.clear();
        ws.spec.extend(r.iter().map(|&v| Complex::from_re(v)));
        let _span_fwd = telemetry::span("hb.precond.fft_fwd");
        match axes.len() {
            1 => ws.plans[0].forward_strided(&mut ws.spec, n, n, &mut ws.fft),
            2 => {
                // Row–column 2-D transform of every unknown at once: the
                // fast-axis rows live in per-i0 contiguous blocks, the
                // slow-axis columns stride across blocks.
                let (n0, n1) = (axes[0].samples(), axes[1].samples());
                for i0 in 0..n0 {
                    let block = &mut ws.spec[i0 * n1 * n..(i0 + 1) * n1 * n];
                    ws.plans[1].forward_strided(block, n, n, &mut ws.fft);
                }
                ws.plans[0].forward_strided(&mut ws.spec, n1 * n, n1 * n, &mut ws.fft);
            }
            _ => unreachable!(),
        }
        drop(_span_fwd);
        let _span_trsv = telemetry::span("hb.precond.trsv");
        if par_bins && !self.blocks_f32.is_empty() {
            let spec = &ws.spec;
            let sols = parallel::par_map_indexed(total, move |bin| {
                self.blocks_f32[bin].solve(&spec[bin * n..(bin + 1) * n])
            });
            for (bin, sol) in sols.into_iter().enumerate() {
                ws.spec[bin * n..(bin + 1) * n].copy_from_slice(&sol?);
            }
        } else {
            ws.sol.clear();
            ws.sol.resize(n, Complex::ZERO);
            for bin in 0..total {
                let rhs_range = bin * n..(bin + 1) * n;
                if let Some(lu32) = self.blocks_f32.get(bin) {
                    lu32.solve_into(&ws.spec[rhs_range.clone()], &mut ws.sol)?;
                } else {
                    self.blocks[bin].solve_into(&ws.spec[rhs_range.clone()], &mut ws.sol)?;
                }
                ws.spec[rhs_range].copy_from_slice(&ws.sol);
            }
        }
        drop(_span_trsv);
        let _span_inv = telemetry::span("hb.precond.fft_inv");
        match axes.len() {
            1 => ws.plans[0].inverse_strided(&mut ws.spec, n, n, &mut ws.fft),
            2 => {
                let (n0, n1) = (axes[0].samples(), axes[1].samples());
                for i0 in 0..n0 {
                    let block = &mut ws.spec[i0 * n1 * n..(i0 + 1) * n1 * n];
                    ws.plans[1].inverse_strided(block, n, n, &mut ws.fft);
                }
                ws.plans[0].inverse_strided(&mut ws.spec, n1 * n, n1 * n, &mut ws.fft);
            }
            _ => unreachable!(),
        }
        for (zi, c) in z.iter_mut().zip(ws.spec.iter()) {
            *zi = c.re;
        }
        Ok(())
    }

    /// Thread-parallel apply: per-unknown transforms and per-bin solves
    /// fan out over the worker pool, reassembled in index order.
    fn apply_parallel(&self, r: &[f64], z: &mut [f64]) -> rfsim_numerics::Result<()> {
        let n = self.n;
        let total = self.grid.samples();
        let axes = self.grid.axes();
        // Forward transform each unknown's field to the frequency domain.
        // One independent DFT per unknown; columns are scattered back into
        // the interleaved layout in index order, so the result is identical
        // for any thread count.
        let cols: Vec<Vec<Complex>> = match axes.len() {
            1 => parallel::par_map_indexed(n, |i| {
                let line: Vec<Complex> =
                    (0..total).map(|s| Complex::from_re(r[s * n + i])).collect();
                rfsim_numerics::fft::dft(&line)
            }),
            2 => {
                let (n0, n1) = (axes[0].samples(), axes[1].samples());
                parallel::par_map_indexed(n, move |i| {
                    let gridvals: Vec<Complex> =
                        (0..total).map(|s| Complex::from_re(r[s * n + i])).collect();
                    rfsim_numerics::fft::dft2(&gridvals, n0, n1)
                })
            }
            _ => unreachable!(),
        };
        let mut spec = vec![Complex::ZERO; total * n];
        for (i, col) in cols.iter().enumerate() {
            for (s, v) in col.iter().enumerate() {
                spec[s * n + i] = *v;
            }
        }
        // Batch-solve all frequency bins against their factored blocks.
        let sols = {
            let spec = &spec;
            parallel::par_map_indexed(total, move |bin| {
                let rhs: Vec<Complex> = (0..n).map(|i| spec[bin * n + i]).collect();
                self.blocks[bin].solve(&rhs)
            })
        };
        for (bin, sol) in sols.into_iter().enumerate() {
            let sol = sol?;
            for (i, v) in sol.into_iter().enumerate() {
                spec[bin * n + i] = v;
            }
        }
        // Inverse transform back to the sample domain.
        let spec = &spec;
        let back: Vec<Vec<Complex>> = match axes.len() {
            1 => parallel::par_map_indexed(n, move |i| {
                let line: Vec<Complex> = (0..total).map(|s| spec[s * n + i]).collect();
                rfsim_numerics::fft::idft(&line)
            }),
            2 => {
                let (n0, n1) = (axes[0].samples(), axes[1].samples());
                parallel::par_map_indexed(n, move |i| {
                    let gridvals: Vec<Complex> = (0..total).map(|s| spec[s * n + i]).collect();
                    rfsim_numerics::fft::idft2(&gridvals, n0, n1)
                })
            }
            _ => unreachable!(),
        };
        for (i, col) in back.iter().enumerate() {
            for (s, v) in col.iter().enumerate() {
                z[s * n + i] = v.re;
            }
        }
        Ok(())
    }
}

/// Signed mix frequency of the flattened spectral bin `bin`.
fn bin_mix_freq(grid: &SpectralGrid, bin: usize) -> f64 {
    let axes = grid.axes();
    match axes.len() {
        1 => {
            let ns = axes[0].samples();
            let k = signed_bin(bin, ns);
            k as f64 * axes[0].freq
        }
        2 => {
            let n1 = axes[1].samples();
            let b0 = bin / n1;
            let b1 = bin % n1;
            signed_bin(b0, axes[0].samples()) as f64 * axes[0].freq
                + signed_bin(b1, n1) as f64 * axes[1].freq
        }
        _ => unreachable!(),
    }
}

fn signed_bin(b: usize, ns: usize) -> i64 {
    let h = ns / 2;
    if b <= h {
        b as i64
    } else {
        b as i64 - ns as i64
    }
}

impl Preconditioner<f64> for HarmonicBlockPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> rfsim_numerics::Result<()> {
        let _span = telemetry::span("hb.precond.apply");
        let small = self.grid.samples() * self.n < PRECOND_PAR_MIN_UNKNOWNS;
        // Under SIMD dispatch the batched strided transforms beat the
        // per-line parallel path outright, so every thread count runs the
        // same executor (keeping results thread-count-invariant) and only
        // the per-bin block solves fan out over the pool.
        if rfsim_numerics::kernels::simd_active() {
            let par_bins = !small && parallel::thread_count() > 1;
            let mut ws = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
            return self.apply_serial(r, z, &mut ws, par_bins);
        }
        if small || parallel::thread_count() <= 1 {
            let mut ws = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
            return self.apply_serial(r, z, &mut ws, false);
        }
        self.apply_parallel(r, z)
    }
}

/// Newton-loop state that outlives a single [`newton_hb`] call: the
/// factored harmonic block preconditioner (and the inner-iteration
/// baseline its lazy-refresh test compares against) plus the Krylov
/// recycle space. Inside one solve it spans source-stepping levels; in a
/// sweep ([`HbSweep`]) it spans the sweep points, which is what extends
/// [`PrecondRefresh::Adaptive`] across point boundaries — a factor is
/// kept until the growth test or a rescue re-factor says otherwise, no
/// matter which continuation level or sweep point produced it.
///
/// The type is public so long-running callers (the `rfsim-serve` daemon,
/// warm-cache tests) can own the carried state across solves through
/// [`solve_hb_carried`] and query how warm it is, without reaching into
/// this module's internals.
pub struct NewtonCarry {
    precond: Option<HarmonicBlockPrecond>,
    /// Inner-iteration count right after the last factorization.
    base_inner: Option<usize>,
    recycle: RecycleSpace<f64>,
}

impl NewtonCarry {
    /// A cold carry whose recycle space keeps up to `recycle_dim`
    /// deflation directions (0 disables recycling).
    pub fn new(recycle_dim: usize) -> Self {
        NewtonCarry { precond: None, base_inner: None, recycle: RecycleSpace::new(recycle_dim) }
    }

    /// Drops everything carried — the next correction starts cold.
    pub fn reset(&mut self) {
        self.precond = None;
        self.base_inner = None;
        self.recycle.clear();
    }

    /// Whether a factored harmonic block preconditioner is being carried.
    pub fn has_preconditioner(&self) -> bool {
        self.precond.is_some()
    }

    /// Current number of recycled Krylov directions.
    pub fn recycle_dim(&self) -> usize {
        self.recycle.dim()
    }

    /// Approximate resident bytes of the carried state (preconditioner
    /// factors; the recycle space's share is counted by its owner, which
    /// knows the operator dimension).
    pub fn bytes(&self) -> usize {
        self.precond.as_ref().map_or(0, HarmonicBlockPrecond::bytes)
    }
}

/// Solves the periodic (or quasi-periodic) steady state of `dae` on `grid`.
///
/// # Errors
/// [`Error::NoConvergence`] if Newton stalls, and propagated numerical
/// errors from factorization/GMRES.
pub fn solve_hb(dae: &dyn Dae, grid: &SpectralGrid, opts: &HbOptions) -> Result<HbSolution> {
    let n = dae.dim();
    let ws = RefCell::new(HbWorkspace::new(grid, n));
    let mut gws = GmresWorkspace::new();
    let mut carry = NewtonCarry::new(0);
    solve_hb_with(dae, grid, opts, None, &ws, &mut gws, &mut carry)
}

/// [`solve_hb`] with a caller-owned [`NewtonCarry`]: the factored block
/// preconditioner and recycle space persist in `carry` across calls, so
/// a long-running caller (the `rfsim-serve` daemon, warm-cache tests)
/// can pay the factorization once and reuse it for related solves. With
/// `warm_x` (a previous solution on the same grid and DAE dimension) the
/// solve also skips source stepping and starts Newton there; results
/// converge to the same `opts.tol` as a cold solve either way.
///
/// # Errors
/// [`Error::NoConvergence`] if Newton stalls, plus propagated numerical
/// errors — a carried preconditioner that no longer matches the operator
/// is re-factored and retried once automatically before failing.
///
/// # Panics
/// Panics if `warm_x` has a length other than `grid.samples() * dae.dim()`.
pub fn solve_hb_carried(
    dae: &dyn Dae,
    grid: &SpectralGrid,
    opts: &HbOptions,
    warm_x: Option<&[f64]>,
    carry: &mut NewtonCarry,
) -> Result<HbSolution> {
    let n = dae.dim();
    if let Some(xs) = warm_x {
        assert_eq!(xs.len(), grid.samples() * n, "solve_hb_carried: warm_x length mismatch");
    }
    let ws = RefCell::new(HbWorkspace::new(grid, n));
    let mut gws = GmresWorkspace::new();
    solve_hb_with(dae, grid, opts, warm_x, &ws, &mut gws, carry)
}

/// The full HB solve with caller-owned hot-path state: workspace, GMRES
/// basis, and the Newton carry (preconditioner + recycle space). With
/// `warm_x` the solve starts from a previous solution at full excitation
/// (no source stepping); without it the initial guess is the DC operating
/// point broadcast over the grid, refined through `opts.source_steps`.
fn solve_hb_with(
    dae: &dyn Dae,
    grid: &SpectralGrid,
    opts: &HbOptions,
    warm_x: Option<&[f64]>,
    ws: &RefCell<HbWorkspace>,
    gws: &mut GmresWorkspace<f64>,
    carry: &mut NewtonCarry,
) -> Result<HbSolution> {
    let _span = telemetry::span("hb.solve");
    let n = dae.dim();
    let total = grid.samples();
    let nun = total * n;
    telemetry::counter_add("hb.solves", 1);
    telemetry::gauge_set("hb.unknowns", nun as f64);
    // Initial guess: the warm start, or the DC operating point broadcast
    // over the grid.
    let mut x = match warm_x {
        Some(xs) => xs.to_vec(),
        None => {
            let op = dc_operating_point(dae, &opts.dc)?;
            let mut x = vec![0.0; nun];
            for s in 0..total {
                x[s * n..(s + 1) * n].copy_from_slice(&op.x);
            }
            x
        }
    };
    // Excitation samples and their DC average (for source stepping).
    let mut b_full = vec![0.0; nun];
    {
        let mut bs = vec![0.0; n];
        for s in 0..total {
            dae.eval_b(grid.time(s), &mut bs);
            b_full[s * n..(s + 1) * n].copy_from_slice(&bs);
        }
    }
    let mut b_dc = vec![0.0; n];
    for s in 0..total {
        for i in 0..n {
            b_dc[i] += b_full[s * n + i];
        }
    }
    for v in &mut b_dc {
        *v /= total as f64;
    }

    let mut stats = HbStats { unknowns: nun, ..Default::default() };
    let mut stamp_cache = StampCache::default();
    // A warm start sits near the full-excitation solution already; source
    // stepping from the DC average would walk away from it.
    let steps = if warm_x.is_some() { 1 } else { opts.source_steps.max(1) };
    for step in 1..=steps {
        let alpha = step as f64 / steps as f64;
        let b: Vec<f64> = (0..nun)
            .map(|si| {
                let i = si % n;
                b_dc[i] + alpha * (b_full[si] - b_dc[i])
            })
            .collect();
        newton_hb(dae, grid, &mut x, &b, opts, &mut stats, ws, gws, carry, &mut stamp_cache)?;
    }
    telemetry::counter_add("hb.newton.iterations", stats.newton_iterations as u64);
    telemetry::counter_add("hb.gmres.iterations", stats.linear_iterations as u64);
    telemetry::counter_add("hb.matvecs", stats.matvecs as u64);
    telemetry::gauge_set("hb.solver_bytes", stats.solver_bytes as f64);
    Ok(HbSolution { grid: grid.clone(), n, x, stats })
}

#[allow(clippy::too_many_arguments)]
fn newton_hb(
    dae: &dyn Dae,
    grid: &SpectralGrid,
    x: &mut Vec<f64>,
    b: &[f64],
    opts: &HbOptions,
    stats: &mut HbStats,
    ws: &RefCell<HbWorkspace>,
    gws: &mut GmresWorkspace<f64>,
    carry: &mut NewtonCarry,
    cache: &mut StampCache,
) -> Result<()> {
    let n = dae.dim();
    let nun = x.len();
    let _span = telemetry::span("hb.newton");
    let mut trace = telemetry::TraceBuf::new("hb.newton");
    if trace.is_active() {
        trace.set_label(format!("{nun} unknowns, {} samples", grid.samples()));
    }
    let mut tail = ResidualTail::new();
    let mut monitor = telemetry::ResidualMonitor::newton("hb.newton");
    let mut first_inner: Option<usize> = None;
    let mut flagged_precond = false;
    let mut last_res = f64::INFINITY;
    for it in 0..opts.max_newton {
        let (r, lins) = assemble(dae, grid, x, b, cache);
        let res = norm_inf(&r);
        last_res = res;
        trace.push(res);
        monitor.observe(res);
        tail.push(res);
        if !res.is_finite() {
            // A NaN/Inf residual cannot recover; abort instead of
            // iterating on poisoned values.
            trace.commit(false);
            return Err(Error::NoConvergence {
                iterations: it,
                residual: res,
                residual_tail: tail.to_vec(),
            });
        }
        if res < opts.tol {
            trace.commit(true);
            return Ok(());
        }
        stats.newton_iterations += 1;
        let dx = match opts.solver {
            HbSolver::Direct => {
                // Dense assembly by probing the operator with unit vectors.
                let mut jac = Mat::zeros(nun, nun);
                let mut e = vec![0.0; nun];
                let mut col = vec![0.0; nun];
                for j in 0..nun {
                    e[j] = 1.0;
                    apply_jacobian(grid, &lins, n, &e, &mut col, &mut ws.borrow_mut());
                    stats.matvecs += 1;
                    for i in 0..nun {
                        jac[(i, j)] = col[i];
                    }
                    e[j] = 0.0;
                }
                stats.solver_bytes = stats.solver_bytes.max(nun * nun * 8);
                jac.solve(&r).map_err(Error::Numerics)?
            }
            HbSolver::Gmres { precondition } => {
                let matvecs = std::cell::Cell::new(0usize);
                let op = FnOperator::new(nun, |v: &[f64], y: &mut [f64]| {
                    apply_jacobian(grid, &lins, n, v, y, &mut ws.borrow_mut());
                    matvecs.set(matvecs.get() + 1);
                });
                let basis = (opts.krylov.restart.min(nun) + 1) * nun * 8;
                // The Jacobian moved since the last correction, so the
                // recycled directions' images are stale: deflating costs a
                // refresh (`dim` matvecs) to re-establish C = A·U against
                // the current operator. That only pays when inner solves
                // are long relative to the space; with the block
                // preconditioner healthy (a handful of iterations per
                // correction) the space is pure overhead, so gate on the
                // measured baseline count.
                let recycling = carry.recycle.capacity() > 0
                    && carry.base_inner.is_some_and(|b| b >= 3 * carry.recycle.capacity().max(1));
                if recycling {
                    carry.recycle.refresh(&op);
                }
                let result = if precondition {
                    let refactored = carry.precond.is_none();
                    if refactored {
                        carry.precond = Some(HarmonicBlockPrecond::new(grid, &lins, n)?);
                        stats.precond_factorizations += 1;
                        carry.base_inner = None;
                    }
                    stats.solver_bytes = stats
                        .solver_bytes
                        .max(carry.precond.as_ref().expect("factored above").bytes() + basis);
                    let first_try = if recycling {
                        gmres_recycled(
                            &op,
                            &r,
                            None,
                            carry.precond.as_ref().expect("factored above"),
                            &opts.krylov,
                            gws,
                            &mut carry.recycle,
                        )
                    } else {
                        gmres_with(
                            &op,
                            &r,
                            None,
                            carry.precond.as_ref().expect("factored above"),
                            &opts.krylov,
                            gws,
                        )
                    };
                    match first_try {
                        Err(rfsim_numerics::Error::NoConvergence { .. }) if !refactored => {
                            // A kept factor from an earlier linearization
                            // can stall GMRES outright; re-factor at the
                            // current point and retry once before failing.
                            carry.precond = Some(HarmonicBlockPrecond::new(grid, &lins, n)?);
                            stats.precond_factorizations += 1;
                            carry.base_inner = None;
                            if recycling {
                                gmres_recycled(
                                    &op,
                                    &r,
                                    None,
                                    carry.precond.as_ref().expect("just factored"),
                                    &opts.krylov,
                                    gws,
                                    &mut carry.recycle,
                                )
                            } else {
                                gmres_with(
                                    &op,
                                    &r,
                                    None,
                                    carry.precond.as_ref().expect("just factored"),
                                    &opts.krylov,
                                    gws,
                                )
                            }
                        }
                        other => other,
                    }
                } else {
                    stats.solver_bytes = stats.solver_bytes.max(basis);
                    gmres_with(&op, &r, None, &IdentityPrecond, &opts.krylov, gws)
                };
                let (dx, st) = result.map_err(Error::Numerics)?;
                telemetry::histogram_record("hb.gmres.iterations_per_newton", st.iterations as f64);
                // Preconditioner-quality trend: a sharp rise in inner
                // iterations per Newton step means the block
                // preconditioner stopped matching the Jacobian. The
                // refresh decision compares against the count right after
                // the last factorization and is independent of telemetry.
                let first = *first_inner.get_or_insert(st.iterations);
                let base = *carry.base_inner.get_or_insert(st.iterations);
                let refresh_due = precondition
                    && match opts.precond_refresh {
                        PrecondRefresh::EveryIteration => true,
                        PrecondRefresh::Adaptive { growth } => {
                            (st.iterations as f64) > growth * (base.max(4) as f64)
                        }
                    };
                if monitor.is_active() {
                    telemetry::gauge_set("hb.precond.inner_per_newton", st.iterations as f64);
                    let degraded = st.iterations > 3 * first.max(4)
                        || (refresh_due && opts.precond_refresh != PrecondRefresh::EveryIteration);
                    if !flagged_precond && degraded {
                        flagged_precond = true;
                        telemetry::record_health(
                            "precond_degraded",
                            "hb.newton",
                            &format!(
                                "inner GMRES iterations rose from {first} to {} per Newton step",
                                st.iterations
                            ),
                            st.iterations as f64,
                            stats.newton_iterations,
                        );
                    }
                }
                if refresh_due {
                    // Drop the factor; the next correction re-factors at
                    // its own linearization point.
                    carry.precond = None;
                }
                stats.linear_iterations += st.iterations;
                stats.matvecs += matvecs.get();
                dx
            }
        };
        // Damped update.
        let mut alpha = 1.0;
        let mut improved = false;
        for _ in 0..8 {
            let xt: Vec<f64> = x.iter().zip(&dx).map(|(xi, di)| xi - alpha * di).collect();
            let (rt, _) = assemble(dae, grid, &xt, b, cache);
            if norm_inf(&rt).is_finite() && norm_inf(&rt) < res {
                *x = xt;
                improved = true;
                break;
            }
            alpha *= 0.5;
        }
        if !improved {
            // Accept the smallest step anyway; Newton may still recover.
            let xt: Vec<f64> = x.iter().zip(&dx).map(|(xi, di)| xi - alpha * di).collect();
            *x = xt;
        }
    }
    // Final check.
    let (r, _) = assemble(dae, grid, x, b, cache);
    let final_res = norm_inf(&r);
    trace.push(final_res);
    monitor.observe(final_res);
    tail.push(final_res);
    if final_res < opts.tol {
        trace.commit(true);
        Ok(())
    } else {
        trace.commit(false);
        Err(Error::NoConvergence {
            iterations: opts.max_newton,
            residual: last_res,
            residual_tail: tail.to_vec(),
        })
    }
}

/// Recycle directions carried across sweep points: successive Newton
/// corrections of neighboring points share dominant directions, and the
/// refresh cost (`dim` matvecs per correction) stays negligible at this
/// size.
const HB_SWEEP_RECYCLE_DIM: usize = 4;

/// Per-sweep state deferred until the first point fixes the DAE
/// dimension.
struct SweepState {
    n: usize,
    /// Converged solution of the previous point — the next warm start.
    x: Vec<f64>,
    ws: RefCell<HbWorkspace>,
    gws: GmresWorkspace<f64>,
    carry: NewtonCarry,
}

/// Warm-started continuation driver for a sweep of related HB problems
/// on one grid (amplitude sweeps, parameter steps, tone-power curves).
///
/// The first point solves cold — DC initial guess plus source stepping —
/// and every later point starts Newton from the previous converged
/// solution at full excitation, carrying the matvec workspace, the GMRES
/// basis, the cached FFT plans (inside the factored preconditioner's
/// scratch), the factored harmonic block preconditioner (so
/// [`PrecondRefresh::Adaptive`] extends across point boundaries), and
/// the Krylov recycle space. Every point converges to the same
/// `opts.tol` as a cold [`solve_hb`]; a warm start that fails to
/// converge (a fold in the continuation path) is automatically redone
/// cold before the error would surface. Counters
/// `hb.sweep.warm_starts` / `hb.sweep.cold_starts` record the split.
pub struct HbSweep {
    grid: SpectralGrid,
    opts: HbOptions,
    state: Option<SweepState>,
}

impl HbSweep {
    /// A sweep over `grid` with shared solver options.
    pub fn new(grid: &SpectralGrid, opts: &HbOptions) -> Self {
        HbSweep { grid: grid.clone(), opts: opts.clone(), state: None }
    }

    /// Whether the sweep holds a converged previous point, i.e. the next
    /// [`HbSweep::solve`] of a same-dimension DAE will start warm.
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }

    /// The carried Newton state, once the first point has solved.
    pub fn carry(&self) -> Option<&NewtonCarry> {
        self.state.as_ref().map(|st| &st.carry)
    }

    /// Approximate resident bytes of the warm state: previous solution,
    /// matvec workspace, preconditioner factors, and recycle space. What
    /// a cache eviction would actually free — used by `rfsim-serve` to
    /// keep resident sweeps under a memory budget.
    pub fn state_bytes(&self) -> usize {
        self.state.as_ref().map_or(0, |st| {
            let nun = st.x.len();
            // x + workspace cv, the recycle space's U and C blocks, and
            // the carried preconditioner factors.
            (2 * nun + 2 * st.carry.recycle.dim() * nun) * 8 + st.carry.bytes()
        })
    }

    /// Solves the next sweep point. Consecutive calls expect DAEs of the
    /// same dimension (the same circuit with stepped parameters); a
    /// dimension change restarts the sweep cold.
    ///
    /// # Errors
    /// [`Error::NoConvergence`] if both the warm start and the cold redo
    /// fail, plus propagated numerical errors.
    pub fn solve(&mut self, dae: &dyn Dae) -> Result<HbSolution> {
        let n = dae.dim();
        if let Some(st) = self.state.as_mut().filter(|st| st.n == n) {
            telemetry::counter_add("hb.sweep.warm_starts", 1);
            let warm = solve_hb_with(
                dae,
                &self.grid,
                &self.opts,
                Some(&st.x),
                &st.ws,
                &mut st.gws,
                &mut st.carry,
            );
            return match warm {
                Ok(sol) => {
                    st.x.copy_from_slice(&sol.x);
                    Ok(sol)
                }
                Err(Error::NoConvergence { .. }) => {
                    // The previous solution attracted Newton to a stall;
                    // redo this point cold with everything carried dropped.
                    telemetry::counter_add("hb.sweep.cold_starts", 1);
                    st.carry.reset();
                    let sol = solve_hb_with(
                        dae,
                        &self.grid,
                        &self.opts,
                        None,
                        &st.ws,
                        &mut st.gws,
                        &mut st.carry,
                    )?;
                    st.x.copy_from_slice(&sol.x);
                    Ok(sol)
                }
                Err(e) => Err(e),
            };
        }
        telemetry::counter_add("hb.sweep.cold_starts", 1);
        let ws = RefCell::new(HbWorkspace::new(&self.grid, n));
        let mut gws = GmresWorkspace::new();
        let mut carry = NewtonCarry::new(HB_SWEEP_RECYCLE_DIM);
        let sol = solve_hb_with(dae, &self.grid, &self.opts, None, &ws, &mut gws, &mut carry)?;
        self.state = Some(SweepState { n, x: sol.x.clone(), ws, gws, carry });
        Ok(sol)
    }
}

/// Solves a sweep of related HB problems in order, warm-starting each
/// point from the previous solution (see [`HbSweep`]).
///
/// # Errors
/// Propagates the first failing point.
pub fn solve_hb_sweep(
    daes: &[&dyn Dae],
    grid: &SpectralGrid,
    opts: &HbOptions,
) -> Result<Vec<HbSolution>> {
    let _span = telemetry::span("hb.sweep");
    let mut sweep = HbSweep::new(grid, opts);
    daes.iter().map(|dae| sweep.solve(*dae)).collect()
}

/// The HB matvec hot path frozen at one linearization point: the
/// matrix-free Jacobian application and the factored harmonic block
/// preconditioner, with every buffer preallocated. [`solve_hb`] drives
/// exactly this code each GMRES iteration; the handle exists so the
/// allocation-regression test and profiling harnesses can exercise the
/// steady-state loop directly.
pub struct HbHotPath {
    grid: SpectralGrid,
    n: usize,
    lins: Vec<SampleLin>,
    precond: HarmonicBlockPrecond,
    ws: HbWorkspace,
}

impl HbHotPath {
    /// Assembles the linearization at the DC operating point (broadcast
    /// over the grid) and factors the block preconditioner.
    ///
    /// # Errors
    /// Propagates DC-solve and factorization failures.
    pub fn prepare(dae: &dyn Dae, grid: &SpectralGrid) -> Result<Self> {
        let n = dae.dim();
        let total = grid.samples();
        let op = dc_operating_point(dae, &DcOptions::default())?;
        let mut x = vec![0.0; total * n];
        for s in 0..total {
            x[s * n..(s + 1) * n].copy_from_slice(&op.x);
        }
        let b = vec![0.0; total * n];
        let (_r, lins) = assemble(dae, grid, &x, &b, &mut StampCache::default());
        let precond = HarmonicBlockPrecond::new(grid, &lins, n)?;
        Ok(HbHotPath { grid: grid.clone(), n, lins, precond, ws: HbWorkspace::new(grid, n) })
    }

    /// Total HB unknowns (`samples()·n`).
    pub fn unknowns(&self) -> usize {
        self.grid.samples() * self.n
    }

    /// `y ← J·v` through the matrix-free HB Jacobian. Zero heap
    /// allocation once the workspace is warm.
    pub fn matvec(&mut self, v: &[f64], y: &mut [f64]) {
        apply_jacobian(&self.grid, &self.lins, self.n, v, y, &mut self.ws);
    }

    /// `z ← M⁻¹·r` through the harmonic block preconditioner.
    ///
    /// # Errors
    /// Propagates block-solve failures.
    pub fn precond_apply(&self, r: &[f64], z: &mut [f64]) -> Result<()> {
        self.precond.apply(r, z).map_err(Error::Numerics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fourier::ToneAxis;
    use rfsim_circuit::prelude::*;
    use rfsim_circuit::Circuit;

    /// RC low-pass driven by a sine: HB must match the analytic AC answer.
    #[test]
    fn linear_rc_matches_ac_theory() {
        let f0 = 1e6;
        let (r, c) = (1e3, 1e-9);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
        ckt.add(Resistor::new("R1", a, out, r));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, c));
        let dae = ckt.into_dae().unwrap();
        let grid = SpectralGrid::single_tone(f0, 5).unwrap();
        let sol = solve_hb(&dae, &grid, &HbOptions::default()).unwrap();
        let out_idx = dae.node_index(out).unwrap();
        let gain = 1.0 / (1.0 + (2.0 * std::f64::consts::PI * f0 * r * c).powi(2)).sqrt();
        let amp = sol.amplitude(out_idx, &[1]);
        assert!((amp - gain).abs() < 1e-6, "amp {amp} vs gain {gain}");
        // No spurious harmonics in a linear circuit.
        assert!(sol.amplitude(out_idx, &[2]) < 1e-9);
        assert!(sol.amplitude(out_idx, &[3]) < 1e-9);
    }

    /// Diode rectifier: strongly nonlinear; DC component must appear.
    #[test]
    fn diode_rectifier_generates_dc_and_harmonics() {
        let f0 = 1e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
        ckt.add(Diode::new("D1", a, out, 1e-14));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 10e3));
        ckt.add(Capacitor::new("CL", out, Circuit::GROUND, 20e-9));
        let dae = ckt.into_dae().unwrap();
        let grid = SpectralGrid::single_tone(f0, 15).unwrap();
        let opts = HbOptions { source_steps: 4, ..Default::default() };
        let sol = solve_hb(&dae, &grid, &opts).unwrap();
        let out_idx = dae.node_index(out).unwrap();
        let dc = sol.amplitude(out_idx, &[0]);
        // Peak rectifier with big RC: DC out a large fraction of (1 − V_diode).
        assert!(dc > 0.15, "dc = {dc}");
        // Ripple at f0 smaller than DC.
        assert!(sol.amplitude(out_idx, &[1]) < dc);
    }

    /// Mixer two-tone test: a multiplier driven by f1 (slow) and f2 (fast)
    /// must produce energy exactly at f2 ± f1.
    #[test]
    fn multiplier_mixes_two_tones() {
        let (f1, f2) = (1e5, 9e8);
        let mut ckt = Circuit::new();
        let rf = ckt.node("rf");
        let lo = ckt.node("lo");
        let out = ckt.node("out");
        ckt.add(VSource::sine("VRF", rf, Circuit::GROUND, 0.0, 0.1, f1));
        ckt.add(VSource::sine_fast("VLO", lo, Circuit::GROUND, 0.0, 1.0, f2));
        ckt.add(Multiplier::new(
            "MIX",
            out,
            Circuit::GROUND,
            rf,
            Circuit::GROUND,
            lo,
            Circuit::GROUND,
            1e-3,
        ));
        ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3).noiseless());
        let dae = ckt.into_dae().unwrap();
        let grid = SpectralGrid::two_tone(ToneAxis::new(f1, 2), ToneAxis::new(f2, 2)).unwrap();
        let sol = solve_hb(&dae, &grid, &HbOptions::default()).unwrap();
        let out_idx = dae.node_index(out).unwrap();
        // i = gain·v_rf·v_lo = 1e-3·0.1·1.0·sin·sin → products at f2±f1
        // each of amplitude (1e-3·0.1·1/2)·R = 0.05 V.
        let up = sol.amplitude(out_idx, &[1, 1]);
        let dn = sol.amplitude(out_idx, &[-1, 1]);
        assert!((up - 0.05).abs() < 1e-6, "up = {up}");
        assert!((dn - 0.05).abs() < 1e-6, "dn = {dn}");
        // Nothing at the LO itself (ideal multiplier, no feedthrough).
        assert!(sol.amplitude(out_idx, &[0, 1]) < 1e-9);
    }

    /// Direct and GMRES backends agree.
    #[test]
    fn direct_and_gmres_agree() {
        let f0 = 1e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 0.8, f0));
        ckt.add(Resistor::new("R1", a, out, 1e3));
        ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-12));
        let dae = ckt.into_dae().unwrap();
        let grid = SpectralGrid::single_tone(f0, 7).unwrap();
        // Fixed (small) restart so the Krylov memory model is linear in the
        // unknown count.
        let krylov = KrylovOptions { restart: 20, ..Default::default() };
        let gm = solve_hb(&dae, &grid, &HbOptions { krylov, ..Default::default() }).unwrap();
        let di =
            solve_hb(&dae, &grid, &HbOptions { solver: HbSolver::Direct, ..Default::default() })
                .unwrap();
        let oi = dae.node_index(out).unwrap();
        for k in 0..5 {
            let a1 = gm.amplitude(oi, &[k]);
            let a2 = di.amplitude(oi, &[k]);
            assert!((a1 - a2).abs() < 1e-7, "k={k}: {a1} vs {a2}");
        }
        // Direct memory grows quadratically with harmonic count; the
        // Krylov backend's grows linearly (the paper's §2.1 cost claim).
        let big = SpectralGrid::single_tone(1e6, 21).unwrap();
        let gm_big = solve_hb(&dae, &big, &HbOptions { krylov, ..Default::default() }).unwrap();
        let di_big =
            solve_hb(&dae, &big, &HbOptions { solver: HbSolver::Direct, ..Default::default() })
                .unwrap();
        let di_growth = di_big.stats.solver_bytes as f64 / di.stats.solver_bytes as f64;
        let gm_growth = gm_big.stats.solver_bytes as f64 / gm.stats.solver_bytes as f64;
        assert!(
            di_growth > 2.0 * gm_growth,
            "direct growth {di_growth:.1} vs gmres growth {gm_growth:.1}"
        );
    }

    /// A diode clipper at a given drive amplitude.
    fn clipper(amp: f64) -> rfsim_circuit::dae::CircuitDae {
        let f0 = 1e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, amp, f0));
        ckt.add(Resistor::new("R1", a, out, 1e3));
        ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-9));
        ckt.into_dae().unwrap()
    }

    /// Warm-started sweep solutions match independent cold solves within
    /// the solver tolerance, point for point.
    #[test]
    fn sweep_matches_cold_solves() {
        let grid = SpectralGrid::single_tone(1e6, 11).unwrap();
        let opts = HbOptions { source_steps: 3, ..Default::default() };
        let amps = [0.4, 0.5, 0.6, 0.7, 0.8];
        let daes: Vec<_> = amps.iter().map(|&a| clipper(a)).collect();
        let refs: Vec<&dyn Dae> = daes.iter().map(|d| d as &dyn Dae).collect();
        let warm = solve_hb_sweep(&refs, &grid, &opts).unwrap();
        for (dae, w) in daes.iter().zip(&warm) {
            let cold = solve_hb(dae, &grid, &opts).unwrap();
            // Both converged to residual ∞-norm < tol on the same
            // problem; the iterates themselves agree to a looser bound
            // set by the Newton tolerance.
            for (a, b) in w.x.iter().zip(&cold.x) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    /// The sweep's warm starts spend fewer Newton iterations per point
    /// than cold solves.
    #[test]
    fn sweep_warm_starts_save_newton_iterations() {
        let grid = SpectralGrid::single_tone(1e6, 11).unwrap();
        let opts = HbOptions { source_steps: 4, ..Default::default() };
        let amps = [0.5, 0.55, 0.6, 0.65, 0.7];
        let daes: Vec<_> = amps.iter().map(|&a| clipper(a)).collect();
        let refs: Vec<&dyn Dae> = daes.iter().map(|d| d as &dyn Dae).collect();
        let warm = solve_hb_sweep(&refs, &grid, &opts).unwrap();
        let warm_newton: usize = warm[1..].iter().map(|s| s.stats.newton_iterations).sum();
        let cold_newton: usize = daes[1..]
            .iter()
            .map(|d| solve_hb(d, &grid, &opts).unwrap().stats.newton_iterations)
            .sum();
        assert!(warm_newton < cold_newton, "warm {warm_newton} !< cold {cold_newton}");
    }

    /// A dimension change mid-sweep falls back to a cold start rather
    /// than panicking on mismatched buffers.
    #[test]
    fn sweep_restarts_on_dimension_change() {
        let grid = SpectralGrid::single_tone(1e6, 7).unwrap();
        let mut sweep = HbSweep::new(&grid, &HbOptions::default());
        let d1 = clipper(0.5);
        sweep.solve(&d1).unwrap();
        // A different circuit with more nodes.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 0.5, 1e6));
        ckt.add(Resistor::new("R1", a, m, 500.0));
        ckt.add(Resistor::new("R2", m, out, 500.0));
        ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-14));
        let d2 = ckt.into_dae().unwrap();
        let sol = sweep.solve(&d2).unwrap();
        assert_eq!(sol.n, 4);
    }

    /// The preconditioner pays for itself on a stiff linear problem.
    #[test]
    fn preconditioner_reduces_iterations() {
        let f0 = 1e6;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        let out = ckt.node("out");
        ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
        ckt.add(Resistor::new("R1", a, m, 50.0));
        ckt.add(Inductor::new("L1", m, out, 1e-5));
        ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-9));
        ckt.add(Resistor::new("R2", out, Circuit::GROUND, 1e4));
        let dae = ckt.into_dae().unwrap();
        let grid = SpectralGrid::single_tone(f0, 10).unwrap();
        let with = solve_hb(&dae, &grid, &HbOptions::default()).unwrap();
        let without = solve_hb(
            &dae,
            &grid,
            &HbOptions { solver: HbSolver::Gmres { precondition: false }, ..Default::default() },
        )
        .unwrap();
        assert!(
            with.stats.linear_iterations < without.stats.linear_iterations,
            "with {} !< without {}",
            with.stats.linear_iterations,
            without.stats.linear_iterations
        );
    }
}
