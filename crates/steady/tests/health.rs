//! Health-monitor integration for the steady engines: a NaN injected
//! into the HB residual must surface as a structured `nonfinite` event
//! and abort cleanly through `Result` — never a panic, and never the
//! silent grind of Newton iterating on poisoned values.

use rfsim_circuit::dae::{Dae, NoiseSource, TwoTime};
use rfsim_circuit::prelude::*;
use rfsim_circuit::{Circuit, CircuitDae};
use rfsim_numerics::sparse::Triplets;
use rfsim_steady::{solve_hb, Error, HbOptions, SpectralGrid};
use rfsim_telemetry as telemetry;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Delegates to a real circuit DAE but poisons the excitation away from
/// `t = 0`: the DC operating point stays solvable, while the HB
/// residual picks up a NaN on the first Newton iteration.
struct PoisonedDae {
    inner: CircuitDae,
}

impl Dae for PoisonedDae {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn eval(
        &self,
        x: &[f64],
        f: &mut [f64],
        q: &mut [f64],
        g: &mut Triplets<f64>,
        c: &mut Triplets<f64>,
    ) {
        self.inner.eval(x, f, q, g, c);
    }

    fn eval_b(&self, t: TwoTime, b: &mut [f64]) {
        self.inner.eval_b(t, b);
        if t.t1 != 0.0 || t.t2 != 0.0 {
            b[0] = f64::NAN;
        }
    }

    fn is_nonlinear(&self) -> bool {
        self.inner.is_nonlinear()
    }

    fn unknown_name(&self, i: usize) -> String {
        self.inner.unknown_name(i)
    }

    fn noise_sources(&self, x_op: &[f64]) -> Vec<NoiseSource> {
        self.inner.noise_sources(x_op)
    }
}

fn rc_lowpass() -> CircuitDae {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, 1e6));
    ckt.add(Resistor::new("R1", a, out, 1e3));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 1e-10));
    ckt.into_dae().expect("netlist")
}

#[test]
fn nan_in_hb_residual_emits_nonfinite_event_and_clean_error() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Report);
    telemetry::reset();

    let dae = PoisonedDae { inner: rc_lowpass() };
    let grid = SpectralGrid::single_tone(1e6, 4).expect("grid");
    let err = solve_hb(&dae, &grid, &HbOptions::default()).unwrap_err();
    match err {
        Error::NoConvergence { residual, .. } => {
            assert!(!residual.is_finite(), "the reported residual must carry the NaN");
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }

    let snap = telemetry::snapshot();
    let nonfinite: Vec<_> = snap
        .health
        .iter()
        .filter(|h| h.monitor == "nonfinite" && h.solver == "hb.newton")
        .collect();
    assert_eq!(nonfinite.len(), 1, "expected one nonfinite event, got {:?}", snap.health);
    assert!(nonfinite[0].value.is_nan());
    // The poisoned trace is committed as failed, not left dangling.
    let hb_trace = snap.traces.iter().find(|t| t.solver == "hb.newton").expect("hb trace");
    assert!(!hb_trace.converged);

    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();
}

#[test]
fn nan_abort_is_clean_with_telemetry_off() {
    // The tripwire is a correctness feature: it must abort via `Result`
    // even when no monitor is recording.
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();

    let dae = PoisonedDae { inner: rc_lowpass() };
    let grid = SpectralGrid::single_tone(1e6, 4).expect("grid");
    let err = solve_hb(&dae, &grid, &HbOptions::default()).unwrap_err();
    assert!(matches!(err, Error::NoConvergence { .. }), "got {err:?}");
    assert!(telemetry::snapshot().health.is_empty());
}

#[test]
fn healthy_hb_emits_no_health_events() {
    let _guard = SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    telemetry::set_mode(telemetry::Mode::Report);
    telemetry::reset();

    let grid = SpectralGrid::single_tone(1e6, 4).expect("grid");
    solve_hb(&rc_lowpass(), &grid, &HbOptions::default()).expect("well-posed solve");
    let snap = telemetry::snapshot();
    assert!(snap.health.is_empty(), "healthy solve flagged: {:?}", snap.health);

    telemetry::set_mode(telemetry::Mode::Off);
    telemetry::reset();
}
