//! Cross-engine integration tests: every steady-state/multi-rate method in
//! the workspace must agree on shared circuits — HB, shooting, transient,
//! MFDTD, MMFT and hierarchical shooting are different discretizations of
//! the same mathematics.

#![allow(clippy::needless_range_loop)]

use rfsim::circuit::prelude::*;
use rfsim::circuit::Circuit;
use rfsim::mpde::{
    hierarchical_shooting, solve_mfdtd, solve_mmft, HsOptions, MfdtdOptions, MmftOptions,
};
use rfsim::steady::{shooting, solve_hb, HbOptions, ShootingOptions, SpectralGrid, ToneAxis};

/// A driven nonlinear circuit: diode rectifier with output filter.
fn rectifier(f0: f64) -> (rfsim::circuit::CircuitDae, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
    ckt.add(Resistor::new("R1", a, out, 500.0));
    ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-13));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 3e-10));
    let dae = ckt.into_dae().expect("netlist");
    (dae, out)
}

#[test]
fn hb_shooting_transient_agree_on_rectifier() {
    let f0 = 1e6;
    let (dae, out) = rectifier(f0);
    let oi = dae.node_index(out).expect("node");
    // HB.
    let grid = SpectralGrid::single_tone(f0, 12).expect("grid");
    let hb =
        solve_hb(&dae, &grid, &HbOptions { source_steps: 3, ..Default::default() }).expect("hb");
    // Shooting.
    let sh =
        shooting(&dae, 1.0 / f0, &ShootingOptions { steps_per_period: 500, ..Default::default() })
            .expect("shooting");
    // Transient run to steady state (20 periods), then harmonics by DFT.
    let tr = transient(
        &dae,
        0.0,
        20.0 / f0,
        &TranOptions { dt: 1.0 / (f0 * 400.0), ..Default::default() },
    )
    .expect("transient");
    let samples = tr.resample(oi, 19.0 / f0, 20.0 / f0, 256);
    let spec = rfsim::numerics::fft::amplitude_spectrum(&samples);
    for k in 0..4usize {
        let a_hb = hb.amplitude(oi, &[k as i32]);
        let a_sh = sh.amplitude(oi, k as i32);
        let a_tr = spec[k];
        assert!((a_hb - a_sh).abs() < 6e-3, "harmonic {k}: hb {a_hb:.5} vs shooting {a_sh:.5}");
        assert!((a_hb - a_tr).abs() < 1.5e-2, "harmonic {k}: hb {a_hb:.5} vs transient {a_tr:.5}");
    }
}

/// A symmetric diode clipper: odd harmonics only, and HB/shooting agree.
/// (Companion to the rectifier case — exercises a different nonlinearity
/// shape through the same engines.)
#[test]
fn hb_shooting_agree_on_symmetric_clipper() {
    let f0 = 1e6;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::sine("V1", a, Circuit::GROUND, 0.0, 1.0, f0));
    ckt.add(Resistor::new("R1", a, out, 1e3));
    ckt.add(Diode::new("D1", out, Circuit::GROUND, 1e-12));
    ckt.add(Diode::new("D2", Circuit::GROUND, out, 1e-12));
    let dae = ckt.into_dae().expect("netlist");
    let oi = dae.node_index(out).expect("node");
    let grid = SpectralGrid::single_tone(f0, 12).expect("grid");
    let hb =
        solve_hb(&dae, &grid, &HbOptions { source_steps: 4, ..Default::default() }).expect("hb");
    let sh =
        shooting(&dae, 1.0 / f0, &ShootingOptions { steps_per_period: 600, ..Default::default() })
            .expect("shooting");
    for k in 1..5usize {
        let a_hb = hb.amplitude(oi, &[k as i32]);
        let a_sh = sh.amplitude(oi, k as i32);
        assert!((a_hb - a_sh).abs() < 6e-3, "harmonic {k}: hb {a_hb:.5} vs shooting {a_sh:.5}");
    }
    // Antisymmetric transfer curve → even harmonics strongly suppressed
    // (not exactly zero: the truncated spectral grid aliases a little of
    // the sharp clipping into even bins).
    let fund = hb.amplitude(oi, &[1]);
    assert!(hb.amplitude(oi, &[2]) < 1e-2 * fund, "even harmonic leaked");
    assert!(hb.amplitude(oi, &[0]) < 1e-9, "DC offset leaked");
}

/// The three MPDE discretizations on the same two-tone problem.
#[test]
fn mpde_methods_agree() {
    let (f1, f2) = (1e4, 1e6);
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let out = ckt.node("out");
    ckt.add(VSource::multi_tone(
        "V1",
        a,
        Circuit::GROUND,
        0.0,
        vec![(Tone::new(0.6, f1), TimeScale::Slow), (Tone::new(0.4, f2), TimeScale::Fast)],
    ));
    ckt.add(Resistor::new("R1", a, out, 1e3));
    ckt.add(Capacitor::new("C1", out, Circuit::GROUND, 3e-10));
    let dae = ckt.into_dae().expect("netlist");
    let oi = dae.node_index(out).expect("node");

    let (mf, _) = solve_mfdtd(
        &dae,
        1.0 / f1,
        1.0 / f2,
        &MfdtdOptions { n1: 32, n2: 32, ..Default::default() },
    )
    .expect("mfdtd");
    let (hs, _) = hierarchical_shooting(
        &dae,
        1.0 / f1,
        1.0 / f2,
        &HsOptions { n1: 32, n2: 32, ..Default::default() },
    )
    .expect("hshoot");
    let mm =
        solve_mmft(&dae, f1, f2, &MmftOptions { slow_harmonics: 2, n2: 32, ..Default::default() })
            .expect("mmft");
    // Compare all three on the diagonal waveform at scattered times.
    for j in 0..24 {
        let t = j as f64 * (1.0 / f1) / 24.0;
        let v_mf = mf.eval(t, t, oi);
        let v_hs = hs.eval(t, t, oi);
        let v_mm = mm.eval(t, t, oi);
        // MFDTD and HS share the first-order slow axis → close; MMFT is
        // spectral slow axis is more accurate, so the gap to it is the
        // MFDTD slow-axis truncation error (O(T1/n1) ≈ 4% at n1 = 32).
        assert!((v_mf - v_hs).abs() < 0.03, "t={t:.2e}: mfdtd {v_mf:.4} vs hs {v_hs:.4}");
        assert!((v_mf - v_mm).abs() < 0.05, "t={t:.2e}: mfdtd {v_mf:.4} vs mmft {v_mm:.4}");
    }
}

/// Two-tone HB and MMFT must report the same mix amplitudes for a mixer.
#[test]
fn hb_and_mmft_mix_amplitudes_agree() {
    let (f1, f2) = (1e5, 1e7);
    let mut ckt = Circuit::new();
    let rf = ckt.node("rf");
    let lo = ckt.node("lo");
    let out = ckt.node("out");
    ckt.add(VSource::sine("VRF", rf, Circuit::GROUND, 0.0, 0.2, f1));
    ckt.add(VSource::sine_fast("VLO", lo, Circuit::GROUND, 0.0, 1.0, f2));
    ckt.add(Multiplier::new(
        "MIX",
        out,
        Circuit::GROUND,
        rf,
        Circuit::GROUND,
        lo,
        Circuit::GROUND,
        -1e-3,
    ));
    ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3).noiseless());
    let dae = ckt.into_dae().expect("netlist");
    let oi = dae.node_index(out).expect("node");
    let grid = SpectralGrid::two_tone(ToneAxis::new(f1, 2), ToneAxis::new(f2, 2)).expect("grid");
    let hb = solve_hb(&dae, &grid, &HbOptions::default()).expect("hb");
    let mm =
        solve_mmft(&dae, f1, f2, &MmftOptions { slow_harmonics: 2, n2: 64, ..Default::default() })
            .expect("mmft");
    for (k, m) in [(1i32, 1i32), (-1, 1)] {
        let a_hb = hb.amplitude(oi, &[k, m]);
        let a_mm = mm.mix_amplitude(oi, k, m);
        assert!((a_hb - a_mm).abs() < 3e-3, "mix ({k},{m}): hb {a_hb:.5} vs mmft {a_mm:.5}");
    }
}

/// Envelope following reproduces HB's quasi-static amplitude when the
/// envelope varies slowly.
#[test]
fn envelope_matches_quasistatic_hb() {
    let (f1, f2) = (1e3, 1e6);
    let mut ckt = Circuit::new();
    let am = ckt.node("am");
    let car = ckt.node("car");
    let out = ckt.node("out");
    ckt.add(VSource::sine("VAM", am, Circuit::GROUND, 0.5, 0.25, f1));
    ckt.add(VSource::sine_fast("VC", car, Circuit::GROUND, 0.0, 1.0, f2));
    ckt.add(Multiplier::new(
        "MOD",
        out,
        Circuit::GROUND,
        am,
        Circuit::GROUND,
        car,
        Circuit::GROUND,
        -1e-3,
    ));
    ckt.add(Resistor::new("RL", out, Circuit::GROUND, 1e3).noiseless());
    let dae = ckt.into_dae().expect("netlist");
    let oi = dae.node_index(out).expect("node");
    let env = rfsim::mpde::envelope_follow(
        &dae,
        1.0 / f2,
        1.0 / f1,
        20,
        &rfsim::mpde::EnvelopeOptions { n2: 16, ..Default::default() },
    )
    .expect("envelope");
    let amps = env.harmonic_envelope(oi, 1);
    for (i, &t1) in env.t1_times.iter().enumerate() {
        let expect = (0.5 + 0.25 * (2.0 * std::f64::consts::PI * f1 * t1).sin()).abs();
        assert!(
            (amps[i] - expect).abs() < 0.05,
            "t1 = {t1:.2e}: envelope {} vs quasi-static {expect}",
            amps[i]
        );
    }
}
