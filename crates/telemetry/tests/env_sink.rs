//! Sink selection through the `RFSIM_TELEMETRY` environment variable.
//!
//! The env var is consumed once per process, so these tests re-execute
//! the test binary itself with the variable set and inspect the child's
//! output. The child branch of each test records a small workload and
//! flushes; the parent branch asserts on the artifact or stderr.

use rfsim_telemetry as telemetry;
use std::process::Command;

const CHILD_VAR: &str = "RFSIM_TELEMETRY_TEST_CHILD";

/// Workload the child process runs before flushing.
fn child_workload() {
    {
        let _span = telemetry::span("child.solve");
        telemetry::counter_add("child.iterations", 42);
        telemetry::record_trace("child.newton", "env test", &[1.0, 1e-4, 1e-9], true);
    }
    telemetry::flush(None).expect("flush");
}

fn run_child(test_name: &str, env_value: &str) -> std::process::Output {
    let exe = std::env::current_exe().expect("current exe");
    Command::new(exe)
        .args(["--exact", test_name, "--nocapture", "--test-threads", "1"])
        .env(CHILD_VAR, "1")
        .env(telemetry::ENV_VAR, env_value)
        .output()
        .expect("spawn child test process")
}

#[test]
fn env_json_selects_json_sink() {
    if std::env::var(CHILD_VAR).is_ok() {
        child_workload();
        return;
    }
    let path = std::env::temp_dir().join("rfsim-telemetry-env-sink-test.json");
    let _ = std::fs::remove_file(&path);
    let out = run_child("env_json_selects_json_sink", &format!("json:{}", path.display()));
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&path).expect("JSON artifact written at env path");
    let parsed = telemetry::Json::parse(&text).expect("valid JSON");
    assert_eq!(
        parsed.get("counters").and_then(|c| c.get("child.iterations")).and_then(|v| v.as_f64()),
        Some(42.0)
    );
    let spans = parsed.get("spans").and_then(|s| s.get("children")).expect("span tree");
    assert!(spans.get("child.solve").is_some());
    let traces = telemetry::Snapshot::traces_from_json(&parsed).expect("traces");
    assert_eq!(traces.len(), 1);
    assert_eq!(traces[0].solver, "child.newton");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn env_report_writes_stderr() {
    if std::env::var(CHILD_VAR).is_ok() {
        child_workload();
        return;
    }
    let out = run_child("env_report_writes_stderr", "report");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("== rfsim telemetry =="), "missing report header: {stderr}");
    assert!(stderr.contains("child.iterations"), "missing counter line: {stderr}");
    assert!(stderr.contains("child.newton"), "missing trace line: {stderr}");
}

#[test]
fn env_chrome_selects_trace_sink() {
    if std::env::var(CHILD_VAR).is_ok() {
        child_workload();
        return;
    }
    let path = std::env::temp_dir().join("rfsim-telemetry-env-chrome-test.json");
    let _ = std::fs::remove_file(&path);
    let out = run_child("env_chrome_selects_trace_sink", &format!("chrome:{}", path.display()));
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&path).expect("trace artifact written at env path");
    let parsed = telemetry::Json::parse(&text).expect("valid JSON");
    let arr = parsed.as_arr().expect("trace-event array");
    let span_ev = arr
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("child.solve"))
        .expect("child.solve X event");
    assert_eq!(span_ev.get("ph").and_then(|p| p.as_str()), Some("X"));
    assert!(span_ev.get("ts").and_then(|t| t.as_f64()).is_some());
    assert!(span_ev.get("dur").and_then(|d| d.as_f64()).is_some());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn env_off_records_and_writes_nothing() {
    if std::env::var(CHILD_VAR).is_ok() {
        child_workload();
        // With telemetry off the snapshot must stay empty even though the
        // workload ran.
        let snap = telemetry::snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.traces.is_empty());
        return;
    }
    let out = run_child("env_off_records_and_writes_nothing", "off");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("== rfsim telemetry =="), "off mode produced a report: {stderr}");
}
